"""Quickstart: compile a circuit for a real device and verify it.

Mirrors the paper's Section IV story: a small circuit cannot run as-is on
IBM QX4 (directed CNOT coupling), so the compiler inserts SWAPs, flips
CNOT directions with Hadamards, lowers everything to the native
U(theta, phi, lam) + CNOT set, and schedules it — while provably
preserving the computation.

Run:  python examples/quickstart.py
"""

from repro import Circuit, compile_circuit, equivalent_mapped, get_device
from repro.viz import draw_circuit, draw_device


def main() -> None:
    # A 3-qubit GHZ-preparation circuit, written device-independently.
    circuit = Circuit(3, name="ghz3").h(0).cnot(0, 1).cnot(1, 2)
    print("abstract circuit:")
    print(draw_circuit(circuit))

    # The machine description (paper Fig. 2, right input).
    device = get_device("ibm_qx4")
    print("\ntarget device:")
    print(draw_device(device))

    violations = device.validate_circuit(circuit)
    print(f"\nbefore mapping: {len(violations)} constraint violations, e.g.")
    for violation in violations[:3]:
        print(f"  - {violation}")

    # The full pipeline: placement -> routing -> direction fix ->
    # decomposition -> scheduling.
    result = compile_circuit(circuit, device, placer="greedy", router="sabre")
    print("\n" + result.summary())

    print("\nmapped native circuit:")
    print(draw_circuit(result.native, qubit_prefix="Q"))

    assert device.conforms(result.native)
    ok = equivalent_mapped(
        circuit, result.native, result.routed.initial, result.routed.final
    )
    print(f"\nsemantics preserved (up to output permutation): {ok}")
    print(f"final placement: {result.routed.final}")


if __name__ == "__main__":
    main()
