"""The Surface-17 / Qmap flow of the paper's Sections V and Fig. 2.

Takes the paper's Fig. 1 example circuit as OpenQASM text, compiles it
with Qmap (optimised initial placement, latency-driven routing,
control-constraint-aware scheduling), and emits the scheduled program as
cQASM bundles — the exact input/output shapes of the paper's Fig. 2.

Also reports the headline Fig. 5 / Fig. 6 numbers: the single added SWAP
and the ~2x latency increase over the dependency-only schedule.

Run:  python examples/surface17_qmap.py
"""

from repro import get_device, parse_qasm
from repro.decompose import decompose_circuit
from repro.mapping import qmap
from repro.mapping.scheduler import asap_schedule
from repro.qasm import schedule_to_cqasm, to_openqasm
from repro.viz import draw_device, draw_schedule
from repro.workloads import fig1_circuit


def main() -> None:
    device = get_device("surface17")
    print(draw_device(device))

    # Round-trip the example circuit through QASM text, as a compiler
    # front end would receive it.
    qasm_text = to_openqasm(fig1_circuit())
    print("\ninput OpenQASM:")
    print(qasm_text)
    circuit = parse_qasm(qasm_text)

    result = qmap(circuit, device)
    print(result.summary())
    print(f"\nadded SWAPs (paper Fig. 5 reports exactly 1): {result.added_swaps}")

    baseline = asap_schedule(decompose_circuit(circuit, device), device)
    factor = result.latency / baseline.latency
    print(
        f"latency: {result.latency} cycles x {device.cycle_time_ns:.0f} ns "
        f"= {result.latency_ns:.0f} ns"
    )
    print(
        f"dependency-only latency of the unmapped native circuit: "
        f"{baseline.latency} cycles -> increase factor {factor:.2f}x "
        "(paper: 26 cycles, ~2x)"
    )

    print("\nconstraint-aware schedule (columns are start cycles):")
    print(draw_schedule(result.schedule))

    print("\noutput cQASM with parallel bundles (Fig. 2 output):")
    print(schedule_to_cqasm(result.schedule))

    # The very bottom of Fig. 2: the control signals.  Shared AWGs carry
    # one pulse per frequency group (identical co-started gates merge),
    # flux lines carry the CZs, feedlines the readout tones.
    from repro.pulse import lower_to_pulses

    program = lower_to_pulses(result.schedule, device)
    print("control-signal timeline (# = pulse, ~ = feedforward-gated):")
    print(program.timeline())
    merged = [e for e in program if len(e.qubits) > 1 and e.channel.kind == "awg"]
    for event in merged:
        print(
            f"  shared-AWG pulse {event.label!r} drives qubits "
            f"{event.qubits} at cycle {event.start}"
        )


if __name__ == "__main__":
    main()
