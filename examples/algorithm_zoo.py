"""Run real algorithms through the mapping pipeline and check they still work.

Compiles Bernstein-Vazirani, Grover, and a ripple-carry adder onto IBM
QX5, then *executes the mapped native circuits* on the statevector
simulator to show the algorithms still produce their answers after
mapping — the end-to-end promise of the paper's compilation flow.

Run:  python examples/algorithm_zoo.py
"""

import numpy as np

from repro import Circuit, compile_circuit, get_device
from repro.metrics import format_table, mapping_overhead
from repro.sim import StateVector, simulate
from repro.sim.noise import NoiseModel
from repro.verify import apply_permutation
from repro.workloads import bernstein_vazirani, cuccaro_adder, grover


def run_mapped(circuit, device, **options):
    """Compile and return (result, final statevector on program qubits)."""
    result = compile_circuit(circuit, device, **options)
    sv = StateVector(device.num_qubits, rng=np.random.default_rng(7))
    sv.run(result.native)
    # Undo the final placement: program qubit q's amplitudes live on
    # physical line final.phys(q); move them back onto line q.
    final = result.routed.final
    perm = [final.slot(p) for p in range(device.num_qubits)]
    state = apply_permutation(sv.state, perm)
    # Classical results need the same relabelling (physical -> program).
    results = {
        final.prog(phys): bit
        for phys, bit in sv.results.items()
        if final.prog(phys) >= 0
    }
    return result, state, results


def main() -> None:
    device = get_device("ibm_qx5")
    noise = NoiseModel()
    rows = []

    # Bernstein-Vazirani: the measured bits must equal the secret.
    secret = "1011"
    bv = bernstein_vazirani(secret)
    result, _, measured = run_mapped(bv, device, placer="greedy", router="sabre")
    rows.append(mapping_overhead(result, label=f"bv[{secret}]", noise=noise))
    recovered = "".join(str(measured[q]) for q in range(len(secret)))
    print(f"Bernstein-Vazirani secret {secret} -> measured {recovered} "
          f"({'OK' if recovered == secret else 'FAIL'})")

    # Grover: the marked state must dominate the output distribution.
    marked = 5
    grover_circuit = grover(3, marked=marked)
    result, state, _ = run_mapped(
        grover_circuit, device, placer="greedy", router="sabre"
    )
    rows.append(mapping_overhead(result, label=f"grover3[{marked}]", noise=noise))
    probs = np.abs(state.reshape(2**3, -1)) ** 2  # program qubits are 0..2
    marginal = probs.sum(axis=1)
    print(f"Grover marked |{marked:03b}> probability after mapping: "
          f"{marginal[marked]:.3f} ({'OK' if marginal[marked] > 0.7 else 'FAIL'})")

    # Adder: 2 + 3 on two-bit registers.
    bits, a, b = 2, 2, 3
    prep = Circuit(2 * bits + 2)
    for i in range(bits):
        if (a >> i) & 1:
            prep.x(1 + 2 * i)
        if (b >> i) & 1:
            prep.x(2 + 2 * i)
    adder = prep.compose(cuccaro_adder(bits))
    result, state, _ = run_mapped(adder, device, placer="greedy", router="sabre")
    rows.append(mapping_overhead(result, label=f"adder{bits} ({a}+{b})", noise=noise))
    n = 2 * bits + 2
    index = int(np.argmax(np.abs(state.reshape(2**n, -1)).sum(axis=1)))
    bitstring = format(index, f"0{n}b")
    total = sum(int(bitstring[2 + 2 * i]) << i for i in range(bits))
    total += int(bitstring[n - 1]) << bits
    print(f"Adder {a} + {b} -> {total} ({'OK' if total == a + b else 'FAIL'})")

    print()
    print(format_table(rows, title=f"mapping overhead on {device.name}"))


if __name__ == "__main__":
    main()
