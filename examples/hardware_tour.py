"""A tour of the 'unique hardware features' (paper Sections VI-C, VII).

One workload, four very different machines:

1. a superconducting lattice (Surface-17) — SWAP routing, parallel gates;
2. a trapped-ion module — all-to-all `rxx` coupling, no routing, but a
   serialized two-qubit bus;
3. a quantum-dot array — shuttling into empty sites instead of SWAPs;
4. a photonic chain — demolition measurement, new photons on reuse;

plus two compiler tricks those machines motivate: teleportation-based
routing (footnote 4) and application-aware architecture exploration
(Section VII / ref [69]).

Run:  python examples/hardware_tour.py
"""

from repro import Circuit, compile_circuit, get_device
from repro.explore import augment_topology
from repro.mapping import insert_photon_reinit
from repro.mapping.placement import Placement
from repro.mapping.routing import route_naive, route_shuttle, route_teleport
from repro.mapping.scheduler import asap_schedule
from repro.verify import equivalent_mapped, equivalent_mapped_with_feedforward
from repro.workloads import qft


def main() -> None:
    circuit = qft(5)
    print(f"workload: {circuit.name} ({circuit.size()} gates)\n")

    # 1. Superconducting lattice vs 2. trapped ions.
    surface = get_device("surface17")
    ions = get_device("iontrap", num_qubits=5)
    for device in (surface, ions):
        result = compile_circuit(
            circuit, device, placer="greedy", schedule="constraints"
        )
        assert device.conforms(result.native)
        assert equivalent_mapped(
            circuit, result.native, result.routed.initial, result.routed.final
        )
        print(
            f"{device.name:<12} swaps={result.added_swaps:<3} "
            f"2q-depth={result.native.depth(count_single_qubit=False):<4} "
            f"latency={result.latency} cycles x {device.cycle_time_ns:.0f} ns"
        )
    print(
        "  -> ions route for free but serialise two-qubit gates on the\n"
        "     vibrational bus (Sec. VI-C)\n"
    )

    # 3. Quantum dots: shuttle vs swap on a half-empty array.
    dots = get_device("dots", rows=3, cols=4)
    shuttle = route_shuttle(circuit, dots)
    print(
        f"{dots.name:<12} {shuttle.metadata['shuttles']} shuttles + "
        f"{shuttle.metadata['swaps']} swaps "
        f"(move cost {shuttle.metadata['move_cost']:.0f} vs "
        f"{3 * route_naive(circuit, dots).added_swaps} for SWAP chains)"
    )
    print("  -> empty dots turn routing into cheap shuttles (Sec. VI-C)\n")

    # 4. Photonics: demolition measurement.
    photonic = get_device("photonic", num_qubits=4)
    reuse = Circuit(4).h(0).cnot(0, 1).measure(0).h(0)
    violations = photonic.validate_circuit(reuse)
    repaired = insert_photon_reinit(reuse, photonic)
    print(
        f"{photonic.name:<12} reusing a measured photon: "
        f"{len(violations)} violation(s); after photon re-init: "
        f"{len(photonic.validate_circuit(repaired))}"
    )
    print("  -> 'generate a new photon to re-initialize' (Sec. VI-C)\n")

    # Teleportation routing (footnote 4).
    line = get_device("linear", num_qubits=8)
    busy = Circuit(2)
    for _ in range(12):
        busy.t(0).t(1)
    busy.cnot(0, 1)
    placement = Placement.from_partial({0: 0, 1: 7}, 2, 8)
    swap_latency = asap_schedule(
        route_naive(busy, line, placement).circuit, line
    ).latency
    teleported = route_teleport(busy, line, placement)
    teleport_latency = asap_schedule(teleported.circuit, line).latency
    assert equivalent_mapped_with_feedforward(
        busy, teleported.circuit, teleported.initial, teleported.final
    )
    print(
        f"teleportation on {line.name}: {teleport_latency} cycles vs "
        f"{swap_latency} for SWAP chains "
        f"({teleported.metadata['teleports']} teleport)"
    )
    print("  -> 'SWAP-based routing with relaxed time constraints' (fn. 4)\n")

    # Architecture exploration (Sec. VII / [69]).
    base = get_device("linear", num_qubits=6)
    result = augment_topology(
        base, [qft(6)], edge_budget=2, max_candidate_distance=5
    )
    print(result.summary())
    print("  -> the architecture follows the planned functionality (Sec. VII)")


if __name__ == "__main__":
    main()
