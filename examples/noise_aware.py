"""Reliability-aware mapping (paper Section III-B cost functions).

Real chips have good and bad coupling edges.  This example draws random
per-edge error rates for IBM QX5, routes the same workloads with the
hop-count router and with the reliability-aware router (which prefers
the most reliable SWAP paths), and compares the estimated success
probability of the compiled circuits.

Run:  python examples/noise_aware.py
"""

import statistics

from repro import compile_circuit, get_device
from repro.mapping.placement import noise_aware_placement
from repro.metrics import format_table, mapping_overhead
from repro.sim.noise import NoiseModel
from repro.workloads import ghz, qft, random_circuit


def main() -> None:
    device = get_device("ibm_qx5")
    noise = NoiseModel.with_random_edge_errors(
        device, base_2q=0.02, spread=6.0, seed=11, t2_ns=float("inf")
    )
    worst = max(noise.edge_error.items(), key=lambda kv: kv[1])
    best = min(noise.edge_error.items(), key=lambda kv: kv[1])
    print(
        f"edge quality on {device.name}: best {best[0]} "
        f"(err {best[1]:.4f}), worst {worst[0]} (err {worst[1]:.4f})\n"
    )

    workloads = [
        ghz(8),
        qft(6),
        random_circuit(8, 30, seed=3, two_qubit_fraction=0.6),
    ]
    gains = []
    for circuit in workloads:
        rows = []
        baseline = compile_circuit(
            circuit, device, placer="greedy", router="sabre"
        )
        rows.append(mapping_overhead(baseline, label="hop-count", noise=noise))
        aware = compile_circuit(
            circuit,
            device,
            placer=lambda c, d: noise_aware_placement(c, d, noise),
            router="reliability",
            router_options={"noise": noise},
        )
        rows.append(mapping_overhead(aware, label="noise-aware", noise=noise))
        print(format_table(rows, title=f"workload: {circuit.name}"))
        gain = rows[1].success_probability / max(rows[0].success_probability, 1e-12)
        gains.append(gain)
        print(f"  -> variability-aware success gain: {gain:.2f}x\n")

    print(
        f"geometric-mean success gain over {len(gains)} workloads: "
        f"{statistics.geometric_mean(gains):.2f}x"
    )
    print(
        "(noise-aware mapping may spend extra SWAPs to reach the chip's\n"
        "reliable region; it wins on estimated success, the Section III-B\n"
        "reliability cost function.)"
    )


if __name__ == "__main__":
    main()
