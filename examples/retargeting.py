"""'Every device is (almost) equal before the compiler' (paper Section VI).

One circuit, one mapper, six machine descriptions — including a custom
device loaded from a JSON configuration file, the retargetability
mechanism Qmap uses.  The table shows how topology alone (line, grid,
QX4's directed couplings, Surface-17's lattice, trapped-ion all-to-all)
drives the mapping overhead.

Run:  python examples/retargeting.py
"""

import tempfile
from pathlib import Path

from repro import Device, compile_circuit, get_device
from repro.metrics import format_table, mapping_overhead
from repro.verify import equivalent_mapped
from repro.workloads import qft


def custom_device_json() -> str:
    """A made-up 6-qubit 'H' shaped chip, as a user config would define it."""
    device = Device(
        "custom_h6",
        6,
        [(0, 1), (1, 2), (1, 4), (3, 4), (4, 5)],
        ["u", "rx", "ry", "rz", "cnot"],
        symmetric=True,
        durations={"u": 1, "cnot": 2, "swap": 6},
    )
    return device.to_json()


def main() -> None:
    circuit = qft(4)
    targets = [
        get_device("linear", num_qubits=6),
        get_device("grid", rows=2, cols=3),
        get_device("ibm_qx4"),
        get_device("ibm_qx5"),
        get_device("surface17"),
        get_device("all_to_all", num_qubits=6),
    ]
    # The JSON configuration-file path, exactly as Qmap's retargeting works.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "custom.json"
        path.write_text(custom_device_json())
        targets.append(Device.from_json(path))

    rows = []
    for device in targets:
        result = compile_circuit(circuit, device, placer="greedy", router="sabre")
        assert device.conforms(result.native)
        assert equivalent_mapped(
            circuit, result.native, result.routed.initial, result.routed.final
        )
        rows.append(mapping_overhead(result, label=device.name))

    print(format_table(rows, title=f"{circuit.name} mapped by one compiler onto:"))
    print(
        "\nall-to-all (trapped-ion style) needs no SWAPs at all; the same\n"
        "mapper handled every machine description unchanged."
    )


if __name__ == "__main__":
    main()
