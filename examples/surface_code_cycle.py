"""The surface code on its chip — what Surface-17 was built for (Sec. V).

Runs the complete quantum-error-correction story on the distance-3
rotated surface code (17 qubits, the Surface-17 configuration):

1. build the code and its chip model (X ancillas at f1, data at f2,
   Z ancillas at f3, three feedlines — the Versluis scheme);
2. lower the stabilizer-measurement cycle to native gates and schedule
   it under the full control-electronics constraints;
3. run cycles on the statevector simulator, inject Pauli errors, decode
   the syndromes, and verify the logical qubit survives.

Run:  python examples/surface_code_cycle.py
"""

from repro.decompose import decompose_circuit
from repro.mapping.control import schedule_with_constraints
from repro.mapping.scheduler import asap_schedule
from repro.pulse import lower_to_pulses
from repro.qec import (
    LookupDecoder,
    RotatedSurfaceCode,
    SyndromeExtractor,
    stabilizer_cycle,
)
from repro.viz import draw_device


def main() -> None:
    code = RotatedSurfaceCode(3)
    device = code.device()
    print(code)
    print(draw_device(device))

    # The QEC cycle as a compiled workload.
    cycle = stabilizer_cycle(code)
    native = decompose_circuit(cycle, device)
    assert device.conforms(native)
    free = asap_schedule(native, device)
    constrained = schedule_with_constraints(native, device, priority="critical")
    pulses = lower_to_pulses(constrained, device)
    print(
        f"\nQEC cycle: {cycle.size()} gates -> {native.size()} native gates"
        f"\n  latency without electronics constraints: {free.latency} cycles"
        f"\n  latency with shared AWGs/feedlines/parking: "
        f"{constrained.latency} cycles ({constrained.latency * 20} ns)"
        f"\n  control channels: {len(pulses.channels())}"
    )

    # The error-correction loop.
    decoder = LookupDecoder(code)
    print("\nerror-correction loop (inject -> syndrome -> decode -> correct):")
    for pauli, victim in (("x", 4), ("z", 0), ("x", 8)):
        extractor = SyndromeExtractor(code, seed=42)
        extractor.establish_reference()
        extractor.inject(pauli, victim)
        syndrome = extractor.syndrome()
        correction = decoder.decode(syndrome)
        extractor.apply_correction("x", correction["X"])
        extractor.apply_correction("z", correction["Z"])
        extractor.syndrome()  # settle the change-based frame
        quiet = extractor.syndrome() == {"X": frozenset(), "Z": frozenset()}
        logical = extractor.logical_z_expectation()
        print(
            f"  {pauli.upper()} on data {victim}: syndrome "
            f"X={sorted(syndrome['X'])} Z={sorted(syndrome['Z'])} -> "
            f"correct {correction}; quiet={quiet}, <Z_L>={logical:+.1f}"
        )

    print(
        "\nthe logical observable survives every injected single-qubit "
        "error — the fault-tolerance demonstration the chip targets."
    )

    # Beyond the statevector: the CHP stabilizer backend runs the
    # distance-5 code (49 qubits) in milliseconds, showing the
    # distance-scaling payoff.
    from repro.qec import memory_experiment, unprotected_failure_rate

    print("\nmemory experiment (2 rounds, 40 trials, CHP backend):")
    print(f"{'p':>7} {'unprotected':>12} {'d=3':>8} {'d=5':>8}")
    code5 = RotatedSurfaceCode(5)
    for p in (0.01, 0.03, 0.08):
        d3 = memory_experiment(
            code, error_rate=p, rounds=2, trials=40, seed=7,
            backend="stabilizer",
        ).logical_error_rate
        d5 = memory_experiment(
            code5, error_rate=p, rounds=2, trials=40, seed=7,
            backend="stabilizer",
        ).logical_error_rate
        print(
            f"{p:>7.3f} {unprotected_failure_rate(p, 2):>12.3f} "
            f"{d3:>8.3f} {d5:>8.3f}"
        )


if __name__ == "__main__":
    main()
