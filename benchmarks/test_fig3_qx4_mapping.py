"""Experiment fig3 — mapping the example circuit on IBM QX4 (Fig. 3).

The paper contrasts three realisations of the Fig. 1 circuit under the
placement q1..q4 -> Q1..Q4:

* (b) the naive SWAP-insertion approach, "a significant overhead";
* (c) the heuristic of [54], "significantly cheaper";
* (d) the exact approach of [57], "can be further improved".

The absolute gate counts depend on the (non-machine-readable) figure
artwork; the *ordering* naive > heuristic >= exact, and the further
improvement from letting the exact mapper pick the initial placement,
are the claims reproduced here.
"""

import pytest

from repro.core.pipeline import compile_circuit
from repro.devices import ibm_qx4
from repro.mapping.routing import route_exact
from repro.metrics import format_table, mapping_overhead
from repro.verify import equivalent_mapped
from repro.workloads import fig1_circuit, fig1_qx4_placement

ROUTERS = [("naive (Fig. 3b)", "naive"), ("heuristic [54] (Fig. 3c)", "astar"),
           ("exact [57] (Fig. 3d)", "exact")]


def _compile(router):
    device = ibm_qx4()
    circuit = fig1_circuit()
    result = compile_circuit(
        circuit,
        device,
        placer=lambda c, d: fig1_qx4_placement(),
        router=router,
        schedule="asap",
    )
    assert device.conforms(result.native)
    assert equivalent_mapped(
        circuit, result.native, result.routed.initial, result.routed.final
    )
    return result


def test_fig3_report(record_report):
    rows = []
    by_router = {}
    for label, router in ROUTERS:
        result = _compile(router)
        by_router[router] = result
        rows.append(mapping_overhead(result, label=label))

    # The paper's ordering claims.
    assert by_router["naive"].native.size() > by_router["astar"].native.size()
    assert by_router["exact"].native.size() <= by_router["astar"].native.size()

    free = route_exact(fig1_circuit(), ibm_qx4(), optimize_placement=True)
    fixed = route_exact(fig1_circuit(), ibm_qx4(), fig1_qx4_placement())
    assert free.metadata["cost"] < fixed.metadata["cost"]

    report = "\n".join(
        [
            format_table(rows, title="Fig. 3 - fig1 circuit on IBM QX4 "
                                     "(placement q1..q4 -> Q1..Q4):"),
            "",
            "exact mapper objective (SWAP*7 + H-flip*4 elementary gates):",
            f"  fixed placement:  cost {fixed.metadata['cost']:.0f} "
            f"({fixed.added_swaps} SWAPs, {fixed.metadata['flips']} flips)",
            f"  free placement:   cost {free.metadata['cost']:.0f} "
            f"({free.added_swaps} SWAPs, {free.metadata['flips']} flips)",
            "",
            "paper claim check: naive > heuristic >= exact  -> holds",
        ]
    )
    record_report("fig3_qx4_mapping", report)


@pytest.mark.parametrize("label,router", ROUTERS)
def test_fig3_router_speed(benchmark, label, router):
    result = benchmark(lambda: _compile(router))
    assert result.added_swaps >= 0
