"""Experiment sec7-explore — application-aware architectures (Sec. VII/[69]).

"These optimizations should consider both the quantum device and the
quantum application characteristics ... an approach which takes the
planned quantum functionality into account when determining an
architecture."  The benchmark lets the explorer add a small resonator
budget to a linear chip for a concrete workload suite and reports the
mapping-cost reduction, plus a topology ranking for the same suite.
"""

import pytest

from repro.devices import get_device, linear_device
from repro.explore import augment_topology, compare_topologies
from repro.workloads import qft, random_circuit


def _suite():
    return [
        qft(6),
        random_circuit(6, 24, seed=1, two_qubit_fraction=0.7),
        random_circuit(6, 24, seed=2, two_qubit_fraction=0.7),
    ]


def test_exploration_report(record_report):
    base = linear_device(6)
    result = augment_topology(
        base, _suite(), edge_budget=2, max_candidate_distance=5
    )
    assert result.added_edges
    assert result.cost < result.base_cost

    ranking = compare_topologies(
        _suite(),
        [
            linear_device(6),
            result.device,
            get_device("ring", num_qubits=6),
            get_device("grid", rows=2, cols=3),
            get_device("all_to_all", num_qubits=6),
        ],
    )
    assert ranking[0][0] == "ions6"
    # The augmented device must rank better than its base.
    names = [name for name, _ in ranking]
    assert names.index(result.device.name) < names.index("linear6")

    lines = [
        result.summary(),
        "",
        "topology ranking for the same workload suite (total SWAPs):",
    ]
    lines += [f"  {name:<12} {cost:.0f}" for name, cost in ranking]
    record_report("architecture_exploration", "\n".join(lines))


def test_exploration_speed(benchmark):
    base = linear_device(5)
    suite = [random_circuit(5, 15, seed=3, two_qubit_fraction=0.7)]
    result = benchmark(
        lambda: augment_topology(base, suite, edge_budget=1)
    )
    assert result.base_cost >= result.cost
