"""Experiment sec5-memory — the logical memory experiment (ref [60]).

The payoff of the surface code: below the pseudo-threshold the encoded
logical qubit outlives an unprotected physical qubit, and *increasing
the distance suppresses the logical error rate further*.  The benchmark
sweeps the physical X-error rate at distances 3 and 5 using the CHP
stabilizer backend (distance 5 needs 49 qubits, far beyond dense
statevectors) and compares against the unencoded baseline.
"""

import pytest

from repro.qec import (
    RotatedSurfaceCode,
    memory_experiment,
    unprotected_failure_rate,
)

RATES = [0.01, 0.03, 0.08]
ROUNDS = 2
TRIALS = 60


def test_memory_report(record_report):
    codes = {3: RotatedSurfaceCode(3), 5: RotatedSurfaceCode(5)}
    lines = [
        "bit-flip memory experiment, CHP stabilizer backend "
        f"({ROUNDS} rounds, {TRIALS} trials per point, matching decoder):",
        "",
        f"{'p':>6} {'unprotected':>12} {'d=3 logical':>12} {'d=5 logical':>12}",
    ]
    table = {}
    for rate in RATES:
        row = {"base": unprotected_failure_rate(rate, ROUNDS)}
        for distance, code in codes.items():
            result = memory_experiment(
                code, error_rate=rate, rounds=ROUNDS, trials=TRIALS,
                seed=5, backend="stabilizer",
            )
            row[distance] = result.logical_error_rate
        table[rate] = row
        lines.append(
            f"{rate:>6.3f} {row['base']:>12.3f} {row[3]:>12.3f} "
            f"{row[5]:>12.3f}"
        )

    # Shape claims: at the smallest rate both distances beat the
    # unprotected qubit and d=5 is at least as good as d=3 (more
    # suppression below threshold); far above threshold the encoded
    # qubits do not win.
    small = table[RATES[0]]
    assert small[3] <= small["base"]
    assert small[5] <= small["base"]
    assert small[5] <= small[3]
    big = table[RATES[-1]]
    assert big[3] >= big["base"] * 0.5  # no miracle above threshold

    lines += [
        "",
        "below the pseudo-threshold higher distance suppresses the "
        "logical error rate further; above it nine (or 49) noisy qubits "
        "lose to one — the threshold behaviour of [60]",
    ]
    record_report("qec_memory", "\n".join(lines))


def test_memory_round_speed_statevector(benchmark):
    code = RotatedSurfaceCode(3)
    result = benchmark.pedantic(
        lambda: memory_experiment(
            code, error_rate=0.02, rounds=1, trials=1, seed=1
        ),
        iterations=1,
        rounds=3,
    )
    assert result.trials == 1


def test_memory_round_speed_stabilizer(benchmark):
    code = RotatedSurfaceCode(5)
    result = benchmark.pedantic(
        lambda: memory_experiment(
            code, error_rate=0.02, rounds=1, trials=1, seed=1,
            backend="stabilizer",
        ),
        iterations=1,
        rounds=3,
    )
    assert result.trials == 1
