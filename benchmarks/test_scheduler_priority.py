"""Ablation — list-scheduling priority under control constraints.

Under tight electronics constraints the order in which ready gates claim
shared resources matters: critical-path priority (longest
duration-weighted tail first) consistently shortens the schedule versus
plain program order.
"""

import pytest

from repro.decompose import decompose_circuit
from repro.devices import surface17
from repro.mapping.control import schedule_with_constraints
from repro.mapping.routing import route
from repro.workloads import qft, random_circuit


def _native_suite(device):
    circuits = [qft(5)] + [
        random_circuit(6, 25, seed=s, two_qubit_fraction=0.5) for s in range(5)
    ]
    return [
        (c.name, decompose_circuit(route(c, device, "sabre").circuit, device))
        for c in circuits
    ]


def test_priority_report(record_report):
    device = surface17()
    lines = [
        "scheduler priority ablation on Surface-17 (latency in cycles,",
        "full control constraints):",
        "",
        f"{'workload':<14} {'program order':>14} {'critical path':>14}",
    ]
    totals = {"order": 0, "critical": 0}
    for name, native in _native_suite(device):
        ordered = schedule_with_constraints(native, device).latency
        critical = schedule_with_constraints(
            native, device, priority="critical"
        ).latency
        totals["order"] += ordered
        totals["critical"] += critical
        lines.append(f"{name:<14} {ordered:>14} {critical:>14}")
    assert totals["critical"] <= totals["order"]
    saving = 1 - totals["critical"] / max(totals["order"], 1)
    lines += [
        "",
        f"total latency: order {totals['order']}, critical "
        f"{totals['critical']} ({saving:.0%} lower)",
    ]
    record_report("scheduler_priority", "\n".join(lines))


@pytest.mark.parametrize("priority", ["order", "critical"])
def test_priority_speed(benchmark, priority):
    device = surface17()
    circuit = random_circuit(6, 30, seed=9, two_qubit_fraction=0.5)
    native = decompose_circuit(route(circuit, device, "sabre").circuit, device)
    schedule = benchmark(
        lambda: schedule_with_constraints(native, device, priority=priority)
    )
    assert schedule.validate() == []
