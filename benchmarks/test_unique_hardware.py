"""Experiment sec6c — unique hardware features (paper Section VI-C).

Three technologies, three trade-offs:

* trapped ions: all-to-all connectivity removes routing entirely, "at
  the price of reduced two-qubit gate parallelism" (one MS gate at a
  time on the vibrational bus);
* superconducting lattices: parallel two-qubit gates but SWAP routing;
* photonics: demolition measurement requires generating new photons to
  reuse a measured qubit.
"""

import pytest

from repro.core import Circuit
from repro.core.pipeline import compile_circuit
from repro.devices import ion_trap_device, photonic_device, surface17
from repro.mapping import insert_photon_reinit
from repro.workloads import ghz, qft, random_circuit


def _suite(n):
    return [qft(n), random_circuit(n, 20, seed=3, two_qubit_fraction=0.6)]


def test_unique_hardware_report(record_report):
    ion = ion_trap_device(5)
    surface = surface17()
    lines = [
        "Sec. VI-C: trapped ions vs superconducting lattice",
        "(2q-depth = two-qubit layers after mapping; latency in device cycles)",
        "",
        f"{'workload':<12} {'device':<12} {'swaps':>6} {'2q-depth':>9} "
        f"{'latency':>8}",
    ]
    for circuit in _suite(5):
        ion_result = compile_circuit(circuit, ion, schedule="constraints")
        surface_result = compile_circuit(
            circuit, surface, placer="greedy", schedule="constraints"
        )
        # All-to-all removes routing; the lattice pays SWAPs.
        assert ion_result.added_swaps == 0
        assert surface_result.added_swaps >= 0
        for result, device in ((ion_result, ion), (surface_result, surface)):
            lines.append(
                f"{circuit.name:<12} {device.name:<12} "
                f"{result.added_swaps:>6} "
                f"{result.native.depth(count_single_qubit=False):>9} "
                f"{result.latency:>8}"
            )

        # Serialisation claim: ion latency with the bus constraint is
        # at least the serial sum of its two-qubit gates.
        twoq = ion_result.native.num_two_qubit_gates()
        assert ion_result.latency >= twoq * ion.duration("rxx")

    photonic = photonic_device(4)
    mid_measure = Circuit(4).h(0).cnot(0, 1).measure(0).h(0).cnot(0, 1)
    violations = len(photonic.validate_circuit(mid_measure))
    repaired = insert_photon_reinit(mid_measure, photonic)
    assert violations > 0 and photonic.conforms(repaired)
    lines += [
        "",
        "photonics (demolition measurement):",
        f"  mid-circuit reuse without re-init: {violations} violation(s)",
        f"  after insert_photon_reinit: 0 violations "
        f"(+{repaired.count('prep_z')} new photon)",
    ]
    record_report("unique_hardware", "\n".join(lines))


def test_ion_compile_speed(benchmark):
    device = ion_trap_device(5)
    circuit = qft(5)
    result = benchmark(
        lambda: compile_circuit(circuit, device, schedule="constraints")
    )
    assert result.added_swaps == 0
