"""Experiment fig5 — Qmap maps the example circuit onto Surface-17 (Fig. 5).

Paper: "using Qmap to map it into the Surface-17 processor ... only one
SWAP is added to comply to the coupling restrictions."  The benchmark
asserts the single-SWAP result, verifies semantics, and records the
routed circuit (the pre-decomposition view the figure shows).
"""

from repro.devices import surface17
from repro.mapping import qmap
from repro.verify import equivalent_mapped
from repro.viz import draw_circuit
from repro.workloads import fig1_circuit


def test_fig5_report(record_report):
    device = surface17()
    circuit = fig1_circuit()
    result = qmap(circuit, device)

    assert result.added_swaps == 1  # the paper's headline number
    assert device.conforms(result.native)
    assert equivalent_mapped(
        circuit, result.native, result.routed.initial, result.routed.final
    )

    used = sorted(
        result.routed.initial.phys(q) for q in range(circuit.num_qubits)
    )
    report = "\n".join(
        [
            "Fig. 5 - Qmap result on Surface-17 (connectivity constraint):",
            f"added SWAPs: {result.added_swaps}   (paper: 1)",
            f"initial placement: {result.routed.initial}",
            f"final placement:   {result.routed.final}",
            f"physical qubits used: {used}",
            "",
            "routed circuit (before native decomposition, physical qubits):",
            draw_circuit(result.routed.circuit, qubit_prefix="Q"),
        ]
    )
    record_report("fig5_qmap", report)


def test_fig5_qmap_speed(benchmark):
    device = surface17()
    circuit = fig1_circuit()
    result = benchmark(lambda: qmap(circuit, device, placer="assignment"))
    assert result.added_swaps <= 2


def test_fig5_routed_placer_speed(benchmark):
    """The optimal-placement block is the expensive part; track it."""
    device = surface17()
    circuit = fig1_circuit()
    result = benchmark(lambda: qmap(circuit, device))
    assert result.added_swaps == 1
