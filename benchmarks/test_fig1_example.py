"""Experiment fig1 — the paper's running example circuit (Fig. 1).

Regenerates Fig. 1(a) (the full circuit diagram) and Fig. 1(b) (the
CNOT-only skeleton), and pins the structural facts the later figures
rely on.
"""

from repro.viz import draw_circuit
from repro.workloads import fig1_circuit, fig1_cnot_skeleton


def test_fig1_report(record_report):
    circuit = fig1_circuit()
    skeleton = fig1_cnot_skeleton()
    assert circuit.num_qubits == 4
    assert circuit.count("cnot") == 5
    assert skeleton.size() == 5
    first = next(g for g in circuit if g.name == "cnot")
    assert first.qubits == (2, 3)  # paper labels: control q3, target q4

    report = "\n".join(
        [
            "Fig. 1(a) - example quantum circuit (q0..q3 = paper's q1..q4):",
            draw_circuit(circuit),
            "",
            "Fig. 1(b) - single-qubit gates removed:",
            draw_circuit(skeleton),
            "",
            f"gates: {circuit.size()}  depth: {circuit.depth()}  "
            f"CNOTs: {circuit.count('cnot')}",
        ]
    )
    record_report("fig1_example", report)


def test_fig1_construction_speed(benchmark):
    result = benchmark(fig1_circuit)
    assert result.size() > 0


def test_fig1_analysis_speed(benchmark):
    circuit = fig1_circuit()

    def analyse():
        return circuit.depth(), circuit.moments(), circuit.interaction_pairs()

    depth, moments, pairs = benchmark(analyse)
    assert depth == len(moments)
    assert len(pairs) == 4
