"""Ablation — the look-ahead feature (Section III-B "solution features").

"... the look-ahead feature that considers not only the current
two-qubit gates that need to be routed and scheduled but also some of
the future ones with some weights."  The benchmark sweeps the SABRE
extended-set size and the A* look-ahead depth, showing look-ahead
reduces SWAP counts on routing-hostile workloads.
"""

import pytest

from repro.devices import grid_device, ibm_qx5
from repro.mapping.routing import route_astar, route_sabre
from repro.workloads import qft, random_circuit

WINDOWS = [0, 5, 20, 50]


def _suite():
    return [
        qft(8),
        random_circuit(12, 60, seed=1, two_qubit_fraction=0.7),
        random_circuit(12, 60, seed=2, two_qubit_fraction=0.7),
        random_circuit(12, 60, seed=3, two_qubit_fraction=0.7),
    ]


def test_lookahead_report(record_report):
    device = ibm_qx5()
    lines = [
        "SABRE look-ahead window ablation on ibm_qx5 (added SWAPs):",
        "",
        f"{'workload':<16}" + "".join(f"{w:>8}" for w in WINDOWS),
    ]
    totals = {w: 0 for w in WINDOWS}
    for circuit in _suite():
        row = [f"{circuit.name:<16}"]
        for window in WINDOWS:
            result = route_sabre(circuit, device, lookahead=window)
            totals[window] += result.added_swaps
            row.append(f"{result.added_swaps:>8}")
        lines.append("".join(row))
    lines += ["", f"{'TOTAL':<16}" + "".join(f"{totals[w]:>8}" for w in WINDOWS)]

    # Shape: some look-ahead beats none in aggregate.
    assert min(totals[w] for w in WINDOWS if w > 0) <= totals[0]

    astar_lines = ["", "A* layer look-ahead on grid 3x4 (added SWAPs):", ""]
    grid = grid_device(3, 4)
    for depth in (0, 1, 2):
        total = sum(
            route_astar(c, grid, lookahead_layers=depth).added_swaps
            for c in _suite()[1:]
        )
        astar_lines.append(f"  lookahead_layers={depth}: {total}")
    record_report("ablation_lookahead", "\n".join(lines + astar_lines))


@pytest.mark.parametrize("window", WINDOWS)
def test_lookahead_speed(benchmark, window):
    device = ibm_qx5()
    circuit = random_circuit(12, 60, seed=1, two_qubit_fraction=0.7)
    result = benchmark(lambda: route_sabre(circuit, device, lookahead=window))
    assert result.added_swaps > 0
