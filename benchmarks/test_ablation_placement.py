"""Ablation — initial placement strategies (Section III-A task 2).

"The task of initializing the qubit placement is expected to play an
important role in near term devices."  The benchmark routes a workload
suite on Surface-17 from each placement strategy and reports the SWAP
counts; better placements should need fewer SWAPs.
"""

import pytest

from repro.devices import surface17
from repro.mapping.placement import PLACERS
from repro.mapping.routing import route
from repro.workloads import fig1_circuit, ghz, qft, random_circuit

STRATEGIES = [
    "trivial", "random", "spectral", "greedy", "assignment", "annealing",
    "routed",
]


def _suite():
    return [
        fig1_circuit(),
        ghz(6),
        qft(5),
        random_circuit(6, 24, seed=8, two_qubit_fraction=0.6),
        random_circuit(8, 30, seed=9, two_qubit_fraction=0.6),
    ]


def test_placement_ablation_report(record_report):
    device = surface17()
    lines = [
        "initial-placement ablation on Surface-17 (added SWAPs, sabre router):",
        "",
        f"{'workload':<16}" + "".join(f"{s:>12}" for s in STRATEGIES),
    ]
    totals = {s: 0 for s in STRATEGIES}
    for circuit in _suite():
        row = [f"{circuit.name:<16}"]
        for strategy in STRATEGIES:
            placement = PLACERS[strategy](circuit, device)
            result = route(circuit, device, "sabre", placement)
            totals[strategy] += result.added_swaps
            row.append(f"{result.added_swaps:>12}")
        lines.append("".join(row))
    lines += [
        "",
        f"{'TOTAL':<16}" + "".join(f"{totals[s]:>12}" for s in STRATEGIES),
    ]

    # Shape claims: informed placement beats trivial/random in aggregate;
    # the routed refinement is the best of all.
    assert totals["greedy"] <= totals["trivial"]
    assert totals["assignment"] <= totals["random"]
    assert totals["routed"] == min(totals.values())

    record_report("ablation_placement", "\n".join(lines))


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_placer_speed(benchmark, strategy):
    device = surface17()
    circuit = random_circuit(6, 24, seed=8, two_qubit_fraction=0.6)
    placement = benchmark(lambda: PLACERS[strategy](circuit, device))
    assert placement.num_program == 6
