"""Shared helpers for the figure-reproduction benchmarks.

Each benchmark module regenerates the quantitative content of one paper
figure (or one ablation from DESIGN.md): it asserts the *shape* of the
paper's claim and records a human-readable report under
``benchmarks/results/`` so EXPERIMENTS.md can cite the measured numbers.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_report():
    """Write a named experiment report to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text if text.endswith("\n") else text + "\n")
        print(f"\n--- {name} ---\n{text}")
        return path

    return _record
