"""Experiment sec5-qec — the surface-code cycle on a Surface-17-class chip.

Section V: the Surface-17 "has been built with the goal of demonstrating
fault-tolerant computation ... based on surface code".  This benchmark
runs that workload end to end: the distance-3 stabilizer-measurement
cycle is lowered to the chip's native gates, scheduled under the full
control-electronics constraints, and the error-correction loop (inject,
extract syndrome, decode, correct) is verified on the simulator.
"""

import pytest

from repro.decompose import decompose_circuit
from repro.mapping.control import schedule_with_constraints
from repro.mapping.scheduler import asap_schedule
from repro.pulse import lower_to_pulses
from repro.qec import LookupDecoder, RotatedSurfaceCode, SyndromeExtractor, stabilizer_cycle


def test_qec_cycle_report(record_report):
    code = RotatedSurfaceCode(3)
    device = code.device()
    native = decompose_circuit(stabilizer_cycle(code), device)
    assert device.conforms(native)

    free = asap_schedule(native, device)
    constrained = schedule_with_constraints(native, device, priority="critical")
    assert constrained.validate() == []
    assert constrained.latency >= free.latency
    pulses = lower_to_pulses(constrained, device)
    assert pulses.validate() == []

    # The error-correction loop on every single-qubit X error.
    decoder = LookupDecoder(code)
    recovered = 0
    for data_qubit in range(code.num_data):
        extractor = SyndromeExtractor(code, seed=100 + data_qubit)
        extractor.establish_reference()
        extractor.inject("x", data_qubit)
        correction = decoder.decode(extractor.syndrome())
        extractor.apply_correction("x", correction["X"])
        extractor.syndrome()  # settle the change-based frame
        quiet = extractor.syndrome() == {"X": frozenset(), "Z": frozenset()}
        logical_ok = abs(extractor.logical_z_expectation() - 1.0) < 1e-9
        if quiet and logical_ok:
            recovered += 1
    assert recovered == code.num_data

    report = "\n".join(
        [
            "distance-3 rotated surface code on its 17-qubit chip:",
            f"  stabilizers: {len(code.stabilizers)} "
            f"(4 X + 4 Z; weights 4x w2, 4x w4)",
            f"  cycle circuit: {native.size()} native gates after lowering",
            f"  latency (dependencies only):      {free.latency} cycles",
            f"  latency (full control constraints): {constrained.latency} "
            f"cycles ({constrained.latency * 20} ns at 20 ns/cycle)",
            f"  control channels used: {len(pulses.channels())} "
            "(3 AWGs, flux lines, 3 feedlines)",
            "",
            f"error-correction loop: {recovered}/{code.num_data} single-X "
            "errors decoded and logically recovered",
        ]
    )
    record_report("qec_cycle", report)


def test_qec_cycle_schedule_speed(benchmark):
    code = RotatedSurfaceCode(3)
    device = code.device()
    native = decompose_circuit(stabilizer_cycle(code), device)
    schedule = benchmark(
        lambda: schedule_with_constraints(native, device, priority="critical")
    )
    assert schedule.validate() == []


def test_qec_syndrome_extraction_speed(benchmark):
    code = RotatedSurfaceCode(3)

    def one_round():
        extractor = SyndromeExtractor(code, seed=1)
        extractor.establish_reference()
        return extractor.syndrome()

    syndrome = benchmark(one_round)
    assert syndrome == {"X": frozenset(), "Z": frozenset()}
