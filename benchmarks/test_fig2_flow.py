"""Experiment fig2 — the compilation flow sketch (Fig. 2).

QASM text + machine description in; scheduled cQASM bundles out, with
the initial placement possibly differing from the final placement.  The
paper draws this flow for three program qubits on the Surface-7 chip.
"""

from repro.core.pipeline import compile_circuit
from repro.devices import surface7
from repro.qasm import parse_qasm, schedule_to_cqasm, to_openqasm
from repro.verify import equivalent_mapped
from repro.workloads import fig2_circuit, random_circuit


def _compile_flow(device):
    circuit = parse_qasm(to_openqasm(fig2_circuit()))
    return circuit, compile_circuit(
        circuit, device, placer="assignment", router="latency",
        schedule="constraints",
    )


def test_fig2_report(record_report):
    device = surface7()
    circuit, result = _compile_flow(device)
    assert device.conforms(result.native)
    assert equivalent_mapped(
        circuit, result.native, result.routed.initial, result.routed.final
    )
    cqasm = schedule_to_cqasm(result.schedule)
    assert cqasm.startswith("version 1.0")

    # Placement change (Fig. 2 caption) demonstrated on a denser workload
    # that needs SWAPs on Surface-7.
    moved_example = None
    for seed in range(10):
        dense = random_circuit(5, 12, seed=seed, two_qubit_fraction=0.8)
        dense_result = compile_circuit(dense, device, placer="greedy")
        if dense_result.added_swaps and (
            dense_result.routed.initial != dense_result.routed.final
        ):
            moved_example = dense_result
            break
    assert moved_example is not None

    from repro.pulse import lower_to_pulses

    pulses = lower_to_pulses(result.schedule, device)
    assert pulses.validate() == []

    report = "\n".join(
        [
            "Fig. 2 - compiler flow on Surface-7:",
            "",
            "input (OpenQASM):",
            to_openqasm(fig2_circuit()).strip(),
            "",
            "output (scheduled cQASM bundles):",
            cqasm.strip(),
            "",
            "output (control-signal channels, Fig. 2 bottom panel):",
            pulses.timeline(),
            "",
            f"latency: {result.latency} cycles "
            f"({result.latency_ns:.0f} ns at 20 ns/cycle)",
            f"initial placement: {result.routed.initial}",
            f"final placement:   {result.routed.final}",
            "",
            "placement change under routing (caption claim), dense workload:",
            f"  workload {moved_example.original.name}: "
            f"{moved_example.added_swaps} SWAPs,",
            f"  initial {moved_example.routed.initial}",
            f"  final   {moved_example.routed.final}",
        ]
    )
    record_report("fig2_flow", report)


def test_fig2_compile_speed(benchmark):
    device = surface7()
    circuit = fig2_circuit()

    result = benchmark(
        lambda: compile_circuit(
            circuit, device, placer="assignment", router="latency",
            schedule="constraints",
        )
    )
    assert device.conforms(result.native)
