"""Validation — analytic reliability estimate vs Monte-Carlo sampling.

The analytic model (product of per-gate fidelities) underlies the
reliability cost function benchmarks; here it is validated against the
stochastic Pauli-injection simulator: the analytic product must lower
bound the sampled average fidelity and stay within the one-error budget
of it.
"""

import math

import pytest

from repro.core.pipeline import compile_circuit
from repro.devices import ibm_qx4
from repro.sim.monte_carlo import average_fidelity
from repro.sim.noise import NoiseModel
from repro.workloads import ghz, random_circuit


def _analytic_gate_product(circuit, noise):
    product = 1.0
    for gate in circuit.gates:
        product *= noise.gate_success(gate)
    return product


def test_noise_validation_report(record_report):
    device = ibm_qx4()
    noise = NoiseModel(error_1q=0.003, error_2q=0.02, t2_ns=float("inf"))
    lines = [
        "analytic vs Monte-Carlo success estimates (mapped circuits, QX4):",
        "",
        f"{'workload':<14} {'gates':>6} {'analytic':>9} {'sampled':>9}",
    ]
    for circuit in (ghz(4), random_circuit(4, 12, seed=1),
                    random_circuit(5, 15, seed=2)):
        native = compile_circuit(
            circuit, device, placer="greedy", schedule=None
        ).native
        analytic = _analytic_gate_product(native, noise)
        sampled = average_fidelity(native, noise, trials=400, seed=7)
        # Analytic product lower-bounds the sampled mean fidelity; the
        # slack is at most the total error budget (invisible Paulis).
        budget = sum(noise.gate_error(g) for g in native.gates)
        assert analytic - 0.03 <= sampled <= analytic + budget + 0.03
        lines.append(
            f"{circuit.name:<14} {native.size():>6} {analytic:>9.4f} "
            f"{sampled:>9.4f}"
        )
    lines += [
        "",
        "analytic product is a (tight) lower bound on the sampled mean "
        "fidelity, as expected",
    ]
    record_report("noise_validation", "\n".join(lines))


def test_monte_carlo_speed(benchmark):
    device = ibm_qx4()
    noise = NoiseModel()
    native = compile_circuit(ghz(4), device, schedule=None).native
    fidelity = benchmark(
        lambda: average_fidelity(native, noise, trials=50, seed=1)
    )
    assert 0.0 <= fidelity <= 1.0
