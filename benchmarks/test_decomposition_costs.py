"""Experiment sec4-decomp — gate decomposition costs per native basis.

Sections IV and V describe three native bases (IBM's U+CNOT, Surface's
X/Y rotations + CZ, and — Sec. VI-C — the trapped-ion rotations + RXX).
"All other gates ... have to be decomposed into those native gates";
this benchmark tabulates what each common gate costs in each basis and
verifies every expansion by unitary equivalence.
"""

import pytest

from repro.core import Circuit
from repro.core.gates import Gate
from repro.decompose import decompose_circuit
from repro.devices import ibm_qx4, ion_trap_device, surface17
from repro.verify import equivalent_circuits

GATES = [
    ("h", 1, ()),
    ("t", 1, ()),
    ("x", 1, ()),
    ("rz", 1, (0.7,)),
    ("cnot", 2, ()),
    ("cz", 2, ()),
    ("swap", 2, ()),
    ("cp", 2, (0.5,)),
    ("toffoli", 3, ()),
    ("fredkin", 3, ()),
]


def test_decomposition_cost_report(record_report):
    devices = [ibm_qx4(), surface17(), ion_trap_device(3)]
    lines = [
        "native-gate decomposition costs (gate count after lowering;",
        "every expansion unitary-verified):",
        "",
        f"{'gate':<10}" + "".join(f"{d.name:>18}" for d in devices),
    ]
    for name, arity, params in GATES:
        circuit = Circuit(arity, [Gate(name, tuple(range(arity)), params)])
        row = [f"{name:<10}"]
        for device in devices:
            lowered = decompose_circuit(circuit, device)
            assert all(device.is_native(g) for g in lowered.gates), (
                name, device.name,
            )
            assert equivalent_circuits(circuit, lowered), (name, device.name)
            native_already = device.is_native(circuit.gates[0])
            cost = f"{lowered.size():>17}" + ("*" if native_already else " ")
            row.append(cost)
        lines.append("".join(row))
    lines += [
        "",
        "(* = already native on that device)",
        "Fig. 6 anchors: CNOT costs 3 on Surface-17 (Ry-CZ-Ry); SWAP costs",
        "9 (three such CNOTs); the paper's universal set is free on the",
        "generic devices and lowered exactly everywhere else.",
    ]
    # Fig. 6 quantitative anchors.
    surface = surface17()
    cnot = decompose_circuit(Circuit(2).cnot(0, 1), surface)
    swap = decompose_circuit(Circuit(2).swap(0, 1), surface)
    assert cnot.size() == 3
    assert swap.size() == 9
    record_report("decomposition_costs", "\n".join(lines))


@pytest.mark.parametrize("device_factory", [ibm_qx4, surface17])
def test_toffoli_lowering_speed(benchmark, device_factory):
    device = device_factory()
    circuit = Circuit(3).toffoli(0, 1, 2)
    lowered = benchmark(lambda: decompose_circuit(circuit, device))
    assert all(device.is_native(g) for g in lowered.gates)
