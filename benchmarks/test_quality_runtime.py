"""Experiment sec7-q3 — compilation quality vs compilation time.

One of the paper's closing open questions: "what is the good balance
between the obtained solution and the time required to compile the
circuit?  It is necessary to analyze the trade-off between mapping
optimizations and runtime."  The benchmark charts that Pareto front:
each router's aggregate SWAP count against its aggregate compile time
on a fixed instance set where the exact mapper is still feasible.
"""

import time

import pytest

from repro.devices import linear_device
from repro.mapping.routing import route
from repro.workloads import random_circuit

ROUTERS = ["naive", "sabre", "astar", "exact"]


def _instances():
    return [
        random_circuit(5, 10, seed=s, two_qubit_fraction=0.8) for s in range(6)
    ]


def test_quality_runtime_report(record_report):
    device = linear_device(5)
    rows = {}
    for router in ROUTERS:
        swaps = 0
        start = time.perf_counter()
        for circuit in _instances():
            swaps += route(circuit, device, router).added_swaps
        elapsed = time.perf_counter() - start
        rows[router] = (swaps, elapsed)

    # The Pareto shape the paper discusses: exact is the best solution
    # and the slowest; naive is fast but worst; heuristics sit between.
    assert rows["exact"][0] <= min(r[0] for r in rows.values())
    assert rows["exact"][1] >= rows["sabre"][1]
    assert rows["naive"][0] >= max(
        rows["sabre"][0], rows["astar"][0], rows["exact"][0]
    )

    lines = [
        "quality vs compile-time trade-off (Sec. VII open question 3):",
        "6 random 5-qubit circuits on a 5-qubit line",
        "",
        f"{'router':<8} {'total swaps':>12} {'compile time':>14}",
    ]
    for router in ROUTERS:
        swaps, elapsed = rows[router]
        lines.append(f"{router:<8} {swaps:>12} {elapsed:>13.3f}s")
    ratio = rows["exact"][1] / max(rows["sabre"][1], 1e-9)
    lines += [
        "",
        f"the exact mapper pays ~{ratio:.0f}x the heuristic's runtime for "
        f"{rows['sabre'][0] - rows['exact'][0]} fewer SWAPs on this set",
    ]
    record_report("quality_runtime", "\n".join(lines))


@pytest.mark.parametrize("router", ROUTERS)
def test_single_instance_speed(benchmark, router):
    device = linear_device(5)
    circuit = random_circuit(5, 10, seed=0, two_qubit_fraction=0.8)
    result = benchmark(lambda: route(circuit, device, router))
    assert result.added_swaps >= 0
