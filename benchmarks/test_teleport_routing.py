"""Experiment fn4-teleport — teleportation routing (Sec. III-A footnote 4).

"The teleportation approach can be seen as a SWAP-based routing with
relaxed time constraints": EPR distribution touches only free qubits and
overlaps with earlier computation, so for long-range interactions after
a busy prologue the teleporting circuit finishes earlier than the
SWAP-chain one even though it uses more operations.
"""

import pytest

from repro.core import Circuit
from repro.devices import linear_device
from repro.mapping.placement import Placement
from repro.mapping.routing import route_naive, route_teleport
from repro.mapping.scheduler import asap_schedule
from repro.verify import equivalent_mapped_with_feedforward


def _workload(length, prologue):
    device = linear_device(length)
    circuit = Circuit(2)
    for _ in range(prologue):
        circuit.t(0).t(1)
    circuit.cnot(0, 1)
    placement = Placement.from_partial({0: 0, 1: length - 1}, 2, length)
    return device, circuit, placement


def test_teleport_report(record_report):
    lines = [
        "teleportation vs SWAP-chain routing (line devices, far end pair)",
        "",
        f"{'line':>5} {'prologue':>9} {'swap latency':>13} "
        f"{'teleport latency':>17} {'teleports':>10}",
    ]
    wins = 0
    cases = [(8, 8), (8, 16), (10, 16), (12, 24)]
    for length, prologue in cases:
        device, circuit, placement = _workload(length, prologue)
        swap_latency = asap_schedule(
            route_naive(circuit, device, placement).circuit, device
        ).latency
        result = route_teleport(circuit, device, placement)
        teleport_latency = asap_schedule(result.circuit, device).latency
        assert equivalent_mapped_with_feedforward(
            circuit, result.circuit, result.initial, result.final
        )
        if teleport_latency < swap_latency:
            wins += 1
        lines.append(
            f"{length:>5} {prologue:>9} {swap_latency:>13} "
            f"{teleport_latency:>17} {result.metadata['teleports']:>10}"
        )
    assert wins >= 3  # relaxed time constraints pay off on busy prologues
    lines += [
        "",
        f"teleport wins on latency in {wins}/{len(cases)} cases "
        "(EPR distribution overlaps the prologue)",
    ]
    record_report("teleport_routing", "\n".join(lines))


def test_teleport_router_speed(benchmark):
    device, circuit, placement = _workload(10, 16)
    result = benchmark(lambda: route_teleport(circuit, device, placement))
    assert result.metadata["teleports"] >= 1
