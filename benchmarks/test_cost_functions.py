"""Experiment sec3-cost — the three cost functions of Section III-B.

"The most common cost functions are the number of gates (i.e. minimize
the number of added SWAPs) and the circuit depth or latency ...  Recent
works started optimising directly for circuit reliability."  One
workload suite, three router configurations, three metrics — showing
each router wins on (or ties) its own objective.
"""

import statistics

import pytest

from repro.core.pipeline import compile_circuit
from repro.devices import ibm_qx5
from repro.mapping.placement import noise_aware_placement
from repro.metrics import format_table, mapping_overhead
from repro.sim.noise import NoiseModel
from repro.workloads import ghz, qft, random_circuit


def _suite():
    return [
        ghz(8),
        qft(6),
        random_circuit(8, 30, seed=3, two_qubit_fraction=0.6),
        random_circuit(10, 40, seed=4, two_qubit_fraction=0.5),
    ]


def test_cost_function_report(record_report):
    device = ibm_qx5()
    noise = NoiseModel.with_random_edge_errors(
        device, base_2q=0.02, spread=6.0, seed=11, t2_ns=float("inf")
    )
    sections = []
    gains = []
    latency_wins = 0
    for circuit in _suite():
        gate_count = compile_circuit(
            circuit, device, placer="greedy", router="sabre"
        )
        latency = compile_circuit(
            circuit, device, placer="greedy", router="latency"
        )
        reliability = compile_circuit(
            circuit,
            device,
            placer=lambda c, d: noise_aware_placement(c, d, noise),
            router="reliability",
            router_options={"noise": noise},
        )
        rows = [
            mapping_overhead(gate_count, label="gate-count (sabre)", noise=noise),
            mapping_overhead(latency, label="latency (qmap)", noise=noise),
            mapping_overhead(reliability, label="reliability-aware", noise=noise),
        ]
        sections.append(format_table(rows, title=f"workload: {circuit.name}"))
        gains.append(
            rows[2].success_probability / max(rows[0].success_probability, 1e-12)
        )
        if rows[1].latency_cycles <= rows[0].latency_cycles:
            latency_wins += 1

    geo = statistics.geometric_mean(gains)
    # Shape claims: reliability-aware routing wins on estimated success
    # on average; the latency router does not lose on latency on most
    # workloads.
    assert geo > 1.0
    assert latency_wins >= len(_suite()) // 2

    sections.append(
        f"reliability-aware geometric-mean success gain: {geo:.2f}x"
    )
    sections.append(
        f"latency router ties/wins on latency: {latency_wins}/{len(_suite())}"
    )
    record_report("cost_functions", "\n\n".join(sections))


def test_reliability_router_speed(benchmark):
    device = ibm_qx5()
    noise = NoiseModel.with_random_edge_errors(device, seed=1)
    circuit = random_circuit(8, 30, seed=3, two_qubit_fraction=0.6)
    result = benchmark(
        lambda: compile_circuit(
            circuit, device, placer="greedy", router="reliability",
            router_options={"noise": noise}, schedule=None,
        )
    )
    assert device.conforms(result.native)
