"""Grand comparison — the paper-style evaluation sweep.

Every mapping paper the overview surveys reports a matrix of
benchmark circuits x devices x mappers.  This harness runs the full
algorithm suite through four routers on four devices, verifies every
output, and aggregates the three Section III-B cost metrics.
"""

import pytest

from repro.core.pipeline import compile_circuit
from repro.devices import get_device
from repro.verify import equivalent_mapped
from repro.workloads import (
    bernstein_vazirani,
    ghz,
    hidden_shift,
    phase_estimation,
    qft,
    random_circuit,
    w_state,
)

ROUTERS = ["naive", "sabre", "astar", "latency"]
DEVICES = [
    ("ibm_qx5", {}),
    ("surface17", {}),
    ("grid", {"rows": 3, "cols": 3}),
    ("linear", {"num_qubits": 9}),
]


def _workloads():
    return [
        ghz(6),
        w_state(5),
        qft(5),
        bernstein_vazirani("10110"),
        phase_estimation(3, 0.625),
        hidden_shift("101001"),
        random_circuit(7, 28, seed=5, two_qubit_fraction=0.6),
    ]


def test_grand_comparison_report(record_report):
    sections = []
    totals = {router: {"swaps": 0, "gates": 0, "cycles": 0} for router in ROUTERS}
    for device_name, params in DEVICES:
        device = get_device(device_name, **params)
        lines = [
            f"target: {device.name}",
            f"{'workload':<14}"
            + "".join(f"{router:>18}" for router in ROUTERS)
            + "   (swaps/gates/cycles)",
        ]
        for circuit in _workloads():
            row = [f"{circuit.name:<14}"]
            for router in ROUTERS:
                result = compile_circuit(
                    circuit, device, placer="greedy", router=router
                )
                assert device.conforms(result.native)
                if all(g.is_unitary or g.is_barrier for g in result.native.gates):
                    assert equivalent_mapped(
                        circuit, result.native,
                        result.routed.initial, result.routed.final,
                    )
                totals[router]["swaps"] += result.added_swaps
                totals[router]["gates"] += result.native.size()
                totals[router]["cycles"] += result.latency
                row.append(
                    f"{result.added_swaps:>6}/{result.native.size():>5}"
                    f"/{result.latency:>4}"
                )
            lines.append("".join(row))
        sections.append("\n".join(lines))

    summary = [
        "aggregate over all devices and workloads:",
        f"{'router':<10} {'swaps':>7} {'gates':>8} {'cycles':>8}",
    ]
    for router in ROUTERS:
        t = totals[router]
        summary.append(
            f"{router:<10} {t['swaps']:>7} {t['gates']:>8} {t['cycles']:>8}"
        )
    # Shape claims: every heuristic beats the naive baseline on SWAPs,
    # and the latency router is no worse than naive on cycles.
    for router in ("sabre", "astar", "latency"):
        assert totals[router]["swaps"] <= totals["naive"]["swaps"]
    assert totals["latency"]["cycles"] <= totals["naive"]["cycles"]

    sections.append("\n".join(summary))
    record_report("grand_comparison", "\n\n".join(sections))


@pytest.mark.parametrize("router", ROUTERS)
def test_suite_compile_speed(benchmark, router):
    device = get_device("ibm_qx5")
    suite = _workloads()

    def compile_all():
        return [
            compile_circuit(c, device, placer="greedy", router=router)
            for c in suite
        ]

    results = benchmark(compile_all)
    assert len(results) == len(suite)
