"""Experiment fig4 — the Surface-17 device model (Fig. 4).

Regenerates the topology/constraint description of the chip and pins
the interaction and feedline facts stated in Section V.
"""

import networkx as nx

from repro.devices import Device, surface17
from repro.viz import draw_device


def test_fig4_report(record_report):
    device = surface17()
    assert device.num_qubits == 17
    assert device.connected(1, 5)
    assert not device.connected(1, 7)
    feedline = device.constraints.feedline
    group0 = {q for q, f in feedline.items() if f == feedline[0]}
    assert group0 == {0, 2, 3, 6, 9, 12}
    assert nx.is_bipartite(device.undirected)

    report = "\n".join(
        [
            "Fig. 4 - Surface-17 device model:",
            draw_device(device),
            "",
            f"connections: {len(device.undirected_edges())}",
            "paper facts: qubits 1-5 coupled: "
            f"{device.connected(1, 5)}; 1-7 coupled: {device.connected(1, 7)}",
            f"feedline containing qubit 0: {sorted(group0)} "
            "(paper: {0, 2, 3, 6, 9, 12})",
            "every coupled pair crosses frequency groups: "
            + str(
                all(
                    device.constraints.frequency_group[a]
                    != device.constraints.frequency_group[b]
                    for a, b in device.undirected_edges()
                )
            ),
        ]
    )
    record_report("fig4_surface17", report)


def test_fig4_device_build_speed(benchmark):
    device = benchmark(surface17)
    assert device.num_qubits == 17


def test_fig4_config_roundtrip_speed(benchmark):
    device = surface17()

    def roundtrip():
        return Device.from_json(device.to_json())

    restored = benchmark(roundtrip)
    assert restored.edges == device.edges
