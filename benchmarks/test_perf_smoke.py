"""Perf-regression smoke test — runs under tier-1 pytest.

Two guarantees on every test run:

1. **Equivalence**: the optimised routers still produce byte-identical
   outputs (swap counts + circuit fingerprints) to the seed
   implementations on the whole fixed-seed corpus of
   :mod:`repro.perf.bench`.
2. **Budgets**: wall-clock stays within generous limits, so a future
   change that quietly re-introduces a full-rescore hot path fails CI
   instead of landing.  The headline case — A* on the 120-gate / 12
   program-qubit QX5 circuit — took 3.8–5.3 s in the seed; the budget
   here is far above the optimised time (~0.15 s with the native kernel)
   but far below the seed, keeping the 10x-plus win locked in.

The budgets are relaxed when the compiled A* kernel is unavailable (no C
compiler on the host): the pure-Python kernel is ~2.5 s on the headline
case, still ~2x the seed, and equivalence is enforced identically.

Full timing details are produced by ``python -m repro.cli bench --json
BENCH_routers.json``; this module reuses the same corpus and runner.
"""

import pytest

from repro.mapping.routing import _astar_native, route_astar
from repro.perf import run_bench
from repro.workloads import random_circuit
from repro.devices import linear_device


def _native_kernel_available() -> bool:
    return _astar_native._get_lib() is not None


@pytest.fixture(scope="module")
def bench_report():
    # Trigger the one-time native-kernel compile outside the timed runs
    # (it is cached on disk, so this is usually instantaneous).
    route_astar(random_circuit(3, 4, seed=0), linear_device(3))
    return run_bench()


def test_outputs_byte_identical_to_seed(bench_report):
    diffs = [
        case["case"]
        for case in bench_report["cases"]
        if not case["matches_seed"]
    ]
    assert not diffs, f"router outputs drifted from the seed: {diffs}"


def test_hot_case_within_budget(bench_report):
    budget = 1.5 if _native_kernel_available() else 15.0
    hot = next(
        case
        for case in bench_report["cases"]
        if case["case"] == "ibm_qx5/12q120g_s120/astar"
    )
    assert hot["seconds"] < budget, (
        f"A* hot case took {hot['seconds']:.2f}s (budget {budget}s); "
        "the seed needed 3.8-5.3s — a regression is creeping back in"
    )


def test_corpus_total_within_budget(bench_report):
    budget = 4.0 if _native_kernel_available() else 20.0
    total = bench_report["summary"]["total_seconds"]
    assert total < budget, (
        f"full corpus took {total:.2f}s (budget {budget}s, seed ~6.2s)"
    )


def test_sabre_scoring_is_incremental():
    """The SABRE candidate loop must not rescore front+extended fully.

    Guards the tentpole design: `_SwapScorer` caches base sums at
    construction and evaluates each candidate via deltas over the gates
    touching the swapped qubits only.
    """
    import inspect

    from repro.mapping.routing import sabre

    assert hasattr(sabre, "_SwapScorer")
    source = inspect.getsource(sabre.route_sabre)
    assert "_SwapScorer" in source
    # The full rescore helper must not appear in the candidate loop.
    assert "_score(" not in source


def test_service_batch_warm_cache():
    """The service layer serves the corpus warm at a 100% hit rate.

    A 6-job slice keeps this fast (<1s): serial baseline, cold batch,
    warm batch, byte-identity of cached artefacts vs serial — the same
    checks ``repro batch --corpus perf --compare-serial`` runs in full.
    """
    from repro.perf import run_service_bench

    report = run_service_bench(jobs=1, limit=6, oneshot_baseline=False)
    summary = report["summary"]
    assert summary["cases"] == 6
    assert summary["warm_hit_rate"] == 1.0
    assert summary["artifacts_match_serial"] is True
    # Warm lookups must beat recompiling by a wide margin.
    assert summary["warm_seconds"] < summary["serial_seconds"]
