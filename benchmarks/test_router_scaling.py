"""Experiment sec3-scaling — heuristics scale, exact approaches do not.

Section III-B / IV: "exact approaches are feasible when considering
relatively small number of qubits and gates ... However, they are not
scalable.  Approximate solutions using heuristics can be used for large
quantum circuits."  The benchmark sweeps circuit sizes on IBM QX5 and a
6x6 grid and times each router; the exact router is also shown refusing
beyond its guard.
"""

import time

import pytest

from repro.devices import grid_device, ibm_qx5, linear_device
from repro.mapping.routing import RoutingError, route, route_exact
from repro.workloads import random_circuit

SIZES = [10, 30, 60, 120]


def test_scaling_report(record_report):
    lines = ["router scaling on ibm_qx5 (16 qubits), random circuits:", ""]
    lines.append(f"{'gates':>6} {'router':>8} {'swaps':>6} {'seconds':>9}")
    device = ibm_qx5()
    timings = {}
    for size in SIZES:
        circuit = random_circuit(12, size, seed=size, two_qubit_fraction=0.6)
        for router in ("naive", "sabre", "astar", "latency"):
            start = time.perf_counter()
            result = route(circuit, device, router, None)
            elapsed = time.perf_counter() - start
            timings[(size, router)] = elapsed
            lines.append(
                f"{size:>6} {router:>8} {result.added_swaps:>6} {elapsed:>9.4f}"
            )
    # Heuristics stay fast even on the largest instance.
    assert timings[(SIZES[-1], "sabre")] < 5.0

    # Exact: fine on 5 qubits / few gates, guarded beyond.
    small = random_circuit(5, 8, seed=1, two_qubit_fraction=0.8)
    start = time.perf_counter()
    exact_small = route_exact(small, linear_device(5))
    exact_time = time.perf_counter() - start
    lines += [
        "",
        f"exact on linear5, 8 gates: {exact_small.added_swaps} swaps, "
        f"{exact_time:.3f}s",
    ]
    with pytest.raises(RoutingError):
        route_exact(random_circuit(12, 30, seed=2), device)
    lines.append("exact on ibm_qx5 (16 qubits): refused (state space 16!)")
    record_report("router_scaling", "\n".join(lines))


@pytest.mark.parametrize("router", ["naive", "sabre", "astar", "latency"])
def test_router_speed_on_large_circuit(benchmark, router):
    device = grid_device(4, 4)
    circuit = random_circuit(16, 100, seed=7, two_qubit_fraction=0.6)
    result = benchmark(lambda: route(circuit, device, router, None))
    assert result.added_swaps > 0


def test_exact_router_speed_small(benchmark):
    device = linear_device(5)
    circuit = random_circuit(5, 8, seed=1, two_qubit_fraction=0.8)
    result = benchmark(lambda: route_exact(circuit, device))
    assert result.metadata["cost"] == result.added_swaps * 3
