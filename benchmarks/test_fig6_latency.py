"""Experiment fig6 — native decompositions and the 26-cycle latency claim.

Fig. 6 shows the Surface-17 native decompositions (CNOT -> Ry(-90), CZ,
Ry(90); SWAP -> three such CNOTs; H -> Y90 then X).  Section V then
reports that the mapped, decomposed, constraint-scheduled example
circuit has a latency of "26 cycles (20 ns per cycle) that is an ~2x
increase compared to the circuit latency before mapping".

Absolute cycle counts depend on the reconstructed Fig. 1 artwork; the
reproduced claims are the decomposition identities (exact, unitary
checked), the 20 ns cycle, and the latency increase factor ~2x.
"""

import pytest

from repro.core import Circuit
from repro.decompose import decompose_circuit
from repro.decompose.rules import expand_cnot_to_cz, expand_swap_to_cz, hadamard_as_xy
from repro.devices import surface17
from repro.mapping import qmap
from repro.mapping.scheduler import asap_schedule
from repro.verify import equivalent_circuits
from repro.workloads import fig1_circuit


def test_fig6_decompositions_exact():
    assert equivalent_circuits(
        Circuit(2).cnot(0, 1), Circuit(2, expand_cnot_to_cz(0, 1))
    )
    assert equivalent_circuits(
        Circuit(2).swap(0, 1), Circuit(2, expand_swap_to_cz(0, 1))
    )
    assert equivalent_circuits(Circuit(1).h(0), Circuit(1, hadamard_as_xy(0)))


def test_fig6_report(record_report):
    device = surface17()
    circuit = fig1_circuit()

    result = qmap(circuit, device)
    mapped_latency = result.latency

    baseline = asap_schedule(decompose_circuit(circuit, device), device)
    factor = mapped_latency / baseline.latency

    assert device.cycle_time_ns == 20.0
    assert 1.2 <= factor <= 2.5  # the paper's "~2x" shape
    assert result.schedule.validate() == []

    dependency_only = qmap(circuit, device, control_constraints=False)
    assert dependency_only.latency <= mapped_latency

    report = "\n".join(
        [
            "Fig. 6 - native decomposition & latency on Surface-17:",
            "",
            "decomposition identities (unitary-verified):",
            "  CNOT(c,t) = Ry(-90)_t . CZ . Ry(+90)_t",
            "  SWAP      = 3 such CNOTs (9 native gates)",
            "  H         = Y90 then X",
            "",
            f"unmapped native circuit latency (dependencies only): "
            f"{baseline.latency} cycles",
            f"mapped + constraint-scheduled latency: {mapped_latency} cycles "
            f"({mapped_latency * 20} ns at 20 ns/cycle)   [paper: 26 cycles]",
            f"increase factor: {factor:.2f}x   [paper: ~2x]",
            f"without control-electronics constraints: "
            f"{dependency_only.latency} cycles",
        ]
    )
    record_report("fig6_latency", report)


def test_fig6_decompose_speed(benchmark):
    device = surface17()
    circuit = fig1_circuit()
    native = benchmark(lambda: decompose_circuit(circuit, device))
    assert all(device.is_native(g) for g in native.gates)


def test_fig6_constraint_scheduler_speed(benchmark):
    from repro.mapping.control import schedule_with_constraints

    device = surface17()
    result = qmap(fig1_circuit(), device)
    native = result.native
    schedule = benchmark(lambda: schedule_with_constraints(native, device))
    assert schedule.validate() == []
