"""Experiment sec3-1d — 1D (linear nearest-neighbour) routing (refs [29][30][38]).

The LNN literature reorders qubits with sorting networks whose SWAP
layers are *disjoint* and execute in parallel, bounding the depth added
per reordering by the number of odd-even phases.  The benchmark compares
the LNN router against the per-gate SWAP-chain baseline (whose swaps
serialise along the line) and, for context, against SABRE.
"""

import pytest

from repro.devices import linear_device
from repro.mapping.routing import route_lnn, route_naive, route_sabre
from repro.verify import equivalent_mapped
from repro.workloads import qft, random_circuit


def _suite(n):
    return [qft(n)] + [
        random_circuit(n, 4 * n, seed=s, two_qubit_fraction=0.7)
        for s in range(4)
    ]


def test_lnn_report(record_report):
    lines = [
        "LNN router (parallel odd-even SWAP phases) on line devices:",
        "(depth = routed circuit depth; naive chains serialise, LNN phases",
        " parallelise; SABRE shown for the count-optimised reference)",
        "",
        f"{'line':>5} {'workload':<14} "
        f"{'lnn sw/dep':>12} {'naive sw/dep':>13} {'sabre sw/dep':>13}",
    ]
    depth_wins = cases = 0
    total = {"lnn": 0, "naive": 0, "sabre": 0}
    for n in (6, 8, 10):
        device = linear_device(n)
        for circuit in _suite(n):
            lnn = route_lnn(circuit, device)
            assert equivalent_mapped(
                circuit, lnn.circuit, lnn.initial, lnn.final
            )
            naive = route_naive(circuit, device)
            sabre = route_sabre(circuit, device)
            cases += 1
            if lnn.circuit.depth() <= naive.circuit.depth():
                depth_wins += 1
            total["lnn"] += lnn.circuit.depth()
            total["naive"] += naive.circuit.depth()
            total["sabre"] += sabre.circuit.depth()
            lines.append(
                f"{n:>5} {circuit.name:<14} "
                f"{lnn.added_swaps:>6}/{lnn.circuit.depth():<5} "
                f"{naive.added_swaps:>6}/{naive.circuit.depth():<6} "
                f"{sabre.added_swaps:>6}/{sabre.circuit.depth():<6}"
            )
    # Depth claim vs the serial baseline; SABRE's global look-ahead keeps
    # it competitive on depth too (the Sec. III-B cost-function trade).
    assert depth_wins >= cases * 0.8
    assert total["lnn"] < total["naive"]
    lines += [
        "",
        f"LNN matches/beats the serial SWAP-chain baseline on depth in "
        f"{depth_wins}/{cases} cases "
        f"(total depth lnn {total['lnn']} / naive {total['naive']} / "
        f"sabre {total['sabre']})",
    ]
    record_report("lnn_depth", "\n".join(lines))


def test_lnn_router_speed(benchmark):
    device = linear_device(10)
    circuit = qft(10)
    result = benchmark(lambda: route_lnn(circuit, device))
    assert result.metadata["phases"] > 0
