"""Ablation — post-mapping peephole optimisation.

Mapping inflates circuits with SWAP decompositions and direction-flip
Hadamards that are often locally redundant (Sec. III-B lists dedicated
optimisation among mapper "solution features").  The benchmark measures
the gate-count reduction of the peephole passes on mapped circuits.
"""

import pytest

from repro.core.pipeline import compile_circuit
from repro.devices import ibm_qx4, ibm_qx5, surface17
from repro.verify import equivalent_mapped
from repro.workloads import fig1_circuit, ghz, qft, random_circuit


def _cases():
    return [
        (ibm_qx4(), fig1_circuit()),
        (ibm_qx5(), qft(6)),
        (ibm_qx5(), random_circuit(8, 30, seed=3, two_qubit_fraction=0.6)),
        (surface17(), ghz(6)),
        (surface17(), random_circuit(6, 24, seed=4, two_qubit_fraction=0.6)),
    ]


def test_optimization_report(record_report):
    lines = [
        "post-mapping peephole optimisation (gate count / depth):",
        "",
        f"{'device':<12} {'workload':<14} {'plain':>12} {'optimised':>12} "
        f"{'saved':>7}",
    ]
    total_plain = total_opt = 0
    for device, circuit in _cases():
        plain = compile_circuit(circuit, device, placer="greedy", router="sabre")
        optimised = compile_circuit(
            circuit, device, placer="greedy", router="sabre", optimize=True
        )
        assert device.conforms(optimised.native)
        assert equivalent_mapped(
            circuit, optimised.native,
            optimised.routed.initial, optimised.routed.final,
        )
        assert optimised.native.size() <= plain.native.size()
        total_plain += plain.native.size()
        total_opt += optimised.native.size()
        saved = 1 - optimised.native.size() / max(plain.native.size(), 1)
        lines.append(
            f"{device.name:<12} {circuit.name:<14} "
            f"{plain.native.size():>5}/{plain.native.depth():<6} "
            f"{optimised.native.size():>5}/{optimised.native.depth():<6} "
            f"{saved:>6.0%}"
        )
    overall = 1 - total_opt / total_plain
    assert overall > 0.05  # the passes must find real redundancy
    lines += ["", f"overall gate-count reduction: {overall:.0%}"]
    record_report("optimization", "\n".join(lines))


def test_optimizer_speed(benchmark):
    from repro.optimize import optimize_circuit

    device = ibm_qx5()
    circuit = random_circuit(8, 60, seed=5, two_qubit_fraction=0.6)
    native = compile_circuit(circuit, device, placer="greedy").native
    optimised = benchmark(lambda: optimize_circuit(native, fuse=True))
    assert optimised.size() <= native.size()
