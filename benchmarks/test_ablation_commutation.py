"""Ablation — gate commutation rules (reference [58]).

"Quantum circuit compilers using gate commutation rules" relax the
dependency DAG so commuting gates can execute in either order; the
router then satisfies whichever commuting gate is cheapest first.  The
benchmark measures the SWAP savings across a workload suite.
"""

import pytest

from repro.devices import grid_device, ibm_qx5, linear_device
from repro.mapping.routing import route_sabre
from repro.verify import equivalent_mapped
from repro.workloads import qft, random_circuit


def _suite():
    return [qft(8)] + [
        random_circuit(8, 30, seed=s, two_qubit_fraction=0.6) for s in range(5)
    ]


def test_commutation_report(record_report):
    lines = [
        "commutation-rule ablation (added SWAPs, sabre router):",
        "",
        f"{'device':<12} {'workload':<14} {'strict':>7} {'commuting':>10}",
    ]
    totals = {"strict": 0, "commuting": 0}
    for device in (ibm_qx5(), grid_device(3, 3), linear_device(8)):
        for circuit in _suite():
            if circuit.num_qubits > device.num_qubits:
                continue
            strict = route_sabre(circuit, device)
            relaxed = route_sabre(circuit, device, commutation=True)
            assert equivalent_mapped(
                circuit, relaxed.circuit, relaxed.initial, relaxed.final
            )
            totals["strict"] += strict.added_swaps
            totals["commuting"] += relaxed.added_swaps
            lines.append(
                f"{device.name:<12} {circuit.name:<14} "
                f"{strict.added_swaps:>7} {relaxed.added_swaps:>10}"
            )
    saving = 1 - totals["commuting"] / max(totals["strict"], 1)
    assert totals["commuting"] <= totals["strict"]
    lines += [
        "",
        f"total: strict {totals['strict']}, commuting {totals['commuting']} "
        f"({saving:.0%} fewer SWAPs)",
    ]
    record_report("ablation_commutation", "\n".join(lines))


def test_commutation_routing_speed(benchmark):
    device = ibm_qx5()
    circuit = qft(8)
    result = benchmark(lambda: route_sabre(circuit, device, commutation=True))
    assert result.added_swaps > 0
