"""Experiment sec5-control — the cost of shared control electronics.

Section V: the classical-control constraints "may severely affect the
scheduling of quantum operations as it will limit the possible
parallelism leading to larger circuit depths".  The benchmark schedules
a workload suite on Surface-17 with each constraint family toggled
(the DESIGN.md ablation) and reports the latency inflation.
"""

import pytest

from repro.decompose import decompose_circuit
from repro.devices import surface17
from repro.mapping.control import schedule_with_constraints
from repro.mapping.routing import route
from repro.workloads import fig1_circuit, ghz, qft, random_circuit

CONFIGS = [
    ("none", dict(awg=False, feedlines=False, parking=False)),
    ("awg only", dict(awg=True, feedlines=False, parking=False)),
    ("feedlines only", dict(awg=False, feedlines=True, parking=False)),
    ("parking only", dict(awg=False, feedlines=False, parking=True)),
    ("all", dict(awg=True, feedlines=True, parking=True)),
]


def _native_suite(device):
    circuits = [
        fig1_circuit(),
        ghz(6),
        qft(5),
        random_circuit(6, 25, seed=5, two_qubit_fraction=0.5),
    ]
    suite = []
    for circuit in circuits:
        measured = circuit.copy()
        measured.measure_all()
        routed = route(measured, device, "sabre").circuit
        suite.append((circuit.name, decompose_circuit(routed, device)))
    return suite


def test_control_constraint_report(record_report):
    device = surface17()
    suite = _native_suite(device)
    lines = [
        "control-electronics constraint ablation on Surface-17",
        "(latency in cycles; workloads routed+decomposed, all qubits measured)",
        "",
        f"{'workload':<14}" + "".join(f"{name:>16}" for name, _ in CONFIGS),
    ]
    inflations = []
    for name, native in suite:
        latencies = []
        for _, flags in CONFIGS:
            schedule = schedule_with_constraints(native, device, **flags)
            assert schedule.validate() == []
            latencies.append(schedule.latency)
        baseline, full = latencies[0], latencies[-1]
        # Constraints can only delay gates.
        assert all(latency >= baseline for latency in latencies)
        assert full >= max(latencies[1:-1])  # all >= each single family
        inflations.append(full / baseline)
        lines.append(f"{name:<14}" + "".join(f"{lat:>16}" for lat in latencies))

    mean_inflation = sum(inflations) / len(inflations)
    assert mean_inflation >= 1.0
    lines += [
        "",
        f"mean latency inflation (all constraints vs none): "
        f"{mean_inflation:.2f}x",
    ]
    record_report("control_constraints", "\n".join(lines))


def test_constraint_scheduler_speed(benchmark):
    device = surface17()
    circuit = random_circuit(8, 40, seed=6, two_qubit_fraction=0.5)
    routed = route(circuit, device, "sabre").circuit
    native = decompose_circuit(routed, device)
    schedule = benchmark(lambda: schedule_with_constraints(native, device))
    assert schedule.validate() == []


def test_dependency_only_scheduler_speed(benchmark):
    from repro.mapping.scheduler import asap_schedule

    device = surface17()
    circuit = random_circuit(8, 40, seed=6, two_qubit_fraction=0.5)
    routed = route(circuit, device, "sabre").circuit
    native = decompose_circuit(routed, device)
    schedule = benchmark(lambda: asap_schedule(native, device))
    assert schedule.validate() == []
