"""Experiment sec5-qec-map — QEC workloads meet the mapping problem.

The surface-code cycle is designed for a chip whose coupling graph *is*
the code's connectivity; on any other topology the mapper must route it
like any circuit.  This benchmark compiles the distance-3 cycle onto
mismatched chips (grid, line, the paper's brick-lattice surface17) and
quantifies the price of topology mismatch — why codes and chips are
co-designed.
"""

import pytest

from repro.core.pipeline import compile_circuit
from repro.devices import get_device
from repro.qec import RotatedSurfaceCode, stabilizer_cycle


def test_qec_mapping_report(record_report):
    code = RotatedSurfaceCode(3)
    cycle = stabilizer_cycle(code)
    native_chip = code.device()

    targets = [
        native_chip,
        get_device("surface17"),
        get_device("grid", rows=4, cols=5),
        get_device("linear", num_qubits=17),
    ]
    lines = [
        "distance-3 QEC cycle mapped onto matched and mismatched chips:",
        "",
        f"{'device':<20} {'swaps':>6} {'native gates':>13} {'latency':>8}",
    ]
    swaps_by_device = {}
    for device in targets:
        result = compile_circuit(
            cycle, device, placer="greedy", router="sabre",
            schedule="constraints",
        )
        assert device.conforms(result.native)
        swaps_by_device[device.name] = result.added_swaps
        lines.append(
            f"{device.name:<20} {result.added_swaps:>6} "
            f"{result.native.size():>13} {result.latency:>8}"
        )

    # Co-design claim: the code's own chip needs zero SWAPs; every
    # mismatched topology pays routing overhead.
    assert swaps_by_device[native_chip.name] == 0
    assert swaps_by_device["linear17"] > 0
    assert swaps_by_device["linear17"] >= swaps_by_device["grid4x5"]

    lines += [
        "",
        "(native gate counts are not comparable across devices — the grid",
        " keeps CNOT native while the CZ chips pay 3 gates per CNOT; the",
        " SWAP column is the topology-mismatch cost)",
        "the code's own chip routes for free; mismatched topologies pay "
        "SWAPs — the chip/code co-design the Surface-17 embodies",
    ]
    record_report("qec_mapping", "\n".join(lines))


def test_qec_mapping_speed(benchmark):
    code = RotatedSurfaceCode(3)
    cycle = stabilizer_cycle(code)
    device = get_device("grid", rows=4, cols=5)
    result = benchmark(
        lambda: compile_circuit(
            cycle, device, placer="greedy", router="sabre", schedule=None
        )
    )
    assert device.conforms(result.native)
