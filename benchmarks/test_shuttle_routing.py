"""Experiment sec6-dots — shuttling as alternative routing (Sec. VI-C).

On quantum-dot arrays with empty sites, moving a qubit costs one shuttle
instead of a three-CNOT SWAP.  The benchmark compares the SWAP-only
router against the shuttle-aware router on dot arrays of decreasing
occupancy: the sparser the array, the larger the shuttle win — the
"specialized mappers are required to take full advantage" claim.
"""

import pytest

from repro.devices import quantum_dot_device
from repro.mapping.routing import route_sabre, route_shuttle
from repro.workloads import random_circuit

#: (array shape, program qubits) — occupancy sweeps from full to sparse.
CASES = [((2, 3), 6), ((2, 4), 6), ((3, 4), 6), ((4, 4), 6)]


def _suite(n):
    return [
        random_circuit(n, 24, seed=s, two_qubit_fraction=0.6) for s in range(4)
    ]


def test_shuttle_report(record_report):
    lines = [
        "shuttle vs SWAP routing on quantum-dot arrays (Sec. VI-C)",
        "(cost in elementary moves: SWAP=3 exchange gates, shuttle=1 move)",
        "",
        f"{'array':>8} {'occupancy':>10} {'swap cost':>10} {'shuttle cost':>13} "
        f"{'(shuttles/swaps)':>17}",
    ]
    sparse_win = None
    for (rows, cols), n in CASES:
        device = quantum_dot_device(rows, cols)
        swap_cost = 0
        shuttle_cost = 0.0
        shuttles = swaps = 0
        for circuit in _suite(n):
            swap_cost += 3 * route_sabre(circuit, device).added_swaps
            result = route_shuttle(circuit, device)
            shuttle_cost += result.metadata["move_cost"]
            shuttles += result.metadata["shuttles"]
            swaps += result.metadata["swaps"]
        occupancy = n / (rows * cols)
        lines.append(
            f"{rows}x{cols:>6} {occupancy:>9.0%} {swap_cost:>10} "
            f"{shuttle_cost:>13.0f} {f'({shuttles}/{swaps})':>17}"
        )
        if (rows, cols) == (4, 4):
            sparse_win = shuttle_cost <= swap_cost
    assert sparse_win  # sparse array: shuttling must not lose
    record_report("shuttle_routing", "\n".join(lines))


def test_shuttle_router_speed(benchmark):
    device = quantum_dot_device(4, 4)
    circuit = random_circuit(6, 40, seed=9, two_qubit_fraction=0.6)
    result = benchmark(lambda: route_shuttle(circuit, device))
    assert result.added_swaps >= 0
