"""Experiment sec6-retarget — one compiler, many machine descriptions.

Section VI: "Every device is (almost) equal before the compiler."  The
same pipeline (greedy placement + SABRE routing + lowering + scheduling)
is pointed at seven device models — the paper's QX4/QX5/Surface chips
and the generic topology families of Sections III-B and VI-C — and
every output is verified for constraint conformance and semantic
equivalence.
"""

import pytest

from repro.core.pipeline import compile_circuit
from repro.devices import get_device
from repro.metrics import format_table, mapping_overhead
from repro.verify import equivalent_mapped
from repro.workloads import ghz, qft, random_circuit

TARGETS = [
    ("ibm_qx4", {}),
    ("ibm_qx5", {}),
    ("surface7", {}),
    ("surface17", {}),
    ("linear", {"num_qubits": 8}),
    ("grid", {"rows": 3, "cols": 3}),
    ("all_to_all", {"num_qubits": 8}),
]


def _workloads(max_qubits):
    return [
        ghz(min(5, max_qubits)),
        qft(min(4, max_qubits)),
        random_circuit(min(5, max_qubits), 15, seed=2),
    ]


def test_retargeting_report(record_report):
    sections = []
    swaps_by_device = {}
    for name, params in TARGETS:
        device = get_device(name, **params)
        rows = []
        total_swaps = 0
        for circuit in _workloads(device.num_qubits):
            result = compile_circuit(
                circuit, device, placer="greedy", router="sabre"
            )
            assert device.conforms(result.native)
            assert equivalent_mapped(
                circuit, result.native,
                result.routed.initial, result.routed.final,
            )
            rows.append(mapping_overhead(result, label=circuit.name))
            total_swaps += result.added_swaps
        swaps_by_device[device.name] = total_swaps
        sections.append(format_table(rows, title=f"target: {device.name}"))

    # Topology shape claims: all-to-all needs no routing at all; the
    # sparse line needs at least as much as the grid.
    assert swaps_by_device["ions8"] == 0
    assert swaps_by_device["linear8"] >= swaps_by_device["grid3x3"]

    sections.append(
        "total SWAPs per device: "
        + ", ".join(f"{k}={v}" for k, v in sorted(swaps_by_device.items()))
    )
    record_report("retargeting", "\n\n".join(sections))


@pytest.mark.parametrize("name,params", TARGETS)
def test_retarget_compile_speed(benchmark, name, params):
    device = get_device(name, **params)
    circuit = ghz(min(5, device.num_qubits))
    result = benchmark(
        lambda: compile_circuit(circuit, device, placer="greedy", router="sabre")
    )
    assert device.conforms(result.native)
