"""CNOT direction fixing for devices with asymmetric two-qubit gates.

Section IV: on the IBM QX devices a CNOT "has to follow a firmly defined
scheme of which qubit may work as target and which qubit may work as
control"; when routing places a CNOT against the allowed orientation,
"extra Hadamard gates may be required to invert the role of the control
and target qubits" (Section VI-A).  This post-routing pass applies the
four-Hadamard identity to every wrong-direction CNOT.

Symmetric gates (CZ, SWAP, CP) never need fixing; on symmetric devices
the pass is the identity.
"""

from __future__ import annotations

from ..core.circuit import Circuit
from ..core import gates as G
from ..devices.device import Device

__all__ = ["fix_directions", "count_wrong_directions"]


def count_wrong_directions(circuit: Circuit, device: Device) -> int:
    """Number of two-qubit gates whose orientation the device forbids."""
    if device.symmetric:
        return 0
    wrong = 0
    for gate in circuit.gates:
        if gate.is_two_qubit and not gate.is_symmetric:
            a, b = gate.qubits
            if not device.has_edge(a, b) and device.has_edge(b, a):
                wrong += 1
    return wrong


def fix_directions(circuit: Circuit, device: Device) -> tuple[Circuit, int]:
    """Reverse forbidden-orientation CNOTs with four Hadamards each.

    Args:
        circuit: A routed circuit on physical qubits (every two-qubit gate
            already on a connected pair).
        device: The target device.

    Returns:
        ``(fixed_circuit, flips)`` where ``flips`` counts reversed CNOTs.

    Raises:
        ValueError: when a two-qubit gate sits on an unconnected pair or a
            non-CNOT asymmetric gate needs reversal (no rule).
    """
    if device.symmetric:
        return circuit.copy(), 0

    out = Circuit(circuit.num_qubits, name=circuit.name)
    flips = 0
    for gate in circuit.gates:
        if not gate.is_two_qubit or gate.is_symmetric:
            out.append(gate)
            continue
        a, b = gate.qubits
        if device.has_edge(a, b):
            out.append(gate)
            continue
        if not device.has_edge(b, a):
            raise ValueError(f"gate {gate} is on an unconnected pair; route first")
        if gate.name != "cnot":
            raise ValueError(f"no direction-flip rule for {gate.name!r}")
        out.extend(
            [G.h(a), G.h(b), G.cnot(b, a), G.h(a), G.h(b)]
        )
        flips += 1
    return out, flips
