"""Qmap — the Surface-17 mapper of the paper's Section V.

"In [39] a mapper called *Qmap* for the Surface-17 processor is
presented.  It is embedded in the OpenQL compiler and it adapts the
quantum circuit to the quantum hardware constraints that are described
in a configuration file. ... It consists of three blocks: initial
placement, qubit routing and operations scheduler.  An Integer Linear
Programming (ILP) algorithm is used to find an optimal initial placement
..., whereas an heuristic algorithm is used for the routing task.  In
this case the cost function is the circuit latency."

:func:`qmap` wires together exactly those three blocks:

* initial placement — :func:`~repro.mapping.placement.assignment_placement`
  (the ILP objective solved by assignment + exchange refinement);
* routing — :func:`~repro.mapping.routing.latency.route_latency`
  (latency cost function with the looking-back feature);
* scheduling — :func:`~repro.mapping.control.schedule_with_constraints`
  (full electronics constraints) after native-gate decomposition.

Like the original, the mapper "can easily target other quantum devices
by just changing the parameters in this file" — pass any
:class:`~repro.devices.device.Device` (e.g. one loaded with
``Device.from_json``).
"""

from __future__ import annotations

from ..core.circuit import Circuit
from ..devices.device import Device

__all__ = ["qmap"]


def qmap(
    circuit: Circuit,
    device: Device,
    *,
    placer: str = "routed",
    control_constraints: bool | None = None,
    lookahead: int = 10,
    latency_weight: float = 0.1,
):
    """Compile ``circuit`` with the Qmap configuration.

    Args:
        circuit: Input circuit on program qubits.
        device: Target device (any device model works; Surface-17 is the
            one the paper demonstrates).
        placer: Initial-placement block; ``"routed"`` plays the role of
            the paper's optimal ILP placement (use ``"assignment"`` for a
            faster static-objective variant on large instances).
        control_constraints: Force the electronics constraints on/off in
            the scheduler (default: on when the device defines them).
        lookahead: Router look-ahead window.
        latency_weight: Weight of the looking-back (start-delay) term.

    Returns:
        A fully scheduled :class:`~repro.core.pipeline.CompilationResult`.
    """
    # Imported here: the pipeline module imports repro.mapping, so a
    # module-level import would be circular.
    from ..core.pipeline import compile_circuit

    return compile_circuit(
        circuit,
        device,
        placer=placer,
        router="latency",
        router_options={
            "lookahead": lookahead,
            "latency_weight": latency_weight,
        },
        decompose=True,
        schedule="constraints",
        control_constraints=control_constraints,
    )
