"""Shuttle-aware router for quantum-dot devices (paper Section VI-C).

On dot arrays with empty sites, moving a qubit costs one ``shuttle``
operation instead of a three-CNOT SWAP — but only moves *into* empty
sites.  This router extends the SABRE front-layer scheme with a mixed
move set:

* **shuttle** moves: occupied site -> adjacent empty site, charged a low
  cost;
* **SWAP** moves: two occupied adjacent sites, charged the full
  three-entangler cost (still needed when no useful empty site exists).

Scoring mirrors SABRE (front-layer distance + weighted look-ahead) with
the move's own cost added, so the router naturally prefers shuttling
through sparse regions and falls back to SWAPs in dense ones — exactly
the "specialized mapper" the paper says dot hardware needs.
"""

from __future__ import annotations

from ...core.circuit import Circuit
from ...core.dag import DependencyGraph
from ...core import gates as G
from ...core.gates import Gate
from ...devices.device import Device
from ..placement import FREE, Placement
from .base import RoutingError, RoutingResult, device_path
from .sabre import _extended_set, _score

__all__ = ["route_shuttle"]


def route_shuttle(
    circuit: Circuit,
    device: Device,
    placement: Placement | None = None,
    *,
    lookahead: int = 20,
    extended_weight: float = 0.5,
    shuttle_cost: float = 1.0,
    swap_cost: float = 3.0,
) -> RoutingResult:
    """Route with mixed shuttle/SWAP moves.

    Args:
        circuit: Input circuit on program qubits.
        device: Target device; shuttles are only proposed when it has the
            ``"shuttling"`` feature (otherwise this reduces to SABRE's
            move set with explicit costs).
        placement: Initial placement (default trivial — free sites are
            the physical qubits beyond ``circuit.num_qubits``).
        lookahead: Look-ahead window in two-qubit gates.
        extended_weight: Weight of the look-ahead distance term.
        shuttle_cost: Cost charged per shuttle move.
        swap_cost: Cost charged per SWAP move.

    Returns:
        A connectivity-satisfying :class:`RoutingResult`; metadata counts
        shuttles and SWAPs separately (``added_swaps`` counts both, as
        the total routing-move count).
    """
    can_shuttle = "shuttling" in device.features
    current = (placement or Placement.trivial(device.num_qubits, circuit.num_qubits)).copy()
    initial = current.copy()
    dag = DependencyGraph(circuit)
    dist = device.distance_matrix

    done: set[int] = set()
    front = set(dag.front_layer())
    out = Circuit(device.num_qubits, name=circuit.name)
    shuttles = 0
    swaps = 0
    stall = 0
    max_stall = 4 * device.num_qubits * device.num_qubits + 16

    def executable(index: int) -> bool:
        gate = dag.gate(index)
        if len(gate.qubits) > 2:
            raise RoutingError(f"decompose {gate.name} before routing")
        if len(gate.qubits) == 2 and gate.is_unitary:
            return device.connected(
                current.phys(gate.qubits[0]), current.phys(gate.qubits[1])
            )
        return True

    def emit(index: int) -> None:
        gate = dag.gate(index)
        out.append(gate.remap({q: current.phys(q) for q in gate.qubits}))
        done.add(index)
        front.discard(index)
        for succ in dag.successors(index):
            if all(p in done for p in dag.predecessors(succ)):
                front.add(succ)

    def candidate_moves() -> list[tuple[str, int, int, float]]:
        """(kind, phys_a, phys_b, cost) moves touching a front qubit."""
        active: set[int] = set()
        for index in front:
            gate = dag.gate(index)
            if len(gate.qubits) == 2:
                active.add(current.phys(gate.qubits[0]))
                active.add(current.phys(gate.qubits[1]))
        moves: list[tuple[str, int, int, float]] = []
        seen: set[tuple[int, int]] = set()
        for phys in active:
            for neighbour in device.neighbours[phys]:
                key = (min(phys, neighbour), max(phys, neighbour))
                if key in seen:
                    continue
                seen.add(key)
                neighbour_free = current.prog(neighbour) == FREE
                phys_free = current.prog(phys) == FREE
                if can_shuttle and (neighbour_free or phys_free):
                    moves.append(("shuttle", key[0], key[1], shuttle_cost))
                else:
                    moves.append(("swap", key[0], key[1], swap_cost))
        return moves

    while front:
        progressed = True
        while progressed:
            progressed = False
            for index in sorted(front):
                if executable(index):
                    emit(index)
                    progressed = True
                    stall = 0
        if not front:
            break

        blocked = [dag.gate(i) for i in sorted(front)]
        extended = _extended_set(dag, done, front, lookahead)
        moves = candidate_moves()
        if not moves:
            raise RoutingError("no candidate moves; is the device connected?")

        best = None
        for kind, pa, pb, cost in moves:
            current.apply_swap(pa, pb)
            score = _score(blocked, extended, dag, current, dist, extended_weight)
            current.apply_swap(pa, pb)
            key = (score + 0.1 * cost, cost, pa, pb)
            if best is None or key < best[0]:
                best = (key, kind, pa, pb)

        assert best is not None
        _, kind, pa, pb = best
        if kind == "shuttle":
            out.append(Gate("shuttle", (pa, pb)))
            shuttles += 1
        else:
            out.append(G.swap(pa, pb))
            swaps += 1
        current.apply_swap(pa, pb)
        stall += 1
        if stall > max_stall:
            gate = dag.gate(min(front))
            path = device_path(
                device, current.phys(gate.qubits[0]), current.phys(gate.qubits[1])
            )
            for step in range(len(path) - 2):
                out.append(G.swap(path[step], path[step + 1]))
                current.apply_swap(path[step], path[step + 1])
                swaps += 1
            stall = 0

    return RoutingResult(
        out,
        initial,
        current,
        shuttles + swaps,
        "shuttle",
        metadata={
            "shuttles": shuttles,
            "swaps": swaps,
            "move_cost": shuttles * shuttle_cost + swaps * swap_cost,
            "lookahead": lookahead,
        },
    )
