"""Qubit routers: naive, SABRE-style, layer A*, and exact.

Use :func:`route` to dispatch by name, or call the specific routers
directly for fine-grained options.
"""

from __future__ import annotations

from ...core.circuit import Circuit
from ...devices.device import Device
from ..placement import Placement
from .astar import route_astar
from .base import RoutingError, RoutingResult, check_connectivity
from .exact import route_exact
from .latency import route_latency
from .lnn import route_lnn
from .naive import route_naive
from .reliability import route_reliability
from .sabre import route_sabre
from .shuttle import route_shuttle
from .teleport import route_teleport

__all__ = [
    "ROUTERS",
    "RoutingError",
    "RoutingResult",
    "check_connectivity",
    "route",
    "route_astar",
    "route_exact",
    "route_latency",
    "route_lnn",
    "route_naive",
    "route_reliability",
    "route_sabre",
    "route_shuttle",
    "route_teleport",
]

#: Named routers for CLI/bench parameterisation.
ROUTERS = {
    "naive": route_naive,
    "sabre": route_sabre,
    "astar": route_astar,
    "exact": route_exact,
    "latency": route_latency,
    "lnn": route_lnn,
    "reliability": route_reliability,
    "shuttle": route_shuttle,
    "teleport": route_teleport,
}


def route(
    circuit: Circuit,
    device: Device,
    router: str = "sabre",
    placement: Placement | None = None,
    **options,
) -> RoutingResult:
    """Route ``circuit`` onto ``device`` with the named ``router``.

    The result always satisfies undirected connectivity, which is
    verified before returning (defence in depth against router bugs).
    """
    try:
        fn = ROUTERS[router]
    except KeyError:
        raise KeyError(f"unknown router {router!r}; available: {sorted(ROUTERS)}")
    result = fn(circuit, device, placement, **options)
    check_connectivity(result.circuit, device)
    return result
