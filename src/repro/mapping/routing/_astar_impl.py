"""Packed-integer A* layer-search kernel (implementation detail of astar).

Split out of :mod:`repro.mapping.routing.astar` so the router module keeps
the paper-facing narrative while this file holds the representation
tricks.  See ``docs/performance.md`` for the design.

Two ideas carry the speedup:

*   **Packed states.**  The search state is packed into one Python
    integer: slot ``i`` occupies bits ``[i*B, (i+1)*B)`` and stores the
    physical qubit hosting *active* program qubit ``i`` (``B`` bits,
    enough for ``num_qubits``).  Applying a SWAP of physical qubits
    ``(pa, pb)`` then becomes XORs with ``pa ^ pb`` shifted to the
    affected slots — no list copy, no tuple allocation, and hashing the
    state for the visited set is a single integer hash.  Candidate edges
    are enumerated through per-qubit bitmasks over the sorted edge list,
    which reproduces the seed's sorted-pair iteration order exactly.

*   **Spectator elision.**  Only the *active* program qubits — operands
    of a layer gate or of a look-ahead gate — influence the cost terms
    or the candidate-edge set.  Program qubits outside that set are
    spectators: two placements that agree on every active qubit have
    identical subtree costs, so the kernel keys its visited set on the
    active positions only.  The seed search re-explores each spectator
    arrangement as a fresh state; collapsing them shrinks the explored
    space by orders of magnitude on congested layers while searching the
    same quotient graph with the same cost function, edge order and
    tie-breaking discipline.

Heap entries carry the node's ``pending`` (sum of layer-gate distances
minus one) and ``lookahead`` values so they are never recomputed at pop
time; pushes update both incrementally over only the gates touching the
moved program qubits.  All distance terms are small integers and the
default look-ahead weights are dyadic (0.5 ** k), so every arithmetic
step is exact.
"""

from __future__ import annotations

import heapq
import itertools

from ...obs import add_counter
from ...resilience.deadline import current_deadline
from .base import RoutingError
from ._astar_native import note_python_layer, solve_layer_native

__all__ = ["solve_layer_packed"]


def solve_layer_packed(
    pair_list,
    future_list,
    start_p2h,
    device,
    dist,
    max_expansions: int,
) -> list[tuple[int, int]]:
    """A* search for a SWAP sequence making all ``pair_list`` adjacent.

    Args:
        pair_list: ``(prog_a, prog_b)`` operand pairs of the layer gates.
        future_list: ``((prog_a, prog_b), weight)`` look-ahead entries.
        start_p2h: Program->physical array of the starting placement.
        device: Target device (supplies edge structure).
        dist: Distance matrix (hop counts for the stock router).
        max_expansions: Abort guard on A* node expansions.

    Returns:
        The SWAP sequence (physical qubit pairs), ``[]`` when the layer
        is already satisfied.
    """
    n = device.num_qubits
    nbits = max(1, (n - 1).bit_length())
    mask = (1 << nbits) - 1
    dflat = device.distance_flat if dist is device.distance_matrix else [
        d for row in dist for d in row
    ]

    edges = device.undirected_edge_list
    edge_xor = [pa ^ pb for pa, pb in edges]
    # Bitmask of incident edge ids per physical qubit (edge ids follow the
    # sorted-pair order, so ascending-bit iteration == sorted iteration).
    qedge_mask = [0] * n
    for eid, (pa, pb) in enumerate(edges):
        qedge_mask[pa] |= 1 << eid
        qedge_mask[pb] |= 1 << eid

    # Active program qubits: operands of a layer pair or a look-ahead
    # gate.  Only their positions matter — for the cost terms and for the
    # candidate-edge masks — so the state key stores one slot per active
    # qubit and spectator arrangements collapse into one node.
    active = sorted(
        {q for pr in pair_list for q in pr}
        | {q for pr, _w in future_list for q in pr}
    )
    m = len(active)
    slot_of = {q: i for i, q in enumerate(active)}

    # Per-gate slot shifts, plus per-slot affected-gate lists for deltas.
    pair_shifts = [(slot_of[a] * nbits, slot_of[b] * nbits) for a, b in pair_list]
    future_shifts = [
        (slot_of[a] * nbits, slot_of[b] * nbits) for (a, b), _w in future_list
    ]
    future_weights = [w for _pair, w in future_list]
    n_pairs = len(pair_list)
    touch_future: dict[int, list[int]] = {}
    pair_slots = [(slot_of[a], slot_of[b]) for a, b in pair_list]
    future_slots = []
    for i, ((a, b), _w) in enumerate(future_list):
        sa, sb = slot_of[a], slot_of[b]
        touch_future.setdefault(sa, []).append(i)
        touch_future.setdefault(sb, []).append(i)
        future_slots.append((sa, sb))
    no_touch: list[int] = []

    # Slots whose position influences the look-ahead term: a satisfied
    # layer gate parked on one of these still warrants SWAP candidates,
    # matching the seed search's freedom to reposition satisfied gates
    # for the benefit of upcoming layers.
    future_active = frozenset(
        slot_of[q] for pr, _w in future_list for q in pr
    )

    key0 = 0
    for i, q in enumerate(active):
        key0 |= start_p2h[q] << (i * nbits)

    # Compiled kernel first (same search, same tie-breaks, same floats);
    # ``None`` means unavailable or unsupported — run the Python loop.
    # The C kernel cannot poll the cooperative deadline, so a bounded
    # search must take the Python loop, which checks every 256 expansions.
    deadline = current_deadline()
    if deadline is None:
        native = solve_layer_native(
            n, nbits, active, pair_slots, future_slots, future_weights,
            future_active, edges, dflat, [start_p2h[q] for q in active],
            max_expansions,
        )
        if native is not None:
            add_counter("astar.native_layers", 1)
            add_counter("astar.swaps_emitted", len(native))
            return native

    def pending_of(key: int) -> int:
        total = 0
        for sa, sb in pair_shifts:
            total += dflat[((key >> sa) & mask) * n + ((key >> sb) & mask)] - 1
        return total

    def lookahead_of(key: int) -> float:
        total = 0.0
        for (sa, sb), w in zip(future_shifts, future_weights):
            total += w * (
                dflat[((key >> sa) & mask) * n + ((key >> sb) & mask)] - 1
            )
        return total

    pending0 = pending_of(key0)
    if pending0 == 0:
        add_counter("astar.python_layers", 1)
        note_python_layer()
        return []

    counter = itertools.count()
    open_heap: list = []
    g_best: dict[int, int] = {key0: 0}
    parents: dict[int, tuple[int, tuple[int, int]] | None] = {key0: None}
    heapq.heappush(
        open_heap,
        (pending0 / 2.0 + lookahead_of(key0), next(counter), key0, 0, pending0,
         lookahead_of(key0)),
    )
    expansions = 0
    inf = float("inf")
    heappush = heapq.heappush
    heappop = heapq.heappop
    g_get = g_best.get
    tf_get = touch_future.get

    # Physical position -> active slot scratch array (reset per expansion
    # by undoing the writes, which touches only ``m`` cells).
    occ = [-1] * n

    pruned = 0
    while open_heap:
        _, __, key, g, pending, lookahead = heappop(open_heap)
        if g > g_get(key, inf):
            pruned += 1
            continue
        if pending == 0:
            sequence: list[tuple[int, int]] = []
            entry = parents[key]
            while entry is not None:
                key, swap = entry
                sequence.append(swap)
                entry = parents[key]
            sequence.reverse()
            add_counter("astar.python_layers", 1)
            note_python_layer()
            add_counter("astar.nodes_expanded", expansions)
            add_counter("astar.nodes_pruned", pruned)
            add_counter("astar.swaps_emitted", len(sequence))
            return sequence
        expansions += 1
        if deadline is not None and not expansions & 0xFF:
            deadline.check("astar layer search")
        if expansions > max_expansions:
            raise RoutingError(
                f"A* expanded more than {max_expansions} placements on one "
                "layer; instance too large for layer-exact search"
            )
        # Positions of the active slots (slot decode).
        shifted = key
        for i in range(m):
            occ[shifted & mask] = i
            shifted >>= nbits
        # Candidate SWAPs: edges touching an operand of an unsatisfied
        # layer gate (those can reduce the heuristic), plus edges touching
        # a satisfied gate's operand that also appears in a look-ahead
        # gate (those can reduce the look-ahead bias).  Restricting to
        # them keeps the search complete: active qubits can always walk
        # toward each other, displacing whatever sits in between.
        emask = 0
        for i, (sa, sb) in enumerate(pair_shifts):
            oa = (key >> sa) & mask
            ob = (key >> sb) & mask
            if dflat[oa * n + ob] > 1:
                emask |= qedge_mask[oa] | qedge_mask[ob]
            else:
                a, b = pair_slots[i]
                if a in future_active:
                    emask |= qedge_mask[oa]
                if b in future_active:
                    emask |= qedge_mask[ob]
        ng = g + 1
        while emask:
            low = emask & -emask
            emask ^= low
            eid = low.bit_length() - 1
            pa, pb = edges[eid]
            x = occ[pa]
            y = occ[pb]
            xor = edge_xor[eid]
            nkey = key
            if x >= 0:
                nkey ^= xor << (x * nbits)
            if y >= 0:
                nkey ^= xor << (y * nbits)
            if ng < g_get(nkey, inf):
                g_best[nkey] = ng
                parents[nkey] = (key, (pa, pb))
                # Layer pairs are few: recompute their distance sum over
                # the new key (exact integer arithmetic).
                nsum = 0
                for sa, sb in pair_shifts:
                    nsum += dflat[((nkey >> sa) & mask) * n
                                  + ((nkey >> sb) & mask)]
                npending = nsum - n_pairs
                d_lookahead = 0.0
                for i in tf_get(x, no_touch):
                    sa, sb = future_shifts[i]
                    d_lookahead += future_weights[i] * (
                        dflat[((nkey >> sa) & mask) * n + ((nkey >> sb) & mask)]
                        - dflat[((key >> sa) & mask) * n + ((key >> sb) & mask)]
                    )
                if y >= 0:
                    for i in tf_get(y, no_touch):
                        if x in future_slots[i]:
                            continue
                        sa, sb = future_shifts[i]
                        d_lookahead += future_weights[i] * (
                            dflat[((nkey >> sa) & mask) * n
                                  + ((nkey >> sb) & mask)]
                            - dflat[((key >> sa) & mask) * n
                                    + ((key >> sb) & mask)]
                        )
                nlookahead = lookahead + d_lookahead
                heappush(
                    open_heap,
                    (ng + npending / 2.0 + nlookahead, next(counter), nkey, ng,
                     npending, nlookahead),
                )
        # Undo the occupancy writes for the next expansion.
        shifted = key
        for _ in range(m):
            occ[shifted & mask] = -1
            shifted >>= nbits

    raise RoutingError("A* search exhausted without satisfying the layer")
