"""SABRE-style heuristic router with look-ahead and decay.

Re-implementation of the heuristic search approach of Li, Ding and Xie,
"Tackling the qubit mapping problem for NISQ-era quantum devices"
(ASPLOS 2019) — reference [40] of the paper, cited among the heuristic
(search) algorithms in Section III-B.  The router keeps the *front layer*
of the dependency graph (the gates whose predecessors have all been
scheduled, cf. the execution-snapshot colouring of Section VI-B) and,
when no front gate is executable, greedily applies the SWAP that most
reduces a weighted distance score:

* the mean distance of the front-layer gate operands (mandatory work),
* plus ``extended_weight`` times the mean distance over a look-ahead
  window of upcoming two-qubit gates (the "look-ahead feature" of
  Section III-B),
* scaled by a decay factor on recently swapped qubits, which steers the
  search away from undoing its own work and spreads SWAPs across the
  chip.
"""

from __future__ import annotations

from collections import deque
from itertools import chain

from ...core.circuit import Circuit
from ...core.dag import DependencyGraph
from ...core import gates as G
from ...devices.device import Device
from ...obs import add_counter
from ...resilience.deadline import current_deadline
from ..placement import Placement
from .base import RoutingError, RoutingResult, device_path
from ._astar_native import _note_sabre_python, dist_buffer, sabre_scores_native

__all__ = ["route_sabre"]

#: Decay added to a qubit each time it participates in a SWAP.
_DECAY_STEP = 0.001
#: Number of SWAP decisions after which decay factors reset.
_DECAY_RESET = 5


def route_sabre(
    circuit: Circuit,
    device: Device,
    placement: Placement | None = None,
    *,
    lookahead: int = 20,
    extended_weight: float = 0.5,
    use_decay: bool = True,
    distance_matrix=None,
    swap_penalty=None,
    commutation: bool = False,
) -> RoutingResult:
    """Route ``circuit`` with the SABRE front-layer heuristic.

    Args:
        circuit: Input circuit on program qubits.
        device: Target device.
        placement: Initial placement (default trivial).
        lookahead: Size of the extended (look-ahead) gate set; 0 disables
            look-ahead, reducing the router to a greedy front-layer one.
        extended_weight: Relative weight of the look-ahead term.
        use_decay: Enable the decay tie-breaker.
        distance_matrix: Optional replacement for the device's hop-count
            matrix — e.g. error-weighted distances for reliability-aware
            routing (see :mod:`repro.mapping.routing.reliability`).
        swap_penalty: Optional ``(phys_a, phys_b) -> float`` charging each
            candidate SWAP its own cost (e.g. the error of executing the
            SWAP on that edge), added to the distance score.
        commutation: Relax gate ordering with the commutation rules of
            [58] (see :mod:`repro.core.commutation`), enlarging the
            front layer with commuting gates.

    Returns:
        A connectivity-satisfying :class:`RoutingResult`.
    """
    current = (placement or Placement.trivial(device.num_qubits, circuit.num_qubits)).copy()
    initial = current.copy()
    dag = DependencyGraph(circuit, commutation=commutation)
    dist = distance_matrix if distance_matrix is not None else device.distance_matrix

    done: set[int] = set()
    front = set(dag.front_layer())
    out = Circuit(device.num_qubits, name=circuit.name)
    added = 0
    decay = [1.0] * device.num_qubits
    decisions = 0
    stall = 0
    max_stall = 4 * device.num_qubits * device.num_qubits + 16
    # Per-iteration observability totals, accumulated in locals so the
    # hot loop never touches the tracer; reported once at the end.
    candidates_scored = 0
    forced_routes = 0

    def executable(index: int) -> bool:
        gate = dag.gate(index)
        if len(gate.qubits) > 2:
            raise RoutingError(f"decompose {gate.name} before routing")
        if len(gate.qubits) == 2 and gate.is_unitary:
            return device.connected(
                current.phys(gate.qubits[0]), current.phys(gate.qubits[1])
            )
        return True

    def emit(index: int) -> None:
        gate = dag.gate(index)
        out.append(gate.remap({q: current.phys(q) for q in gate.qubits}))
        done.add(index)
        front.discard(index)
        for succ in dag.successors(index):
            if all(p in done for p in dag.predecessors(succ)):
                front.add(succ)

    # Flattened distance buffer for the native scorer, built once per
    # routing call (None when the native kernel is unavailable).
    c_dist = dist_buffer(dist, device.num_qubits)

    deadline = current_deadline()
    while front:
        # Cooperative deadline poll: one decision per iteration, so the
        # check costs a single clock read per emitted SWAP.
        if deadline is not None:
            deadline.check("sabre routing")
        progressed = True
        while progressed:
            progressed = False
            for index in sorted(front):
                if executable(index):
                    emit(index)
                    progressed = True
                    stall = 0
        if not front:
            break

        blocked = [dag.gate(i) for i in sorted(front)]
        extended = _extended_set(dag, done, front, lookahead)
        candidates = _candidate_swaps(blocked, current, device)
        if not candidates:
            raise RoutingError("no candidate swaps; is the device connected?")

        scorer = _SwapScorer(
            blocked, extended, dag, current, dist, extended_weight,
            c_dist=c_dist,
        )
        candidates_scored += len(candidates)
        best_swap, best_score = None, None
        for (pa, pb), score in zip(candidates, scorer.scores(candidates)):
            if swap_penalty is not None:
                score += swap_penalty(pa, pb)
            if use_decay:
                score *= max(decay[pa], decay[pb])
            key = (score, pa, pb)
            if best_score is None or key < best_score:
                best_score, best_swap = key, (pa, pb)

        assert best_swap is not None
        pa, pb = best_swap
        out.append(G.swap(pa, pb))
        current.apply_swap(pa, pb)
        added += 1
        stall += 1
        if stall > max_stall:
            # Safety valve: the heuristic is cycling (possible on adverse
            # decay/weight settings); force-route the first blocked gate
            # along a shortest path, which always makes progress.
            gate = dag.gate(min(front))
            pa = current.phys(gate.qubits[0])
            pb = current.phys(gate.qubits[1])
            path = device_path(device, pa, pb)
            for step in range(len(path) - 2):
                out.append(G.swap(path[step], path[step + 1]))
                current.apply_swap(path[step], path[step + 1])
                added += 1
            stall = 0
            forced_routes += 1
        decisions += 1
        if use_decay:
            if decisions % _DECAY_RESET == 0:
                decay = [1.0] * device.num_qubits
            decay[pa] += _DECAY_STEP
            decay[pb] += _DECAY_STEP

    add_counter("sabre.swap_candidates_scored", candidates_scored)
    add_counter("sabre.swap_decisions", decisions)
    if forced_routes:
        add_counter("sabre.forced_routes", forced_routes)
    return RoutingResult(
        out,
        initial,
        current,
        added,
        "sabre",
        metadata={"lookahead": lookahead, "extended_weight": extended_weight},
    )


def _candidate_swaps(
    blocked, placement: Placement, device: Device
) -> list[tuple[int, int]]:
    """Undirected coupling edges touching a qubit of a blocked gate."""
    incident = device.incident_edges
    swaps: set[tuple[int, int]] = set()
    for gate in blocked:
        if len(gate.qubits) == 2:
            swaps.update(incident[placement.phys(gate.qubits[0])])
            swaps.update(incident[placement.phys(gate.qubits[1])])
    return sorted(swaps)


def _extended_set(
    dag: DependencyGraph, done: set[int], front: set[int], limit: int
) -> list[int]:
    """Up to ``limit`` upcoming two-qubit gates past the front layer."""
    if limit <= 0:
        return []
    extended: list[int] = []
    seen = set(front)
    queue = deque(sorted(front))
    while queue and len(extended) < limit:
        node = queue.popleft()
        for succ in dag.successors(node):
            if succ in seen or succ in done:
                continue
            seen.add(succ)
            queue.append(succ)
            if dag.gate(succ).is_two_qubit:
                extended.append(succ)
                if len(extended) >= limit:
                    break
    return extended


class _SwapScorer:
    """Incremental evaluation of :func:`_score` under one candidate SWAP.

    Built once per routing decision from the *current* placement, then
    queried once per candidate edge.  A SWAP of physical qubits
    ``(pa, pb)`` only changes the distance of gates with an operand on
    ``pa`` or ``pb``, so the scorer caches the base distance sums and
    re-evaluates just the affected gates — the full front + extended
    rescore of the seed implementation is gone from the candidate loop.

    With the default hop-count matrices every term is a small integer, so
    the delta update is bit-identical to a full rescore.
    """

    __slots__ = ("_entries", "_by_phys", "_front_base", "_front_n", "_ext_base",
                 "_ext_n", "_weight", "_dist", "_c_dist")

    def __init__(
        self,
        blocked,
        extended: list[int],
        dag: DependencyGraph,
        placement: Placement,
        dist,
        extended_weight: float,
        *,
        c_dist=None,
    ) -> None:
        entries: list[tuple[int, int, bool]] = []
        for gate in blocked:
            if len(gate.qubits) == 2:
                a, b = gate.qubits
                entries.append((placement.phys(a), placement.phys(b), True))
        front_n = len(entries)
        for index in extended:
            a, b = dag.gate(index).qubits
            entries.append((placement.phys(a), placement.phys(b), False))
        front_base = 0
        ext_base = 0
        by_phys: dict[int, list[int]] = {}
        for i, (qa, qb, is_front) in enumerate(entries):
            d = dist[qa][qb]
            if is_front:
                front_base += d
            else:
                ext_base += d
            by_phys.setdefault(qa, []).append(i)
            if qb != qa:
                by_phys.setdefault(qb, []).append(i)
        self._entries = entries
        self._by_phys = by_phys
        self._front_base = front_base
        self._front_n = max(front_n, 1)
        self._ext_base = ext_base
        self._ext_n = len(extended)
        self._weight = extended_weight
        self._dist = dist
        self._c_dist = c_dist

    def deltas(self, pa: int, pb: int):
        """Change of the (front, extended) distance sums under the SWAP."""
        dist = self._dist
        entries = self._entries
        by_phys = self._by_phys
        d_front = 0
        d_ext = 0
        seen: set[int] = set()
        for i in chain(by_phys.get(pa, ()), by_phys.get(pb, ())):
            if i in seen:
                continue
            seen.add(i)
            qa, qb, is_front = entries[i]
            na = pb if qa == pa else (pa if qa == pb else qa)
            nb = pb if qb == pa else (pa if qb == pb else qb)
            delta = dist[na][nb] - dist[qa][qb]
            if is_front:
                d_front += delta
            else:
                d_ext += delta
        return d_front, d_ext

    def score(self, pa: int, pb: int) -> float:
        """The :func:`_score` value after swapping ``pa`` and ``pb``."""
        d_front, d_ext = self.deltas(pa, pb)
        score = (self._front_base + d_front) / self._front_n
        if self._ext_n:
            score += self._weight * (self._ext_base + d_ext) / self._ext_n
        return score

    def scores(self, candidates) -> list[float]:
        """One base score per candidate SWAP, in ``candidates`` order.

        Uses the C delta scorer when the routing call supplied a
        ``c_dist`` buffer and the kernel is available; the per-candidate
        Python loop otherwise.  Both paths are bit-identical — same
        delta rule, same accumulation order, same expression shapes.
        """
        if self._c_dist is not None:
            native = sabre_scores_native(
                self._entries,
                self._c_dist,
                len(self._dist),
                self._front_base,
                self._front_n,
                self._ext_base,
                self._ext_n,
                self._weight,
                candidates,
            )
            if native is not None:
                return native
        _note_sabre_python()
        return [self.score(pa, pb) for pa, pb in candidates]


def _score(
    blocked,
    extended: list[int],
    dag: DependencyGraph,
    placement: Placement,
    dist,
    extended_weight: float,
) -> float:
    front_cost = 0.0
    front_n = 0
    for gate in blocked:
        if len(gate.qubits) == 2:
            a, b = gate.qubits
            front_cost += dist[placement.phys(a)][placement.phys(b)]
            front_n += 1
    score = front_cost / max(front_n, 1)
    if extended:
        ext_cost = 0.0
        for index in extended:
            a, b = dag.gate(index).qubits
            ext_cost += dist[placement.phys(a)][placement.phys(b)]
        score += extended_weight * ext_cost / len(extended)
    return score
