"""On-demand compilation and invocation of the native routing kernels.

Compiles ``_astar_kernel.c`` with the system C compiler the first time
a router needs it, caching the shared object under the user's temp
directory keyed by a hash of the source.  Everything is best-effort: no
compiler, a failed build, or any marshalling surprise simply returns
``None`` and the caller falls back to the pure-Python kernels, which are
the reference implementations.  The native kernels replicate the Python
code operation for operation (see the header comment of the C file), so
the two produce identical outputs — SWAP sequences and scores alike.

Three entry points are exposed:

* :func:`solve_layer_native` — one A* layer search (multi-word bitset
  states: no limit on qubits, edges, or active slots beyond memory);
* :func:`solve_layers_batch_native` — every layer of a circuit in a
  single FFI crossing, with the per-layer preprocessing and the
  placement evolution run natively (amortises ctypes marshalling);
* :func:`sabre_scores_native` — all candidate-SWAP scores of one SABRE
  routing decision via the C port of the ``_SwapScorer`` delta rule.

Set the environment variable ``REPRO_NO_NATIVE=1`` to disable the
native path (useful to benchmark or debug the Python kernels).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

from .base import RoutingError

__all__ = [
    "dist_buffer",
    "kernel_stats",
    "note_python_layer",
    "sabre_scores_native",
    "solve_layer_native",
    "solve_layers_batch_native",
    "warm_kernel",
]

_SOURCE = os.path.join(os.path.dirname(__file__), "_astar_kernel.c")

#: Tri-state: unset (None), unavailable (False), or the loaded library.
_lib = None
_lib_resolved = False

#: How many times this process ran the expensive build/load path (the
#: compile-or-dlopen in :func:`_build_library`, past the opt-out check).
#: Warm-pool workers report this so tests can assert the kernel is
#: built at most once per worker lifetime, never once per job.
_build_calls = 0

#: Per-process kernel usage counters (see :func:`kernel_stats`): layers
#: solved natively vs. by the Python reference loop, batch crossings,
#: and SABRE scoring calls per path.  Tests take deltas of these to
#: assert the native path is genuinely exercised, not just available.
_native_layers = 0
_python_layers = 0
_batch_calls = 0
_sabre_native_calls = 0
_sabre_python_calls = 0


def _build_library():
    """Compile and load the kernel; return a CDLL or None."""
    global _build_calls
    if os.environ.get("REPRO_NO_NATIVE"):
        return None
    _build_calls += 1
    compiler = (
        os.environ.get("CC")
        or shutil.which("cc")
        or shutil.which("gcc")
        or shutil.which("clang")
    )
    if compiler is None or not os.path.exists(_SOURCE):
        return None
    with open(_SOURCE, "rb") as fh:
        tag = hashlib.sha256(fh.read()).hexdigest()[:16]
    cache_dir = os.path.join(
        tempfile.gettempdir(), f"repro-native-{os.getuid()}"
    )
    so_path = os.path.join(cache_dir, f"astar_{tag}.so")
    if not os.path.exists(so_path):
        try:
            os.makedirs(cache_dir, exist_ok=True)
            tmp_path = f"{so_path}.{os.getpid()}.tmp"
            subprocess.run(
                [compiler, "-O2", "-shared", "-fPIC", "-o", tmp_path, _SOURCE],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp_path, so_path)
        except (OSError, subprocess.SubprocessError):
            return None
    try:
        lib = ctypes.CDLL(so_path)
    except OSError:
        return None
    i32 = ctypes.c_int32
    p32 = ctypes.POINTER(i32)
    pdbl = ctypes.POINTER(ctypes.c_double)
    pu8 = ctypes.POINTER(ctypes.c_uint8)
    lib.solve_layer.restype = ctypes.c_int64
    lib.solve_layer.argtypes = [
        i32, i32, i32,          # n, nbits, m
        p32, p32, i32,          # edges
        p32,                    # dflat
        p32, p32, i32,          # pair slots
        p32, p32, i32,          # future slots
        pdbl,                   # future weights
        pu8,                    # future_active
        p32, p32,               # tf_idx, tf_start
        p32,                    # slot_pos (m physical positions)
        ctypes.c_int64,         # max_expansions
        p32, p32, i32,          # out buffers
    ]
    lib.solve_layers_batch.restype = ctypes.c_int64
    lib.solve_layers_batch.argtypes = [
        i32, i32,               # n, nbits
        p32, p32, i32,          # edges
        p32,                    # dflat
        i32,                    # n_layers
        p32, p32, p32,          # pair_a, pair_b, pair_start
        p32, p32, pdbl, p32,    # fut_a, fut_b, fut_w, fut_start
        p32,                    # p2h (updated in place)
        ctypes.c_int64,         # max_expansions
        p32, p32, p32, i32,     # out_pa, out_pb, out_start, max_out
    ]
    lib.sabre_score_batch.restype = i32
    lib.sabre_score_batch.argtypes = [
        p32, p32, pu8, i32,     # entries qa, qb, is_front
        pdbl, i32,              # dist (n*n doubles), n
        ctypes.c_double, ctypes.c_double,  # front_base, front_n
        ctypes.c_double, i32, ctypes.c_double,  # ext_base, ext_n, weight
        p32, p32, i32,          # candidates
        pdbl,                   # out scores
    ]
    return lib


def _get_lib():
    global _lib, _lib_resolved
    if not _lib_resolved:
        _lib = _build_library()
        _lib_resolved = True
    return _lib


def warm_kernel() -> bool:
    """Resolve (compile/load) the kernel now; True when it is usable.

    Warm-pool workers call this once from their initializer so the
    build cost is paid at worker start, never on a job's critical path.
    Honours ``REPRO_NO_NATIVE`` like every other entry point.
    """
    return _get_lib() is not None


def kernel_stats() -> dict:
    """Build/load and usage bookkeeping of this process.

    ``build_calls`` counts trips through the expensive build-or-dlopen
    path; ``resolved`` says the tri-state was settled (either way);
    ``available`` says the native kernel is loaded and usable.  The
    remaining keys count actual kernel usage: A* layers solved natively
    (including those inside batch crossings) vs. by the Python reference
    loop, whole-circuit batch calls, and SABRE scoring decisions per
    path.  Pool workers ship these to the parent so services can report
    how much routing work ran on the native path.
    """
    return {
        "resolved": _lib_resolved,
        "available": _lib is not None,
        "build_calls": _build_calls,
        "native_layers": _native_layers,
        "python_layers": _python_layers,
        "batch_calls": _batch_calls,
        "sabre_native_calls": _sabre_native_calls,
        "sabre_python_calls": _sabre_python_calls,
    }


def note_python_layer() -> None:
    """Record one A* layer solved by the Python reference loop."""
    global _python_layers
    _python_layers += 1


def _note_sabre_python() -> None:
    global _sabre_python_calls
    _sabre_python_calls += 1


_MAX_SEQUENCE = 4096

_i32 = ctypes.c_int32


def _touch_csr(future_slots, m):
    """Per-slot future-gate touch lists, flattened (CSR layout)."""
    touch: list[list[int]] = [[] for _ in range(m)]
    for i, (sa, sb) in enumerate(future_slots):
        touch[sa].append(i)
        if sb != sa:
            touch[sb].append(i)
    tf_start_list = [0]
    tf_idx_list: list[int] = []
    for slot_touch in touch:
        tf_idx_list.extend(slot_touch)
        tf_start_list.append(len(tf_idx_list))
    tf_idx = (_i32 * max(len(tf_idx_list), 1))(*tf_idx_list)
    tf_start = (_i32 * (m + 1))(*tf_start_list)
    return tf_idx, tf_start


def solve_layer_native(
    n: int,
    nbits: int,
    active: list[int],
    pair_slots,
    future_slots,
    future_weights,
    future_active,
    edges,
    dflat,
    slot_pos,
    max_expansions: int,
):
    """Run the compiled kernel; ``None`` means "use the Python path".

    Arguments mirror the preprocessed state of
    :func:`._astar_impl.solve_layer_packed` (slots index the ``active``
    list; ``slot_pos`` holds each active slot's physical position).
    Raises :class:`RoutingError` for genuine search failures so
    behaviour matches the Python kernel exactly.
    """
    global _native_layers
    m = len(active)
    if m == 0:
        return None
    lib = _get_lib()
    if lib is None:
        return None
    if not all(type(d) is int for d in dflat):
        return None

    n_pairs = len(pair_slots)
    n_future = len(future_slots)
    edge_pa = (_i32 * len(edges))(*[e[0] for e in edges])
    edge_pb = (_i32 * len(edges))(*[e[1] for e in edges])
    c_dflat = (_i32 * len(dflat))(*dflat)
    pair_sa = (_i32 * max(n_pairs, 1))(*[p[0] for p in pair_slots])
    pair_sb = (_i32 * max(n_pairs, 1))(*[p[1] for p in pair_slots])
    fut_sa = (_i32 * max(n_future, 1))(*[p[0] for p in future_slots])
    fut_sb = (_i32 * max(n_future, 1))(*[p[1] for p in future_slots])
    fut_w = (ctypes.c_double * max(n_future, 1))(*future_weights)
    c_active = (ctypes.c_uint8 * m)(
        *[1 if s in future_active else 0 for s in range(m)]
    )
    tf_idx, tf_start = _touch_csr(future_slots, m)
    c_slot_pos = (_i32 * m)(*slot_pos)
    out_pa = (_i32 * _MAX_SEQUENCE)()
    out_pb = (_i32 * _MAX_SEQUENCE)()

    rc = lib.solve_layer(
        n, nbits, m,
        edge_pa, edge_pb, len(edges),
        c_dflat,
        pair_sa, pair_sb, n_pairs,
        fut_sa, fut_sb, n_future,
        fut_w,
        c_active,
        tf_idx, tf_start,
        c_slot_pos,
        max_expansions,
        out_pa, out_pb, _MAX_SEQUENCE,
    )
    if rc == -3:
        return None  # capacity issue: fall back to the Python kernel
    if rc == -2:
        raise RoutingError(
            f"A* expanded more than {max_expansions} placements on one "
            "layer; instance too large for layer-exact search"
        )
    if rc == -1:
        raise RoutingError("A* search exhausted without satisfying the layer")
    _native_layers += 1
    return [(out_pa[i], out_pb[i]) for i in range(rc)]


def solve_layers_batch_native(
    n: int,
    nbits: int,
    edges,
    dflat,
    layer_pairs,
    layer_futures,
    p2h,
    max_expansions: int,
):
    """Route every layer of one circuit in a single native crossing.

    Args:
        n, nbits: Device size and bits per packed slot.
        edges: The device's sorted undirected edge list.
        dflat: Flat integer distance matrix (``n * n`` entries).
        layer_pairs: Per layer, the ``(prog_a, prog_b)`` operand pairs.
        layer_futures: Per layer, the ``((prog_a, prog_b), weight)``
            look-ahead entries.
        p2h: Full program->physical permutation of the *starting*
            placement (length ``n``, dummies included); not mutated.
        max_expansions: Per-layer A* expansion budget.

    Returns:
        A per-layer list of SWAP sequences, or ``None`` when the native
        path is unavailable (caller runs the per-layer kernels instead).
        Raises :class:`RoutingError` on genuine search failures, exactly
        like the Python kernel would on the offending layer.
    """
    global _native_layers, _batch_calls
    lib = _get_lib()
    if lib is None:
        return None
    if not all(type(d) is int for d in dflat):
        return None

    n_layers = len(layer_pairs)
    pair_a: list[int] = []
    pair_b: list[int] = []
    pair_start = [0]
    fut_a: list[int] = []
    fut_b: list[int] = []
    fut_w: list[float] = []
    fut_start = [0]
    for pairs, futures in zip(layer_pairs, layer_futures):
        for a, b in pairs:
            pair_a.append(a)
            pair_b.append(b)
        pair_start.append(len(pair_a))
        for (a, b), w in futures:
            fut_a.append(a)
            fut_b.append(b)
            fut_w.append(w)
        fut_start.append(len(fut_a))

    c_pair_a = (_i32 * max(len(pair_a), 1))(*pair_a)
    c_pair_b = (_i32 * max(len(pair_b), 1))(*pair_b)
    c_pair_start = (_i32 * (n_layers + 1))(*pair_start)
    c_fut_a = (_i32 * max(len(fut_a), 1))(*fut_a)
    c_fut_b = (_i32 * max(len(fut_b), 1))(*fut_b)
    c_fut_w = (ctypes.c_double * max(len(fut_w), 1))(*fut_w)
    c_fut_start = (_i32 * (n_layers + 1))(*fut_start)
    c_edge_pa = (_i32 * max(len(edges), 1))(*[e[0] for e in edges])
    c_edge_pb = (_i32 * max(len(edges), 1))(*[e[1] for e in edges])
    c_dflat = (_i32 * len(dflat))(*dflat)
    # The kernel evolves the permutation in place; hand it a copy so a
    # fallback (or failure) leaves the caller's placement untouched.
    c_p2h = (_i32 * n)(*p2h)
    max_out = _MAX_SEQUENCE + 16 * n_layers
    out_pa = (_i32 * max_out)()
    out_pb = (_i32 * max_out)()
    out_start = (_i32 * (n_layers + 1))()

    rc = lib.solve_layers_batch(
        n, nbits,
        c_edge_pa, c_edge_pb, len(edges),
        c_dflat,
        n_layers,
        c_pair_a, c_pair_b, c_pair_start,
        c_fut_a, c_fut_b, c_fut_w, c_fut_start,
        c_p2h,
        max_expansions,
        out_pa, out_pb, out_start, max_out,
    )
    if rc == -3:
        return None  # capacity issue: fall back to the Python kernels
    if rc == -2:
        raise RoutingError(
            f"A* expanded more than {max_expansions} placements on one "
            "layer; instance too large for layer-exact search"
        )
    if rc == -1:
        raise RoutingError("A* search exhausted without satisfying the layer")
    _batch_calls += 1
    _native_layers += n_layers
    return [
        [(out_pa[i], out_pb[i]) for i in range(out_start[l], out_start[l + 1])]
        for l in range(n_layers)
    ]


def dist_buffer(dist, n: int):
    """Flatten a distance matrix into a C double buffer, or ``None``.

    Built once per routing call and reused across every scoring decision
    (the O(n^2) copy would otherwise dominate on large devices).  Returns
    ``None`` when the native kernel is unavailable so callers can skip
    the work entirely.
    """
    if _get_lib() is None:
        return None
    try:
        return (ctypes.c_double * (n * n))(
            *[float(d) for row in dist for d in row]
        )
    except (TypeError, ValueError):
        return None


def sabre_scores_native(
    entries,
    c_dist,
    n: int,
    front_base,
    front_n: int,
    ext_base,
    ext_n: int,
    weight: float,
    candidates,
):
    """Score all candidate SWAPs of one SABRE decision, or ``None``.

    Mirrors ``_SwapScorer.score`` over every candidate: ``entries`` are
    the scorer's ``(phys_a, phys_b, is_front)`` tuples, the base sums
    and set sizes are the scorer's cached values, and ``c_dist`` is the
    :func:`dist_buffer` of the routing call.  Bit-identical to the
    Python delta loop (same accumulation order, same expression shapes).
    """
    global _sabre_native_calls
    lib = _get_lib()
    if lib is None or c_dist is None:
        return None
    n_entries = len(entries)
    ent_qa = (_i32 * max(n_entries, 1))(*[e[0] for e in entries])
    ent_qb = (_i32 * max(n_entries, 1))(*[e[1] for e in entries])
    ent_front = (ctypes.c_uint8 * max(n_entries, 1))(
        *[1 if e[2] else 0 for e in entries]
    )
    n_cand = len(candidates)
    cand_pa = (_i32 * max(n_cand, 1))(*[c[0] for c in candidates])
    cand_pb = (_i32 * max(n_cand, 1))(*[c[1] for c in candidates])
    out = (ctypes.c_double * max(n_cand, 1))()
    rc = lib.sabre_score_batch(
        ent_qa, ent_qb, ent_front, n_entries,
        c_dist, n,
        float(front_base), float(front_n),
        float(ext_base), ext_n, float(weight),
        cand_pa, cand_pb, n_cand,
        out,
    )
    if rc != 0:
        return None
    _sabre_native_calls += 1
    return list(out[:n_cand])
