"""On-demand compilation and invocation of the native A* kernel.

Compiles ``_astar_kernel.c`` with the system C compiler the first time
the A* router runs, caching the shared object under the user's temp
directory keyed by a hash of the source.  Everything is best-effort: no
compiler, a failed build, an oversized instance (packed key beyond 64
bits) or any marshalling surprise simply returns ``None`` and the caller
falls back to the pure-Python kernel in :mod:`._astar_impl`, which is
the reference implementation.  The native kernel replicates the Python
search operation for operation (see the header comment of the C file),
so the two produce identical SWAP sequences.

Set the environment variable ``REPRO_NO_NATIVE=1`` to disable the
native path (useful to benchmark or debug the Python kernel).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

from .base import RoutingError

__all__ = ["kernel_stats", "solve_layer_native", "warm_kernel"]

_SOURCE = os.path.join(os.path.dirname(__file__), "_astar_kernel.c")

#: Tri-state: unset (None), unavailable (False), or the loaded library.
_lib = None
_lib_resolved = False

#: How many times this process ran the expensive build/load path (the
#: compile-or-dlopen in :func:`_build_library`, past the opt-out check).
#: Warm-pool workers report this so tests can assert the kernel is
#: built at most once per worker lifetime, never once per job.
_build_calls = 0


def _build_library():
    """Compile and load the kernel; return a CDLL or None."""
    global _build_calls
    if os.environ.get("REPRO_NO_NATIVE"):
        return None
    _build_calls += 1
    compiler = (
        os.environ.get("CC")
        or shutil.which("cc")
        or shutil.which("gcc")
        or shutil.which("clang")
    )
    if compiler is None or not os.path.exists(_SOURCE):
        return None
    with open(_SOURCE, "rb") as fh:
        tag = hashlib.sha256(fh.read()).hexdigest()[:16]
    cache_dir = os.path.join(
        tempfile.gettempdir(), f"repro-native-{os.getuid()}"
    )
    so_path = os.path.join(cache_dir, f"astar_{tag}.so")
    if not os.path.exists(so_path):
        try:
            os.makedirs(cache_dir, exist_ok=True)
            tmp_path = f"{so_path}.{os.getpid()}.tmp"
            subprocess.run(
                [compiler, "-O2", "-shared", "-fPIC", "-o", tmp_path, _SOURCE],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp_path, so_path)
        except (OSError, subprocess.SubprocessError):
            return None
    try:
        lib = ctypes.CDLL(so_path)
    except OSError:
        return None
    i32 = ctypes.c_int32
    lib.solve_layer.restype = ctypes.c_int64
    lib.solve_layer.argtypes = [
        i32, i32, i32,                                    # n, nbits, m
        ctypes.POINTER(i32), ctypes.POINTER(i32), i32,    # edges
        ctypes.POINTER(i32),                              # dflat
        ctypes.POINTER(i32), ctypes.POINTER(i32), i32,    # pair slots
        ctypes.POINTER(i32), ctypes.POINTER(i32), i32,    # future slots
        ctypes.POINTER(ctypes.c_double),                  # future weights
        ctypes.POINTER(ctypes.c_uint8),                   # future_active
        ctypes.POINTER(i32), ctypes.POINTER(i32),         # tf_idx, tf_start
        ctypes.c_uint64,                                  # key0
        ctypes.c_int64,                                   # max_expansions
        ctypes.POINTER(i32), ctypes.POINTER(i32), i32,    # out buffers
    ]
    return lib


def _get_lib():
    global _lib, _lib_resolved
    if not _lib_resolved:
        _lib = _build_library()
        _lib_resolved = True
    return _lib


def warm_kernel() -> bool:
    """Resolve (compile/load) the kernel now; True when it is usable.

    Warm-pool workers call this once from their initializer so the
    build cost is paid at worker start, never on a job's critical path.
    Honours ``REPRO_NO_NATIVE`` like every other entry point.
    """
    return _get_lib() is not None


def kernel_stats() -> dict:
    """Build/load bookkeeping of this process, for pool introspection.

    ``build_calls`` counts trips through the expensive build-or-dlopen
    path; ``resolved`` says the tri-state was settled (either way);
    ``available`` says the native kernel is loaded and usable.
    """
    return {
        "resolved": _lib_resolved,
        "available": _lib is not None,
        "build_calls": _build_calls,
    }


_MAX_SEQUENCE = 4096


def solve_layer_native(
    n: int,
    nbits: int,
    active: list[int],
    pair_slots,
    future_slots,
    future_weights,
    future_active,
    edges,
    dflat,
    key0: int,
    max_expansions: int,
):
    """Run the compiled kernel; ``None`` means "use the Python path".

    Arguments mirror the preprocessed state of
    :func:`._astar_impl.solve_layer_packed` (slots index the ``active``
    list).  Raises :class:`RoutingError` for genuine search failures so
    behaviour matches the Python kernel exactly.
    """
    m = len(active)
    if n > 64 or len(edges) > 64 or m * nbits > 64 or m == 0:
        return None
    lib = _get_lib()
    if lib is None:
        return None
    if not all(type(d) is int for d in dflat):
        return None

    i32 = ctypes.c_int32
    n_pairs = len(pair_slots)
    n_future = len(future_slots)
    edge_pa = (i32 * len(edges))(*[e[0] for e in edges])
    edge_pb = (i32 * len(edges))(*[e[1] for e in edges])
    c_dflat = (i32 * len(dflat))(*dflat)
    pair_sa = (i32 * max(n_pairs, 1))(*[p[0] for p in pair_slots])
    pair_sb = (i32 * max(n_pairs, 1))(*[p[1] for p in pair_slots])
    fut_sa = (i32 * max(n_future, 1))(*[p[0] for p in future_slots])
    fut_sb = (i32 * max(n_future, 1))(*[p[1] for p in future_slots])
    fut_w = (ctypes.c_double * max(n_future, 1))(*future_weights)
    c_active = (ctypes.c_uint8 * m)(
        *[1 if s in future_active else 0 for s in range(m)]
    )
    # Per-slot future-gate touch lists, flattened (CSR layout).
    touch: list[list[int]] = [[] for _ in range(m)]
    for i, (sa, sb) in enumerate(future_slots):
        touch[sa].append(i)
        if sb != sa:
            touch[sb].append(i)
    tf_start_list = [0]
    tf_idx_list: list[int] = []
    for slot_touch in touch:
        tf_idx_list.extend(slot_touch)
        tf_start_list.append(len(tf_idx_list))
    tf_idx = (i32 * max(len(tf_idx_list), 1))(*tf_idx_list)
    tf_start = (i32 * (m + 1))(*tf_start_list)
    out_pa = (i32 * _MAX_SEQUENCE)()
    out_pb = (i32 * _MAX_SEQUENCE)()

    rc = lib.solve_layer(
        n, nbits, m,
        edge_pa, edge_pb, len(edges),
        c_dflat,
        pair_sa, pair_sb, n_pairs,
        fut_sa, fut_sb, n_future,
        fut_w,
        c_active,
        tf_idx, tf_start,
        key0,
        max_expansions,
        out_pa, out_pb, _MAX_SEQUENCE,
    )
    if rc == -3:
        return None  # capacity issue: fall back to the Python kernel
    if rc == -2:
        raise RoutingError(
            f"A* expanded more than {max_expansions} placements on one "
            "layer; instance too large for layer-exact search"
        )
    if rc == -1:
        raise RoutingError("A* search exhausted without satisfying the layer")
    return [(out_pa[i], out_pb[i]) for i in range(rc)]
