"""Teleportation-based routing (paper Section III-A, footnote 4).

"Another approach is based on teleportation, corresponding to
long-distance transfer of the qubit state.  It requires the creation of
multiqubit entangled states that are preliminarily distributed across
the qubit register and that can be consumed to transfer a qubit state.
Since the distribution of the entangled state requires SWAP gates, the
teleportation approach can be seen as a SWAP-based routing with relaxed
time constraints."

This router implements exactly that trade: when a two-qubit gate's
operands are far apart *and* a corridor of free physical qubits connects
their neighbourhoods, one operand is teleported instead of swapped:

1. two free qubits are reset and entangled into an EPR pair next to the
   target side, and one half is *distributed* along the free corridor by
   SWAPs — operations that touch no data qubit, so the scheduler can
   overlap them with earlier computation (the "relaxed time
   constraints");
2. a Bell measurement (CNOT, H, two measurements) consumes the source
   qubit and the near EPR half;
3. classically conditioned X/Z corrections complete the transfer on the
   far half, which now holds the program qubit;
4. the measured qubits are reset (``prep_z``) and returned to the free
   pool.

Gates below the distance threshold fall back to shortest-path SWAP
insertion.  The output circuit contains measurements and conditioned
gates; verify it with
:func:`repro.verify.equivalent_mapped_with_feedforward`.
"""

from __future__ import annotations

import networkx as nx

from ...core.circuit import Circuit
from ...core import gates as G
from ...core.gates import Gate
from ...devices.device import Device
from ..placement import FREE, Placement
from .base import RoutingError, RoutingResult, device_path

__all__ = ["route_teleport"]


def route_teleport(
    circuit: Circuit,
    device: Device,
    placement: Placement | None = None,
    *,
    min_distance: int = 3,
) -> RoutingResult:
    """Route with teleportation for long-range gates.

    Args:
        circuit: Input circuit on program qubits.
        device: Target device (needs free qubits beyond the circuit width
            for teleportation to engage; otherwise pure SWAP routing).
        placement: Initial placement (default trivial).
        min_distance: Minimum operand distance (in hops) at which
            teleportation is attempted instead of SWAP chains.

    Returns:
        A connectivity-satisfying :class:`RoutingResult`; metadata counts
        ``teleports`` and ``swaps``.  The circuit contains measurements
        and classically conditioned corrections.
    """
    current = (placement or Placement.trivial(device.num_qubits, circuit.num_qubits)).copy()
    initial = current.copy()
    out = Circuit(device.num_qubits, name=circuit.name)
    teleports = 0
    swaps = 0

    def free_set() -> set[int]:
        return {
            p for p in range(device.num_qubits) if current.prog(p) == FREE
        }

    def swap_route(pa: int, pb: int) -> None:
        nonlocal swaps
        path = device_path(device, pa, pb)
        for step in range(len(path) - 2):
            out.append(G.swap(path[step], path[step + 1]))
            current.apply_swap(path[step], path[step + 1])
            swaps += 1

    def find_channel(source: int, target: int):
        """(a, corridor, b): free a ~ source, free b ~ target, free path."""
        free = free_set()
        sources = [p for p in device.neighbours[source] if p in free]
        targets = [p for p in device.neighbours[target] if p in free]
        if not sources or not targets:
            return None
        sub = device.undirected.subgraph(free)
        best = None
        for a in sources:
            for b in targets:
                if a == b:
                    continue
                try:
                    path = nx.shortest_path(sub, b, a)
                except (nx.NetworkXNoPath, nx.NodeNotFound):
                    continue
                if best is None or len(path) < len(best[1]):
                    best = (a, path, b)
        return best

    def teleport(source_phys: int, target_phys: int) -> bool:
        """Teleport the program qubit at ``source_phys`` next to target."""
        nonlocal teleports, swaps
        channel = find_channel(source_phys, target_phys)
        if channel is None:
            return False
        a, path, b = channel  # path runs b -> ... -> a through free qubits

        # 1. Reset and entangle the pair at the target side...
        out.append(G.prep_z(b))
        carrier = path[1] if len(path) > 1 else a
        out.append(G.prep_z(carrier))
        out.append(G.h(b))
        out.append(G.cnot(b, carrier))
        # ...and distribute the mobile half down the free corridor.
        for step in range(1, len(path) - 1):
            out.append(G.swap(path[step], path[step + 1]))
            current.apply_swap(path[step], path[step + 1])
            swaps += 1
        # The mobile half now sits on ``a`` (adjacent to the source).

        # 2. Bell measurement on (source, a).
        out.append(G.cnot(source_phys, a))
        out.append(G.h(source_phys))
        out.append(G.measure(source_phys))
        out.append(G.measure(a))

        # 3. Conditioned corrections on the far half.
        out.append(Gate("x", (b,), condition=(a, 1)))
        out.append(Gate("z", (b,), condition=(source_phys, 1)))

        # 4. Recycle the consumed qubits.
        out.append(G.prep_z(source_phys))
        out.append(G.prep_z(a))

        # Bookkeeping: the program qubit moved source -> b.
        current.apply_swap(source_phys, b)
        teleports += 1
        return True

    for gate in circuit.gates:
        if len(gate.qubits) > 2:
            raise RoutingError(f"decompose {gate.name} before routing")
        if len(gate.qubits) == 2 and gate.is_unitary:
            pa = current.phys(gate.qubits[0])
            pb = current.phys(gate.qubits[1])
            if not device.connected(pa, pb):
                distance = device.distance(pa, pb)
                done = False
                if distance >= min_distance:
                    done = teleport(pa, pb)
                if not done:
                    swap_route(pa, pb)
        out.append(
            gate.remap({q: current.phys(q) for q in gate.qubits})
        )

    return RoutingResult(
        out,
        initial,
        current,
        swaps + teleports,
        "teleport",
        metadata={
            "teleports": teleports,
            "swaps": swaps,
            "min_distance": min_distance,
        },
    )
