"""Latency-aware router — the routing block of Qmap (paper Section V).

Qmap "uses a heuristic algorithm ... for the routing task.  In this case
the cost function (metric to minimize in the routing step) is the circuit
latency that refers to the execution time of the algorithm when
considering the real gate duration.  This means that the routing path
that results in the lowest latency overhead and therefore maximises the
instruction-level parallelism is selected (looking-back feature)."

This router therefore tracks, *while routing*, the cycle at which every
physical qubit becomes free (an incremental ASAP schedule).  When the
front layer is blocked it evaluates candidate SWAPs on two criteria:

1. the distance improvement of the front (and look-ahead) gates — the
   SWAP must make progress; and
2. the cycle at which the SWAP could *start*, i.e. how well it overlaps
   with gates already scheduled — the looking-back feature: a SWAP on
   qubits that have been idle costs less latency than one that must wait
   for busy qubits.
"""

from __future__ import annotations

from ...core.circuit import Circuit
from ...core.dag import DependencyGraph
from ...core import gates as G
from ...devices.device import Device
from ..placement import Placement
from .base import RoutingError, RoutingResult, device_path
from .sabre import _SwapScorer, _candidate_swaps, _extended_set
from ._astar_native import dist_buffer

__all__ = ["route_latency"]


def route_latency(
    circuit: Circuit,
    device: Device,
    placement: Placement | None = None,
    *,
    lookahead: int = 10,
    extended_weight: float = 0.5,
    latency_weight: float = 0.1,
    commutation: bool = False,
) -> RoutingResult:
    """Route minimising estimated latency (Qmap's cost function).

    Args:
        circuit: Input circuit on program qubits.
        device: Target device (durations drive the latency estimates).
        placement: Initial placement (default trivial; Qmap pairs this
            router with
            :func:`~repro.mapping.placement.assignment_placement`).
        lookahead: Look-ahead window size in two-qubit gates.
        extended_weight: Weight of the look-ahead distance term.
        latency_weight: Weight (per cycle) of the SWAP start-delay term —
            the looking-back feature.  0 disables it, reducing the router
            to plain SABRE scoring.
        commutation: Relax gate ordering with the commutation rules of
            [58] (see :mod:`repro.core.commutation`).

    Returns:
        A connectivity-satisfying :class:`RoutingResult`; its metadata
        carries the router's own latency estimate in cycles.
    """
    current = (placement or Placement.trivial(device.num_qubits, circuit.num_qubits)).copy()
    initial = current.copy()
    dag = DependencyGraph(circuit, commutation=commutation)
    dist = device.distance_matrix

    done: set[int] = set()
    front = set(dag.front_layer())
    out = Circuit(device.num_qubits, name=circuit.name)
    added = 0
    # Incremental ASAP schedule on physical qubits.
    avail = [0] * device.num_qubits
    swap_duration = device.duration("swap")
    stall = 0
    max_stall = 4 * device.num_qubits * device.num_qubits + 16

    def executable(index: int) -> bool:
        gate = dag.gate(index)
        if len(gate.qubits) > 2:
            raise RoutingError(f"decompose {gate.name} before routing")
        if len(gate.qubits) == 2 and gate.is_unitary:
            return device.connected(
                current.phys(gate.qubits[0]), current.phys(gate.qubits[1])
            )
        return True

    def emit(index: int) -> None:
        gate = dag.gate(index)
        phys = {q: current.phys(q) for q in gate.qubits}
        out.append(gate.remap(phys))
        start = max((avail[p] for p in phys.values()), default=0)
        finish = start + (0 if gate.is_barrier else device.duration(gate))
        for p in phys.values():
            avail[p] = finish
        done.add(index)
        front.discard(index)
        for succ in dag.successors(index):
            if all(p in done for p in dag.predecessors(succ)):
                front.add(succ)

    # Flattened distance buffer for the native scorer, built once per
    # routing call (None when the native kernel is unavailable).
    c_dist = dist_buffer(dist, device.num_qubits)

    while front:
        progressed = True
        while progressed:
            progressed = False
            for index in sorted(front):
                if executable(index):
                    emit(index)
                    progressed = True
                    stall = 0
        if not front:
            break

        blocked = [dag.gate(i) for i in sorted(front)]
        extended = _extended_set(dag, done, front, lookahead)
        candidates = _candidate_swaps(blocked, current, device)
        if not candidates:
            raise RoutingError("no candidate swaps; is the device connected?")

        scorer = _SwapScorer(
            blocked, extended, dag, current, dist, extended_weight,
            c_dist=c_dist,
        )
        best_swap, best_key = None, None
        for (pa, pb), dist_score in zip(candidates, scorer.scores(candidates)):
            # Looking-back: when could this SWAP start, given the gates
            # already scheduled on its qubits?
            start_delay = max(avail[pa], avail[pb])
            key = (dist_score + latency_weight * start_delay, pa, pb)
            if best_key is None or key < best_key:
                best_key, best_swap = key, (pa, pb)

        assert best_swap is not None
        pa, pb = best_swap
        out.append(G.swap(pa, pb))
        start = max(avail[pa], avail[pb])
        for p in (pa, pb):
            avail[p] = start + swap_duration
        current.apply_swap(pa, pb)
        added += 1
        stall += 1
        if stall > max_stall:
            gate = dag.gate(min(front))
            path = device_path(
                device, current.phys(gate.qubits[0]), current.phys(gate.qubits[1])
            )
            for step in range(len(path) - 2):
                out.append(G.swap(path[step], path[step + 1]))
                current.apply_swap(path[step], path[step + 1])
                added += 1
            stall = 0

    return RoutingResult(
        out,
        initial,
        current,
        added,
        "latency",
        metadata={
            "estimated_latency": max(avail, default=0),
            "lookahead": lookahead,
            "latency_weight": latency_weight,
        },
    )
