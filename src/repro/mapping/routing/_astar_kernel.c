/* Native A* layer-search kernel.
 *
 * Mirror of the pure-Python kernel in `_astar_impl.py`, compiled on
 * demand by `_astar_native.py` (plain `cc -O2 -shared`; no build system,
 * no third-party dependency).  The two implementations must stay
 * semantically identical: same packed-integer state keys, same candidate
 * edge enumeration order (ascending edge id over the sorted undirected
 * edge list), same `(priority, counter)` tie-breaking, and the same IEEE
 * double arithmetic — every float expression here matches the Python
 * expression operation for operation, so priorities are bit-identical
 * and the search pops nodes in exactly the same order.  The Python side
 * verifies availability and falls back transparently, so this file is an
 * accelerator, never a behaviour change.
 *
 * Returns (see solve_layer): >= 0 swap-sequence length, -1 search
 * exhausted, -2 expansion budget exceeded, -3 capacity/allocation
 * failure (caller falls back to the Python kernel).
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef struct {
    double priority;
    uint64_t counter;
    uint64_t key;
    int32_t g;
    int32_t pending;
    double lookahead;
} Entry;

typedef struct {
    uint64_t key;
    int32_t g;
    int32_t parent; /* node index of the parent record, -1 for root */
    int8_t swap_pa;
    int8_t swap_pb;
} Node;

/* ---- binary min-heap on (priority, counter) ---- */

static int entry_lt(const Entry *a, const Entry *b) {
    if (a->priority != b->priority)
        return a->priority < b->priority;
    return a->counter < b->counter;
}

typedef struct {
    Entry *data;
    int64_t size;
    int64_t cap;
} Heap;

static int heap_push(Heap *h, Entry e) {
    if (h->size == h->cap) {
        int64_t ncap = h->cap * 2;
        Entry *nd = (Entry *)realloc(h->data, (size_t)ncap * sizeof(Entry));
        if (!nd)
            return 0;
        h->data = nd;
        h->cap = ncap;
    }
    int64_t i = h->size++;
    h->data[i] = e;
    while (i > 0) {
        int64_t p = (i - 1) / 2;
        if (!entry_lt(&h->data[i], &h->data[p]))
            break;
        Entry tmp = h->data[i];
        h->data[i] = h->data[p];
        h->data[p] = tmp;
        i = p;
    }
    return 1;
}

static Entry heap_pop(Heap *h) {
    Entry top = h->data[0];
    h->data[0] = h->data[--h->size];
    int64_t i = 0;
    for (;;) {
        int64_t l = 2 * i + 1, r = l + 1, best = i;
        if (l < h->size && entry_lt(&h->data[l], &h->data[best]))
            best = l;
        if (r < h->size && entry_lt(&h->data[r], &h->data[best]))
            best = r;
        if (best == i)
            break;
        Entry tmp = h->data[i];
        h->data[i] = h->data[best];
        h->data[best] = tmp;
        i = best;
    }
    return top;
}

/* ---- open-addressing hash map: key -> node index ---- */

typedef struct {
    Node *nodes;
    int32_t n_nodes;
    int32_t cap_nodes;
    int32_t *table; /* power-of-two sized, -1 = empty */
    uint64_t table_mask;
    int64_t table_cap;
} Map;

static uint64_t mix64(uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

static int map_grow_table(Map *m) {
    int64_t ncap = m->table_cap * 2;
    int32_t *nt = (int32_t *)malloc((size_t)ncap * sizeof(int32_t));
    if (!nt)
        return 0;
    memset(nt, 0xFF, (size_t)ncap * sizeof(int32_t));
    uint64_t nmask = (uint64_t)ncap - 1;
    for (int32_t i = 0; i < m->n_nodes; i++) {
        uint64_t j = mix64(m->nodes[i].key) & nmask;
        while (nt[j] >= 0)
            j = (j + 1) & nmask;
        nt[j] = i;
    }
    free(m->table);
    m->table = nt;
    m->table_cap = ncap;
    m->table_mask = nmask;
    return 1;
}

/* Find the node for `key`, or create a fresh record (g = INT32_MAX).
 * Returns the node index, or -1 on allocation failure. */
static int32_t map_find_or_add(Map *m, uint64_t key) {
    uint64_t j = mix64(key) & m->table_mask;
    while (m->table[j] >= 0) {
        int32_t idx = m->table[j];
        if (m->nodes[idx].key == key)
            return idx;
        j = (j + 1) & m->table_mask;
    }
    if ((int64_t)m->n_nodes * 10 >= m->table_cap * 7) {
        if (!map_grow_table(m))
            return -1;
        j = mix64(key) & m->table_mask;
        while (m->table[j] >= 0)
            j = (j + 1) & m->table_mask;
    }
    if (m->n_nodes == m->cap_nodes) {
        int32_t ncap = m->cap_nodes * 2;
        Node *nn = (Node *)realloc(m->nodes, (size_t)ncap * sizeof(Node));
        if (!nn)
            return -1;
        m->nodes = nn;
        m->cap_nodes = ncap;
    }
    int32_t idx = m->n_nodes++;
    m->nodes[idx].key = key;
    m->nodes[idx].g = INT32_MAX;
    m->nodes[idx].parent = -1;
    m->nodes[idx].swap_pa = -1;
    m->nodes[idx].swap_pb = -1;
    m->table[j] = idx;
    return idx;
}

int64_t solve_layer(
    int32_t n, int32_t nbits, int32_t m,
    const int32_t *edge_pa, const int32_t *edge_pb, int32_t n_edges,
    const int32_t *dflat,
    const int32_t *pair_sa, const int32_t *pair_sb, int32_t n_pairs,
    const int32_t *fut_sa, const int32_t *fut_sb, int32_t n_future,
    const double *fut_w,
    const uint8_t *future_active,
    const int32_t *tf_idx, const int32_t *tf_start, /* tf_start: m+1 ints */
    uint64_t key0,
    int64_t max_expansions,
    int32_t *out_pa, int32_t *out_pb, int32_t max_out)
{
    if (n > 64 || n_edges > 64 || (int64_t)m * nbits > 64)
        return -3;

    uint64_t mask = ((uint64_t)1 << nbits) - 1;
    int32_t shift_a[64], shift_b[64], fshift_a[64], fshift_b[64];
    if (n_pairs > 64 || n_future > 64)
        return -3;
    for (int32_t i = 0; i < n_pairs; i++) {
        shift_a[i] = pair_sa[i] * nbits;
        shift_b[i] = pair_sb[i] * nbits;
    }
    for (int32_t i = 0; i < n_future; i++) {
        fshift_a[i] = fut_sa[i] * nbits;
        fshift_b[i] = fut_sb[i] * nbits;
    }
    uint64_t qmask[64];
    memset(qmask, 0, sizeof(qmask));
    for (int32_t e = 0; e < n_edges; e++) {
        qmask[edge_pa[e]] |= (uint64_t)1 << e;
        qmask[edge_pb[e]] |= (uint64_t)1 << e;
    }

    /* Root heuristic terms (mirrors pending_of / lookahead_of). */
    int32_t pending0 = 0;
    for (int32_t i = 0; i < n_pairs; i++)
        pending0 += dflat[((key0 >> shift_a[i]) & mask) * n
                          + ((key0 >> shift_b[i]) & mask)] - 1;
    if (pending0 == 0)
        return 0;
    double lookahead0 = 0.0;
    for (int32_t i = 0; i < n_future; i++)
        lookahead0 += fut_w[i] * (double)(dflat[((key0 >> fshift_a[i]) & mask) * n
                                               + ((key0 >> fshift_b[i]) & mask)] - 1);

    Heap heap;
    heap.cap = 1 << 14;
    heap.size = 0;
    heap.data = (Entry *)malloc((size_t)heap.cap * sizeof(Entry));
    Map map;
    map.cap_nodes = 1 << 14;
    map.n_nodes = 0;
    map.nodes = (Node *)malloc((size_t)map.cap_nodes * sizeof(Node));
    map.table_cap = 1 << 15;
    map.table_mask = (uint64_t)map.table_cap - 1;
    map.table = (int32_t *)malloc((size_t)map.table_cap * sizeof(int32_t));
    if (!heap.data || !map.nodes || !map.table) {
        free(heap.data);
        free(map.nodes);
        free(map.table);
        return -3;
    }
    memset(map.table, 0xFF, (size_t)map.table_cap * sizeof(int32_t));

    int64_t rc = -1; /* default: search exhausted */
    uint64_t counter = 0;

    int32_t root = map_find_or_add(&map, key0);
    map.nodes[root].g = 0;
    Entry e0;
    e0.priority = (double)pending0 / 2.0 + lookahead0;
    e0.counter = counter++;
    e0.key = key0;
    e0.g = 0;
    e0.pending = pending0;
    e0.lookahead = lookahead0;
    if (!heap_push(&heap, e0)) {
        rc = -3;
        goto done;
    }

    int64_t expansions = 0;
    int8_t occ[64];

    while (heap.size > 0) {
        Entry e = heap_pop(&heap);
        int32_t ni = map_find_or_add(&map, e.key);
        if (ni < 0) {
            rc = -3;
            goto done;
        }
        if (e.g > map.nodes[ni].g)
            continue;
        if (e.pending == 0) {
            /* Reconstruct root->goal; sequence length equals g. */
            if (e.g > max_out) {
                rc = -3;
                goto done;
            }
            int32_t idx = ni;
            for (int32_t i = e.g - 1; i >= 0; i--) {
                out_pa[i] = map.nodes[idx].swap_pa;
                out_pb[i] = map.nodes[idx].swap_pb;
                idx = map.nodes[idx].parent;
            }
            rc = e.g;
            goto done;
        }
        if (++expansions > max_expansions) {
            rc = -2;
            goto done;
        }
        uint64_t key = e.key;
        memset(occ, 0xFF, (size_t)n);
        for (int32_t i = 0; i < m; i++)
            occ[(key >> (i * nbits)) & mask] = (int8_t)i;
        /* Candidate edges: operands of unsatisfied pairs, plus operands
         * of satisfied pairs whose program qubit has look-ahead work. */
        uint64_t emask = 0;
        for (int32_t i = 0; i < n_pairs; i++) {
            uint64_t oa = (key >> shift_a[i]) & mask;
            uint64_t ob = (key >> shift_b[i]) & mask;
            if (dflat[oa * n + ob] > 1) {
                emask |= qmask[oa] | qmask[ob];
            } else {
                if (future_active[pair_sa[i]])
                    emask |= qmask[oa];
                if (future_active[pair_sb[i]])
                    emask |= qmask[ob];
            }
        }
        int32_t ng = e.g + 1;
        while (emask) {
            int32_t eid = __builtin_ctzll(emask);
            emask &= emask - 1;
            int32_t pa = edge_pa[eid];
            int32_t pb = edge_pb[eid];
            int32_t x = occ[pa];
            int32_t y = occ[pb];
            uint64_t exor = (uint64_t)(pa ^ pb);
            uint64_t nkey = key;
            if (x >= 0)
                nkey ^= exor << (x * nbits);
            if (y >= 0)
                nkey ^= exor << (y * nbits);
            int32_t si = map_find_or_add(&map, nkey);
            if (si < 0) {
                rc = -3;
                goto done;
            }
            if (ng < map.nodes[si].g) {
                map.nodes[si].g = ng;
                map.nodes[si].parent = ni;
                map.nodes[si].swap_pa = (int8_t)pa;
                map.nodes[si].swap_pb = (int8_t)pb;
                int32_t nsum = 0;
                for (int32_t i = 0; i < n_pairs; i++)
                    nsum += dflat[((nkey >> shift_a[i]) & mask) * n
                                  + ((nkey >> shift_b[i]) & mask)];
                int32_t npending = nsum - n_pairs;
                double d_look = 0.0;
                if (x >= 0) {
                    for (int32_t t = tf_start[x]; t < tf_start[x + 1]; t++) {
                        int32_t i = tf_idx[t];
                        d_look += fut_w[i] * (double)(
                            dflat[((nkey >> fshift_a[i]) & mask) * n
                                  + ((nkey >> fshift_b[i]) & mask)]
                            - dflat[((key >> fshift_a[i]) & mask) * n
                                    + ((key >> fshift_b[i]) & mask)]);
                    }
                }
                if (y >= 0) {
                    for (int32_t t = tf_start[y]; t < tf_start[y + 1]; t++) {
                        int32_t i = tf_idx[t];
                        if (fut_sa[i] == x || fut_sb[i] == x)
                            continue; /* already counted via x */
                        d_look += fut_w[i] * (double)(
                            dflat[((nkey >> fshift_a[i]) & mask) * n
                                  + ((nkey >> fshift_b[i]) & mask)]
                            - dflat[((key >> fshift_a[i]) & mask) * n
                                    + ((key >> fshift_b[i]) & mask)]);
                    }
                }
                double nlookahead = e.lookahead + d_look;
                Entry ne;
                ne.priority = (double)ng + (double)npending / 2.0 + nlookahead;
                ne.counter = counter++;
                ne.key = nkey;
                ne.g = ng;
                ne.pending = npending;
                ne.lookahead = nlookahead;
                if (!heap_push(&heap, ne)) {
                    rc = -3;
                    goto done;
                }
            }
        }
    }

done:
    free(heap.data);
    free(map.nodes);
    free(map.table);
    return rc;
}
