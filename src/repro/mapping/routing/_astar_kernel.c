/* Native mapping kernels: A* layer search + SABRE candidate scoring.
 *
 * Mirror of the pure-Python kernels in `_astar_impl.py` / `sabre.py`,
 * compiled on demand by `_astar_native.py` (plain `cc -O2 -shared`; no
 * build system, no third-party dependency).  The implementations must
 * stay semantically identical to their Python references: same search
 * state identity, same candidate enumeration order (ascending edge id
 * over the sorted undirected edge list), same `(priority, counter)`
 * tie-breaking, and the same IEEE double arithmetic — every float
 * expression here matches the Python expression operation for
 * operation, so priorities are bit-identical and the search pops nodes
 * in exactly the same order.  The Python side verifies availability and
 * falls back transparently, so this file is an accelerator, never a
 * behaviour change.
 *
 * State representation: a search state packs the physical position of
 * each *active* program-qubit slot into a multi-word bitset.  `nbits`
 * bits per slot, `spw = 64 / nbits` slots per 64-bit word (slots never
 * straddle a word boundary), `nwords = ceil(m / spw)` words per key.
 * This lifts the old single-word cap: devices are no longer limited to
 * 64 qubits, 64 edges, or `m * nbits <= 64` packed keys.
 *
 * Entry points:
 *   solve_layer        one A* layer search (preprocessed slot inputs)
 *   solve_layers_batch every layer of a circuit in one FFI crossing
 *                      (per-layer preprocessing + placement evolution
 *                      run natively; amortises ctypes marshalling)
 *   sabre_score_batch  score every candidate SWAP of one SABRE decision
 *                      via the _SwapScorer delta rule
 *
 * Return codes (solve_layer / solve_layers_batch): >= 0 swap-sequence
 * length (total across layers for the batch), -1 search exhausted,
 * -2 expansion budget exceeded, -3 capacity/allocation failure (caller
 * falls back to the Python kernel).
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef struct {
    double priority;
    uint64_t counter;
    int32_t node;   /* index into the node/key arenas */
    int32_t g;
    int64_t pending;
    double lookahead;
} Entry;

typedef struct {
    int32_t g;
    int32_t parent; /* node index of the parent record, -1 for root */
    int32_t swap_pa;
    int32_t swap_pb;
} Node;

/* ---- binary min-heap on (priority, counter) ---- */

static int entry_lt(const Entry *a, const Entry *b) {
    if (a->priority != b->priority)
        return a->priority < b->priority;
    return a->counter < b->counter;
}

typedef struct {
    Entry *data;
    int64_t size;
    int64_t cap;
} Heap;

static int heap_push(Heap *h, Entry e) {
    if (h->size == h->cap) {
        int64_t ncap = h->cap * 2;
        Entry *nd = (Entry *)realloc(h->data, (size_t)ncap * sizeof(Entry));
        if (!nd)
            return 0;
        h->data = nd;
        h->cap = ncap;
    }
    int64_t i = h->size++;
    h->data[i] = e;
    while (i > 0) {
        int64_t p = (i - 1) / 2;
        if (!entry_lt(&h->data[i], &h->data[p]))
            break;
        Entry tmp = h->data[i];
        h->data[i] = h->data[p];
        h->data[p] = tmp;
        i = p;
    }
    return 1;
}

static Entry heap_pop(Heap *h) {
    Entry top = h->data[0];
    h->data[0] = h->data[--h->size];
    int64_t i = 0;
    for (;;) {
        int64_t l = 2 * i + 1, r = l + 1, best = i;
        if (l < h->size && entry_lt(&h->data[l], &h->data[best]))
            best = l;
        if (r < h->size && entry_lt(&h->data[r], &h->data[best]))
            best = r;
        if (best == i)
            break;
        Entry tmp = h->data[i];
        h->data[i] = h->data[best];
        h->data[best] = tmp;
        i = best;
    }
    return top;
}

/* ---- open-addressing hash map: multi-word key -> node index ---- */

static uint64_t mix64(uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

typedef struct {
    Node *nodes;
    uint64_t *keys;  /* node i's key lives at keys[i * nwords] */
    int32_t n_nodes;
    int32_t cap_nodes;
    int32_t *table;  /* power-of-two sized, -1 = empty */
    uint64_t table_mask;
    int64_t table_cap;
    int32_t nwords;
} Map;

static uint64_t key_hash(const uint64_t *key, int32_t nwords) {
    uint64_t h = 0x9E3779B97F4A7C15ULL;
    for (int32_t i = 0; i < nwords; i++)
        h = mix64(h ^ key[i]);
    return h;
}

static int key_eq(const uint64_t *a, const uint64_t *b, int32_t nwords) {
    for (int32_t i = 0; i < nwords; i++)
        if (a[i] != b[i])
            return 0;
    return 1;
}

static int map_grow_table(Map *m) {
    int64_t ncap = m->table_cap * 2;
    int32_t *nt = (int32_t *)malloc((size_t)ncap * sizeof(int32_t));
    if (!nt)
        return 0;
    memset(nt, 0xFF, (size_t)ncap * sizeof(int32_t));
    uint64_t nmask = (uint64_t)ncap - 1;
    for (int32_t i = 0; i < m->n_nodes; i++) {
        uint64_t j = key_hash(m->keys + (size_t)i * m->nwords, m->nwords) & nmask;
        while (nt[j] >= 0)
            j = (j + 1) & nmask;
        nt[j] = i;
    }
    free(m->table);
    m->table = nt;
    m->table_cap = ncap;
    m->table_mask = nmask;
    return 1;
}

/* Find the node for `key`, or create a fresh record (g = INT32_MAX).
 * Returns the node index, or -1 on allocation failure.  May realloc the
 * key arena: callers must not hold raw pointers into `m->keys` across a
 * call (copy the popped key into a local buffer first). */
static int32_t map_find_or_add(Map *m, const uint64_t *key) {
    uint64_t j = key_hash(key, m->nwords) & m->table_mask;
    while (m->table[j] >= 0) {
        int32_t idx = m->table[j];
        if (key_eq(m->keys + (size_t)idx * m->nwords, key, m->nwords))
            return idx;
        j = (j + 1) & m->table_mask;
    }
    if ((int64_t)m->n_nodes * 10 >= m->table_cap * 7) {
        if (!map_grow_table(m))
            return -1;
        j = key_hash(key, m->nwords) & m->table_mask;
        while (m->table[j] >= 0)
            j = (j + 1) & m->table_mask;
    }
    if (m->n_nodes == m->cap_nodes) {
        int32_t ncap = m->cap_nodes * 2;
        Node *nn = (Node *)realloc(m->nodes, (size_t)ncap * sizeof(Node));
        if (!nn)
            return -1;
        m->nodes = nn;
        uint64_t *nk = (uint64_t *)realloc(
            m->keys, (size_t)ncap * m->nwords * sizeof(uint64_t));
        if (!nk)
            return -1;
        m->keys = nk;
        m->cap_nodes = ncap;
    }
    int32_t idx = m->n_nodes++;
    memcpy(m->keys + (size_t)idx * m->nwords, key,
           (size_t)m->nwords * sizeof(uint64_t));
    m->nodes[idx].g = INT32_MAX;
    m->nodes[idx].parent = -1;
    m->nodes[idx].swap_pa = -1;
    m->nodes[idx].swap_pb = -1;
    m->table[j] = idx;
    return idx;
}

/* ---- one A* layer search over multi-word packed states ---- */

typedef struct {
    int32_t n;        /* physical qubits */
    int32_t nbits;    /* bits per slot */
    int32_t m;        /* active slots */
    int32_t nwords;   /* key words */
    uint64_t mask;    /* (1 << nbits) - 1 */
    int32_t n_edges;
    int32_t ewords;   /* edge-mask words */
    const int32_t *edge_pa;
    const int32_t *edge_pb;
    const int32_t *dflat;
    int32_t n_pairs;
    const int32_t *pair_sa;
    const int32_t *pair_sb;
    int32_t n_future;
    const int32_t *fut_sa;
    const int32_t *fut_sb;
    const double *fut_w;
    const uint8_t *future_active;  /* per slot */
    const int32_t *tf_idx;
    const int32_t *tf_start;       /* m + 1 entries */
    const uint64_t *qmask;         /* n rows x ewords incident-edge masks */
    const int32_t *slot_word;      /* word index per slot */
    const int32_t *slot_shift;     /* bit shift per slot */
} Search;

static int64_t slot_pos_of(const Search *s, const uint64_t *key, int32_t slot) {
    return (int64_t)((key[s->slot_word[slot]] >> s->slot_shift[slot]) & s->mask);
}

static int64_t run_search(
    const Search *s,
    const uint64_t *key0,
    int64_t max_expansions,
    int32_t *out_pa, int32_t *out_pb, int32_t max_out)
{
    const int32_t n = s->n;
    const int32_t nwords = s->nwords;

    /* Root heuristic terms (mirrors pending_of / lookahead_of). */
    int64_t pending0 = 0;
    for (int32_t i = 0; i < s->n_pairs; i++)
        pending0 += s->dflat[slot_pos_of(s, key0, s->pair_sa[i]) * n
                             + slot_pos_of(s, key0, s->pair_sb[i])] - 1;
    if (pending0 == 0)
        return 0;
    double lookahead0 = 0.0;
    for (int32_t i = 0; i < s->n_future; i++)
        lookahead0 += s->fut_w[i] * (double)(
            s->dflat[slot_pos_of(s, key0, s->fut_sa[i]) * n
                     + slot_pos_of(s, key0, s->fut_sb[i])] - 1);

    Heap heap;
    heap.cap = 1 << 14;
    heap.size = 0;
    heap.data = (Entry *)malloc((size_t)heap.cap * sizeof(Entry));
    Map map;
    map.nwords = nwords;
    map.cap_nodes = 1 << 14;
    map.n_nodes = 0;
    map.nodes = (Node *)malloc((size_t)map.cap_nodes * sizeof(Node));
    map.keys = (uint64_t *)malloc(
        (size_t)map.cap_nodes * nwords * sizeof(uint64_t));
    map.table_cap = 1 << 15;
    map.table_mask = (uint64_t)map.table_cap - 1;
    map.table = (int32_t *)malloc((size_t)map.table_cap * sizeof(int32_t));
    /* Scratch: occupancy (phys -> slot), candidate edge mask, popped key
     * and neighbour key buffers. */
    int32_t *occ = (int32_t *)malloc((size_t)n * sizeof(int32_t));
    uint64_t *emask = (uint64_t *)malloc((size_t)s->ewords * sizeof(uint64_t));
    uint64_t *ckey = (uint64_t *)malloc((size_t)nwords * sizeof(uint64_t));
    uint64_t *nkey = (uint64_t *)malloc((size_t)nwords * sizeof(uint64_t));
    if (!heap.data || !map.nodes || !map.keys || !map.table
        || !occ || !emask || !ckey || !nkey) {
        free(heap.data); free(map.nodes); free(map.keys); free(map.table);
        free(occ); free(emask); free(ckey); free(nkey);
        return -3;
    }
    memset(map.table, 0xFF, (size_t)map.table_cap * sizeof(int32_t));

    int64_t rc = -1; /* default: search exhausted */
    uint64_t counter = 0;

    int32_t root = map_find_or_add(&map, key0);
    map.nodes[root].g = 0;
    Entry e0;
    e0.priority = (double)pending0 / 2.0 + lookahead0;
    e0.counter = counter++;
    e0.node = root;
    e0.g = 0;
    e0.pending = pending0;
    e0.lookahead = lookahead0;
    if (!heap_push(&heap, e0)) {
        rc = -3;
        goto done;
    }

    int64_t expansions = 0;

    while (heap.size > 0) {
        Entry e = heap_pop(&heap);
        int32_t ni = e.node;
        if (e.g > map.nodes[ni].g)
            continue;
        if (e.pending == 0) {
            /* Reconstruct root->goal; sequence length equals g. */
            if (e.g > max_out) {
                rc = -3;
                goto done;
            }
            int32_t idx = ni;
            for (int32_t i = e.g - 1; i >= 0; i--) {
                out_pa[i] = map.nodes[idx].swap_pa;
                out_pb[i] = map.nodes[idx].swap_pb;
                idx = map.nodes[idx].parent;
            }
            rc = e.g;
            goto done;
        }
        if (++expansions > max_expansions) {
            rc = -2;
            goto done;
        }
        /* The key arena may move on pushes below: work on a copy. */
        memcpy(ckey, map.keys + (size_t)ni * nwords,
               (size_t)nwords * sizeof(uint64_t));
        memset(occ, 0xFF, (size_t)n * sizeof(int32_t));
        for (int32_t i = 0; i < s->m; i++)
            occ[slot_pos_of(s, ckey, i)] = i;
        /* Candidate edges: operands of unsatisfied pairs, plus operands
         * of satisfied pairs whose program qubit has look-ahead work. */
        memset(emask, 0, (size_t)s->ewords * sizeof(uint64_t));
        for (int32_t i = 0; i < s->n_pairs; i++) {
            int64_t oa = slot_pos_of(s, ckey, s->pair_sa[i]);
            int64_t ob = slot_pos_of(s, ckey, s->pair_sb[i]);
            if (s->dflat[oa * n + ob] > 1) {
                const uint64_t *qa = s->qmask + oa * s->ewords;
                const uint64_t *qb = s->qmask + ob * s->ewords;
                for (int32_t w = 0; w < s->ewords; w++)
                    emask[w] |= qa[w] | qb[w];
            } else {
                if (s->future_active[s->pair_sa[i]]) {
                    const uint64_t *qa = s->qmask + oa * s->ewords;
                    for (int32_t w = 0; w < s->ewords; w++)
                        emask[w] |= qa[w];
                }
                if (s->future_active[s->pair_sb[i]]) {
                    const uint64_t *qb = s->qmask + ob * s->ewords;
                    for (int32_t w = 0; w < s->ewords; w++)
                        emask[w] |= qb[w];
                }
            }
        }
        int32_t ng = e.g + 1;
        for (int32_t w = 0; w < s->ewords; w++) {
            uint64_t bits = emask[w];
            while (bits) {
                int32_t eid = (int32_t)(w * 64 + __builtin_ctzll(bits));
                bits &= bits - 1;
                int32_t pa = s->edge_pa[eid];
                int32_t pb = s->edge_pb[eid];
                int32_t x = occ[pa];
                int32_t y = occ[pb];
                uint64_t exor = (uint64_t)(pa ^ pb);
                memcpy(nkey, ckey, (size_t)nwords * sizeof(uint64_t));
                if (x >= 0)
                    nkey[s->slot_word[x]] ^= exor << s->slot_shift[x];
                if (y >= 0)
                    nkey[s->slot_word[y]] ^= exor << s->slot_shift[y];
                int32_t si = map_find_or_add(&map, nkey);
                if (si < 0) {
                    rc = -3;
                    goto done;
                }
                if (ng < map.nodes[si].g) {
                    map.nodes[si].g = ng;
                    map.nodes[si].parent = ni;
                    map.nodes[si].swap_pa = pa;
                    map.nodes[si].swap_pb = pb;
                    int64_t nsum = 0;
                    for (int32_t i = 0; i < s->n_pairs; i++)
                        nsum += s->dflat[slot_pos_of(s, nkey, s->pair_sa[i]) * n
                                         + slot_pos_of(s, nkey, s->pair_sb[i])];
                    int64_t npending = nsum - s->n_pairs;
                    double d_look = 0.0;
                    if (x >= 0) {
                        for (int32_t t = s->tf_start[x]; t < s->tf_start[x + 1]; t++) {
                            int32_t i = s->tf_idx[t];
                            d_look += s->fut_w[i] * (double)(
                                s->dflat[slot_pos_of(s, nkey, s->fut_sa[i]) * n
                                         + slot_pos_of(s, nkey, s->fut_sb[i])]
                                - s->dflat[slot_pos_of(s, ckey, s->fut_sa[i]) * n
                                           + slot_pos_of(s, ckey, s->fut_sb[i])]);
                        }
                    }
                    if (y >= 0) {
                        for (int32_t t = s->tf_start[y]; t < s->tf_start[y + 1]; t++) {
                            int32_t i = s->tf_idx[t];
                            if (s->fut_sa[i] == x || s->fut_sb[i] == x)
                                continue; /* already counted via x */
                            d_look += s->fut_w[i] * (double)(
                                s->dflat[slot_pos_of(s, nkey, s->fut_sa[i]) * n
                                         + slot_pos_of(s, nkey, s->fut_sb[i])]
                                - s->dflat[slot_pos_of(s, ckey, s->fut_sa[i]) * n
                                           + slot_pos_of(s, ckey, s->fut_sb[i])]);
                        }
                    }
                    double nlookahead = e.lookahead + d_look;
                    Entry ne;
                    ne.priority = (double)ng + (double)npending / 2.0 + nlookahead;
                    ne.counter = counter++;
                    ne.node = si;
                    ne.g = ng;
                    ne.pending = npending;
                    ne.lookahead = nlookahead;
                    if (!heap_push(&heap, ne)) {
                        rc = -3;
                        goto done;
                    }
                }
            }
        }
    }

done:
    free(heap.data);
    free(map.nodes);
    free(map.keys);
    free(map.table);
    free(occ);
    free(emask);
    free(ckey);
    free(nkey);
    return rc;
}

/* Fill the per-qubit incident-edge bitmasks (n rows x ewords). */
static void build_qmask(
    uint64_t *qmask, int32_t n, int32_t ewords,
    const int32_t *edge_pa, const int32_t *edge_pb, int32_t n_edges)
{
    memset(qmask, 0, (size_t)n * ewords * sizeof(uint64_t));
    for (int32_t e = 0; e < n_edges; e++) {
        qmask[(size_t)edge_pa[e] * ewords + e / 64] |= (uint64_t)1 << (e % 64);
        qmask[(size_t)edge_pb[e] * ewords + e / 64] |= (uint64_t)1 << (e % 64);
    }
}

/* ---- entry point: one preprocessed layer ---- */

int64_t solve_layer(
    int32_t n, int32_t nbits, int32_t m,
    const int32_t *edge_pa, const int32_t *edge_pb, int32_t n_edges,
    const int32_t *dflat,
    const int32_t *pair_sa, const int32_t *pair_sb, int32_t n_pairs,
    const int32_t *fut_sa, const int32_t *fut_sb, int32_t n_future,
    const double *fut_w,
    const uint8_t *future_active,
    const int32_t *tf_idx, const int32_t *tf_start, /* tf_start: m+1 ints */
    const int32_t *slot_pos,                        /* m physical positions */
    int64_t max_expansions,
    int32_t *out_pa, int32_t *out_pb, int32_t max_out)
{
    if (nbits <= 0 || nbits > 63 || m <= 0)
        return -3;
    int32_t spw = 64 / nbits;
    int32_t nwords = (m + spw - 1) / spw;
    int32_t ewords = (n_edges + 63) / 64;
    if (ewords < 1)
        ewords = 1;

    int32_t *slot_word = (int32_t *)malloc((size_t)m * 2 * sizeof(int32_t));
    uint64_t *qmask = (uint64_t *)malloc(
        (size_t)n * ewords * sizeof(uint64_t));
    uint64_t *key0 = (uint64_t *)calloc((size_t)nwords, sizeof(uint64_t));
    if (!slot_word || !qmask || !key0) {
        free(slot_word); free(qmask); free(key0);
        return -3;
    }
    int32_t *slot_shift = slot_word + m;
    for (int32_t i = 0; i < m; i++) {
        slot_word[i] = i / spw;
        slot_shift[i] = (i % spw) * nbits;
        key0[slot_word[i]] |= (uint64_t)slot_pos[i] << slot_shift[i];
    }
    build_qmask(qmask, n, ewords, edge_pa, edge_pb, n_edges);

    Search s;
    s.n = n; s.nbits = nbits; s.m = m; s.nwords = nwords;
    s.mask = (nbits == 63) ? 0x7FFFFFFFFFFFFFFFULL
                           : (((uint64_t)1 << nbits) - 1);
    s.n_edges = n_edges; s.ewords = ewords;
    s.edge_pa = edge_pa; s.edge_pb = edge_pb;
    s.dflat = dflat;
    s.n_pairs = n_pairs; s.pair_sa = pair_sa; s.pair_sb = pair_sb;
    s.n_future = n_future; s.fut_sa = fut_sa; s.fut_sb = fut_sb;
    s.fut_w = fut_w;
    s.future_active = future_active;
    s.tf_idx = tf_idx; s.tf_start = tf_start;
    s.qmask = qmask;
    s.slot_word = slot_word; s.slot_shift = slot_shift;

    int64_t rc = run_search(&s, key0, max_expansions, out_pa, out_pb, max_out);
    free(slot_word);
    free(qmask);
    free(key0);
    return rc;
}

/* ---- entry point: every layer of one circuit in a single crossing ----
 *
 * Inputs are CSR-concatenated per-layer gate lists over *program*
 * qubits; the per-layer preprocessing (active-slot discovery, slot
 * tables, look-ahead touch lists) and the placement evolution between
 * layers run natively.  `p2h` is the full program->physical permutation
 * (dummies included, length n) and is updated in place as each layer's
 * SWAPs are applied — pass a copy.  `out_start` receives n_layers + 1
 * offsets into the output swap arrays.
 */

int64_t solve_layers_batch(
    int32_t n, int32_t nbits,
    const int32_t *edge_pa, const int32_t *edge_pb, int32_t n_edges,
    const int32_t *dflat,
    int32_t n_layers,
    const int32_t *pair_a, const int32_t *pair_b, const int32_t *pair_start,
    const int32_t *fut_a, const int32_t *fut_b, const double *fut_w_all,
    const int32_t *fut_start,
    int32_t *p2h,
    int64_t max_expansions,
    int32_t *out_pa, int32_t *out_pb, int32_t *out_start, int32_t max_out)
{
    if (nbits <= 0 || nbits > 63 || n <= 0)
        return -3;
    int32_t spw = 64 / nbits;
    int32_t ewords = (n_edges + 63) / 64;
    if (ewords < 1)
        ewords = 1;

    /* Upper bounds for the per-layer scratch: an active slot count can
     * never exceed n, and touch lists hold at most two entries per
     * look-ahead gate. */
    int32_t max_fut = 0;
    for (int32_t l = 0; l < n_layers; l++) {
        int32_t nf = fut_start[l + 1] - fut_start[l];
        if (nf > max_fut)
            max_fut = nf;
    }
    int32_t max_pairs = 0;
    for (int32_t l = 0; l < n_layers; l++) {
        int32_t np = pair_start[l + 1] - pair_start[l];
        if (np > max_pairs)
            max_pairs = np;
    }

    uint64_t *qmask = (uint64_t *)malloc((size_t)n * ewords * sizeof(uint64_t));
    int32_t *slot_word = (int32_t *)malloc((size_t)n * 2 * sizeof(int32_t));
    int32_t *h2p = (int32_t *)malloc((size_t)n * sizeof(int32_t));
    int32_t *slot_of = (int32_t *)malloc((size_t)n * sizeof(int32_t));
    int32_t *active = (int32_t *)malloc((size_t)n * sizeof(int32_t));
    uint8_t *markq = (uint8_t *)calloc((size_t)n, 1);
    int32_t *pair_sa = (int32_t *)malloc((size_t)(max_pairs > 0 ? max_pairs : 1)
                                         * 2 * sizeof(int32_t));
    int32_t *fut_sa = (int32_t *)malloc((size_t)(max_fut > 0 ? max_fut : 1)
                                        * 2 * sizeof(int32_t));
    uint8_t *future_active = (uint8_t *)malloc((size_t)n);
    int32_t *tf_idx = (int32_t *)malloc(
        (size_t)(max_fut > 0 ? 2 * max_fut : 1) * sizeof(int32_t));
    int32_t *tf_start = (int32_t *)malloc((size_t)(n + 1) * sizeof(int32_t));
    int32_t *tf_cur = (int32_t *)malloc((size_t)(n + 1) * sizeof(int32_t));
    int32_t *slot_pos = (int32_t *)malloc((size_t)n * sizeof(int32_t));
    uint64_t *key0 = (uint64_t *)malloc(
        (size_t)((n + spw - 1) / spw) * sizeof(uint64_t));
    int64_t total = -3;
    if (!qmask || !slot_word || !h2p || !slot_of || !active || !markq
        || !pair_sa || !fut_sa || !future_active || !tf_idx || !tf_start
        || !tf_cur || !slot_pos || !key0)
        goto cleanup;
    {
        int32_t *slot_shift = slot_word + n;
        int32_t *pair_sb = pair_sa + (max_pairs > 0 ? max_pairs : 1);
        int32_t *fut_sb = fut_sa + (max_fut > 0 ? max_fut : 1);
        for (int32_t i = 0; i < n; i++) {
            slot_word[i] = i / spw;
            slot_shift[i] = (i % spw) * nbits;
            h2p[p2h[i]] = i;
        }
        build_qmask(qmask, n, ewords, edge_pa, edge_pb, n_edges);

        int32_t used = 0;
        out_start[0] = 0;
        for (int32_t l = 0; l < n_layers; l++) {
            int32_t p0 = pair_start[l], p1 = pair_start[l + 1];
            int32_t f0 = fut_start[l], f1 = fut_start[l + 1];
            int32_t n_pairs = p1 - p0;
            int32_t n_future = f1 - f0;
            /* Active program qubits, ascending (mirrors Python's
             * sorted-set construction). */
            for (int32_t i = p0; i < p1; i++) {
                markq[pair_a[i]] = 1;
                markq[pair_b[i]] = 1;
            }
            for (int32_t i = f0; i < f1; i++) {
                markq[fut_a[i]] = 1;
                markq[fut_b[i]] = 1;
            }
            int32_t m = 0;
            for (int32_t q = 0; q < n; q++) {
                if (markq[q]) {
                    slot_of[q] = m;
                    active[m++] = q;
                    markq[q] = 0;
                }
            }
            if (m == 0) {
                out_start[l + 1] = used;
                continue;
            }
            for (int32_t i = 0; i < n_pairs; i++) {
                pair_sa[i] = slot_of[pair_a[p0 + i]];
                pair_sb[i] = slot_of[pair_b[p0 + i]];
            }
            memset(future_active, 0, (size_t)m);
            memset(tf_cur, 0, (size_t)(m + 1) * sizeof(int32_t));
            for (int32_t i = 0; i < n_future; i++) {
                int32_t sa = slot_of[fut_a[f0 + i]];
                int32_t sb = slot_of[fut_b[f0 + i]];
                fut_sa[i] = sa;
                fut_sb[i] = sb;
                future_active[sa] = 1;
                future_active[sb] = 1;
                tf_cur[sa]++;
                if (sb != sa)
                    tf_cur[sb]++;
            }
            tf_start[0] = 0;
            for (int32_t sl = 0; sl < m; sl++)
                tf_start[sl + 1] = tf_start[sl] + tf_cur[sl];
            memcpy(tf_cur, tf_start, (size_t)(m + 1) * sizeof(int32_t));
            for (int32_t i = 0; i < n_future; i++) {
                tf_idx[tf_cur[fut_sa[i]]++] = i;
                if (fut_sb[i] != fut_sa[i])
                    tf_idx[tf_cur[fut_sb[i]]++] = i;
            }
            for (int32_t i = 0; i < m; i++)
                slot_pos[i] = p2h[active[i]];

            int32_t nwords = (m + spw - 1) / spw;
            memset(key0, 0, (size_t)nwords * sizeof(uint64_t));
            for (int32_t i = 0; i < m; i++)
                key0[slot_word[i]] |= (uint64_t)slot_pos[i] << slot_shift[i];

            Search s;
            s.n = n; s.nbits = nbits; s.m = m; s.nwords = nwords;
            s.mask = (nbits == 63) ? 0x7FFFFFFFFFFFFFFFULL
                                   : (((uint64_t)1 << nbits) - 1);
            s.n_edges = n_edges; s.ewords = ewords;
            s.edge_pa = edge_pa; s.edge_pb = edge_pb;
            s.dflat = dflat;
            s.n_pairs = n_pairs; s.pair_sa = pair_sa; s.pair_sb = pair_sb;
            s.n_future = n_future; s.fut_sa = fut_sa; s.fut_sb = fut_sb;
            s.fut_w = fut_w_all + f0;
            s.future_active = future_active;
            s.tf_idx = tf_idx; s.tf_start = tf_start;
            s.qmask = qmask;
            s.slot_word = slot_word; s.slot_shift = slot_shift;

            int64_t rc = run_search(&s, key0, max_expansions,
                                    out_pa + used, out_pb + used,
                                    max_out - used);
            if (rc < 0) {
                total = rc;
                goto cleanup;
            }
            /* Apply the layer's SWAPs to the evolving placement
             * (mirrors Placement.apply_swap). */
            for (int32_t i = 0; i < (int32_t)rc; i++) {
                int32_t pa = out_pa[used + i];
                int32_t pb = out_pb[used + i];
                int32_t x = h2p[pa], y = h2p[pb];
                h2p[pa] = y;
                h2p[pb] = x;
                p2h[x] = pb;
                p2h[y] = pa;
            }
            used += (int32_t)rc;
            out_start[l + 1] = used;
        }
        total = used;
    }

cleanup:
    free(qmask); free(slot_word); free(h2p); free(slot_of); free(active);
    free(markq); free(pair_sa); free(fut_sa); free(future_active);
    free(tf_idx); free(tf_start); free(tf_cur); free(slot_pos); free(key0);
    return total;
}

/* ---- entry point: SABRE candidate scoring (mirror of _SwapScorer) ----
 *
 * Scores every candidate SWAP of one routing decision via the delta
 * rule: only the gates with an operand on the swapped physical qubits
 * are re-evaluated; everything else reuses the cached base sums.  The
 * accumulation order matches the Python scorer exactly — the entries
 * touching `pa` in index order, then those touching `pb` (skipping the
 * ones already seen via `pa`) — so the result is bit-identical for
 * integer *and* float distance matrices.
 *
 * Returns 0 on success, -3 on allocation failure (caller falls back to
 * the Python scorer).
 */

int32_t sabre_score_batch(
    const int32_t *ent_qa, const int32_t *ent_qb, const uint8_t *ent_front,
    int32_t n_entries,
    const double *dist, int32_t n,
    double front_base, double front_n,
    double ext_base, int32_t ext_n, double weight,
    const int32_t *cand_pa, const int32_t *cand_pb, int32_t n_cand,
    double *out)
{
    /* by_phys CSR: entry indices per physical qubit, in index order
     * (counting sort over the entry list preserves it). */
    int32_t *start = (int32_t *)calloc((size_t)n + 1, sizeof(int32_t));
    int32_t *cur = (int32_t *)malloc(((size_t)n + 1) * sizeof(int32_t));
    int32_t *idx = (int32_t *)malloc(
        (size_t)(n_entries > 0 ? 2 * n_entries : 1) * sizeof(int32_t));
    if (!start || !cur || !idx) {
        free(start); free(cur); free(idx);
        return -3;
    }
    for (int32_t i = 0; i < n_entries; i++) {
        start[ent_qa[i] + 1]++;
        if (ent_qb[i] != ent_qa[i])
            start[ent_qb[i] + 1]++;
    }
    for (int32_t q = 0; q < n; q++)
        start[q + 1] += start[q];
    memcpy(cur, start, ((size_t)n + 1) * sizeof(int32_t));
    for (int32_t i = 0; i < n_entries; i++) {
        idx[cur[ent_qa[i]]++] = i;
        if (ent_qb[i] != ent_qa[i])
            idx[cur[ent_qb[i]]++] = i;
    }

    for (int32_t c = 0; c < n_cand; c++) {
        int32_t pa = cand_pa[c];
        int32_t pb = cand_pb[c];
        double d_front = 0.0;
        double d_ext = 0.0;
        for (int32_t t = start[pa]; t < start[pa + 1]; t++) {
            int32_t i = idx[t];
            int32_t qa = ent_qa[i], qb = ent_qb[i];
            int32_t na = (qa == pa) ? pb : ((qa == pb) ? pa : qa);
            int32_t nb = (qb == pa) ? pb : ((qb == pb) ? pa : qb);
            double delta = dist[(size_t)na * n + nb] - dist[(size_t)qa * n + qb];
            if (ent_front[i])
                d_front += delta;
            else
                d_ext += delta;
        }
        for (int32_t t = start[pb]; t < start[pb + 1]; t++) {
            int32_t i = idx[t];
            int32_t qa = ent_qa[i], qb = ent_qb[i];
            if (qa == pa || qb == pa)
                continue; /* already seen via pa */
            int32_t na = (qa == pa) ? pb : ((qa == pb) ? pa : qa);
            int32_t nb = (qb == pa) ? pb : ((qb == pb) ? pa : qb);
            double delta = dist[(size_t)na * n + nb] - dist[(size_t)qa * n + qb];
            if (ent_front[i])
                d_front += delta;
            else
                d_ext += delta;
        }
        double score = (front_base + d_front) / front_n;
        if (ext_n)
            score += weight * (ext_base + d_ext) / ext_n;
        out[c] = score;
    }
    free(start);
    free(cur);
    free(idx);
    return 0;
}
