"""Common types for qubit routers.

A *router* (Section III-A, task 3) transforms a circuit on program qubits
into a circuit on physical qubits in which every two-qubit gate acts on a
connected pair, by inserting SWAP gates and updating the placement.  All
routers in this package share the :class:`RoutingResult` output type and
the :func:`route` entry point of :mod:`repro.mapping.routing`.

Routers do **not** fix CNOT directions or decompose SWAPs — those are the
jobs of :mod:`repro.mapping.direction` and :mod:`repro.decompose`; they
do guarantee *connectivity* (undirected adjacency) for every two-qubit
gate they emit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...core.circuit import Circuit
from ...devices.device import Device
from ..placement import Placement

__all__ = ["RoutingResult", "RoutingError", "check_connectivity", "device_path"]


class RoutingError(RuntimeError):
    """Raised when a router cannot satisfy the device constraints."""


def device_path(device: Device, a: int, b: int) -> list[int]:
    """:meth:`Device.shortest_path` with routing error semantics.

    A disconnected qubit pair raises the device's typed ``ValueError``;
    inside a router that is a routing failure (the pipeline's fallback
    chain and the CLI both understand :class:`RoutingError`), so convert
    it here instead of letting it escape as a bare ``ValueError``.
    """
    try:
        return device.shortest_path(a, b)
    except ValueError as exc:
        raise RoutingError(str(exc)) from None


@dataclass
class RoutingResult:
    """Outcome of routing one circuit onto one device.

    Attributes:
        circuit: The routed circuit on *physical* qubits
            (``num_qubits == device.num_qubits``), containing the original
            gates (remapped) plus inserted ``swap`` gates.
        initial: Placement before the first gate.
        final: Placement after the last gate (differs from ``initial``
            when SWAPs moved program qubits; the paper's Fig. 2 makes the
            same observation).
        added_swaps: Number of inserted SWAP gates.
        router: Name of the router that produced this result.
        metadata: Router-specific extras (e.g. search statistics).
    """

    circuit: Circuit
    initial: Placement
    final: Placement
    added_swaps: int
    router: str
    metadata: dict = field(default_factory=dict)

    @property
    def depth_overhead(self) -> int:
        """Depth of the routed circuit (compare against the input's)."""
        return self.circuit.depth()


def check_connectivity(circuit: Circuit, device: Device) -> None:
    """Raise :class:`RoutingError` if any 2-qubit gate is on unconnected qubits."""
    for index, gate in enumerate(circuit.gates):
        if len(gate.qubits) == 2 and gate.is_unitary:
            a, b = gate.qubits
            if not device.connected(a, b):
                raise RoutingError(
                    f"gate #{index} ({gate}) acts on unconnected qubits"
                )
        elif len(gate.qubits) > 2:
            raise RoutingError(
                f"gate #{index} ({gate}) has more than two qubits; "
                "decompose before routing"
            )
