"""Naive shortest-path router.

The "straight-forward approach" of the paper's Section IV / Fig. 3(b):
whenever the next two-qubit gate acts on non-adjacent physical qubits,
move one operand toward the other along a shortest path with SWAP gates,
one gate at a time, with no look-ahead and no attempt to pick paths that
help later gates.  It always succeeds (on connected devices) but "yields
a significant overhead" — which is exactly the baseline role it plays in
the benchmarks.
"""

from __future__ import annotations

from ...core.circuit import Circuit
from ...core import gates as G
from ...devices.device import Device
from ..placement import Placement
from .base import RoutingError, RoutingResult, device_path

__all__ = ["route_naive"]


def route_naive(
    circuit: Circuit, device: Device, placement: Placement | None = None
) -> RoutingResult:
    """Route ``circuit`` by per-gate shortest-path SWAP chains.

    Args:
        circuit: Input circuit on program qubits (1- and 2-qubit gates).
        device: Target device.
        placement: Initial placement (default: trivial).

    Returns:
        A :class:`RoutingResult` whose circuit satisfies connectivity.
    """
    current = (placement or Placement.trivial(device.num_qubits, circuit.num_qubits)).copy()
    initial = current.copy()
    out = Circuit(device.num_qubits, name=circuit.name)
    added = 0

    for gate in circuit.gates:
        if len(gate.qubits) > 2:
            raise RoutingError(f"decompose {gate.name} before routing")
        if len(gate.qubits) == 2 and gate.is_unitary:
            pa, pb = current.phys(gate.qubits[0]), current.phys(gate.qubits[1])
            if not device.connected(pa, pb):
                path = device_path(device, pa, pb)
                # Walk the first operand down the path until adjacent.
                for step in range(len(path) - 2):
                    out.append(G.swap(path[step], path[step + 1]))
                    current.apply_swap(path[step], path[step + 1])
                    added += 1
        out.append(gate.remap({q: current.phys(q) for q in gate.qubits}))

    return RoutingResult(out, initial, current, added, "naive")
