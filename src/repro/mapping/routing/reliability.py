"""Reliability-aware router.

Section III-B: "Recent works started optimising directly for circuit
reliability (i.e. minimize the error rate by choosing the most reliable
paths)" — references [45]-[47] and the variability-aware policies of
[50].  The router keeps the SABRE front-layer structure but scores on
*error-weighted* distances derived from a
:class:`~repro.sim.noise.NoiseModel`: the distance between two physical
qubits is the negative log success probability of the most reliable
connecting path, so interacting qubits are steered through the chip's
good edges rather than its geometrically shortest ones.

Two reliability-specific ingredients keep it sound:

* candidate SWAPs must make *strict progress* on the blocked front layer
  (weighted distance decreases) whenever any such swap exists — a flat
  error landscape must not stall the router;
* each candidate is charged the error of the SWAP itself (three
  two-qubit gates on its edge), so marginal detours over good edges do
  not beat a single mediocre hop.

Pair with :func:`repro.mapping.placement.noise_aware_placement` for the
full variability-aware flow.
"""

from __future__ import annotations

import math

from ...core.circuit import Circuit
from ...core.dag import DependencyGraph
from ...core import gates as G
from ...devices.device import Device
from ...sim.noise import NoiseModel
from ..placement import Placement
from .base import RoutingError, RoutingResult, device_path
from .sabre import _SwapScorer, _candidate_swaps, _extended_set, _score

__all__ = ["route_reliability"]


def route_reliability(
    circuit: Circuit,
    device: Device,
    placement: Placement | None = None,
    *,
    noise: NoiseModel | None = None,
    lookahead: int = 20,
    extended_weight: float = 0.5,
) -> RoutingResult:
    """Route with error-weighted distances from ``noise``.

    Args:
        circuit: Input circuit on program qubits.
        device: Target device.
        placement: Initial placement (default trivial; use
            :func:`~repro.mapping.placement.noise_aware_placement` for the
            full variability-aware flow).
        noise: Error model supplying per-edge two-qubit error rates
            (default: a uniform :class:`~repro.sim.noise.NoiseModel`, in
            which case the router behaves like hop-count SABRE up to
            scaling).
        lookahead: Look-ahead window size.
        extended_weight: Weight of the look-ahead term.

    Returns:
        A connectivity-satisfying :class:`RoutingResult`.
    """
    model = noise or NoiseModel()
    dist = model.weighted_distance_matrix(device)

    def swap_error(pa: int, pb: int) -> float:
        error = model.edge_error.get((min(pa, pb), max(pa, pb)), model.error_2q)
        return -3.0 * math.log(max(1.0 - error, 1e-12))

    current = (placement or Placement.trivial(device.num_qubits, circuit.num_qubits)).copy()
    initial = current.copy()
    dag = DependencyGraph(circuit)
    done: set[int] = set()
    front = set(dag.front_layer())
    out = Circuit(device.num_qubits, name=circuit.name)
    added = 0
    stall = 0
    # Tighter than SABRE's guard: on a flat error landscape we prefer to
    # bail out to a plain shortest-path burst early.
    max_stall = 2 * device.num_qubits + 8

    def executable(index: int) -> bool:
        gate = dag.gate(index)
        if len(gate.qubits) > 2:
            raise RoutingError(f"decompose {gate.name} before routing")
        if len(gate.qubits) == 2 and gate.is_unitary:
            return device.connected(
                current.phys(gate.qubits[0]), current.phys(gate.qubits[1])
            )
        return True

    def emit(index: int) -> None:
        gate = dag.gate(index)
        out.append(gate.remap({q: current.phys(q) for q in gate.qubits}))
        done.add(index)
        front.discard(index)
        for succ in dag.successors(index):
            if all(p in done for p in dag.predecessors(succ)):
                front.add(succ)

    while front:
        progressed = True
        while progressed:
            progressed = False
            for index in sorted(front):
                if executable(index):
                    emit(index)
                    progressed = True
                    stall = 0
        if not front:
            break

        blocked = [dag.gate(i) for i in sorted(front)]
        extended = _extended_set(dag, done, front, lookahead)
        candidates = _candidate_swaps(blocked, current, device)
        if not candidates:
            raise RoutingError("no candidate swaps; is the device connected?")

        # The scorer supplies the strict-progress bit via an incremental
        # front-distance delta; the score itself is still a full rescore
        # because its error-weighted float sums drive exact tie-breaks.
        scorer = _SwapScorer(blocked, extended, dag, current, dist, extended_weight)
        scored = []
        for pa, pb in candidates:
            d_front, _ = scorer.deltas(pa, pb)
            current.apply_swap(pa, pb)
            full_score = _score(
                blocked, extended, dag, current, dist, extended_weight
            )
            current.apply_swap(pa, pb)
            scored.append(
                (d_front < -1e-12, full_score + swap_error(pa, pb), pa, pb)
            )
        progressing = [entry for entry in scored if entry[0]]
        pool = progressing or scored
        _, __, pa, pb = min(pool, key=lambda e: e[1:])

        out.append(G.swap(pa, pb))
        current.apply_swap(pa, pb)
        added += 1
        stall += 1
        if stall > max_stall:
            gate = dag.gate(min(front))
            path = device_path(
                device, current.phys(gate.qubits[0]), current.phys(gate.qubits[1])
            )
            for step in range(len(path) - 2):
                out.append(G.swap(path[step], path[step + 1]))
                current.apply_swap(path[step], path[step + 1])
                added += 1
            stall = 0

    return RoutingResult(
        out,
        initial,
        current,
        added,
        "reliability",
        metadata={"lookahead": lookahead, "noise_aware": True},
    )
