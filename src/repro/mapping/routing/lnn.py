"""Linear-nearest-neighbour router with parallel SWAP layers.

The 1D mapping literature the paper surveys (refs [29], [30], [38]:
Saeedi/Wille/Drechsler, Wille/Lye/Drechsler, Hirata et al.) specialises
on linear architectures, where routing reduces to *sorting*: pick a
target line ordering in which every pending two-qubit gate is adjacent,
then realise the reordering with an odd-even transposition network —
disjoint SWAPs executing in parallel, so the added **depth** is bounded
by the number of sorting phases even when the SWAP count is large.

This router processes the circuit's two-qubit dependency layers; for
each layer it chooses a target ordering placing each gate's operands
side by side (pairs anchored near their current centre of mass), sorts
into it with odd-even phases, then emits the layer's gates.  Compared to
the count-minimising SABRE it trades SWAP count for routed depth — the
cost-function trade-off of Section III-B.
"""

from __future__ import annotations

from ...core.circuit import Circuit
from ...core.dag import DependencyGraph
from ...core import gates as G
from ...devices.device import Device
from ..placement import Placement
from .astar import _layered_topological_order
from .base import RoutingError, RoutingResult

__all__ = ["route_lnn", "line_order"]


def line_order(device: Device) -> list[int]:
    """The physical qubits of a path-shaped device in line order.

    Raises:
        RoutingError: when the coupling graph is not a simple path.
    """
    import networkx as nx

    graph = device.undirected
    if device.num_qubits == 1:
        return [0]
    degrees = dict(graph.degree)
    ends = [q for q, d in degrees.items() if d == 1]
    if (
        len(ends) != 2
        or any(d > 2 for d in degrees.values())
        or not nx.is_connected(graph)
    ):
        raise RoutingError(
            f"device {device.name!r} is not a linear chain; "
            "route_lnn needs a path-shaped coupling graph"
        )
    return nx.shortest_path(graph, ends[0], ends[1])


def route_lnn(
    circuit: Circuit,
    device: Device,
    placement: Placement | None = None,
) -> RoutingResult:
    """Route onto a linear chain with parallel odd-even SWAP phases.

    Returns:
        A connectivity-satisfying :class:`RoutingResult`; metadata
        reports ``phases`` (the number of parallel SWAP layers, the
        depth the routing added).
    """
    order = line_order(device)
    position_of = {phys: pos for pos, phys in enumerate(order)}
    current = (placement or Placement.trivial(device.num_qubits, circuit.num_qubits)).copy()
    initial = current.copy()

    for gate in circuit.gates:
        if len(gate.qubits) > 2:
            raise RoutingError(f"decompose {gate.name} before routing")

    dag = DependencyGraph(circuit)
    layers = dag.two_qubit_layers()
    layer_of: dict[int, int] = {}
    for pos, layer in enumerate(layers):
        for index in layer:
            layer_of[index] = pos
    emission_order = _layered_topological_order(dag, layer_of)

    # line[i] = program slot at line position i (dummies included).
    line = [current.slot(order[pos]) for pos in range(len(order))]

    out = Circuit(device.num_qubits, name=circuit.name)
    added = 0
    phases = 0

    def pos_of_slot() -> dict[int, int]:
        return {slot: pos for pos, slot in enumerate(line)}

    def emit_swap(pos: int) -> None:
        nonlocal added
        pa, pb = order[pos], order[pos + 1]
        out.append(G.swap(pa, pb))
        current.apply_swap(pa, pb)
        line[pos], line[pos + 1] = line[pos + 1], line[pos]
        added += 1

    def sort_into(target_pos: dict[int, int], satisfied) -> None:
        """Odd-even transposition toward ``target_pos`` (slot -> position).

        Stops as soon as ``satisfied()`` reports every pending pair
        adjacent — full sorting into the target is only an upper bound.
        """
        nonlocal phases
        n = len(line)
        for phase in range(2 * n + 2):
            if satisfied():
                return
            swapped_any = False
            offset = phase % 2
            planned = []
            for pos in range(offset, n - 1, 2):
                left, right = line[pos], line[pos + 1]
                if target_pos[left] > target_pos[right]:
                    planned.append(pos)
            for pos in planned:
                emit_swap(pos)
                swapped_any = True
            if swapped_any:
                phases += 1
            if all(target_pos[slot] == pos for pos, slot in enumerate(line)):
                if satisfied():
                    return
                raise RoutingError(
                    "target ordering does not satisfy the layer (internal error)"
                )
        raise RoutingError("odd-even sort failed to converge (internal error)")

    def target_ordering(pairs: list[tuple[int, int]]) -> dict[int, int]:
        """A full line ordering making every pair adjacent.

        Pairs are anchored by their centre of mass on the current line,
        then pairs and singleton slots are laid out left to right.
        """
        # Program indices are their own slots (dummies use higher ids),
        # so gate operands can be looked up on the line directly.
        positions = pos_of_slot()
        items: list[tuple[float, list[int]]] = []
        used: set[int] = set()
        for a, b in pairs:
            pa, pb = positions[a], positions[b]
            block = [a, b] if pa <= pb else [b, a]
            items.append(((pa + pb) / 2.0, block))
            used.update((a, b))
        for slot in line:
            if slot not in used:
                items.append((float(positions[slot]), [slot]))
        items.sort(key=lambda item: item[0])
        target: dict[int, int] = {}
        cursor = 0
        for _, block in items:
            for slot in block:
                target[slot] = cursor
                cursor += 1
        return target

    flushed = -1
    for index in emission_order:
        gate = dag.gate(index)
        pos = layer_of.get(index)
        if pos is not None:
            while flushed < pos:
                flushed += 1
                pairs = [tuple(dag.gate(i).qubits) for i in layers[flushed]]

                def layer_satisfied(pairs=pairs) -> bool:
                    positions = pos_of_slot()
                    return all(
                        abs(positions[a] - positions[b]) == 1 for a, b in pairs
                    )

                if not layer_satisfied():
                    sort_into(target_ordering(pairs), layer_satisfied)
        out.append(gate.remap({q: current.phys(q) for q in gate.qubits}))

    return RoutingResult(
        out,
        initial,
        current,
        added,
        "lnn",
        metadata={"phases": phases},
    )
