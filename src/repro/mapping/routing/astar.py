"""Layer-based A* router with look-ahead.

Re-implementation of the methodology of Zulehner, Paler and Wille, "An
efficient methodology for mapping quantum circuits to the IBM QX
architectures" (TCAD 2018) — reference [54] of the paper, the heuristic
used for the paper's Fig. 3(c).  The circuit's two-qubit gates are
partitioned into dependency layers; for each layer an A* search over
placements finds a cheap SWAP sequence making *every* gate of the layer
executable simultaneously, with an optional look-ahead term that biases
the search toward placements that also suit the following layer.

The admissible heuristic is the sum over layer gates of
``distance(a, b) - 1`` divided by the largest per-SWAP improvement
(a single SWAP can reduce the distance of at most two layer gates by one
each), which keeps the search optimal per layer while pruning strongly.
"""

from __future__ import annotations

from ...core.circuit import Circuit
from ...core.dag import DependencyGraph
from ...core import gates as G
from ...devices.device import Device
from ...obs import add_counter
from ...resilience.deadline import current_deadline
from ..placement import Placement
from .base import RoutingError, RoutingResult
from ._astar_impl import solve_layer_packed
from ._astar_native import solve_layers_batch_native

__all__ = ["route_astar"]

#: Hard cap on A* node expansions per layer before falling back to a
#: greedy best-first continuation (keeps worst cases bounded).
_MAX_EXPANSIONS = 200_000


def route_astar(
    circuit: Circuit,
    device: Device,
    placement: Placement | None = None,
    *,
    lookahead_layers: int = 1,
    lookahead_weight: float = 0.5,
) -> RoutingResult:
    """Route ``circuit`` layer by layer with A* SWAP search.

    Args:
        circuit: Input circuit on program qubits.
        device: Target device.
        placement: Initial placement (default trivial).
        lookahead_layers: How many upcoming layers contribute to the
            look-ahead cost (0 disables look-ahead).
        lookahead_weight: Weight of each look-ahead layer's distance sum.

    Returns:
        A connectivity-satisfying :class:`RoutingResult`.
    """
    current = (placement or Placement.trivial(device.num_qubits, circuit.num_qubits)).copy()
    initial = current.copy()
    dag = DependencyGraph(circuit)
    layers = dag.two_qubit_layers()
    dist = device.distance_matrix

    for gate in circuit.gates:
        if len(gate.qubits) > 2:
            raise RoutingError(f"decompose {gate.name} before routing")

    # Per-layer gate operands and look-ahead sets, precomputed so the
    # whole circuit can be handed to the batch kernel in one crossing.
    all_pairs: list[list[tuple[int, int]]] = []
    all_future: list[list[tuple[tuple[int, int], float]]] = []
    for layer_pos, layer in enumerate(layers):
        all_pairs.append([dag.gate(i).qubits for i in layer])
        future: list[tuple[tuple[int, int], float]] = []
        for ahead in range(1, lookahead_layers + 1):
            if layer_pos + ahead < len(layers):
                weight = lookahead_weight**ahead
                future.extend(
                    (dag.gate(i).qubits, weight) for i in layers[layer_pos + ahead]
                )
        all_future.append(future)

    # Solve each layer's SWAP sequence against the evolving placement.
    # With no cooperative deadline to poll, the batch kernel routes every
    # layer in a single FFI crossing (the per-layer preprocessing and the
    # placement evolution run natively); otherwise — or when the native
    # path is unavailable — fall back to the per-layer kernels, which
    # produce byte-identical sequences.
    deadline = current_deadline()
    batched = None
    if deadline is None and layers:
        batched = solve_layers_batch_native(
            device.num_qubits,
            max(1, (device.num_qubits - 1).bit_length()),
            device.undirected_edge_list,
            device.distance_flat,
            all_pairs,
            all_future,
            current.key(),
            _MAX_EXPANSIONS,
        )
    if batched is not None:
        layer_swaps = [list(seq) for seq in batched]
        add_counter("astar.native_layers", len(layers))
        add_counter("astar.batched_circuits", 1)
        add_counter(
            "astar.swaps_emitted", sum(len(seq) for seq in layer_swaps)
        )
    else:
        layer_swaps = []
        for layer_pos, layer in enumerate(layers):
            if deadline is not None:
                deadline.check("astar routing")
            swap_seq = _solve_layer(
                all_pairs[layer_pos], all_future[layer_pos], current, device,
                dist,
            )
            for pa, pb in swap_seq:
                current.apply_swap(pa, pb)
            layer_swaps.append(swap_seq)

    # Rebuild the circuit in a topological order in which two-qubit gates
    # are grouped by layer (the original gate order may interleave
    # independent gates of different layers).  Non-2q gates are emitted
    # eagerly as soon as their dependencies allow, so they keep their
    # earliest legal position.
    layer_of: dict[int, int] = {}
    for pos, layer in enumerate(layers):
        for index in layer:
            layer_of[index] = pos
    order = _layered_topological_order(dag, layer_of)

    replay = initial.copy()
    out = Circuit(device.num_qubits, name=circuit.name)
    added = 0
    flushed = -1
    for index in order:
        gate = dag.gate(index)
        pos = layer_of.get(index)
        if pos is not None:
            while flushed < pos:
                flushed += 1
                for pa, pb in layer_swaps[flushed]:
                    out.append(G.swap(pa, pb))
                    replay.apply_swap(pa, pb)
                    added += 1
        out.append(gate.remap({q: replay.phys(q) for q in gate.qubits}))

    return RoutingResult(
        out,
        initial,
        replay,
        added,
        "astar",
        metadata={
            "lookahead_layers": lookahead_layers,
            "lookahead_weight": lookahead_weight,
            "layers": len(layers),
        },
    )


def _layered_topological_order(
    dag: DependencyGraph, layer_of: dict[int, int]
) -> list[int]:
    """Topological order grouping two-qubit gates by ascending layer.

    Non-2q gates (no entry in ``layer_of``) are released as soon as their
    predecessors are emitted.  Because a layer-``L`` two-qubit gate only
    has two-qubit ancestors of layers below ``L``, picking the smallest
    ``(layer, index)`` among ready gates keeps whole layers contiguous.
    """
    import heapq as _heapq

    pending = {i: len(dag.predecessors(i)) for i in range(len(dag))}
    ready: list = []
    for index, count in pending.items():
        if count == 0:
            _heapq.heappush(ready, (layer_of.get(index, -1), index))
    order: list[int] = []
    while ready:
        _, index = _heapq.heappop(ready)
        order.append(index)
        for succ in dag.successors(index):
            pending[succ] -= 1
            if pending[succ] == 0:
                _heapq.heappush(ready, (layer_of.get(succ, -1), succ))
    if len(order) != len(dag):
        raise RoutingError("dependency graph has a cycle (internal error)")
    return order


def _solve_layer(
    pairs,
    future,
    start: Placement,
    device: Device,
    dist,
) -> list[tuple[int, int]]:
    """A* search for a SWAP sequence making all ``pairs`` adjacent.

    Delegates to the packed-integer kernel of
    :mod:`repro.mapping.routing._astar_impl`: placements are single
    integers (one bit-field slot per program qubit), SWAPs are two XORs,
    and heap entries carry their heuristic terms so nothing is rescored
    at pop time.  With hop-count distances and the dyadic default
    look-ahead weights the kernel is bit-identical to the seed's full
    per-node rescore — same expansions, same tie-breaks, same SWAP
    sequence — at a fraction of the per-node cost.
    """
    return solve_layer_packed(
        list(pairs), list(future), start.key(), device, dist, _MAX_EXPANSIONS
    )
