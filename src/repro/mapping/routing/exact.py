"""Exact (minimal-cost) router for small instances.

Re-implementation of the idea behind Wille, Burgholzer and Zulehner,
"Mapping quantum circuits to IBM QX architectures using the minimal
number of SWAP and H operations" (DAC 2019) — reference [57] of the
paper, the method behind Fig. 3(d).  The mapping problem is cast as a
shortest-path search over *compilation states* and solved exactly with
Dijkstra's algorithm.  A state is the pair

``(set of already-executed two-qubit gates, current placement)``

where the executed set must be downward closed in the two-qubit
dependency DAG — so the search also exploits the freedom to reorder
*independent* gates, not just where to place SWAPs.  Moves:

* a **SWAP** on any coupling edge costs ``swap_cost`` (default: the 7
  elementary gates a SWAP needs on a directed-CNOT device — 3 CNOTs plus
  4 Hadamards for the middle reversed CNOT — or 3 on symmetric devices);
* **executing** a dependency-ready two-qubit gate costs 0 when the
  coupling direction matches and ``flip_cost`` (default 4, the Hadamards
  of the direction flip of Section IV) when it must be reversed.

The result is the provably cheapest SWAP/H realisation.  Like the paper
says, exact approaches "can guarantee minimal solutions ... but [are]
often not that scalable": the state space is ``2^|G| * num_qubits!``,
so both dimensions are guarded.
"""

from __future__ import annotations

import heapq
import itertools

from ...core.circuit import Circuit
from ...core.dag import DependencyGraph
from ...core import gates as G
from ...devices.device import Device
from ..placement import Placement
from .base import RoutingError, RoutingResult

__all__ = ["route_exact", "default_costs"]

#: Above this device size exact search is refused (m! placements).
_MAX_QUBITS = 8
#: Above this two-qubit gate count the done-set bitmask is refused.
_MAX_TWOQ = 24


def default_costs(device: Device) -> tuple[int, int]:
    """``(swap_cost, flip_cost)`` in elementary gates for ``device``.

    On devices with directed CNOTs a routing SWAP decomposes into 3 CNOTs
    of which the middle one must be reversed with 4 Hadamards (7 gates);
    flipping a circuit CNOT costs 4 Hadamards.  On symmetric devices a
    SWAP is 3 entanglers and no flips are ever needed.
    """
    if device.symmetric:
        return 3, 0
    return 7, 4


def route_exact(
    circuit: Circuit,
    device: Device,
    placement: Placement | None = None,
    *,
    swap_cost: int | None = None,
    flip_cost: int | None = None,
    optimize_placement: bool = False,
) -> RoutingResult:
    """Minimal-cost routing by Dijkstra over (executed gates, placement).

    Args:
        circuit: Input circuit on program qubits.
        device: Target device (at most ``8`` qubits).
        placement: Initial placement; with ``optimize_placement=True`` the
            search instead starts from *every* placement at cost 0,
            returning the global optimum over initial placements as well
            (as the exact approach [57] does).
        swap_cost: Cost charged per inserted SWAP (default from
            :func:`default_costs`).
        flip_cost: Cost charged per direction-reversed CNOT.
        optimize_placement: Free choice of initial placement.

    Returns:
        A :class:`RoutingResult`; ``metadata["cost"]`` carries the optimal
        objective value and ``metadata["flips"]`` the number of CNOTs the
        direction pass will need to reverse.
    """
    if device.num_qubits > _MAX_QUBITS:
        raise RoutingError(
            f"exact routing limited to {_MAX_QUBITS} qubits "
            f"(device has {device.num_qubits})"
        )
    base_swap, base_flip = default_costs(device)
    swap_cost = base_swap if swap_cost is None else swap_cost
    flip_cost = base_flip if flip_cost is None else flip_cost

    for gate in circuit.gates:
        if len(gate.qubits) > 2:
            raise RoutingError(f"decompose {gate.name} before routing")

    # Two-qubit gates and their dependency structure (via shared qubits).
    twoq_indices = [i for i, g in enumerate(circuit.gates) if g.is_two_qubit]
    if len(twoq_indices) > _MAX_TWOQ:
        raise RoutingError(
            f"exact routing limited to {_MAX_TWOQ} two-qubit gates "
            f"(circuit has {len(twoq_indices)})"
        )
    twoq = [circuit.gates[i] for i in twoq_indices]
    preds_mask = _dependency_masks(twoq)
    full_mask = (1 << len(twoq)) - 1

    start = (placement or Placement.trivial(device.num_qubits, circuit.num_qubits)).copy()
    edges = device.undirected_edges()

    counter = itertools.count()
    heap: list = []
    best: dict[tuple[int, tuple[int, ...]], float] = {}
    parents: dict = {}

    def push(state, cost, parent, move):
        if cost < best.get(state, float("inf")):
            best[state] = cost
            parents[state] = (parent, move)
            heapq.heappush(heap, (cost, next(counter), state))

    if optimize_placement:
        for perm in itertools.permutations(range(device.num_qubits)):
            push((0, perm), 0.0, None, None)
    else:
        push((0, start.key()), 0.0, None, None)

    final_state = None
    while heap:
        cost, _, state = heapq.heappop(heap)
        if cost > best.get(state, float("inf")):
            continue
        mask, key = state
        if mask == full_mask:
            final_state = state
            break
        pl = Placement(list(key), start.num_program)
        # Execute any dependency-ready, connected gate.
        for k, gate in enumerate(twoq):
            bit = 1 << k
            if mask & bit or (preds_mask[k] & mask) != preds_mask[k]:
                continue
            pa, pb = pl.phys(gate.qubits[0]), pl.phys(gate.qubits[1])
            if not device.connected(pa, pb):
                continue
            needs_flip = (
                not device.symmetric
                and not gate.is_symmetric
                and not device.has_edge(pa, pb)
            )
            push(
                (mask | bit, key),
                cost + (flip_cost if needs_flip else 0),
                state,
                ("exec", k, needs_flip),
            )
        # Or apply any SWAP.
        for ea, eb in edges:
            pl.apply_swap(ea, eb)
            push((mask, pl.key()), cost + swap_cost, state, ("swap", (ea, eb)))
            pl.apply_swap(ea, eb)

    if final_state is None:
        raise RoutingError("exact search found no solution (device disconnected?)")

    moves = _backtrack(parents, final_state)
    start_key = _start_key(parents, final_state)
    initial = Placement(list(start_key), start.num_program)
    out, replay, added, flips = _rebuild(circuit, twoq_indices, moves, initial, device)

    return RoutingResult(
        out,
        initial,
        replay,
        added,
        "exact",
        metadata={
            "cost": best[final_state],
            "flips": flips,
            "swap_cost": swap_cost,
            "flip_cost": flip_cost,
            "optimized_placement": optimize_placement,
        },
    )


def _dependency_masks(twoq) -> list[int]:
    """Direct-predecessor bitmasks over the two-qubit subsequence."""
    masks = [0] * len(twoq)
    last_on_qubit: dict[int, int] = {}
    for k, gate in enumerate(twoq):
        for q in gate.qubits:
            if q in last_on_qubit:
                masks[k] |= 1 << last_on_qubit[q]
            last_on_qubit[q] = k
    # Close transitively so a single mask check suffices.
    for k in range(len(twoq)):
        frontier = masks[k]
        closed = 0
        while frontier:
            bit = frontier & -frontier
            frontier &= frontier - 1
            j = bit.bit_length() - 1
            if not closed & bit:
                closed |= bit
                frontier |= masks[j] & ~closed
        masks[k] = closed
    return masks


def _backtrack(parents, state) -> list:
    moves = []
    while parents[state][1] is not None:
        parent, move = parents[state]
        moves.append(move)
        state = parent
    moves.reverse()
    return moves


def _start_key(parents, state) -> tuple[int, ...]:
    while parents[state][1] is not None:
        state = parents[state][0]
    return state[1]


def _rebuild(circuit, twoq_indices, moves, initial, device):
    """Interleave the solved move sequence with the original 1q gates."""
    dag = DependencyGraph(circuit)
    emitted: set[int] = set()
    out = Circuit(device.num_qubits, name=circuit.name)
    replay = initial.copy()
    added = 0
    flips = 0
    twoq_set = set(twoq_indices)

    def flush_ready_non2q() -> None:
        progressed = True
        while progressed:
            progressed = False
            for index in range(len(circuit.gates)):
                if index in emitted or index in twoq_set:
                    continue
                if all(p in emitted for p in dag.predecessors(index)):
                    gate = circuit.gates[index]
                    out.append(
                        gate.remap({q: replay.phys(q) for q in gate.qubits})
                    )
                    emitted.add(index)
                    progressed = True

    for move in moves:
        if move[0] == "swap":
            pa, pb = move[1]
            out.append(G.swap(pa, pb))
            replay.apply_swap(pa, pb)
            added += 1
        else:
            _, k, needs_flip = move
            flush_ready_non2q()
            index = twoq_indices[k]
            gate = circuit.gates[index]
            out.append(gate.remap({q: replay.phys(q) for q in gate.qubits}))
            emitted.add(index)
            flips += int(needs_flip)
    flush_ready_non2q()
    if len(emitted) != len(circuit.gates):
        raise RoutingError("exact rebuild lost gates (internal error)")
    return out, replay, added, flips
