"""Control-constraint-aware scheduling (paper Section V).

Superconducting chips share classical control electronics among qubits,
which "may severely affect the scheduling of quantum operations as it
will limit the possible parallelism leading to larger circuit depths".
This module implements a greedy cycle-driven list scheduler enforcing the
three Surface-17 constraint families described in the paper:

1. **Shared waveform generators.**  Qubits of one frequency group share a
   microwave source: the *same* single-qubit gate may start on several of
   them in the same cycle, but *different* single-qubit gates may not,
   and a new gate cannot start in a group while a different one is still
   playing.
2. **Shared feedlines.**  Measurements of qubits on one feedline may
   start together, but a measurement "cannot start ... while still
   measuring" another qubit on the same line.
3. **CZ parking.**  While a CZ runs, spectator neighbours of the detuned
   qubit that sit at the operating frequency are parked and "cannot be
   involved in any single or two-qubit gate".

Disable any subset via the keyword flags to measure each family's impact
(the ablation benchmark of DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.circuit import Circuit
from ..core.dag import DependencyGraph
from ..core.gates import Gate
from ..devices.device import ControlConstraints, Device
from .scheduler import Schedule, ScheduledGate, touched_qubits

__all__ = ["schedule_with_constraints"]


@dataclass
class _Running:
    """A gate currently in flight."""

    gate: Gate
    start: int
    end: int


def _uses_feedline(gate: Gate) -> bool:
    """Measurements and preparations occupy the readout feedline."""
    return gate.is_measurement or gate.name == "prep_z"


def schedule_with_constraints(
    circuit: Circuit,
    device: Device,
    *,
    awg: bool = True,
    feedlines: bool = True,
    parking: bool = True,
    serial_two_qubit: bool | None = None,
    priority: str = "order",
) -> Schedule:
    """Greedy earliest-start schedule honouring control constraints.

    Args:
        circuit: A circuit already mapped and decomposed for ``device``
            (physical qubits, native gates).
        device: Target device; when it carries no
            :class:`~repro.devices.device.ControlConstraints` the result
            equals :func:`~repro.mapping.scheduler.asap_schedule`.
        awg: Enforce the shared-waveform-generator rule.
        feedlines: Enforce the shared-feedline measurement rule.
        parking: Enforce CZ parking.
        serial_two_qubit: Allow at most one two-qubit gate in flight at a
            time, as on trapped-ion modules whose entangler shares the
            collective vibrational bus (Sec. VI-C).  Default: on when the
            device carries the ``"serial_two_qubit"`` feature.
        priority: Tie-breaking among ready gates: ``"order"`` follows the
            program order (deterministic, matches the paper's hand
            schedules), ``"critical"`` prefers gates with the longest
            duration-weighted path to the circuit's end (list scheduling
            by criticality, often lower latency under tight constraints).

    Returns:
        A valid :class:`~repro.mapping.scheduler.Schedule`.
    """
    if priority not in ("order", "critical"):
        raise ValueError(f"unknown priority {priority!r}")
    constraints = device.constraints or ControlConstraints()
    if serial_two_qubit is None:
        serial_two_qubit = "serial_two_qubit" in device.features
    dag = DependencyGraph(circuit)
    n_gates = len(circuit.gates)
    done: set[int] = set()
    finished_at: dict[int, int] = {}
    ready: set[int] = set(dag.front_layer())
    items: list[ScheduledGate] = []
    running: list[_Running] = []
    qubit_free = [0] * circuit.num_qubits
    parked_until = [0] * circuit.num_qubits
    cycle = 0

    def duration(gate: Gate) -> int:
        return 0 if gate.is_barrier else device.duration(gate)

    # Criticality: duration-weighted longest path from each gate to the
    # end of the circuit (computed on the reversed topological order).
    criticality = [0] * n_gates
    if priority == "critical":
        import networkx as nx

        for node in reversed(list(nx.topological_sort(dag.graph))):
            tail = max(
                (criticality[s] for s in dag.successors(node)), default=0
            )
            criticality[node] = duration(dag.gate(node)) + tail

    def ready_order() -> list[int]:
        if priority == "critical":
            return sorted(ready, key=lambda i: (-criticality[i], i))
        return sorted(ready)

    def deps_done_by(index: int) -> int:
        """First cycle at which all predecessors have finished."""
        return max(
            (finished_at[p] for p in dag.predecessors(index)),
            default=0,
        )

    def awg_conflict(gate: Gate, start: int) -> bool:
        """Different 1q gates cannot share a frequency group concurrently."""
        if not awg or len(gate.qubits) != 1 or not gate.is_unitary:
            return False
        group = constraints.frequency_group.get(gate.qubits[0])
        if group is None:
            return False
        signature = (gate.name, gate.params)
        for run in running:
            other = run.gate
            if len(other.qubits) != 1 or not other.is_unitary:
                continue
            if constraints.frequency_group.get(other.qubits[0]) != group:
                continue
            if run.start == start and (other.name, other.params) == signature:
                continue  # identical gate co-starting: allowed
            if run.end > start:
                return True
        return False

    def feedline_conflict(gate: Gate, start: int) -> bool:
        """Feedline operations (measure, prep) share the readout line.

        Same-kind operations on one feedline may start together; a new
        one cannot start while a different one (or a non-co-started one)
        is still in flight.
        """
        if not feedlines or not _uses_feedline(gate):
            return False
        line = constraints.feedline.get(gate.qubits[0])
        if line is None:
            return False
        for run in running:
            if not _uses_feedline(run.gate):
                continue
            if constraints.feedline.get(run.gate.qubits[0]) != line:
                continue
            if run.start == start and run.gate.name == gate.name:
                continue  # identical kind co-starting: one shared tone
            if run.end > start:
                return True
        return False

    def parking_conflicts(gate: Gate, start: int, dur: int) -> bool:
        """Check parking in both directions for a candidate gate."""
        # The candidate's operands must not be parked.
        for q in gate.qubits:
            if parked_until[q] > start:
                return True
        if not parking or gate.name != "cz":
            return False
        parked = constraints.parked_qubits(
            gate.qubits[0], gate.qubits[1], device.neighbours
        )
        # Parked spectators must be idle for the whole CZ window; since
        # we only look at current occupancy, require them free by start
        # and not running anything that overlaps [start, start + dur).
        for q in parked:
            if qubit_free[q] > start:
                return True
        return False

    def can_start(index: int, start: int) -> bool:
        gate = dag.gate(index)
        if deps_done_by(index) > start:
            return False
        qubits = touched_qubits(gate, circuit.num_qubits)
        if any(qubit_free[q] > start for q in qubits):
            return False
        dur = duration(gate)
        if gate.is_unitary or gate.is_measurement:
            if parking_conflicts(gate, start, dur):
                return False
        if awg_conflict(gate, start):
            return False
        if feedline_conflict(gate, start):
            return False
        if (
            serial_two_qubit
            and gate.is_unitary
            and len(gate.qubits) == 2
            and any(
                run.gate.is_unitary and len(run.gate.qubits) == 2
                for run in running
                if run.end > start
            )
        ):
            return False
        return True

    def start_gate(index: int, start: int) -> None:
        gate = dag.gate(index)
        dur = duration(gate)
        items.append(ScheduledGate(gate, start, dur))
        running.append(_Running(gate, start, start + dur))
        qubits = touched_qubits(gate, circuit.num_qubits)
        for q in qubits:
            qubit_free[q] = start + dur
        if parking and gate.name == "cz":
            for q in constraints.parked_qubits(
                gate.qubits[0], gate.qubits[1], device.neighbours
            ):
                parked_until[q] = max(parked_until[q], start + dur)
        done.add(index)
        finished_at[index] = start + dur
        ready.discard(index)
        for succ in dag.successors(index):
            if all(p in done for p in dag.predecessors(succ)):
                ready.add(succ)

    safety = 0
    max_cycles = 64 * (sum(duration(g) for g in circuit.gates) + n_gates + 4)
    while len(done) < n_gates:
        running = [run for run in running if run.end > cycle]
        started = True
        while started:
            started = False
            # Default: the original program order, deterministic and
            # close to the paper's hand schedules; "critical" prefers
            # long dependency tails.
            for index in ready_order():
                if index in done:
                    continue
                if can_start(index, cycle):
                    start_gate(index, cycle)
                    started = True
        cycle += 1
        safety += 1
        if safety > max_cycles:
            raise RuntimeError(
                "constraint scheduler exceeded its cycle budget; "
                "constraints are unsatisfiable or inconsistent"
            )

    schedule = Schedule(
        items,
        circuit.num_qubits,
        device.cycle_time_ns,
        metadata={"awg": awg, "feedlines": feedlines, "parking": parking},
    )
    return schedule
