"""Qubit placement: the program-qubit to physical-qubit map.

Section III-A, task 2: "initialize and maintain the map specifying which
physical qubit is associated to each program qubit".  The paper's
Section VI-B represents placement as "an array of integers of size equal
to the number of physical qubits: the k-th entry corresponds to the index
of the program qubit associated to the k-th physical qubit, apart from a
special integer indicating that the qubit is free".  :class:`Placement`
implements exactly that array (plus the inverse view), with free physical
qubits carrying *dummy* program indices ``n, n+1, ...`` so that the
placement is always a full bijection — which makes routing SWAPs and
final-permutation equivalence checks uniform.

Initial-placement strategies:

* :func:`trivial_placement` — program qubit ``i`` on physical qubit ``i``;
* :func:`random_placement` — a seeded random bijection (baseline);
* :func:`greedy_placement` — interaction-graph driven: busiest program
  qubits onto best-connected physical neighbourhoods;
* :func:`assignment_placement` — the "ILP block" of Qmap (Section V),
  realised as a quadratic-assignment heuristic: a greedy seed refined by
  pairwise-exchange hill climbing on the weighted-distance objective;
* :func:`exhaustive_placement` — brute force over all injections, the
  exact optimum for small instances.
"""

from __future__ import annotations

import itertools
import random
from typing import Sequence

from ..core.circuit import Circuit
from ..devices.device import Device

__all__ = [
    "Placement",
    "FREE",
    "placement_cost",
    "trivial_placement",
    "random_placement",
    "greedy_placement",
    "assignment_placement",
    "exhaustive_placement",
    "get_placer",
    "PLACERS",
]

#: Marker returned by :meth:`Placement.prog` for free physical qubits.
FREE = -1


class Placement:
    """A bijection between program qubits (plus dummies) and physical qubits.

    Program qubits ``0 .. num_program - 1`` are real; indices
    ``num_program .. num_physical - 1`` are dummies standing for free
    physical qubits, so every physical qubit always hosts exactly one
    (possibly dummy) program index.
    """

    __slots__ = ("num_program", "_p2h", "_h2p")

    def __init__(self, prog_to_phys: Sequence[int], num_program: int | None = None):
        """Args:
            prog_to_phys: ``prog_to_phys[i]`` is the physical qubit hosting
                program index ``i``; must be a permutation of
                ``0 .. len - 1``.
            num_program: How many leading indices are real program qubits
                (defaults to all of them).
        """
        m = len(prog_to_phys)
        if sorted(prog_to_phys) != list(range(m)):
            raise ValueError(f"{list(prog_to_phys)!r} is not a permutation")
        self.num_program = m if num_program is None else int(num_program)
        if not 0 <= self.num_program <= m:
            raise ValueError("num_program out of range")
        self._p2h = list(prog_to_phys)
        self._h2p = [0] * m
        for prog, phys in enumerate(self._p2h):
            self._h2p[phys] = prog

    # ------------------------------------------------------------------

    @classmethod
    def trivial(cls, num_physical: int, num_program: int | None = None) -> "Placement":
        """Identity placement on ``num_physical`` qubits."""
        return cls(list(range(num_physical)), num_program)

    @classmethod
    def from_partial(
        cls, mapping: dict[int, int], num_program: int, num_physical: int
    ) -> "Placement":
        """Complete a partial program->physical map with dummies.

        Args:
            mapping: Physical target for each real program qubit
                (must cover ``0 .. num_program - 1`` injectively).
        """
        if sorted(mapping) != list(range(num_program)):
            raise ValueError("mapping must cover every program qubit")
        used = set(mapping.values())
        if len(used) != num_program:
            raise ValueError("mapping is not injective")
        free = [p for p in range(num_physical) if p not in used]
        p2h = [mapping[i] for i in range(num_program)] + free
        return cls(p2h, num_program)

    # ------------------------------------------------------------------

    @property
    def num_physical(self) -> int:
        return len(self._p2h)

    def phys(self, prog: int) -> int:
        """Physical qubit hosting program index ``prog``."""
        return self._p2h[prog]

    def prog(self, phys: int) -> int:
        """Program index on physical qubit ``phys`` (:data:`FREE` if dummy)."""
        p = self._h2p[phys]
        return p if p < self.num_program else FREE

    def slot(self, phys: int) -> int:
        """Program index on ``phys`` including dummies (always valid)."""
        return self._h2p[phys]

    def prog_to_phys(self) -> list[int]:
        """Copy of the program->physical array (dummies included)."""
        return list(self._p2h)

    def phys_to_prog(self) -> list[int]:
        """The paper's array: program index per physical qubit, FREE for dummies."""
        return [self.prog(p) for p in range(self.num_physical)]

    def apply_swap(self, phys_a: int, phys_b: int) -> None:
        """Record a SWAP on physical qubits ``phys_a`` and ``phys_b``."""
        pa, pb = self._h2p[phys_a], self._h2p[phys_b]
        self._h2p[phys_a], self._h2p[phys_b] = pb, pa
        self._p2h[pa], self._p2h[pb] = phys_b, phys_a

    def copy(self) -> "Placement":
        return Placement(self._p2h, self.num_program)

    def key(self) -> tuple[int, ...]:
        """Hashable identity of the placement (for search visited-sets)."""
        return tuple(self._p2h)

    def permutation_to(self, final: "Placement") -> list[int]:
        """Physical permutation sigma with ``sigma[p]`` = where the state
        initially on physical qubit ``p`` resides under ``final``.

        Used by the equivalence checker: the mapped circuit equals the
        original (placed initially) followed by this permutation.
        """
        if final.num_physical != self.num_physical:
            raise ValueError("placements have different sizes")
        return [final._p2h[self._h2p[p]] for p in range(self.num_physical)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Placement):
            return NotImplemented
        return self._p2h == other._p2h and self.num_program == other.num_program

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"q{i}->Q{self._p2h[i]}" for i in range(self.num_program)
        )
        return f"<Placement {pairs}>"


# ---------------------------------------------------------------------------
# Cost model shared by the placement strategies
# ---------------------------------------------------------------------------

def placement_cost(
    circuit: Circuit,
    device: Device,
    placement: Placement,
    distance_matrix=None,
) -> float:
    """Weighted routing-distance estimate of a placement.

    With the default hop-count matrix: sum over two-qubit gates of
    ``distance(phys_a, phys_b) - 1`` — zero when every interacting pair
    is adjacent, and a lower bound on the number of SWAPs routing will
    need (each SWAP reduces one gate's distance by at most one).

    With an explicit ``distance_matrix`` (e.g. error-weighted distances
    from :meth:`repro.sim.noise.NoiseModel.weighted_distance_matrix`):
    sum of ``weight * distance`` without the adjacency discount, so
    adjacent-but-unreliable edges still cost — the basis of noise-aware
    placement.
    """
    total = 0.0
    if distance_matrix is None:
        for (a, b), weight in circuit.interaction_pairs().items():
            d = device.distance(placement.phys(a), placement.phys(b))
            total += weight * max(0, d - 1)
    else:
        for (a, b), weight in circuit.interaction_pairs().items():
            total += weight * distance_matrix[placement.phys(a)][placement.phys(b)]
    return total


def noise_aware_placement(
    circuit: Circuit,
    device: Device,
    noise,
    *,
    max_rounds: int = 20,
) -> Placement:
    """Variability-aware placement (Section III-B, [45]-[47], [50]).

    Hill-climbs the error-weighted distance objective, so interacting
    program qubits land on the device's most *reliable* region rather
    than merely a well-connected one.

    Args:
        noise: A :class:`repro.sim.noise.NoiseModel` with per-edge errors.
    """
    matrix = noise.weighted_distance_matrix(device)
    placement = greedy_placement(circuit, device)
    best = placement_cost(circuit, device, placement, matrix)
    m = device.num_qubits
    for _ in range(max_rounds):
        improved = False
        for a in range(m):
            for b in range(a + 1, m):
                placement.apply_swap(a, b)
                cost = placement_cost(circuit, device, placement, matrix)
                if cost < best - 1e-12:
                    best = cost
                    improved = True
                else:
                    placement.apply_swap(a, b)
        if not improved:
            break
    return placement


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

def trivial_placement(circuit: Circuit, device: Device) -> Placement:
    """Program qubit ``i`` on physical qubit ``i`` (the paper's default)."""
    _check_fits(circuit, device)
    return Placement.trivial(device.num_qubits, circuit.num_qubits)


def random_placement(
    circuit: Circuit, device: Device, seed: int = 0
) -> Placement:
    """A uniformly random placement (baseline for ablations)."""
    _check_fits(circuit, device)
    rng = random.Random(seed)
    perm = list(range(device.num_qubits))
    rng.shuffle(perm)
    return Placement(perm, circuit.num_qubits)


def greedy_placement(circuit: Circuit, device: Device) -> Placement:
    """Interaction-graph greedy placement.

    Repeatedly takes the unplaced program qubit with the strongest
    interaction to already-placed ones and puts it on the free physical
    qubit minimising the weighted distance to its placed partners —
    seeding with the busiest program qubit on the best-connected physical
    qubit.
    """
    _check_fits(circuit, device)
    n, m = circuit.num_qubits, device.num_qubits
    weights = circuit.interaction_pairs()
    strength = [0] * n
    partners: dict[int, list[tuple[int, int]]] = {q: [] for q in range(n)}
    for (a, b), w in weights.items():
        strength[a] += w
        strength[b] += w
        partners[a].append((b, w))
        partners[b].append((a, w))

    order = sorted(range(n), key=lambda q: -strength[q])
    degree = [len(device.neighbours[p]) for p in range(m)]
    mapping: dict[int, int] = {}
    used: set[int] = set()

    for prog in order:
        placed_partners = [(mapping[o], w) for o, w in partners[prog] if o in mapping]
        best_phys, best_cost = None, None
        for phys in range(m):
            if phys in used:
                continue
            if placed_partners:
                cost = sum(w * device.distance(phys, o) for o, w in placed_partners)
            else:
                cost = -degree[phys]  # isolated: prefer well-connected spots
            tie = (cost, -degree[phys], phys)
            if best_cost is None or tie < best_cost:
                best_cost, best_phys = tie, phys
        assert best_phys is not None
        mapping[prog] = best_phys
        used.add(best_phys)

    return Placement.from_partial(mapping, n, m)


def assignment_placement(
    circuit: Circuit, device: Device, *, max_rounds: int = 20
) -> Placement:
    """Qmap-style optimised initial placement (the paper's "ILP" block).

    Starts from :func:`greedy_placement` and hill-climbs with pairwise
    exchanges of physical positions until the weighted-distance objective
    (:func:`placement_cost`) stops improving.  This reaches the ILP
    optimum on the paper-scale instances while staying polynomial.
    """
    placement = greedy_placement(circuit, device)
    best = placement_cost(circuit, device, placement)
    m = device.num_qubits
    for _ in range(max_rounds):
        improved = False
        for a in range(m):
            for b in range(a + 1, m):
                placement.apply_swap(a, b)
                cost = placement_cost(circuit, device, placement)
                if cost < best - 1e-12:
                    best = cost
                    improved = True
                else:
                    placement.apply_swap(a, b)  # revert
        if not improved or best == 0:
            break
    return placement


def annealing_placement(
    circuit: Circuit,
    device: Device,
    *,
    seed: int = 0,
    steps: int = 2000,
    initial_temperature: float = 2.0,
) -> Placement:
    """Simulated-annealing placement.

    The stochastic counterpart of :func:`assignment_placement`'s
    hill-climbing (the metaheuristic family of Section III-B's
    "(M)ILP solvers / heuristic algorithms" taxonomy): random pairwise
    exchanges are accepted when they improve the weighted-distance
    objective or, with Boltzmann probability, when they worsen it —
    escaping the local minima the greedy exchange gets stuck in.

    Args:
        circuit: Input circuit on program qubits.
        device: Target device.
        seed: RNG seed (the schedule is deterministic given it).
        steps: Number of proposed exchanges.
        initial_temperature: Starting temperature; decays geometrically
            to ~1e-3 of its initial value over the run.

    Returns:
        The best placement visited.
    """
    import math as _math

    rng = random.Random(seed)
    placement = greedy_placement(circuit, device)
    current_cost = placement_cost(circuit, device, placement)
    best = placement.copy()
    best_cost = current_cost
    m = device.num_qubits
    if m < 2 or steps <= 0:
        return best
    decay = (1e-3) ** (1.0 / steps)
    temperature = initial_temperature

    for _ in range(steps):
        a = rng.randrange(m)
        b = rng.randrange(m - 1)
        if b >= a:
            b += 1
        placement.apply_swap(a, b)
        cost = placement_cost(circuit, device, placement)
        delta = cost - current_cost
        if delta <= 0 or rng.random() < _math.exp(-delta / max(temperature, 1e-9)):
            current_cost = cost
            if cost < best_cost:
                best_cost = cost
                best = placement.copy()
        else:
            placement.apply_swap(a, b)  # reject
        temperature *= decay
    return best


def spectral_placement(circuit: Circuit, device: Device) -> Placement:
    """Spectral-embedding placement (reference [41] of the paper).

    Lin, Anschuetz and Harrow ("Using spectral graph theory to map
    qubits onto connectivity-limited devices") embed both the circuit's
    interaction graph and the device's coupling graph into the plane via
    the eigenvectors of their graph Laplacians (the Fiedler coordinates)
    and match the two point clouds.  Here the matching is solved exactly
    with the Hungarian algorithm on squared distances after normalising
    both embeddings.

    Qubits that never interact get arbitrary (but deterministic) spots.
    """
    import numpy as np
    from scipy.optimize import linear_sum_assignment

    _check_fits(circuit, device)
    n, m = circuit.num_qubits, device.num_qubits

    program_points = _spectral_coordinates(
        n, [(a, b, w) for (a, b), w in circuit.interaction_pairs().items()]
    )
    device_points = _spectral_coordinates(
        m, [(a, b, 1.0) for a, b in device.undirected_edges()]
    )

    # Spectral coordinates are defined only up to reflection and axis
    # exchange; try all eight symmetries and keep the cheapest matching.
    best_mapping, best_total = None, None
    for flip_x in (1.0, -1.0):
        for flip_y in (1.0, -1.0):
            for swap_axes in (False, True):
                points = program_points * np.array([flip_x, flip_y])
                if swap_axes:
                    points = points[:, ::-1]
                cost = np.zeros((n, m))
                for prog in range(n):
                    delta = points[prog] - device_points
                    cost[prog] = np.einsum("ij,ij->i", delta, delta)
                rows, cols = linear_sum_assignment(cost)
                total = float(cost[rows, cols].sum())
                if best_total is None or total < best_total:
                    best_total = total
                    best_mapping = {
                        int(prog): int(phys) for prog, phys in zip(rows, cols)
                    }
    assert best_mapping is not None
    return Placement.from_partial(best_mapping, n, m)


def _spectral_coordinates(num_nodes: int, weighted_edges) -> "np.ndarray":
    """2D Fiedler coordinates of a weighted graph, normalised to [-1, 1]."""
    import numpy as np

    laplacian = np.zeros((num_nodes, num_nodes))
    for a, b, w in weighted_edges:
        laplacian[a, b] -= w
        laplacian[b, a] -= w
        laplacian[a, a] += w
        laplacian[b, b] += w
    values, vectors = np.linalg.eigh(laplacian)
    order = np.argsort(values)
    coords = np.zeros((num_nodes, 2))
    # Skip the constant eigenvector; take the next two.
    picked = 0
    for index in order[1:]:
        coords[:, picked] = vectors[:, index]
        picked += 1
        if picked == 2:
            break
    peak = np.max(np.abs(coords))
    if peak > 1e-12:
        coords /= peak
    return coords


def routed_placement(
    circuit: Circuit,
    device: Device,
    *,
    router: str = "sabre",
    max_rounds: int = 3,
) -> Placement:
    """Placement optimised against the *actual* routed SWAP count.

    The static weighted-distance objective of
    :func:`assignment_placement` is only a proxy: two placements with
    equal proxy cost can route to different SWAP counts because gate
    *order* matters.  This placer therefore hill-climbs with pairwise
    position exchanges, scoring each candidate by actually routing the
    circuit (added SWAPs, then routed depth as tie-break) — the strongest
    initial-placement block, matching the optimal-placement role of
    Qmap's ILP stage on paper-scale instances.

    Cost: O(num_physical^2) routing calls per round; intended for small
    and medium instances.  Falls back gracefully: the result is never
    worse than :func:`assignment_placement`'s.
    """
    from .routing import route  # local import; routing depends on this module

    placement = assignment_placement(circuit, device)

    def score(candidate: Placement) -> tuple[int, int]:
        result = route(circuit, device, router, candidate.copy())
        return result.added_swaps, result.circuit.depth()

    best = score(placement)
    m = device.num_qubits
    for _ in range(max_rounds):
        improved = False
        for a in range(m):
            for b in range(a + 1, m):
                placement.apply_swap(a, b)
                cost = score(placement)
                if cost < best:
                    best = cost
                    improved = True
                else:
                    placement.apply_swap(a, b)  # revert
        if not improved or best[0] == 0:
            break
    return placement


def exhaustive_placement(circuit: Circuit, device: Device) -> Placement:
    """Minimum-cost placement by brute force (small instances only).

    Enumerates all injections of program onto physical qubits; intended
    for validating the heuristics and for paper-scale examples.

    Raises:
        ValueError: when the search space exceeds ~10 million injections.
    """
    _check_fits(circuit, device)
    n, m = circuit.num_qubits, device.num_qubits
    space = 1
    for k in range(m, m - n, -1):
        space *= k
    if space > 10_000_000:
        raise ValueError(
            f"exhaustive placement over {space} injections is infeasible; "
            "use assignment_placement instead"
        )
    best_placement = trivial_placement(circuit, device)
    best = placement_cost(circuit, device, best_placement)
    for image in itertools.permutations(range(m), n):
        candidate = Placement.from_partial(
            dict(enumerate(image)), n, m
        )
        cost = placement_cost(circuit, device, candidate)
        if cost < best:
            best, best_placement = cost, candidate
            if best == 0:
                break
    return best_placement


def _check_fits(circuit: Circuit, device: Device) -> None:
    if circuit.num_qubits > device.num_qubits:
        raise ValueError(
            f"circuit needs {circuit.num_qubits} qubits but device "
            f"{device.name!r} has {device.num_qubits}"
        )


#: Named placement strategies for CLI/bench parameterisation.
PLACERS = {
    "trivial": trivial_placement,
    "random": random_placement,
    "greedy": greedy_placement,
    "assignment": assignment_placement,
    "annealing": annealing_placement,
    "spectral": spectral_placement,
    "routed": routed_placement,
    "exhaustive": exhaustive_placement,
}


def get_placer(name: str):
    """Look up a placement strategy by name."""
    try:
        return PLACERS[name]
    except KeyError:
        raise KeyError(f"unknown placer {name!r}; available: {sorted(PLACERS)}")
