"""Photon re-initialisation pass (paper Section VI-C, photonics).

Photonic qubits are destroyed by demolition measurement; "one can
generate a new photon to re-initialize the qubit state".  This pass
inserts the photon generation — a ``prep_z`` — after every measurement
whose qubit is used again later, making circuits legal on devices with
the ``demolition_measurement`` feature.

Semantics note: on non-demolition hardware a computational-basis
measurement leaves the qubit in the observed basis state, whereas
``measure`` + ``prep_z`` leaves |0>.  Algorithms that keep computing on
a measured qubit must be written against that (standard photonic)
semantics; circuits that only measure at the end are unaffected.
"""

from __future__ import annotations

from ..core.circuit import Circuit
from ..core import gates as G
from ..devices.device import Device

__all__ = ["insert_photon_reinit"]


def insert_photon_reinit(circuit: Circuit, device: Device | None = None) -> Circuit:
    """Insert ``prep_z`` after measurements whose qubit is reused.

    Args:
        circuit: Input circuit.
        device: Optional device; when given and it lacks the
            ``demolition_measurement`` feature the circuit is returned
            unchanged.

    Returns:
        A circuit in which no gate acts on a destroyed qubit.
    """
    if device is not None and "demolition_measurement" not in device.features:
        return circuit.copy()

    # A measurement needs re-initialisation when any later gate reads the
    # qubit before another prep.
    gates = list(circuit.gates)
    out = Circuit(circuit.num_qubits, name=circuit.name)
    for index, gate in enumerate(gates):
        out.append(gate)
        if not gate.is_measurement:
            continue
        qubit = gate.qubits[0]
        for later in gates[index + 1:]:
            if later.name == "prep_z" and later.qubits == (qubit,):
                break  # already re-initialised explicitly
            # Classical condition bits are reads of the stored result,
            # not of the (destroyed) photon, so only quantum operands
            # count as touching.
            if qubit in later.qubits:
                out.append(G.prep_z(qubit))
                break
    return out
