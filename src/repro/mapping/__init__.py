"""Mapping: placement, routing, direction fixing, scheduling, Qmap."""

from .control import schedule_with_constraints
from .direction import count_wrong_directions, fix_directions
from .placement import (
    PLACERS,
    Placement,
    annealing_placement,
    assignment_placement,
    exhaustive_placement,
    get_placer,
    greedy_placement,
    noise_aware_placement,
    placement_cost,
    random_placement,
    routed_placement,
    spectral_placement,
    trivial_placement,
)
from .qmap import qmap
from .reinit import insert_photon_reinit
from .routing import (
    ROUTERS,
    RoutingError,
    RoutingResult,
    route,
    route_astar,
    route_exact,
    route_latency,
    route_lnn,
    route_naive,
    route_sabre,
)
from .scheduler import Schedule, ScheduledGate, alap_schedule, asap_schedule

__all__ = [
    "PLACERS",
    "Placement",
    "ROUTERS",
    "RoutingError",
    "RoutingResult",
    "Schedule",
    "ScheduledGate",
    "alap_schedule",
    "asap_schedule",
    "annealing_placement",
    "assignment_placement",
    "count_wrong_directions",
    "exhaustive_placement",
    "fix_directions",
    "get_placer",
    "greedy_placement",
    "insert_photon_reinit",
    "noise_aware_placement",
    "placement_cost",
    "qmap",
    "random_placement",
    "routed_placement",
    "spectral_placement",
    "route",
    "route_astar",
    "route_exact",
    "route_latency",
    "route_lnn",
    "route_naive",
    "route_sabre",
    "schedule_with_constraints",
    "trivial_placement",
]
