"""Operation scheduling with real gate durations.

The third mapper block of Qmap (Section V): assign every gate a start
cycle such that dependencies, qubit exclusivity, and (optionally) the
control-electronics constraints hold, minimising the overall *latency* —
"the execution time of the algorithm when considering the real gate
duration".  Time is discretised into clock cycles, "the greatest common
divisor of the gates' duration" (Section VI-B); durations come from the
:class:`~repro.devices.device.Device`.

Two entry points:

* :func:`asap_schedule` / :func:`alap_schedule` — dependency-only list
  scheduling (the paper's "operations are scheduled only considering the
  dependencies between them");
* :func:`schedule_with_constraints` in :mod:`repro.mapping.control` —
  additionally enforces shared-AWG, feedline and CZ-parking rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from ..core.circuit import Circuit
from ..core.gates import Gate
from ..devices.device import Device

__all__ = ["ScheduledGate", "Schedule", "asap_schedule", "alap_schedule"]


@dataclass(frozen=True)
class ScheduledGate:
    """One gate with its start cycle and duration."""

    gate: Gate
    start: int
    duration: int

    @property
    def end(self) -> int:
        """First cycle after the gate finishes."""
        return self.start + self.duration


@dataclass
class Schedule:
    """A timed gate list over ``num_qubits`` physical qubits."""

    items: list[ScheduledGate]
    num_qubits: int
    cycle_time_ns: float = 20.0
    metadata: dict = field(default_factory=dict)

    @property
    def latency(self) -> int:
        """Total latency in cycles (makespan)."""
        return max((item.end for item in self.items), default=0)

    @property
    def latency_ns(self) -> float:
        """Total latency in nanoseconds."""
        return self.latency * self.cycle_time_ns

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def gates_starting_at(self, cycle: int) -> list[ScheduledGate]:
        return [item for item in self.items if item.start == cycle]

    # Ordering key for gate lists: start cycle, then operand tuple, then
    # gate name.  Two distinct gates can share (start, qubits) — e.g. a
    # conditioned single-qubit gate and the measure feeding it modelled
    # on the same line — so sorting by start (or start+qubits) alone
    # leaves their order to the sort's input order, which varies between
    # construction paths and made serialised schedules nondeterministic.
    @staticmethod
    def _order_key(item: ScheduledGate):
        return (item.start, item.gate.qubits, item.gate.name)

    def circuit(self) -> Circuit:
        """The schedule's gates as a circuit in start-time order."""
        ordered = sorted(
            (item for item in self.items if not item.gate.is_barrier),
            key=self._order_key,
        )
        return Circuit(self.num_qubits, (item.gate for item in ordered))

    def parallelism(self) -> float:
        """Mean number of gates in flight per busy cycle."""
        if not self.items:
            return 0.0
        busy = sum(item.duration for item in self.items if not item.gate.is_barrier)
        return busy / max(self.latency, 1)

    def validate(self) -> list[str]:
        """Detect overlapping gates on one qubit; returns problem strings."""
        problems: list[str] = []
        per_qubit: dict[int, list[ScheduledGate]] = {}
        for item in self.items:
            if item.gate.is_barrier:
                continue
            for q in item.gate.qubits:
                per_qubit.setdefault(q, []).append(item)
        for q, gate_list in per_qubit.items():
            gate_list.sort(key=self._order_key)
            for first, second in zip(gate_list, gate_list[1:]):
                if second.start < first.end:
                    problems.append(
                        f"qubit {q}: {second.gate} (cycle {second.start}) "
                        f"overlaps {first.gate} (ends {first.end})"
                    )
        return problems

    def table(self) -> str:
        """A human-readable cycle table (one row per start cycle)."""
        rows: dict[int, list[str]] = {}
        for item in sorted(self.items, key=self._order_key):
            if item.gate.is_barrier:
                continue
            rows.setdefault(item.start, []).append(str(item.gate))
        lines = [f"latency: {self.latency} cycles ({self.latency_ns:.0f} ns)"]
        for cycle in sorted(rows):
            lines.append(f"  cycle {cycle:4d} | " + " ; ".join(rows[cycle]))
        return "\n".join(lines)


def touched_qubits(gate: Gate, num_qubits: int) -> tuple[int, ...]:
    """Qubit lines a gate occupies for scheduling purposes.

    Barriers without operands span every line; a classical condition is
    modelled as touching its bit's qubit line (the feedforward wire).
    """
    qubits = gate.qubits or tuple(range(num_qubits))
    if gate.condition is not None and gate.condition[0] not in qubits:
        qubits = qubits + (gate.condition[0],)
    return qubits


def asap_schedule(circuit: Circuit, device: Device) -> Schedule:
    """As-soon-as-possible schedule under dependencies and durations.

    Every gate starts at the first cycle where all its operand qubits are
    free; barriers synchronise their qubits without taking time.
    """
    free_at = [0] * circuit.num_qubits
    items: list[ScheduledGate] = []
    for gate in circuit.gates:
        qubits = touched_qubits(gate, circuit.num_qubits)
        start = max((free_at[q] for q in qubits), default=0)
        duration = 0 if gate.is_barrier else device.duration(gate)
        items.append(ScheduledGate(gate, start, duration))
        for q in qubits:
            free_at[q] = start + duration
    return Schedule(items, circuit.num_qubits, device.cycle_time_ns)


def alap_schedule(circuit: Circuit, device: Device) -> Schedule:
    """As-late-as-possible schedule (same latency as ASAP, gates pushed late).

    Computed by ASAP-scheduling the reversed gate list and mirroring the
    start times.
    """
    free_at = [0] * circuit.num_qubits
    reversed_items: list[tuple[Gate, int, int]] = []
    for gate in reversed(circuit.gates):
        qubits = touched_qubits(gate, circuit.num_qubits)
        start = max((free_at[q] for q in qubits), default=0)
        duration = 0 if gate.is_barrier else device.duration(gate)
        reversed_items.append((gate, start, duration))
        for q in qubits:
            free_at[q] = start + duration
    total = max((start + dur for _, start, dur in reversed_items), default=0)
    items = [
        ScheduledGate(gate, total - (start + dur), dur)
        for gate, start, dur in reversed(reversed_items)
    ]
    return Schedule(items, circuit.num_qubits, device.cycle_time_ns)
