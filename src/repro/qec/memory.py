"""Logical memory experiment.

The canonical surface-code benchmark [60]: hold a logical qubit for
``rounds`` QEC cycles under a physical error rate ``p`` and count how
often the logical observable survives.  A working code suppresses the
logical error rate below the physical one at small ``p`` (the
below-pseudo-threshold regime); an unprotected qubit fails at rate
``~1 - (1-p)^rounds``.

The experiment here is a bit-flip (X-error) memory: errors are injected
on data qubits between cycles, Z-stabilizer syndromes are extracted on
the statevector simulator, and the matching decoder supplies
corrections.  Distance-3 keeps the 17-qubit statevector cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .code import RotatedSurfaceCode
from .cycle import SyndromeExtractor
from .decoder import MatchingDecoder

__all__ = ["MemoryResult", "memory_experiment", "unprotected_failure_rate"]


@dataclass
class MemoryResult:
    """Outcome of a logical memory experiment."""

    distance: int
    error_rate: float
    rounds: int
    trials: int
    failures: int

    @property
    def logical_error_rate(self) -> float:
        return self.failures / max(self.trials, 1)


def memory_experiment(
    code: RotatedSurfaceCode,
    *,
    error_rate: float,
    rounds: int = 3,
    trials: int = 20,
    seed: int = 0,
    backend: str = "statevector",
) -> MemoryResult:
    """Run the bit-flip memory experiment.

    Args:
        code: The surface code instance.
        error_rate: Per-data-qubit X-error probability per round.
        rounds: QEC cycles per trial.
        trials: Independent repetitions.
        seed: RNG seed.
        backend: Simulator backend; use ``"stabilizer"`` (CHP tableau)
            for distances beyond the statevector's reach (d >= 5 needs
            49+ qubits).

    Returns:
        A :class:`MemoryResult`; a trial fails when the final logical-Z
        expectation drops below 0 (the stored |0>_L flipped).
    """
    rng = np.random.default_rng(seed)
    decoder = MatchingDecoder(code)
    failures = 0
    for trial in range(trials):
        extractor = SyndromeExtractor(
            code, seed=seed * 1000 + trial, backend=backend
        )
        extractor.establish_reference()
        for _ in range(rounds):
            for data in range(code.num_data):
                if rng.random() < error_rate:
                    extractor.inject("x", data)
            syndrome = extractor.syndrome()
            correction = decoder.decode(syndrome)
            extractor.apply_correction("x", correction["X"])
            extractor.apply_correction("z", correction["Z"])
            # Advance the reference frame past the correction flip-back.
            extractor.syndrome()
        if extractor.logical_z_expectation() < 0:
            failures += 1
    return MemoryResult(code.distance, error_rate, rounds, trials, failures)


def unprotected_failure_rate(error_rate: float, rounds: int) -> float:
    """Failure probability of a single unencoded qubit over ``rounds``.

    An X flips the stored bit; the qubit ends flipped when an odd number
    of errors occurred: ``(1 - (1 - 2p)^rounds) / 2``.
    """
    return (1.0 - (1.0 - 2.0 * error_rate) ** rounds) / 2.0
