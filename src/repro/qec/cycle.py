"""Stabilizer measurement cycles and syndrome extraction.

One quantum-error-correction cycle measures every stabilizer of the
code through its ancilla:

* X stabilizer: ``prep_z``, ``H``, a CNOT from the ancilla onto each
  data qubit, ``H``, ``measure``;
* Z stabilizer: ``prep_z``, a CNOT from each data qubit onto the
  ancilla, ``measure``.

The cycle circuit is expressed in CNOT/H form; on a CZ-native chip the
standard pipeline lowers it (Fig. 6 decompositions) and the
control-constraint scheduler times it — the workload the Surface-17
chip was built for.

:class:`SyndromeExtractor` runs cycles on the statevector simulator,
turning ancilla measurement results into stabilizer syndromes.  X
stabilizer outcomes are random on a fresh product state, so the first
cycle establishes the *reference frame*; later cycles report syndrome
*changes* against it, which is what a decoder consumes.
"""

from __future__ import annotations

import numpy as np

from ..core.circuit import Circuit
from ..core import gates as G
from ..sim.statevector import StateVector
from .code import RotatedSurfaceCode, Stabilizer

__all__ = ["stabilizer_cycle", "SyndromeExtractor"]


def stabilizer_cycle(code: RotatedSurfaceCode) -> Circuit:
    """One full syndrome-measurement cycle over all stabilizers.

    Data-qubit interactions within each stabilizer follow a fixed
    corner order (NW, NE, SW, SE); a hook-error-optimal zig-zag order
    is a scheduling refinement left to the device pipeline.
    """
    circuit = Circuit(code.num_qubits, name=f"qec_cycle_d{code.distance}")
    for stabilizer in code.stabilizers:
        circuit.prep_z(stabilizer.ancilla)
        if stabilizer.kind == "X":
            circuit.h(stabilizer.ancilla)
            for data in stabilizer.data:
                circuit.cnot(stabilizer.ancilla, data)
            circuit.h(stabilizer.ancilla)
        else:
            for data in stabilizer.data:
                circuit.cnot(data, stabilizer.ancilla)
        circuit.measure(stabilizer.ancilla)
    return circuit


class SyndromeExtractor:
    """Runs QEC cycles on a simulator and tracks syndrome changes.

    Args:
        code: The surface code instance.
        seed: RNG seed for measurement outcomes.
        backend: ``"statevector"`` (dense, exact, <= ~20 qubits) or
            ``"stabilizer"`` (CHP tableau, polynomial — use for d >= 5,
            where the code needs 49+ qubits).  The cycle circuit is
            Clifford, so both agree exactly.
    """

    def __init__(
        self,
        code: RotatedSurfaceCode,
        seed: int = 0,
        backend: str = "statevector",
    ):
        self.code = code
        rng = np.random.default_rng(seed)
        if backend == "statevector":
            self.state = StateVector(code.num_qubits, rng=rng)
        elif backend == "stabilizer":
            from ..sim.stabilizer import StabilizerState

            self.state = StabilizerState(code.num_qubits, rng=rng)
        else:
            raise ValueError(f"unknown backend {backend!r}")
        self.backend = backend
        self.cycle_circuit = stabilizer_cycle(code)
        #: Reference outcomes per ancilla from the previous cycle.
        self.reference: dict[int, int] | None = None
        self.cycles_run = 0

    def run_cycle(self) -> dict[int, int]:
        """Execute one cycle; returns raw ancilla outcomes."""
        self.state.run(self.cycle_circuit)
        outcomes = {
            stabilizer.ancilla: self.state.results[stabilizer.ancilla]
            for stabilizer in self.code.stabilizers
        }
        self.cycles_run += 1
        return outcomes

    def establish_reference(self) -> dict[int, int]:
        """Run the first cycle and remember its outcomes as the frame."""
        outcomes = self.run_cycle()
        self.reference = outcomes
        return outcomes

    def syndrome(self) -> dict[str, frozenset[int]]:
        """Run a cycle and report *changed* stabilizers by kind.

        Returns:
            ``{"X": flipped X-ancillas, "Z": flipped Z-ancillas}``
            relative to the reference frame (which is then advanced).

        Raises:
            RuntimeError: when no reference frame exists yet.
        """
        if self.reference is None:
            raise RuntimeError("call establish_reference() first")
        outcomes = self.run_cycle()
        flipped_x = frozenset(
            s.ancilla
            for s in self.code.x_stabilizers()
            if outcomes[s.ancilla] != self.reference[s.ancilla]
        )
        flipped_z = frozenset(
            s.ancilla
            for s in self.code.z_stabilizers()
            if outcomes[s.ancilla] != self.reference[s.ancilla]
        )
        self.reference = outcomes
        return {"X": flipped_x, "Z": flipped_z}

    def inject(self, pauli: str, data_qubit: int) -> None:
        """Apply a Pauli error on one data qubit."""
        if pauli.lower() not in ("x", "y", "z"):
            raise ValueError(f"unknown Pauli {pauli!r}")
        if data_qubit >= self.code.num_data:
            raise ValueError(f"qubit {data_qubit} is not a data qubit")
        self.state.apply(G.__dict__[pauli.lower()](data_qubit))

    def apply_correction(self, pauli: str, data_qubits) -> None:
        """Apply a Pauli correction on the given data qubits."""
        for qubit in data_qubits:
            self.inject(pauli, qubit)

    def logical_z_expectation(self) -> float:
        """<Z_L> of the current state (0 when the outcome is random)."""
        if self.backend == "stabilizer":
            return float(self.state.z_expectation(self.code.logical_z))
        return self._pauli_z_expectation(self.code.logical_z)

    def _pauli_z_expectation(self, qubits) -> float:
        probs = np.abs(self.state.state) ** 2
        n = self.code.num_qubits
        expectation = 0.0
        for index, p in enumerate(probs):
            if p == 0.0:
                continue
            bits = format(index, f"0{n}b")
            parity = sum(int(bits[q]) for q in qubits) % 2
            expectation += p * (1 - 2 * parity)
        return float(expectation)
