"""Decoders for small rotated surface codes.

* :class:`LookupDecoder` — a table over all single-qubit errors;
  distance-3 syndromes of weight-1 errors are unique up to stabilizer
  equivalence, so this decodes every single error exactly.
* :class:`MatchingDecoder` — minimum-weight perfect matching on the
  syndrome graph, the standard surface-code decoder [60]: each data
  qubit is an edge between the (one or two) stabilizers of one type
  containing it, with a virtual boundary node absorbing odd syndrome
  weight; flipped stabilizers are paired along cheapest paths and the
  correction applies the Pauli on every data edge of the matching.
  Handles multi-error syndromes, which the lookup cannot.
"""

from __future__ import annotations

import itertools

import networkx as nx

from .code import RotatedSurfaceCode, Stabilizer

__all__ = ["LookupDecoder", "MatchingDecoder"]


class LookupDecoder:
    """Minimal-weight single-error decoder via precomputed lookup."""

    def __init__(self, code: RotatedSurfaceCode):
        self.code = code
        # X errors flip the Z stabilizers containing them (and vice
        # versa).  Build syndrome -> correction tables for weight-1
        # errors; weight-0 maps to no correction.
        self.x_corrections: dict[frozenset[int], tuple[int, ...]] = {
            frozenset(): ()
        }
        self.z_corrections: dict[frozenset[int], tuple[int, ...]] = {
            frozenset(): ()
        }
        for data in range(code.num_data):
            z_syndrome = frozenset(
                s.ancilla for s in code.z_stabilizers() if data in s.data
            )
            self.x_corrections.setdefault(z_syndrome, (data,))
            x_syndrome = frozenset(
                s.ancilla for s in code.x_stabilizers() if data in s.data
            )
            self.z_corrections.setdefault(x_syndrome, (data,))

    def decode(self, syndrome: dict[str, frozenset[int]]) -> dict[str, tuple[int, ...]]:
        """Corrections for one syndrome-change report.

        Args:
            syndrome: ``{"X": flipped X-ancillas, "Z": flipped Z-ancillas}``
                as produced by
                :meth:`repro.qec.cycle.SyndromeExtractor.syndrome`.

        Returns:
            ``{"X": data qubits needing an X, "Z": data qubits needing a Z}``.

        Raises:
            KeyError: when a syndrome has no weight-<=1 explanation (a
            multi-qubit error beyond this decoder).
        """
        try:
            apply_x = self.x_corrections[frozenset(syndrome.get("Z", frozenset()))]
            apply_z = self.z_corrections[frozenset(syndrome.get("X", frozenset()))]
        except KeyError as exc:
            raise KeyError(
                f"syndrome {syndrome} has no single-error explanation"
            ) from exc
        return {"X": apply_x, "Z": apply_z}

    def correctable_syndromes(self) -> int:
        """Number of distinct Z-syndromes the table covers."""
        return len(self.x_corrections)


_BOUNDARY = "boundary"


class MatchingDecoder:
    """Minimum-weight perfect matching over the syndrome graph."""

    def __init__(self, code: RotatedSurfaceCode):
        self.code = code
        self._graphs = {
            "Z": self._syndrome_graph(code.z_stabilizers()),
            "X": self._syndrome_graph(code.x_stabilizers()),
        }

    def _syndrome_graph(self, stabilizers: list[Stabilizer]) -> nx.MultiGraph:
        """Nodes: ancillas of one type + the boundary; edges: data qubits."""
        graph = nx.MultiGraph()
        graph.add_node(_BOUNDARY)
        for stabilizer in stabilizers:
            graph.add_node(stabilizer.ancilla)
        for data in range(self.code.num_data):
            touching = [s.ancilla for s in stabilizers if data in s.data]
            if len(touching) == 2:
                graph.add_edge(touching[0], touching[1], qubit=data)
            elif len(touching) == 1:
                graph.add_edge(touching[0], _BOUNDARY, qubit=data)
            # A data qubit in no stabilizer of this type cannot produce
            # or fix syndrome of this type.
        return graph

    def _path_qubits(self, graph: nx.MultiGraph, a, b) -> tuple[int, ...]:
        path = nx.shortest_path(graph, a, b)
        qubits = []
        for u, v in zip(path, path[1:]):
            # Any parallel edge works; take the smallest data index for
            # determinism.
            data = min(d["qubit"] for d in graph[u][v].values())
            qubits.append(data)
        return tuple(qubits)

    def _match(self, kind: str, flipped: frozenset[int]) -> tuple[int, ...]:
        if not flipped:
            return ()
        graph = self._graphs[kind]
        nodes = sorted(flipped)
        # Pairwise path lengths (boundary reachable from every node).
        distance = {}
        for a, b in itertools.combinations(nodes, 2):
            distance[(a, b)] = nx.shortest_path_length(graph, a, b)
        boundary_distance = {
            a: nx.shortest_path_length(graph, a, _BOUNDARY) for a in nodes
        }

        best_cost, best_pairs = None, None
        for pairing in _pairings(nodes):
            cost = 0
            for a, b in pairing:
                if b is _BOUNDARY:
                    cost += boundary_distance[a]
                else:
                    cost += distance[(min(a, b), max(a, b))]
            if best_cost is None or cost < best_cost:
                best_cost, best_pairs = cost, pairing

        correction: list[int] = []
        assert best_pairs is not None
        for a, b in best_pairs:
            target = _BOUNDARY if b is _BOUNDARY else b
            correction.extend(self._path_qubits(graph, a, target))
        # A data qubit corrected twice cancels out.
        result = [q for q in set(correction) if correction.count(q) % 2 == 1]
        return tuple(sorted(result))

    def decode(self, syndrome: dict[str, frozenset[int]]) -> dict[str, tuple[int, ...]]:
        """Corrections for one syndrome-change report (any weight).

        Returns:
            ``{"X": data qubits needing an X, "Z": data qubits needing a Z}``.
        """
        return {
            "X": self._match("Z", frozenset(syndrome.get("Z", frozenset()))),
            "Z": self._match("X", frozenset(syndrome.get("X", frozenset()))),
        }


def _pairings(nodes: list[int]):
    """All ways to pair ``nodes``, each possibly matched to the boundary."""
    if not nodes:
        yield []
        return
    head, rest = nodes[0], nodes[1:]
    # Pair head with the boundary.
    for tail in _pairings(rest):
        yield [(head, _BOUNDARY)] + tail
    # Pair head with another flipped node.
    for index, partner in enumerate(rest):
        remaining = rest[:index] + rest[index + 1:]
        for tail in _pairings(remaining):
            yield [(head, partner)] + tail
