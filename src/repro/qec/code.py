"""The rotated surface code (paper Section V context, ref [60]).

"This quantum chip has been built with the goal of demonstrating
fault-tolerant computation in a large-scale quantum system based on
surface code, one of the most promising quantum error correction
codes."  This module constructs the distance-``d`` *rotated* surface
code — ``d*d`` data qubits plus ``d*d - 1`` ancillas (17 qubits at
``d = 3``, the Surface-17 configuration) — together with the device
model whose coupling graph is exactly the code's data-ancilla
connectivity.

Construction (standard rotated layout): data qubits sit on a ``d x d``
grid; a plaquette cell ``(r, c)`` with ``r, c in -1 .. d-1`` covers the
data corners ``(r, c), (r, c+1), (r+1, c), (r+1, c+1)``; cells with
``(r + c)`` even host X stabilizers and odd cells Z stabilizers; bulk
cells are always present, while boundary half-cells alternate — X on
the north/south edges, Z on the west/east edges.  Logical Z acts on the
top data row and logical X on the left data column.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.device import ControlConstraints, Device

__all__ = ["Stabilizer", "RotatedSurfaceCode"]


@dataclass(frozen=True)
class Stabilizer:
    """One stabilizer generator.

    Attributes:
        kind: ``"X"`` or ``"Z"``.
        ancilla: Physical index of the measuring ancilla qubit.
        data: Physical indices of the data qubits in the support.
        cell: The plaquette coordinate ``(r, c)`` (for debugging/plots).
    """

    kind: str
    ancilla: int
    data: tuple[int, ...]
    cell: tuple[int, int]


class RotatedSurfaceCode:
    """A distance-``d`` rotated surface code and its device model."""

    def __init__(self, distance: int = 3):
        if distance < 2:
            raise ValueError("distance must be at least 2")
        self.distance = distance
        d = distance
        #: data qubit (r, c) -> physical index (row-major block first).
        self.data_index = {
            (r, c): r * d + c for r in range(d) for c in range(d)
        }
        self.num_data = d * d

        self.stabilizers: list[Stabilizer] = []
        next_ancilla = self.num_data
        for r in range(-1, d):
            for c in range(-1, d):
                corners = [
                    (rr, cc)
                    for rr in (r, r + 1)
                    for cc in (c, c + 1)
                    if 0 <= rr < d and 0 <= cc < d
                ]
                kind = "X" if (r + c) % 2 == 0 else "Z"
                bulk = len(corners) == 4
                north_south = r in (-1, d - 1) and 0 <= c < d - 1
                west_east = c in (-1, d - 1) and 0 <= r < d - 1
                include = bulk or (kind == "X" and north_south) or (
                    kind == "Z" and west_east
                )
                if not include:
                    continue
                data = tuple(sorted(self.data_index[pt] for pt in corners))
                self.stabilizers.append(
                    Stabilizer(kind, next_ancilla, data, (r, c))
                )
                next_ancilla += 1
        self.num_qubits = next_ancilla
        self.num_ancilla = self.num_qubits - self.num_data

        #: Logical operators as data-qubit index tuples.
        self.logical_z = tuple(self.data_index[(0, c)] for c in range(d))
        self.logical_x = tuple(self.data_index[(r, 0)] for r in range(d))

    # ------------------------------------------------------------------

    def x_stabilizers(self) -> list[Stabilizer]:
        return [s for s in self.stabilizers if s.kind == "X"]

    def z_stabilizers(self) -> list[Stabilizer]:
        return [s for s in self.stabilizers if s.kind == "Z"]

    def stabilizer_of_ancilla(self, ancilla: int) -> Stabilizer:
        for stabilizer in self.stabilizers:
            if stabilizer.ancilla == ancilla:
                return stabilizer
        raise KeyError(f"qubit {ancilla} is not an ancilla")

    def check_css(self) -> bool:
        """Every X/Z stabilizer pair overlaps on an even number of qubits."""
        for x_stab in self.x_stabilizers():
            for z_stab in self.z_stabilizers():
                overlap = set(x_stab.data) & set(z_stab.data)
                if len(overlap) % 2 != 0:
                    return False
        return True

    def device(self) -> Device:
        """The code's chip: CZ-coupled data-ancilla lattice.

        Uses the Surface-17-style native set and durations; frequency
        groups follow the Versluis scheme — X ancillas high (f1), data
        middle (f2), Z ancillas low (f3) — and ancillas of each type
        share a readout feedline with a third line for the data qubits.
        """
        from ..devices.library import SURFACE_DURATIONS, SURFACE_NATIVE

        edges = []
        frequency = {}
        feedline = {}
        positions = {}
        d = self.distance
        for (r, c), index in self.data_index.items():
            frequency[index] = 1
            feedline[index] = 2
            positions[index] = (float(c), float(-r))
        for stabilizer in self.stabilizers:
            for data in stabilizer.data:
                edges.append((stabilizer.ancilla, data))
            frequency[stabilizer.ancilla] = 0 if stabilizer.kind == "X" else 2
            feedline[stabilizer.ancilla] = 0 if stabilizer.kind == "X" else 1
            r, c = stabilizer.cell
            positions[stabilizer.ancilla] = (c + 0.5, -(r + 0.5))
        return Device(
            f"rotated_surface{self.num_qubits}",
            self.num_qubits,
            edges,
            SURFACE_NATIVE,
            symmetric=True,
            two_qubit_gate="cz",
            durations=SURFACE_DURATIONS,
            cycle_time_ns=20.0,
            positions=positions,
            constraints=ControlConstraints(
                frequency_group=frequency,
                feedline=feedline,
                park_on_cz=True,
            ),
        )

    def __repr__(self) -> str:
        return (
            f"<RotatedSurfaceCode d={self.distance} qubits={self.num_qubits} "
            f"stabilizers={len(self.stabilizers)}>"
        )
