"""Surface-code machinery: the workload the Surface-17 chip targets."""

from .code import RotatedSurfaceCode, Stabilizer
from .cycle import SyndromeExtractor, stabilizer_cycle
from .decoder import LookupDecoder, MatchingDecoder
from .memory import MemoryResult, memory_experiment, unprotected_failure_rate

__all__ = [
    "LookupDecoder",
    "MatchingDecoder",
    "MemoryResult",
    "RotatedSurfaceCode",
    "Stabilizer",
    "SyndromeExtractor",
    "memory_experiment",
    "stabilizer_cycle",
    "unprotected_failure_rate",
]
