"""Command-line interface.

The compiler of the paper's Fig. 2 as a tool: QASM text plus a machine
description in, a mapped/scheduled program out.

Usage examples::

    python -m repro devices
    python -m repro info --device surface17
    python -m repro map circuit.qasm --device ibm_qx4 --router sabre \
        --optimize --verify -o mapped.qasm --report
    python -m repro map circuit.qasm --device-config mychip.json \
        --schedule constraints --cqasm mapped.cq
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core.pipeline import compile_circuit
from .devices import Device, available_devices, get_device
from .mapping.placement import PLACERS
from .mapping.routing import ROUTERS
from .qasm import parse_qasm, schedule_to_cqasm, to_cqasm, to_openqasm
from .verify import equivalent_mapped
from .viz import draw_circuit, draw_device, draw_schedule

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quantum circuit mapper (DATE 2020 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list available device models")

    info = sub.add_parser("info", help="describe one device model")
    _add_device_args(info)

    map_cmd = sub.add_parser("map", help="compile an OpenQASM file for a device")
    map_cmd.add_argument("input", help="OpenQASM 2.0 input file ('-' for stdin)")
    _add_device_args(map_cmd)
    map_cmd.add_argument(
        "--placer", default="assignment", choices=sorted(PLACERS),
        help="initial placement strategy (default: assignment)",
    )
    map_cmd.add_argument(
        "--router", default="sabre", choices=sorted(ROUTERS),
        help="routing algorithm (default: sabre)",
    )
    map_cmd.add_argument(
        "--schedule", default="asap",
        choices=["asap", "alap", "constraints", "none"],
        help="scheduling mode (default: asap)",
    )
    map_cmd.add_argument(
        "--optimize", action="store_true",
        help="run peephole optimisation on the lowered circuit",
    )
    map_cmd.add_argument(
        "--no-decompose", action="store_true",
        help="stop after routing (keep SWAPs / non-native gates)",
    )
    map_cmd.add_argument(
        "--verify", action="store_true",
        help="check mapped-circuit equivalence before writing output",
    )
    map_cmd.add_argument(
        "-o", "--output", metavar="FILE",
        help="write the mapped circuit as OpenQASM",
    )
    map_cmd.add_argument(
        "--cqasm", metavar="FILE",
        help="write the result as cQASM (scheduled bundles when scheduled)",
    )
    map_cmd.add_argument(
        "--report", action="store_true",
        help="print the compilation summary and schedule table",
    )
    map_cmd.add_argument(
        "--draw", action="store_true",
        help="print ASCII diagrams of the input and mapped circuits",
    )

    sim = sub.add_parser(
        "simulate", help="run an OpenQASM file on the statevector simulator"
    )
    sim.add_argument("input", help="OpenQASM 2.0 input file ('-' for stdin)")
    sim.add_argument(
        "--shots", type=int, default=1024, help="measurement shots (default 1024)"
    )
    sim.add_argument("--seed", type=int, default=0, help="RNG seed")
    sim.add_argument(
        "--noise", action="store_true",
        help="sample under the default Pauli-error model instead of ideally",
    )
    sim.add_argument(
        "--error-2q", type=float, default=0.01,
        help="two-qubit error rate for --noise (default 0.01)",
    )

    bench = sub.add_parser(
        "bench",
        help="time the routers on the fixed-seed corpus and check "
        "byte-identical equivalence with the seed implementations",
    )
    bench.add_argument(
        "--json", metavar="FILE", dest="json_path",
        help="write the full report as JSON (e.g. BENCH_routers.json)",
    )
    bench.add_argument(
        "--repeats", type=int, default=1,
        help="timing repeats per case, best-of-N (default 1)",
    )
    return parser


def _add_device_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--device", choices=available_devices(), help="registry device name"
    )
    group.add_argument(
        "--device-config", metavar="FILE",
        help="JSON machine-description file (Device.to_json format)",
    )
    parser.add_argument(
        "--qubits", type=int, default=None,
        help="qubit count for parametric devices (linear/ring/all_to_all)",
    )
    parser.add_argument("--rows", type=int, default=None, help="grid rows")
    parser.add_argument("--cols", type=int, default=None, help="grid cols")


def _resolve_device(args: argparse.Namespace) -> Device:
    if args.device_config:
        return Device.from_json(Path(args.device_config))
    params = {}
    if args.device in ("grid", "dots"):
        if args.rows is None or args.cols is None:
            raise SystemExit(f"{args.device} device needs --rows and --cols")
        params = {"rows": args.rows, "cols": args.cols}
    elif args.device in ("linear", "ring", "all_to_all"):
        if args.qubits is None:
            raise SystemExit(f"{args.device} device needs --qubits")
        params = {"num_qubits": args.qubits}
    return get_device(args.device, **params)


def _cmd_devices(out) -> int:
    for name in available_devices():
        print(name, file=out)
    return 0


def _cmd_info(args, out) -> int:
    device = _resolve_device(args)
    print(draw_device(device), file=out)
    return 0


def _cmd_map(args, out) -> int:
    if args.input == "-":
        source = sys.stdin.read()
    else:
        source = Path(args.input).read_text()
    circuit = parse_qasm(source)
    device = _resolve_device(args)

    result = compile_circuit(
        circuit,
        device,
        placer=args.placer,
        router=args.router,
        decompose=not args.no_decompose,
        optimize=args.optimize,
        schedule=None if args.schedule == "none" else args.schedule,
    )

    if args.verify:
        unitary_only = all(
            g.is_unitary or g.is_barrier for g in result.native.gates
        )
        if not unitary_only:
            print(
                "warning: circuit contains measurements; skipping the "
                "unitary equivalence check",
                file=sys.stderr,
            )
        elif not equivalent_mapped(
            circuit, result.native, result.routed.initial, result.routed.final
        ):
            print("ERROR: mapped circuit is NOT equivalent", file=sys.stderr)
            return 2
        else:
            print("verification: mapped circuit equivalent", file=out)

    if args.report or not (args.output or args.cqasm):
        print(result.summary(), file=out)
    if args.draw:
        print("\ninput circuit:", file=out)
        print(draw_circuit(circuit), file=out)
        print("\nmapped circuit:", file=out)
        print(draw_circuit(result.native, qubit_prefix="Q"), file=out)
    if args.report and result.schedule is not None:
        print("\nschedule:", file=out)
        print(draw_schedule(result.schedule), file=out)

    if args.output:
        Path(args.output).write_text(to_openqasm(result.native))
        print(f"wrote {args.output}", file=out)
    if args.cqasm:
        if result.schedule is not None:
            text = schedule_to_cqasm(result.schedule)
        else:
            text = to_cqasm(result.native)
        Path(args.cqasm).write_text(text)
        print(f"wrote {args.cqasm}", file=out)
    return 0


def _cmd_simulate(args, out) -> int:
    if args.input == "-":
        source = sys.stdin.read()
    else:
        source = Path(args.input).read_text()
    circuit = parse_qasm(source)

    measured = sorted({g.qubits[0] for g in circuit.gates if g.is_measurement})
    report_qubits = measured or list(range(circuit.num_qubits))

    if args.noise:
        from .sim.noise import NoiseModel
        from .sim.monte_carlo import sample_noisy_counts

        noise = NoiseModel(error_2q=args.error_2q)
        counts = sample_noisy_counts(
            circuit, noise, shots=args.shots, seed=args.seed,
            measure_qubits=report_qubits,
        )
        print(f"noisy sampling ({args.shots} shots, e2q={args.error_2q}):", file=out)
    else:
        import numpy as np

        from .sim import StateVector

        counts: dict[str, int] = {}
        for shot in range(args.shots):
            sv = StateVector(
                circuit.num_qubits,
                rng=np.random.default_rng((args.seed, shot)),
            )
            sv.run(circuit)
            bits = "".join(
                str(sv.results[q]) if q in sv.results else str(sv.measure(q))
                for q in report_qubits
            )
            counts[bits] = counts.get(bits, 0) + 1
        print(f"ideal sampling ({args.shots} shots):", file=out)

    label = ",".join(f"q{q}" for q in report_qubits)
    print(f"outcome ({label}) : count", file=out)
    for key in sorted(counts, key=lambda k: -counts[k]):
        print(f"  {key} : {counts[key]}", file=out)
    return 0


def _cmd_bench(args, out) -> int:
    import json

    from .perf import run_bench

    report = run_bench(repeats=args.repeats)
    print(f"{'case':<42} {'seconds':>9} {'seed_s':>9} {'swaps':>6} match",
          file=out)
    for case in report["cases"]:
        seed_sec = case["seed_seconds"]
        seed_txt = f"{seed_sec:>9.4f}" if seed_sec else f"{'-':>9}"
        print(
            f"{case['case']:<42} {case['seconds']:>9.4f} {seed_txt} "
            f"{case['swaps']:>6} {'ok' if case['matches_seed'] else 'DIFF'}",
            file=out,
        )
    summary = report["summary"]
    print(
        f"\ntotal {summary['total_seconds']}s "
        f"(seed {summary['seed_total_seconds']}s), "
        f"all_match_seed={summary['all_match_seed']}",
        file=out,
    )
    if "hot_case_speedup" in summary:
        print(
            f"hot case {summary['hot_case']}: "
            f"{summary['hot_case_speedup']}x vs seed",
            file=out,
        )
    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json_path}", file=out)
    return 0 if summary["all_match_seed"] else 3


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "devices":
        return _cmd_devices(out)
    if args.command == "info":
        return _cmd_info(args, out)
    if args.command == "map":
        return _cmd_map(args, out)
    if args.command == "simulate":
        return _cmd_simulate(args, out)
    if args.command == "bench":
        return _cmd_bench(args, out)
    raise SystemExit(f"unknown command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
