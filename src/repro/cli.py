"""Command-line interface.

The compiler of the paper's Fig. 2 as a tool: QASM text plus a machine
description in, a mapped/scheduled program out.

Usage examples::

    python -m repro devices
    python -m repro info --device surface17
    python -m repro map circuit.qasm --device ibm_qx4 --router sabre \
        --optimize --verify -o mapped.qasm --report
    python -m repro map circuit.qasm --device-config mychip.json \
        --schedule constraints --cqasm mapped.cq
    python -m repro batch manifest.json --jobs 4 --cache-dir .repro-cache \
        --json report.json
    python -m repro batch --corpus perf --jobs 4 --compare-serial \
        --json BENCH_service.json
    python -m repro serve --port 8571 --jobs 4 --cache-dir .repro-cache
    python -m repro bench --trace trace.json
    python -m repro trace summarize trace.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core.circuit import Circuit
from .core.pipeline import compile_circuit
from .devices import Device, available_devices, get_device
from .mapping.placement import PLACERS
from .mapping.routing import ROUTERS
from .mapping.routing.base import RoutingError
from .qasm import QasmError, parse_qasm, schedule_to_cqasm, to_cqasm, to_openqasm
from .verify import equivalent_mapped
from .viz import draw_circuit, draw_device, draw_schedule

__all__ = ["main", "build_parser", "CliError"]


class CliError(Exception):
    """A user-input problem reported as one clean line, no traceback."""


def _load_circuit(path_text: str) -> Circuit:
    """Read and parse an OpenQASM input ('-' for stdin).

    Raises:
        CliError: when the file is missing/unreadable or the QASM text
            does not parse.
    """
    if path_text == "-":
        source = sys.stdin.read()
        label = "<stdin>"
    else:
        try:
            source = Path(path_text).read_text()
        except OSError as exc:
            raise CliError(
                f"cannot read {path_text!r}: {exc.strerror or exc}"
            ) from exc
        label = path_text
    try:
        return parse_qasm(source)
    except QasmError as exc:
        raise CliError(f"invalid QASM in {label}: {exc}") from exc


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quantum circuit mapper (DATE 2020 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list available device models")

    info = sub.add_parser("info", help="describe one device model")
    _add_device_args(info)

    map_cmd = sub.add_parser("map", help="compile an OpenQASM file for a device")
    map_cmd.add_argument("input", help="OpenQASM 2.0 input file ('-' for stdin)")
    _add_device_args(map_cmd)
    map_cmd.add_argument(
        "--placer", default="assignment", choices=sorted(PLACERS),
        help="initial placement strategy (default: assignment)",
    )
    map_cmd.add_argument(
        "--router", default="sabre", choices=sorted(ROUTERS),
        help="routing algorithm (default: sabre)",
    )
    map_cmd.add_argument(
        "--schedule", default="asap",
        choices=["asap", "alap", "constraints", "none"],
        help="scheduling mode (default: asap)",
    )
    map_cmd.add_argument(
        "--optimize", action="store_true",
        help="run peephole optimisation on the lowered circuit",
    )
    map_cmd.add_argument(
        "--no-decompose", action="store_true",
        help="stop after routing (keep SWAPs / non-native gates)",
    )
    map_cmd.add_argument(
        "--verify", action="store_true",
        help="check mapped-circuit equivalence before writing output",
    )
    map_cmd.add_argument(
        "-o", "--output", metavar="FILE",
        help="write the mapped circuit as OpenQASM",
    )
    map_cmd.add_argument(
        "--cqasm", metavar="FILE",
        help="write the result as cQASM (scheduled bundles when scheduled)",
    )
    map_cmd.add_argument(
        "--report", action="store_true",
        help="print the compilation summary and schedule table",
    )
    map_cmd.add_argument(
        "--draw", action="store_true",
        help="print ASCII diagrams of the input and mapped circuits",
    )
    map_cmd.add_argument(
        "--trace", metavar="FILE", dest="trace_path",
        help="record per-pass spans and write a Chrome-trace JSON file",
    )

    sim = sub.add_parser(
        "simulate", help="run an OpenQASM file on the statevector simulator"
    )
    sim.add_argument("input", help="OpenQASM 2.0 input file ('-' for stdin)")
    sim.add_argument(
        "--shots", type=int, default=1024, help="measurement shots (default 1024)"
    )
    sim.add_argument("--seed", type=int, default=0, help="RNG seed")
    sim.add_argument(
        "--noise", action="store_true",
        help="sample under the default Pauli-error model instead of ideally",
    )
    sim.add_argument(
        "--error-2q", type=float, default=0.01,
        help="two-qubit error rate for --noise (default 0.01)",
    )

    bench = sub.add_parser(
        "bench",
        help="time the routers on the fixed-seed corpus and check "
        "byte-identical equivalence with the seed implementations",
    )
    bench.add_argument(
        "--json", metavar="FILE", dest="json_path",
        help="write the full report as JSON (e.g. BENCH_routers.json)",
    )
    bench.add_argument(
        "--repeats", type=int, default=1,
        help="timing repeats per case, best-of-N (default 1)",
    )
    bench.add_argument(
        "--large", action="store_true",
        help="also run the 80-119 qubit large-device corpus "
        "(exercises the multi-word native kernels)",
    )
    bench.add_argument(
        "--trace", metavar="FILE", dest="trace_path",
        help="record per-case routing spans and router counters as a "
        "Chrome-trace JSON file",
    )

    batch = sub.add_parser(
        "batch",
        help="compile many circuit/device/config jobs through the "
        "caching service (manifest file or built-in corpus)",
    )
    batch.add_argument(
        "manifest", nargs="?", default=None,
        help="JSON manifest of jobs ('-' for stdin); "
        "omit when using --corpus",
    )
    batch.add_argument(
        "--corpus", choices=["perf"], default=None,
        help="use a built-in workload instead of a manifest "
        "(perf = the fixed-seed full-pipeline corpus)",
    )
    batch.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="only run the first N jobs of the workload",
    )
    batch.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the batch (default 1 = in-process)",
    )
    batch.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persistent on-disk artefact cache directory",
    )
    batch.add_argument(
        "--no-cache", action="store_true",
        help="compile every job fresh (still dedups within the batch)",
    )
    batch.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job compute budget, measured from the moment a worker "
        "starts the job (queue wait is free); enforced from outside the "
        "worker, so it needs the pool path",
    )
    batch.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="cooperative per-job routing deadline: routers poll it and "
        "degrade through the fallback chain (astar -> sabre -> naive) "
        "instead of being killed",
    )
    batch.add_argument(
        "--batch-timeout", type=float, default=None, metavar="SECONDS",
        help="overall wall-clock bound on the whole batch; unfinished "
        "jobs report status=timeout when it expires",
    )
    batch.add_argument(
        "--faults", metavar="PLAN", default=None,
        help="fault-injection plan: a JSON file path or inline JSON "
        "(see docs/resilience.md); crash/hang faults run in pool "
        "workers, never in this process",
    )
    batch.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="retry budget per job after a worker crash (default 1); "
        "attributed crashes retry with the next fallback router",
    )
    batch.add_argument(
        "--json", metavar="FILE", dest="json_path",
        help="write the full batch report as JSON",
    )
    batch.add_argument(
        "--compare-serial", action="store_true",
        help="run the three-phase throughput benchmark "
        "(serial / parallel cold / warm cache) instead of a plain batch",
    )
    batch.add_argument(
        "--trace", metavar="FILE", dest="trace_path",
        help="record per-job pass spans (merged across workers) as a "
        "Chrome-trace JSON file",
    )

    serve = sub.add_parser(
        "serve",
        help="run the HTTP/JSON compile gateway (async job API, "
        "priority queues, admission control) over the warm pool",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=8571,
        help="TCP port (default 8571; 0 picks an ephemeral port, "
        "printed on startup)",
    )
    serve.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="warm-pool workers (default: CPU count)",
    )
    serve.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persistent on-disk artefact cache directory",
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="compile every job fresh",
    )
    serve.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job hard compute budget (measured from worker start)",
    )
    serve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="default cooperative routing deadline for jobs that do "
        "not carry their own SLO deadline",
    )
    serve.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="crash-retry budget per job (default 1)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=256, metavar="N",
        help="admission control: max queued jobs before submissions "
        "are rejected with 429 (default 256)",
    )
    serve.add_argument(
        "--tenant-burst", type=int, default=64, metavar="N",
        help="admission control: per-tenant token-bucket capacity "
        "(default 64)",
    )
    serve.add_argument(
        "--tenant-rate", type=float, default=32.0, metavar="N",
        help="admission control: per-tenant token refill rate per "
        "second (default 32)",
    )
    serve.add_argument(
        "--prewarm", action="store_true",
        help="spawn and preload the worker pool before accepting "
        "traffic",
    )
    serve.add_argument(
        "--verbose", action="store_true",
        help="log every HTTP request to stderr",
    )

    trace_cmd = sub.add_parser(
        "trace", help="inspect Chrome-trace files written with --trace"
    )
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    trace_sum = trace_sub.add_parser(
        "summarize", help="print a per-pass time/gate table for a trace file"
    )
    trace_sum.add_argument("file", help="Chrome-trace JSON file")
    return parser


def _add_device_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--device", choices=available_devices(), help="registry device name"
    )
    group.add_argument(
        "--device-config", metavar="FILE",
        help="JSON machine-description file (Device.to_json format)",
    )
    parser.add_argument(
        "--qubits", type=int, default=None,
        help="qubit count for parametric devices (linear/ring/all_to_all)",
    )
    parser.add_argument("--rows", type=int, default=None, help="grid rows")
    parser.add_argument("--cols", type=int, default=None, help="grid cols")
    parser.add_argument(
        "--row-len", type=int, default=None,
        help="qubits per row for the heavy_hex device",
    )


def _resolve_device(args: argparse.Namespace) -> Device:
    if args.device_config:
        return Device.from_json(Path(args.device_config))
    params = {}
    if args.device in ("grid", "dots"):
        if args.rows is None or args.cols is None:
            raise SystemExit(f"{args.device} device needs --rows and --cols")
        params = {"rows": args.rows, "cols": args.cols}
    elif args.device in ("linear", "ring", "all_to_all"):
        if args.qubits is None:
            raise SystemExit(f"{args.device} device needs --qubits")
        params = {"num_qubits": args.qubits}
    elif args.device == "heavy_hex":
        if args.rows is None or args.row_len is None:
            raise SystemExit("heavy_hex device needs --rows and --row-len")
        params = {"rows": args.rows, "row_len": args.row_len}
    return get_device(args.device, **params)


def _make_tracer(args):
    """A (tracer, context) pair for ``--trace``; null when not requested."""
    from contextlib import nullcontext

    if not getattr(args, "trace_path", None):
        return None, nullcontext()
    from .obs import Tracer, use_tracer

    tracer = Tracer()
    return tracer, use_tracer(tracer)


def _write_trace(args, tracer, out, meta=None) -> None:
    """Write the tracer's spans as a Chrome-trace JSON file."""
    from .obs import write_chrome_trace

    write_chrome_trace(
        args.trace_path, tracer.finished(),
        counters=tracer.counters(), meta=meta,
    )
    print(f"wrote {args.trace_path}", file=out)


def _cmd_devices(out) -> int:
    for name in available_devices():
        print(name, file=out)
    return 0


def _cmd_info(args, out) -> int:
    device = _resolve_device(args)
    print(draw_device(device), file=out)
    return 0


def _cmd_map(args, out) -> int:
    circuit = _load_circuit(args.input)
    device = _resolve_device(args)

    tracer, trace_ctx = _make_tracer(args)
    with trace_ctx:
        try:
            result = compile_circuit(
                circuit,
                device,
                placer=args.placer,
                router=args.router,
                decompose=not args.no_decompose,
                optimize=args.optimize,
                schedule=None if args.schedule == "none" else args.schedule,
            )
        except RoutingError as exc:
            raise CliError(f"routing failed: {exc}") from exc
    if tracer is not None:
        _write_trace(args, tracer, out)

    if args.verify:
        from .verify import STATEVECTOR_LIMIT

        unitary_only = all(
            g.is_unitary or g.is_barrier for g in result.native.gates
        )
        if not unitary_only:
            print(
                "warning: circuit contains measurements; skipping the "
                "unitary equivalence check",
                file=sys.stderr,
            )
        elif result.native.num_qubits > STATEVECTOR_LIMIT:
            print(
                f"warning: {result.native.num_qubits}-qubit device exceeds "
                f"the {STATEVECTOR_LIMIT}-qubit statevector limit; skipping "
                "the equivalence check",
                file=sys.stderr,
            )
        elif not equivalent_mapped(
            circuit, result.native, result.routed.initial, result.routed.final
        ):
            print("ERROR: mapped circuit is NOT equivalent", file=sys.stderr)
            return 2
        else:
            print("verification: mapped circuit equivalent", file=out)

    if args.report or not (args.output or args.cqasm):
        print(result.summary(), file=out)
    if args.draw:
        print("\ninput circuit:", file=out)
        print(draw_circuit(circuit), file=out)
        print("\nmapped circuit:", file=out)
        print(draw_circuit(result.native, qubit_prefix="Q"), file=out)
    if args.report and result.schedule is not None:
        print("\nschedule:", file=out)
        print(draw_schedule(result.schedule), file=out)

    if args.output:
        Path(args.output).write_text(to_openqasm(result.native))
        print(f"wrote {args.output}", file=out)
    if args.cqasm:
        if result.schedule is not None:
            text = schedule_to_cqasm(result.schedule)
        else:
            text = to_cqasm(result.native)
        Path(args.cqasm).write_text(text)
        print(f"wrote {args.cqasm}", file=out)
    return 0


def _cmd_simulate(args, out) -> int:
    circuit = _load_circuit(args.input)

    measured = sorted({g.qubits[0] for g in circuit.gates if g.is_measurement})
    report_qubits = measured or list(range(circuit.num_qubits))

    if args.noise:
        from .sim.noise import NoiseModel
        from .sim.monte_carlo import sample_noisy_counts

        noise = NoiseModel(error_2q=args.error_2q)
        counts = sample_noisy_counts(
            circuit, noise, shots=args.shots, seed=args.seed,
            measure_qubits=report_qubits,
        )
        print(f"noisy sampling ({args.shots} shots, e2q={args.error_2q}):", file=out)
    else:
        import numpy as np

        from .sim import StateVector

        counts: dict[str, int] = {}
        for shot in range(args.shots):
            sv = StateVector(
                circuit.num_qubits,
                rng=np.random.default_rng((args.seed, shot)),
            )
            sv.run(circuit)
            bits = "".join(
                str(sv.results[q]) if q in sv.results else str(sv.measure(q))
                for q in report_qubits
            )
            counts[bits] = counts.get(bits, 0) + 1
        print(f"ideal sampling ({args.shots} shots):", file=out)

    label = ",".join(f"q{q}" for q in report_qubits)
    print(f"outcome ({label}) : count", file=out)
    for key in sorted(counts, key=lambda k: -counts[k]):
        print(f"  {key} : {counts[key]}", file=out)
    return 0


def _cmd_bench(args, out) -> int:
    import json

    from .perf import run_bench

    tracer, trace_ctx = _make_tracer(args)
    with trace_ctx:
        report = run_bench(repeats=args.repeats, include_large=args.large)
    print(f"{'case':<42} {'seconds':>9} {'seed_s':>9} {'swaps':>6} match",
          file=out)
    for case in report["cases"]:
        seed_sec = case["seed_seconds"]
        seed_txt = f"{seed_sec:>9.4f}" if seed_sec else f"{'-':>9}"
        print(
            f"{case['case']:<42} {case['seconds']:>9.4f} {seed_txt} "
            f"{case['swaps']:>6} {'ok' if case['matches_seed'] else 'DIFF'}",
            file=out,
        )
    summary = report["summary"]
    print(
        f"\ntotal {summary['total_seconds']}s "
        f"(seed {summary['seed_total_seconds']}s), "
        f"all_match_seed={summary['all_match_seed']}",
        file=out,
    )
    if "hot_case_speedup" in summary:
        print(
            f"hot case {summary['hot_case']}: "
            f"{summary['hot_case_speedup']}x vs seed",
            file=out,
        )
    kernel = summary["kernel"]
    print(
        f"kernel: available={kernel['available']} "
        f"native_layers={kernel['native_layers']} "
        f"python_layers={kernel['python_layers']} "
        f"batch_calls={kernel['batch_calls']} "
        f"sabre_native={kernel['sabre_native_calls']} "
        f"sabre_python={kernel['sabre_python_calls']}",
        file=out,
    )
    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json_path}", file=out)
    if tracer is not None:
        _write_trace(args, tracer, out, meta={"bench_summary": summary})
    return 0 if summary["all_match_seed"] else 3


def _batch_device(spec, base: Path):
    """Resolve a manifest device spec: registry name, JSON file, or dict."""
    if isinstance(spec, dict):
        return Device.from_dict(spec)
    if not isinstance(spec, str):
        raise CliError(f"invalid device spec {spec!r} in manifest")
    if spec in available_devices():
        return get_device(spec)
    path = base / spec
    if path.suffix == ".json" or path.exists():
        try:
            return Device.from_json(path)
        except OSError as exc:
            raise CliError(
                f"cannot read device file {spec!r}: {exc.strerror or exc}"
            ) from exc
        except (KeyError, ValueError) as exc:
            raise CliError(f"invalid device file {spec!r}: {exc}") from exc
    raise CliError(
        f"unknown device {spec!r} (not a registry name or a .json file)"
    )


def _batch_jobs_from_manifest(args) -> list:
    """Expand a batch manifest into CompileJobs.

    The manifest is a JSON object with either an explicit ``jobs`` list
    (``{"circuit": ..., "device": ..., "config": {...}}`` entries) or a
    ``circuits`` x ``devices`` [x ``routers``] cross-product, with
    ``defaults`` merged into every job config.  Circuit and device file
    paths are resolved relative to the manifest's directory.
    """
    import json

    from .core.pipeline import PassConfig
    from .service import CompileJob

    if args.manifest == "-":
        text = sys.stdin.read()
        base = Path.cwd()
    else:
        try:
            text = Path(args.manifest).read_text()
        except OSError as exc:
            raise CliError(
                f"cannot read {args.manifest!r}: {exc.strerror or exc}"
            ) from exc
        base = Path(args.manifest).resolve().parent
    try:
        manifest = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CliError(f"invalid JSON in manifest: {exc}") from exc
    if not isinstance(manifest, dict):
        raise CliError("manifest must be a JSON object")

    defaults = manifest.get("defaults", {})
    if not isinstance(defaults, dict):
        raise CliError('manifest "defaults" must be an object')

    def make_config(overrides: dict) -> PassConfig:
        merged = {**defaults, **overrides}
        try:
            return PassConfig.from_dict(merged)
        except (TypeError, ValueError) as exc:
            raise CliError(f"invalid pass config {merged!r}: {exc}") from exc

    def read_qasm(spec: str) -> str:
        try:
            return (base / spec).read_text()
        except OSError as exc:
            raise CliError(
                f"cannot read circuit {spec!r}: {exc.strerror or exc}"
            ) from exc

    jobs = []
    for entry in manifest.get("jobs", []):
        if not isinstance(entry, dict) or "circuit" not in entry \
                or "device" not in entry:
            raise CliError(
                f'manifest job entries need "circuit" and "device": {entry!r}'
            )
        jobs.append(
            CompileJob.create(
                read_qasm(entry["circuit"]),
                _batch_device(entry["device"], base),
                make_config(entry.get("config", {})),
                job_id=entry.get("id"),
                timeout=entry.get("timeout"),
                metadata={"circuit": entry["circuit"]},
            )
        )

    circuits = manifest.get("circuits", [])
    devices = manifest.get("devices", [])
    if circuits and not devices:
        raise CliError('manifest "circuits" needs a "devices" list')
    routers = manifest.get("routers") or [None]
    for circ_spec in circuits:
        qasm = read_qasm(circ_spec)
        for dev_spec in devices:
            device = _batch_device(dev_spec, base)
            dev_label = dev_spec if isinstance(dev_spec, str) else "custom"
            for router in routers:
                overrides = {} if router is None else {"router": router}
                job_id = f"{circ_spec}@{dev_label}"
                if router is not None:
                    job_id += f"/{router}"
                jobs.append(
                    CompileJob.create(
                        qasm,
                        device,
                        make_config(overrides),
                        job_id=job_id,
                        metadata={"circuit": circ_spec},
                    )
                )

    if not jobs:
        raise CliError("manifest expands to zero jobs")
    return jobs


def _cmd_batch(args, out) -> int:
    import json

    from .service import CompileCache, CompileService

    if args.compare_serial:
        from .perf import run_service_bench

        tracer, trace_ctx = _make_tracer(args)
        with trace_ctx:
            report = run_service_bench(
                jobs=args.jobs,
                cache_dir=args.cache_dir,
                limit=args.limit,
                retries=args.retries,
                timeout=args.timeout,
            )
        summary = report["summary"]
        print(
            f"{summary['cases']} jobs, {summary['workers']} workers:",
            file=out,
        )
        print(
            f"  serial        {summary['serial_seconds']:>8}s "
            f"({summary['serial_throughput']} jobs/s)",
            file=out,
        )
        print(
            f"  parallel cold {summary['parallel_cold_seconds']:>8}s "
            f"({summary['parallel_cold_throughput']} jobs/s, "
            f"{summary['parallel_speedup']}x vs serial)",
            file=out,
        )
        print(
            f"  warm cache    {summary['warm_seconds']:>8}s "
            f"({summary['warm_throughput']} jobs/s, "
            f"hit rate {summary['warm_hit_rate']:.0%})",
            file=out,
        )
        if "speedup_vs_oneshot_cli" in summary:
            print(
                f"  one-shot CLI baseline "
                f"{summary['oneshot_cli_sample_seconds']}s/job -> "
                f"{summary['speedup_vs_oneshot_cli']}x amortised speedup",
                file=out,
            )
        print(
            f"  router sweep  {summary['sweep_seconds']:>8}s "
            f"({summary['sweep_cases']} jobs, "
            f"stage hit rate {summary['stage_hit_rate']:.0%}, "
            f"{summary['sweep_speedup']}x vs serial)",
            file=out,
        )
        print(
            f"  artifacts_match_serial={summary['artifacts_match_serial']} "
            f"sweep_artifacts_match={summary['sweep_artifacts_match']}",
            file=out,
        )
        if args.json_path:
            with open(args.json_path, "w") as fh:
                json.dump(report, fh, indent=2)
                fh.write("\n")
            print(f"wrote {args.json_path}", file=out)
        if tracer is not None:
            _write_trace(args, tracer, out, meta={"bench_summary": summary})
        matches = (
            summary["artifacts_match_serial"]
            and summary["sweep_artifacts_match"]
        )
        return 0 if matches else 3

    if args.corpus == "perf":
        from .perf import corpus_jobs

        jobs = corpus_jobs(args.limit)
    elif args.manifest is not None:
        jobs = _batch_jobs_from_manifest(args)
        if args.limit is not None:
            jobs = jobs[: args.limit]
    else:
        raise CliError("batch needs a manifest file or --corpus")

    fault_plan = None
    if args.faults:
        from .resilience import FaultPlan

        try:
            text = args.faults.strip()
            if text.startswith("{"):
                fault_plan = FaultPlan.from_json(text)
            else:
                fault_plan = FaultPlan.from_file(args.faults)
        except (OSError, ValueError) as exc:
            raise CliError(f"bad fault plan: {exc}")

    cache = None if args.no_cache else CompileCache(directory=args.cache_dir)
    service = CompileService(
        cache,
        max_workers=args.jobs,
        retries=args.retries,
        default_timeout=args.timeout,
    )
    import time as _time

    tracer, trace_ctx = _make_tracer(args)
    t0 = _time.perf_counter()
    with trace_ctx:
        results = service.submit_batch(
            jobs,
            deadline=args.deadline,
            batch_timeout=args.batch_timeout,
            fault_plan=fault_plan,
        )
    elapsed = _time.perf_counter() - t0

    print(f"{'job':<44} {'status':<8} {'cache':<7} {'swaps':>5} {'sec':>8}",
          file=out)
    for res in results:
        metrics = res.metrics or {}
        swaps = metrics.get("added_swaps")
        compile_s = metrics.get("compile_s")
        print(
            f"{res.job_id:<44} {res.status:<8} "
            f"{res.cache_hit or '-':<7} "
            f"{'-' if swaps is None else swaps:>5} "
            f"{'-' if compile_s is None else format(compile_s, '.4f'):>8}",
            file=out,
        )
        if res.error:
            print(f"    error: {res.error}", file=out)

    n_ok = sum(1 for r in results if r.ok)
    n = len(results)
    status_counts = {}
    for res in results:
        status_counts[res.status] = status_counts.get(res.status, 0) + 1
    breakdown = ", ".join(
        f"{status} {count}"
        for status, count in sorted(status_counts.items())
        if status != "ok"
    )
    stats = service.stats()
    service.close()
    print(
        f"\n{n_ok}/{n} ok"
        + (f" ({breakdown})" if breakdown else "")
        + f" in {elapsed:.3f}s "
        f"({n / elapsed:.1f} jobs/s), "
        f"cache hit rate {stats['service']['hit_rate']:.0%}",
        file=out,
    )
    if args.json_path:
        report = {
            "schema": 1,
            "jobs": [r.to_dict() for r in results],
            "summary": {
                "total": n,
                "ok": n_ok,
                "statuses": status_counts,
                "seconds": round(elapsed, 4),
                "throughput": round(n / elapsed, 2) if elapsed else None,
            },
            "service_stats": stats,
        }
        if tracer is not None:
            report["trace"] = service.trace_report(tracer)
        with open(args.json_path, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json_path}", file=out)
    if tracer is not None:
        _write_trace(args, tracer, out, meta={"service_stats": stats})
    # Degraded compiles still produced an artefact: the batch succeeded,
    # the per-job statuses carry the nuance.
    return 0 if all(r.completed for r in results) else 4


def _cmd_serve(args, out) -> int:
    from .service import (
        AsyncCompileService,
        CompileCache,
        CompileService,
        GatewayServer,
    )

    cache = None if args.no_cache else CompileCache(directory=args.cache_dir)
    service = CompileService(
        cache,
        max_workers=args.jobs,
        retries=args.retries,
        default_timeout=args.timeout,
        default_deadline=args.deadline,
    )
    gateway = AsyncCompileService(
        service,
        max_queue_depth=args.queue_depth,
        tenant_burst=args.tenant_burst,
        tenant_rate=args.tenant_rate,
    )
    gateway._owns_service = True  # serve built it, serve tears it down
    if args.prewarm:
        service.prewarm()
    server = GatewayServer(
        (args.host, args.port), gateway, verbose=args.verbose
    )
    # The smoke harness parses this line to find an ephemeral port, so it
    # must be flushed before serve_forever blocks.
    print(
        f"gateway listening on http://{args.host}:{server.port}",
        file=out,
    )
    try:
        out.flush()
    except (AttributeError, OSError):
        pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        gateway.close(drain=True)
    return 0


def _cmd_trace(args, out) -> int:
    import json

    from .obs import format_summary, load_trace, summarize_trace

    try:
        trace = load_trace(args.file)
    except OSError as exc:
        raise CliError(
            f"cannot read {args.file!r}: {exc.strerror or exc}"
        ) from exc
    except (json.JSONDecodeError, ValueError) as exc:
        raise CliError(f"invalid trace file {args.file!r}: {exc}") from exc
    rows = summarize_trace(trace)
    if not rows:
        print("trace contains no spans", file=out)
        return 0
    counters = trace.get("otherData", {}).get("counters")
    print(format_summary(rows, counters=counters), file=out)
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    commands = {
        "devices": lambda: _cmd_devices(out),
        "info": lambda: _cmd_info(args, out),
        "map": lambda: _cmd_map(args, out),
        "simulate": lambda: _cmd_simulate(args, out),
        "bench": lambda: _cmd_bench(args, out),
        "batch": lambda: _cmd_batch(args, out),
        "serve": lambda: _cmd_serve(args, out),
        "trace": lambda: _cmd_trace(args, out),
    }
    try:
        handler = commands[args.command]
    except KeyError:
        raise SystemExit(f"unknown command {args.command!r}") from None
    try:
        return handler()
    except CliError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
