"""Frozen seed-router outputs: the byte-identical equivalence reference.

Captured from the pre-optimisation (seed) router implementations on the
fixed-seed corpus of :mod:`repro.perf.bench` before the mapping hot-path
overhaul.  Every entry records the routed circuit's added SWAP count and
a fingerprint (sha256 over the ``repr`` of each gate in order, first 16
hex digits), plus the seed's wall-clock seconds where the case is timed.

The optimised routers must keep reproducing these outputs exactly: the
hot-path rework (incremental SABRE scoring, packed-integer A* kernel,
flat-array DAG/device paths) changes *how* the answer is computed, never
*which* answer comes out.  ``benchmarks/test_perf_smoke.py`` asserts
this on every tier-1 run; ``repro.perf.bench`` re-checks it on every
bench invocation.

``seed_seconds`` values were measured on the development machine that
produced the seed's ``benchmarks/results/router_scaling.txt`` numbers —
they are a reference trajectory, not a portable constant.
"""

from __future__ import annotations

__all__ = ["SEED_BASELINE"]

#: key: "<device>/<nq>q<ng>g_s<seed>/<router>" or a named variant case.
#: value: {"swaps": int, "fingerprint": str, "seed_seconds": float | None}
SEED_BASELINE: dict[str, dict] = {
    "ibm_qx5/12q30g_s11/naive": {"swaps": 57, "fingerprint": "a9c25830b6c5f7f4", "seed_seconds": 0.0012},
    "ibm_qx5/12q30g_s11/sabre": {"swaps": 30, "fingerprint": "beeb7bcba824674e", "seed_seconds": 0.0035},
    "ibm_qx5/12q30g_s11/astar": {"swaps": 41, "fingerprint": "4d06a8782b45ac8e", "seed_seconds": 0.0594},
    "ibm_qx5/12q30g_s11/latency": {"swaps": 44, "fingerprint": "968e8c082c8436d2", "seed_seconds": 0.0041},
    "ibm_qx5/12q30g_s11/reliability": {"swaps": 34, "fingerprint": "b2090eb720a3d622", "seed_seconds": 0.0060},
    "ibm_qx5/12q120g_s120/naive": {"swaps": 154, "fingerprint": "fa68ac83f9fcc5dc", "seed_seconds": 0.0014},
    "ibm_qx5/12q120g_s120/sabre": {"swaps": 80, "fingerprint": "b83f83c9d0e5ba76", "seed_seconds": 0.0098},
    "ibm_qx5/12q120g_s120/astar": {"swaps": 117, "fingerprint": "f5d7352cb1cc5461", "seed_seconds": 5.2732},
    "ibm_qx5/12q120g_s120/latency": {"swaps": 133, "fingerprint": "264f37e9981c75e5", "seed_seconds": 0.0127},
    "ibm_qx5/12q120g_s120/reliability": {"swaps": 74, "fingerprint": "ec64051a12cc0919", "seed_seconds": 0.0113},
    "ibm_qx5/16q80g_s5/naive": {"swaps": 114, "fingerprint": "9b1f34779857c413", "seed_seconds": 0.0009},
    "ibm_qx5/16q80g_s5/sabre": {"swaps": 75, "fingerprint": "1ca665a610eac7ad", "seed_seconds": 0.0099},
    "ibm_qx5/16q80g_s5/astar": {"swaps": 59, "fingerprint": "3413f4022226b35e", "seed_seconds": 0.6067},
    "ibm_qx5/16q80g_s5/latency": {"swaps": 123, "fingerprint": "fd28c875233688b0", "seed_seconds": 0.0126},
    "ibm_qx5/16q80g_s5/reliability": {"swaps": 79, "fingerprint": "52b642b0844d6a75", "seed_seconds": 0.0111},
    "grid44/16q100g_s7/naive": {"swaps": 88, "fingerprint": "ef6828c29611cb98", "seed_seconds": 0.0010},
    "grid44/16q100g_s7/sabre": {"swaps": 47, "fingerprint": "0a5b4c749d2d9c12", "seed_seconds": 0.0071},
    "grid44/16q100g_s7/astar": {"swaps": 59, "fingerprint": "43caeade0280f5de", "seed_seconds": 0.0987},
    "grid44/16q100g_s7/latency": {"swaps": 100, "fingerprint": "7d5b35d06dea8ae9", "seed_seconds": 0.0102},
    "grid44/16q100g_s7/reliability": {"swaps": 48, "fingerprint": "10cb8f518eab4007", "seed_seconds": 0.0089},
    "grid44/10q60g_s3/naive": {"swaps": 39, "fingerprint": "4837e0986c8cf92a", "seed_seconds": 0.0006},
    "grid44/10q60g_s3/sabre": {"swaps": 29, "fingerprint": "f3430b30c7d2cee3", "seed_seconds": 0.0039},
    "grid44/10q60g_s3/astar": {"swaps": 30, "fingerprint": "638ddb46f238abdf", "seed_seconds": 0.0139},
    "grid44/10q60g_s3/latency": {"swaps": 49, "fingerprint": "ff562327f627c9a3", "seed_seconds": 0.0041},
    "grid44/10q60g_s3/reliability": {"swaps": 32, "fingerprint": "c1b39f5e5f06a5d9", "seed_seconds": 0.0043},
    "linear9/9q50g_s2/naive": {"swaps": 78, "fingerprint": "c9dce24c2740d5bd", "seed_seconds": 0.0006},
    "linear9/9q50g_s2/sabre": {"swaps": 51, "fingerprint": "8663fb79581d0e4b", "seed_seconds": 0.0035},
    "linear9/9q50g_s2/astar": {"swaps": 64, "fingerprint": "adb170528ae46637", "seed_seconds": 0.0196},
    "linear9/9q50g_s2/latency": {"swaps": 62, "fingerprint": "a2d60fb63224de8d", "seed_seconds": 0.0034},
    "linear9/9q50g_s2/reliability": {"swaps": 55, "fingerprint": "1a8d22eb71abd6a0", "seed_seconds": 0.0041},
    "surface17/12q70g_s13/naive": {"swaps": 71, "fingerprint": "a2ac29f2cfe95175", "seed_seconds": 0.0008},
    "surface17/12q70g_s13/sabre": {"swaps": 39, "fingerprint": "e3892054b76f043e", "seed_seconds": 0.0052},
    "surface17/12q70g_s13/astar": {"swaps": 46, "fingerprint": "4310a12ef9f24af1", "seed_seconds": 0.0204},
    "surface17/12q70g_s13/latency": {"swaps": 72, "fingerprint": "6ff4a745bfb4b13f", "seed_seconds": 0.0074},
    "surface17/12q70g_s13/reliability": {"swaps": 38, "fingerprint": "c64db0d6fc6c971c", "seed_seconds": 0.0084},
    # Router-option variants, all on random_circuit(12, 60, seed=42,
    # two_qubit_fraction=0.6) mapped to ibm_qx5 (untimed in the seed).
    "variants/sabre_commutation": {"swaps": 47, "fingerprint": "7c1abe8312439ebb", "seed_seconds": None},
    "variants/sabre_lookahead0": {"swaps": 64, "fingerprint": "ad49b72930a7ece8", "seed_seconds": None},
    "variants/sabre_nodecay": {"swaps": 47, "fingerprint": "483e224b8211de3a", "seed_seconds": None},
    "variants/astar_lookahead2": {"swaps": 56, "fingerprint": "5fdb7bf2ea7e27f1", "seed_seconds": None},
    "variants/latency_commutation": {"swaps": 55, "fingerprint": "c42f4f59946446e3", "seed_seconds": None},
    # Large-device corpus (80-119 physical qubits; repro bench --large).
    # Captured from the pure-Python reference kernels (REPRO_NO_NATIVE=1)
    # after the multi-word bitset rework, so the native path is checked
    # against the Python path on every bench run; seed_seconds are the
    # Python-path timings on the development machine.
    "grid8x10/12q40g_s21/astar": {"swaps": 34, "fingerprint": "3e445d96c77e45aa", "seed_seconds": 0.193},
    "grid8x10/12q40g_s21/sabre": {"swaps": 34, "fingerprint": "ab3483b46fa87b51", "seed_seconds": 0.003},
    "grid10x10/12q40g_s9/astar": {"swaps": 52, "fingerprint": "361daf4d093a3743", "seed_seconds": 0.151},
    "grid10x10/12q40g_s9/sabre": {"swaps": 56, "fingerprint": "a67cf2517c86106d", "seed_seconds": 0.003},
    "heavyhex119/12q30g_s17/astar": {"swaps": 32, "fingerprint": "d0e7a722b3052597", "seed_seconds": 0.028},
    "heavyhex119/12q30g_s17/sabre": {"swaps": 29, "fingerprint": "35dc5a05622f9ef1", "seed_seconds": 0.002},
}
