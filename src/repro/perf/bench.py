"""Router benchmark runner: times the corpus, checks seed equivalence.

The corpus is small enough to run in seconds yet covers every router on
several topologies (QX5's directed 2x8 lattice, a 4x4 grid, a line, the
surface-17 layout) plus the router-option variants (commutation, no
look-ahead, no decay, deeper A* look-ahead).  Cases and seeds must stay
in sync with :data:`repro.perf.baseline.SEED_BASELINE` — they are the
same corpus the seed outputs were captured on.

Used by ``python -m repro.cli bench`` (JSON emission, perf trajectory)
and by ``benchmarks/test_perf_smoke.py`` (tier-1 budgets).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

from ..core.circuit import Circuit
from ..devices import grid_device, heavy_hex_device, ibm_qx5, linear_device, surface17
from ..devices.device import Device
from ..obs import trace_span
from ..mapping.routing import (
    route_astar,
    route_latency,
    route_naive,
    route_reliability,
    route_sabre,
)
from ..mapping.routing._astar_native import kernel_stats
from ..workloads import random_circuit
from .baseline import SEED_BASELINE
from .timing import time_call

__all__ = ["BenchCase", "CORPUS", "LARGE_CORPUS", "fingerprint", "run_bench"]


def fingerprint(circuit: Circuit) -> str:
    """Order-sensitive digest of a circuit's gate list (16 hex digits)."""
    digest = hashlib.sha256()
    for gate in circuit.gates:
        digest.update(repr(gate).encode())
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class BenchCase:
    """One timed routing instance of the fixed-seed corpus."""

    key: str                               # matches a SEED_BASELINE key
    device_factory: Callable[[], Device]
    num_qubits: int
    num_gates: int
    seed: int
    route: Callable[[Circuit, Device], object]

    def circuit(self) -> Circuit:
        return random_circuit(
            self.num_qubits, self.num_gates, seed=self.seed,
            two_qubit_fraction=0.6,
        )


_ROUTERS: dict[str, Callable] = {
    "naive": route_naive,
    "sabre": route_sabre,
    "astar": route_astar,
    "latency": route_latency,
    "reliability": route_reliability,
}

_DEVICES: dict[str, Callable[[], Device]] = {
    "ibm_qx5": ibm_qx5,
    "grid44": lambda: grid_device(4, 4),
    "linear9": lambda: linear_device(9),
    "surface17": surface17,
}

_INSTANCES = [
    ("ibm_qx5", 12, 30, 11),
    ("ibm_qx5", 12, 120, 120),
    ("ibm_qx5", 16, 80, 5),
    ("grid44", 16, 100, 7),
    ("grid44", 10, 60, 3),
    ("linear9", 9, 50, 2),
    ("surface17", 12, 70, 13),
]

#: Large devices exercising the multi-word native kernels (the old
#: single-word kernel refused anything past 64 qubits/edges).  Program
#: circuits stay small enough for the layer-exact A* budget; the devices
#: are the point — 80 to 119 physical qubits, grid and heavy-hex.
_LARGE_DEVICES: dict[str, Callable[[], Device]] = {
    "grid8x10": lambda: grid_device(8, 10),
    "grid10x10": lambda: grid_device(10, 10),
    "heavyhex119": lambda: heavy_hex_device(7, 14),
}

_LARGE_INSTANCES = [
    ("grid8x10", 12, 40, 21),
    ("grid10x10", 12, 40, 9),
    ("heavyhex119", 12, 30, 17),
]

#: Routers benchmarked on the large devices: the two with native paths.
_LARGE_ROUTERS = ("astar", "sabre")

_VARIANTS: dict[str, Callable] = {
    "sabre_commutation": lambda c, d: route_sabre(c, d, commutation=True),
    "sabre_lookahead0": lambda c, d: route_sabre(c, d, lookahead=0),
    "sabre_nodecay": lambda c, d: route_sabre(c, d, use_decay=False),
    "astar_lookahead2": lambda c, d: route_astar(c, d, lookahead_layers=2),
    "latency_commutation": lambda c, d: route_latency(c, d, commutation=True),
}


def _build_corpus() -> list[BenchCase]:
    cases = []
    for dev_name, nq, ng, seed in _INSTANCES:
        for router_name, router in _ROUTERS.items():
            cases.append(
                BenchCase(
                    key=f"{dev_name}/{nq}q{ng}g_s{seed}/{router_name}",
                    device_factory=_DEVICES[dev_name],
                    num_qubits=nq,
                    num_gates=ng,
                    seed=seed,
                    route=router,
                )
            )
    for name, variant in _VARIANTS.items():
        cases.append(
            BenchCase(
                key=f"variants/{name}",
                device_factory=ibm_qx5,
                num_qubits=12,
                num_gates=60,
                seed=42,
                route=variant,
            )
        )
    return cases


def _build_large_corpus() -> list[BenchCase]:
    return [
        BenchCase(
            key=f"{dev_name}/{nq}q{ng}g_s{seed}/{router_name}",
            device_factory=_LARGE_DEVICES[dev_name],
            num_qubits=nq,
            num_gates=ng,
            seed=seed,
            route=_ROUTERS[router_name],
        )
        for dev_name, nq, ng, seed in _LARGE_INSTANCES
        for router_name in _LARGE_ROUTERS
    ]


#: The full fixed-seed corpus (same keys as SEED_BASELINE).
CORPUS: list[BenchCase] = _build_corpus()

#: Large-device cases (80+ qubits), run with ``run_bench(include_large=True)``
#: / ``repro bench --large``.  Baselines captured from the Python
#: reference kernels, so each run proves native/Python equivalence.
LARGE_CORPUS: list[BenchCase] = _build_large_corpus()


_KERNEL_COUNTERS = (
    "build_calls",
    "native_layers",
    "python_layers",
    "batch_calls",
    "sabre_native_calls",
    "sabre_python_calls",
)


def run_bench(
    cases: list[BenchCase] | None = None,
    *,
    repeats: int = 1,
    include_large: bool = False,
) -> dict:
    """Time every case; verify outputs against the seed baseline.

    Returns a JSON-serialisable report.  Each entry carries the measured
    seconds, swap count, circuit fingerprint, the seed's reference
    values, and a ``matches_seed`` flag; the summary totals them and
    computes the headline speedup on the seed's slowest case.  The
    summary's ``kernel`` block reports the native-kernel activity during
    the run (counter deltas plus availability), so CI can assert the
    native path was really taken — or really avoided under
    ``REPRO_NO_NATIVE=1``.  ``include_large=True`` appends the
    :data:`LARGE_CORPUS` 80-119-qubit cases.
    """
    if cases is None:
        cases = CORPUS + LARGE_CORPUS if include_large else CORPUS
    elif include_large:
        cases = list(cases) + LARGE_CORPUS
    stats_before = kernel_stats()
    report_cases = []
    all_match = True
    for case in cases:
        device = case.device_factory()
        circuit = case.circuit()

        # The span sits *inside* the timed region so traced runs report
        # pipeline-stage (routing) spans covering the measured wall time
        # of each case; with tracing disabled the wrapper is a no-op
        # context manager (<2% corpus overhead, budgeted by the smoke
        # test on the null-span path).
        def traced_route(circ: Circuit, dev: Device):
            with trace_span("routing", pass_="routing", case=case.key) as sp:
                routed = case.route(circ, dev)
                if sp.enabled:
                    sp.set(
                        added_swaps=routed.added_swaps,
                        gates_in=circ.size(),
                        gates_out=routed.circuit.size(),
                    )
                return routed

        seconds, result = time_call(
            traced_route, circuit, device, repeats=repeats
        )
        fp = fingerprint(result.circuit)
        seed_entry = SEED_BASELINE.get(case.key)
        matches = seed_entry is not None and (
            result.added_swaps == seed_entry["swaps"]
            and fp == seed_entry["fingerprint"]
        )
        all_match = all_match and matches
        report_cases.append(
            {
                "case": case.key,
                "seconds": round(seconds, 6),
                "swaps": result.added_swaps,
                "fingerprint": fp,
                "seed_seconds": seed_entry and seed_entry["seed_seconds"],
                "seed_swaps": seed_entry and seed_entry["swaps"],
                "matches_seed": matches,
            }
        )

    total = sum(c["seconds"] for c in report_cases)
    seed_total = sum(
        c["seed_seconds"] for c in report_cases if c["seed_seconds"]
    )
    hot = next(
        (c for c in report_cases if c["case"] == "ibm_qx5/12q120g_s120/astar"),
        None,
    )
    stats_after = kernel_stats()
    summary = {
        "total_seconds": round(total, 4),
        "seed_total_seconds": round(seed_total, 4),
        "all_match_seed": all_match,
        "kernel": {
            "available": stats_after["available"],
            **{
                name: stats_after[name] - stats_before[name]
                for name in _KERNEL_COUNTERS
            },
        },
    }
    if hot is not None and hot["seed_seconds"]:
        summary["hot_case"] = hot["case"]
        summary["hot_case_speedup"] = round(
            hot["seed_seconds"] / max(hot["seconds"], 1e-9), 1
        )
    return {
        "schema": 1,
        "corpus": "fixed-seed router corpus (see repro.perf.bench)",
        "repeats": repeats,
        "cases": report_cases,
        "summary": summary,
    }
