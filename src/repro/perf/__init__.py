"""Performance harness for the mapping stack.

The paper's practical claim (and ROADMAP's north star) is that mapping
must run "as fast as the hardware allows": a mapper is judged on quality
*per compile-second*, not on quality alone.  This package tracks the
second axis:

* :mod:`repro.perf.timing` — small wall-clock measurement helpers;
* :mod:`repro.perf.baseline` — frozen outputs (swap counts + circuit
  fingerprints) and timings of the *seed* router implementations on a
  fixed-seed corpus, the reference every optimisation must match
  byte for byte;
* :mod:`repro.perf.bench` — the router benchmark runner behind
  ``python -m repro.cli bench``, which times each router on the corpus,
  checks equivalence against the baseline, and emits a JSON report
  (``BENCH_routers.json``) so successive PRs inherit a perf trajectory;
* :mod:`repro.perf.service_bench` — the batch-compile throughput
  benchmark of the service layer (``repro batch --corpus perf
  --compare-serial``, emitting ``BENCH_service.json``): serial vs
  parallel vs warm-cache circuits/second plus the cache hit rate.

``benchmarks/test_perf_smoke.py`` runs a fast subset under tier-1
pytest, asserting both the equivalence and generous wall-clock budgets.
"""

from .baseline import SEED_BASELINE
from .bench import BenchCase, CORPUS, fingerprint, run_bench
from .service_bench import corpus_jobs, run_service_bench
from .timing import time_call

__all__ = [
    "SEED_BASELINE",
    "BenchCase",
    "CORPUS",
    "corpus_jobs",
    "fingerprint",
    "run_bench",
    "run_service_bench",
    "time_call",
]
