"""Batch-compile throughput benchmark for the service layer.

Reuses the fixed-seed router corpus of :mod:`repro.perf.bench` as a
*compile-service workload*: every corpus case becomes a
:class:`~repro.service.CompileJob` running the full Fig. 2 pipeline
(place, route, decompose, schedule) rather than routing alone.  The
benchmark times three phases and reports circuits/second for each:

1. **serial** — plain in-process :func:`compile_with_config` over every
   job, no cache: the pre-service baseline;
2. **parallel cold** — ``CompileService.submit_batch`` with ``--jobs``
   workers and an empty cache;
3. **parallel warm** — the same batch again on the now-warm cache,
   reporting the hit rate;
4. **gateway** — the warm workload once more through the async job
   gateway (:class:`~repro.service.AsyncCompileService`), measuring the
   per-job submit→result round trip the HTTP front end adds on top of
   the cache;
5. **router sweep** — one fixed circuit compiled under every router ×
   scheduler combination on a fresh cache: every full-pipeline key is
   distinct (100% cold before stage sharding), but the per-stage
   entries reuse the placement across routers and each routed circuit
   across schedulers.  Reports the stage-hit rate and byte-compares
   every swept artefact against a fresh serial compile.

It also cross-checks correctness: the artefact served from the cache in
phase 3 must be byte-identical (canonical JSON) to the artefact a fresh
serial compile produces.  ``python -m repro.cli batch --corpus perf
--compare-serial --json BENCH_service.json`` runs this and persists the
numbers.  An optional one-shot baseline times a cold ``repro map``
subprocess (interpreter start + import + compile), the cost the service
amortises for every job after the first.
"""

from __future__ import annotations

import subprocess
import sys
import time

from ..core.pipeline import PassConfig, compile_with_config
from ..devices.device import Device
from ..qasm import parse_qasm, to_openqasm
from ..service import CompileCache, CompileJob, CompileService
from ..service.artifact import result_to_artifact
from ..service.keys import canonical_json
from ..workloads import random_circuit
from .bench import _DEVICES, _INSTANCES, _ROUTERS

__all__ = ["corpus_jobs", "router_sweep_jobs", "run_service_bench"]

#: Router-option variants of the corpus, as (router, options) configs —
#: mirrors :data:`repro.perf.bench._VARIANTS`, which stores them as
#: closures and therefore cannot feed the (serialisable) job API.
_VARIANT_CONFIGS: dict[str, tuple[str, dict]] = {
    "sabre_commutation": ("sabre", {"commutation": True}),
    "sabre_lookahead0": ("sabre", {"lookahead": 0}),
    "sabre_nodecay": ("sabre", {"use_decay": False}),
    "astar_lookahead2": ("astar", {"lookahead_layers": 2}),
    "latency_commutation": ("latency", {"commutation": True}),
}


def corpus_jobs(limit: int | None = None) -> list[CompileJob]:
    """The perf corpus as full-pipeline compile jobs (40 by default)."""
    jobs: list[CompileJob] = []
    for dev_name, nq, ng, seed in _INSTANCES:
        device = _DEVICES[dev_name]()
        qasm = to_openqasm(
            random_circuit(nq, ng, seed=seed, two_qubit_fraction=0.6)
        )
        for router_name in _ROUTERS:
            jobs.append(
                CompileJob.create(
                    qasm,
                    device,
                    PassConfig(router=router_name),
                    job_id=f"{dev_name}/{nq}q{ng}g_s{seed}/{router_name}",
                )
            )
    variant_device = _DEVICES["ibm_qx5"]()
    variant_qasm = to_openqasm(
        random_circuit(12, 60, seed=42, two_qubit_fraction=0.6)
    )
    for name, (router_name, options) in _VARIANT_CONFIGS.items():
        jobs.append(
            CompileJob.create(
                variant_qasm,
                variant_device,
                PassConfig(router=router_name, router_options=options),
                job_id=f"variants/{name}",
            )
        )
    return jobs[:limit] if limit is not None else jobs


#: The router-sweep grid: every router × every scheduler, one circuit.
_SWEEP_ROUTERS = ("sabre", "astar", "naive", "latency")
_SWEEP_SCHEDULES = ("asap", "alap", "constraints")


def router_sweep_jobs() -> list[CompileJob]:
    """The router-sweep workload: one circuit, 4 routers × 3 schedulers.

    Production-shaped traffic per ISSUE/ROADMAP: sweeping routers and
    scheduler tweaks over a fixed circuit and placement.  Every job has
    a distinct full-pipeline cache key, so before stage-level sharding
    this workload was 100% cold.
    """
    device = _DEVICES["ibm_qx5"]()
    qasm = to_openqasm(random_circuit(12, 60, seed=42, two_qubit_fraction=0.6))
    jobs: list[CompileJob] = []
    for router_name in _SWEEP_ROUTERS:
        for sched in _SWEEP_SCHEDULES:
            jobs.append(
                CompileJob.create(
                    qasm,
                    device,
                    PassConfig(router=router_name, schedule=sched),
                    job_id=f"sweep/{router_name}/{sched}",
                )
            )
    return jobs


def _time_oneshot_cli() -> float | None:
    """Seconds for one cold CLI compile (interpreter + import + map)."""
    code = (
        "from repro.core.pipeline import compile_circuit\n"
        "from repro.devices import ibm_qx5\n"
        "from repro.workloads import random_circuit\n"
        "compile_circuit(random_circuit(12, 30, seed=11,"
        " two_qubit_fraction=0.6), ibm_qx5())\n"
    )
    t0 = time.perf_counter()
    try:
        subprocess.run(
            [sys.executable, "-c", code],
            check=True,
            capture_output=True,
            timeout=120,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return time.perf_counter() - t0


def run_service_bench(
    *,
    jobs: int = 4,
    cache_dir: str | None = None,
    limit: int | None = None,
    retries: int = 1,
    timeout: float | None = None,
    oneshot_baseline: bool = True,
) -> dict:
    """Run the three-phase service benchmark; returns the JSON report."""
    workload = corpus_jobs(limit)
    n = len(workload)

    # Phase 1: serial in-process baseline (no cache, no pool).
    serial_artifacts: dict[str, str] = {}
    t0 = time.perf_counter()
    for job in workload:
        result = compile_with_config(
            parse_qasm(job.qasm), Device.from_dict(job.device), job.config
        )
        serial_artifacts[job.job_id] = canonical_json(
            result_to_artifact(result, config=job.config)
        )
    serial_seconds = time.perf_counter() - t0

    # Phase 2: parallel batch on an empty cache.  The warm pool is
    # spawned (and the native kernel preloaded) before the clock starts:
    # that cost is paid once per service lifetime, not per batch, so it
    # is reported separately as ``pool_prewarm_seconds``.
    service = CompileService(
        CompileCache(directory=cache_dir),
        max_workers=jobs,
        retries=retries,
        default_timeout=timeout,
    )
    t0 = time.perf_counter()
    service.prewarm()
    prewarm_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    cold = service.submit_batch(workload)
    cold_seconds = time.perf_counter() - t0

    # Phase 3: the same batch on the warm cache.
    t0 = time.perf_counter()
    warm = service.submit_batch(workload)
    warm_seconds = time.perf_counter() - t0
    warm_hits = sum(1 for r in warm if r.cache_hit)

    mismatches = [
        r.job_id
        for r in warm
        if not r.ok
        or canonical_json(r.artifact) != serial_artifacts[r.job_id]
    ]

    # Phase 4: the warm workload through the async gateway, one
    # submit→wait round trip per job (alternating priority tiers), to
    # price the queueing/admission layer itself: the cache is hot, so
    # nearly all of each round trip is gateway overhead.
    from ..service import AsyncCompileService

    gw = AsyncCompileService(service)  # borrowed: close() leaves it open
    round_trips: list[float] = []
    t0 = time.perf_counter()
    for i, job in enumerate(workload):
        tier = "interactive" if i % 2 == 0 else "batch"
        t1 = time.perf_counter()
        handle = gw.submit(job, priority=tier)
        handle.wait(timeout=120.0)
        round_trips.append(time.perf_counter() - t1)
    gateway_seconds = time.perf_counter() - t0
    gateway_stats = gw.stats().get("gateway", {})
    gw.close(drain=True)

    # Phase 5: router sweep on a fresh in-memory cache.  Runs inline
    # (one worker) so the parent-side stage store serves every probe and
    # the counters are exact; the serial baseline below compiles the
    # same grid with no stage store for the byte-compare and timing.
    sweep_jobs = router_sweep_jobs()
    sweep_serial: dict[str, str] = {}
    t0 = time.perf_counter()
    for job in sweep_jobs:
        result = compile_with_config(
            parse_qasm(job.qasm), Device.from_dict(job.device), job.config
        )
        sweep_serial[job.job_id] = canonical_json(
            result_to_artifact(result, config=job.config)
        )
    sweep_serial_seconds = time.perf_counter() - t0

    sweep_service = CompileService(CompileCache(), max_workers=1)
    t0 = time.perf_counter()
    sweep_results = sweep_service.submit_batch(sweep_jobs)
    sweep_seconds = time.perf_counter() - t0
    sweep_mismatches = [
        r.job_id
        for r in sweep_results
        if not r.ok or canonical_json(r.artifact) != sweep_serial[r.job_id]
    ]
    sweep_cache = sweep_service.stats()["cache"]
    sweep_service.close()

    report_cases = []
    for job, cold_r, warm_r in zip(workload, cold, warm):
        report_cases.append(
            {
                "case": job.job_id,
                "cold_status": cold_r.status,
                "cold_compile_s": cold_r.metrics.get("compile_s"),
                "warm_hit": warm_r.cache_hit,
                "added_swaps": (warm_r.metrics or {}).get("added_swaps"),
                "native_gates": (warm_r.metrics or {}).get("native_gates"),
                "matches_serial": job.job_id not in mismatches,
            }
        )

    stats = service.stats()
    pool_stats = stats.get("pool", {})
    summary = {
        "cases": n,
        "workers": jobs,
        "serial_seconds": round(serial_seconds, 4),
        "serial_throughput": round(n / serial_seconds, 2),
        "parallel_cold_seconds": round(cold_seconds, 4),
        "parallel_cold_throughput": round(n / cold_seconds, 2),
        "parallel_speedup": round(serial_seconds / cold_seconds, 2),
        "warm_seconds": round(warm_seconds, 4),
        "warm_throughput": round(n / warm_seconds, 2),
        "warm_hit_rate": round(warm_hits / n, 4) if n else 0.0,
        "artifacts_match_serial": not mismatches,
        "pool_prewarm_seconds": round(prewarm_seconds, 4),
        "worker_spawns": pool_stats.get("worker_spawns", 0),
        "pool_reuse_hits": pool_stats.get("pool_reuse_hits", 0),
        "worker_recycles": pool_stats.get("worker_recycles", 0),
        "gateway_round_trip_p50_ms": _percentile_ms(round_trips, 0.50),
        "gateway_round_trip_p95_ms": _percentile_ms(round_trips, 0.95),
        "gateway_throughput": (
            round(n / gateway_seconds, 2) if gateway_seconds else None
        ),
        "sweep_cases": len(sweep_jobs),
        "sweep_seconds": round(sweep_seconds, 4),
        "sweep_serial_seconds": round(sweep_serial_seconds, 4),
        "sweep_speedup": (
            round(sweep_serial_seconds / sweep_seconds, 2)
            if sweep_seconds else None
        ),
        "sweep_artifacts_match": not sweep_mismatches,
        "stage_hits": sweep_cache["stage_hits"],
        "stage_misses": sweep_cache["stage_misses"],
        "stage_hit_rate": sweep_cache["stage_hit_rate"],
    }
    if oneshot_baseline:
        sample = _time_oneshot_cli()
        if sample is not None:
            summary["oneshot_cli_sample_seconds"] = round(sample, 4)
            summary["estimated_oneshot_total_seconds"] = round(sample * n, 2)
            summary["speedup_vs_oneshot_cli"] = round(
                (sample * n) / cold_seconds, 1
            )
    service.close()
    return {
        "schema": 1,
        "corpus": "fixed-seed full-pipeline corpus (see repro.perf.service_bench)",
        "cases": report_cases,
        "summary": summary,
        "service_stats": stats,
        "gateway": {
            "seconds": round(gateway_seconds, 4),
            "round_trip_p50_ms": summary["gateway_round_trip_p50_ms"],
            "round_trip_p95_ms": summary["gateway_round_trip_p95_ms"],
            "throughput": summary["gateway_throughput"],
            "stats": gateway_stats,
        },
        "router_sweep": {
            "routers": list(_SWEEP_ROUTERS),
            "schedules": list(_SWEEP_SCHEDULES),
            "cases": len(sweep_jobs),
            "seconds": summary["sweep_seconds"],
            "serial_seconds": summary["sweep_serial_seconds"],
            "speedup": summary["sweep_speedup"],
            "artifacts_match": summary["sweep_artifacts_match"],
            "mismatches": sweep_mismatches,
            "stage_hit_rate": sweep_cache["stage_hit_rate"],
            "stages": sweep_cache["stages"],
        },
    }


def _percentile_ms(samples: list[float], q: float) -> float | None:
    """``q``-th percentile of ``samples`` (seconds), in milliseconds."""
    if not samples:
        return None
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return round(ordered[idx] * 1000.0, 3)
