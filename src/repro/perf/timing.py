"""Wall-clock measurement helpers for the perf harness."""

from __future__ import annotations

import time

__all__ = ["time_call"]


def time_call(fn, *args, repeats: int = 1, **kwargs):
    """Call ``fn(*args, **kwargs)`` ``repeats`` times; keep the best time.

    Returns ``(best_seconds, result)`` where ``result`` is the return
    value of the last call.  Best-of-N damps scheduler noise without the
    run-count explosion of a full benchmarking framework; the perf smoke
    test budgets are generous enough that ``repeats=1`` is reliable.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best, result
