"""Mapping cost metrics and report tables.

Section III-B lists the cost functions mappers optimise: "the number of
gates (i.e. minimize the number of added SWAPs)", "the circuit depth or
latency", and "circuit reliability".  This module computes all three for
circuits and compilation results, and renders the comparison tables the
benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.circuit import Circuit
from ..core.pipeline import CompilationResult
from ..sim.noise import NoiseModel

__all__ = [
    "CircuitMetrics",
    "OverheadReport",
    "circuit_metrics",
    "mapping_overhead",
    "format_table",
]


@dataclass(frozen=True)
class CircuitMetrics:
    """Static metrics of a single circuit."""

    gates: int
    two_qubit_gates: int
    depth: int
    two_qubit_depth: int

    @classmethod
    def of(cls, circuit: Circuit) -> "CircuitMetrics":
        return cls(
            gates=circuit.size(),
            two_qubit_gates=circuit.num_two_qubit_gates(),
            depth=circuit.depth(),
            two_qubit_depth=circuit.depth(count_single_qubit=False),
        )


def circuit_metrics(circuit: Circuit) -> CircuitMetrics:
    """Gate/depth metrics of ``circuit``."""
    return CircuitMetrics.of(circuit)


@dataclass(frozen=True)
class OverheadReport:
    """Mapping overhead of one compilation, in the paper's three metrics.

    Attributes:
        label: Row label for tables (router/placer name typically).
        added_swaps: SWAPs the router inserted.
        flips: CNOT direction reversals (4 H gates each).
        native_gates: Total native gates after full lowering.
        native_depth: Depth of the native circuit.
        latency_cycles: Scheduled latency (0 when unscheduled).
        latency_ns: Scheduled latency in nanoseconds.
        success_probability: Reliability estimate (None when no noise
            model was supplied).
    """

    label: str
    added_swaps: int
    flips: int
    native_gates: int
    native_depth: int
    latency_cycles: int
    latency_ns: float
    success_probability: float | None = None


def mapping_overhead(
    result: CompilationResult,
    *,
    label: str | None = None,
    noise: NoiseModel | None = None,
) -> OverheadReport:
    """Summarise a compilation into an :class:`OverheadReport` row."""
    success = None
    if noise is not None:
        if result.schedule is not None:
            success = noise.schedule_success(result.schedule)
        else:
            success = noise.circuit_success(result.native, result.device)
    return OverheadReport(
        label=label or f"{result.placer}+{result.router}",
        added_swaps=result.added_swaps,
        flips=result.flips,
        native_gates=result.native.size(),
        native_depth=result.native.depth(),
        latency_cycles=result.latency,
        latency_ns=result.latency_ns,
        success_probability=success,
    )


def format_table(rows: Sequence[OverheadReport], title: str = "") -> str:
    """Render overhead rows as an aligned text table."""
    header = (
        f"{'method':<22} {'swaps':>5} {'flips':>5} {'gates':>6} "
        f"{'depth':>6} {'cycles':>7} {'ns':>9} {'P(success)':>11}"
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        prob = f"{row.success_probability:.4f}" if row.success_probability is not None else "-"
        lines.append(
            f"{row.label:<22} {row.added_swaps:>5} {row.flips:>5} "
            f"{row.native_gates:>6} {row.native_depth:>6} "
            f"{row.latency_cycles:>7} {row.latency_ns:>9.0f} {prob:>11}"
        )
    return "\n".join(lines)
