"""Mapping cost metrics: gate counts, depth, latency, reliability."""

from .metrics import (
    CircuitMetrics,
    OverheadReport,
    circuit_metrics,
    format_table,
    mapping_overhead,
)

__all__ = [
    "CircuitMetrics",
    "OverheadReport",
    "circuit_metrics",
    "format_table",
    "mapping_overhead",
]
