"""HTTP/JSON front end for the async compile gateway.

A thin, stdlib-only (``http.server``) JSON API over
:class:`~repro.service.gateway.AsyncCompileService`, so the ``repro
batch`` CLI becomes one client among many:

=======  =======================  ==========================================
Method   Path                     Meaning
=======  =======================  ==========================================
POST     ``/jobs``                Submit a job (``202``; ``wait`` blocks for
                                  the terminal result, ``200``).  ``429`` on
                                  admission rejection, ``503`` while
                                  draining.
GET      ``/jobs/{id}``           Status + lifecycle events (``404``
                                  unknown).
GET      ``/jobs/{id}/result``    Terminal :class:`JobResult` (``200``), or
                                  ``202`` while the job is still running.
                                  ``?artifact=1`` inlines the artefact.
GET      ``/healthz``             ``200`` serving / ``503`` draining.
GET      ``/stats``               Gateway + service + cache + pool counters.
=======  =======================  ==========================================

Job ids may contain ``/`` (the perf corpus does); clients URL-encode
them and the server unquotes.  Every response body is JSON.  The server
is a ``ThreadingHTTPServer``: handler threads only ever call the
thread-safe gateway API, never the compile service directly.

``repro serve`` (see :mod:`repro.cli`) builds the service/gateway pair,
binds this server (``--port 0`` picks an ephemeral port), and prints
the bound address before serving.
"""

from __future__ import annotations

import json
import math
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, unquote, urlsplit

from ..devices import available_devices, get_device
from .gateway import PRIORITIES, AsyncCompileService, Draining, Overloaded
from .jobs import CompileJob

__all__ = ["GatewayServer", "GatewayRequestHandler"]

#: Default seconds a ``wait`` submission blocks before answering 202.
_DEFAULT_WAIT_S = 60.0

_RESULT_RE = re.compile(r"^/jobs/(?P<id>.+)/result$")
_JOB_RE = re.compile(r"^/jobs/(?P<id>.+)$")


class _BadRequest(Exception):
    """Client error reported as a 400 with a one-line JSON body."""


class GatewayRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-gateway/1"
    protocol_version = "HTTP/1.1"

    @property
    def gateway(self) -> AsyncCompileService:
        return self.server.gateway  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # -- plumbing ------------------------------------------------------

    def _send(self, code: int, payload: dict,
              headers: dict | None = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            raise _BadRequest("invalid Content-Length")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise _BadRequest("empty request body")
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"invalid JSON body: {exc}")
        if not isinstance(data, dict):
            raise _BadRequest("request body must be a JSON object")
        return data

    # -- routes --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — stdlib name
        parts = urlsplit(self.path)
        path, params = parts.path, parse_qs(parts.query)
        try:
            if path == "/healthz":
                self._get_healthz()
            elif path == "/stats":
                self._send(200, self.gateway.stats())
            elif _RESULT_RE.match(path):
                self._get_result(
                    unquote(_RESULT_RE.match(path).group("id")), params
                )
            elif _JOB_RE.match(path):
                self._get_job(unquote(_JOB_RE.match(path).group("id")))
            else:
                self._send(404, {"error": f"no such endpoint: {path}"})
        except BrokenPipeError:  # pragma: no cover — client went away
            pass

    def do_POST(self) -> None:  # noqa: N802 — stdlib name
        path = urlsplit(self.path).path
        if path != "/jobs":
            self._send(404, {"error": f"no such endpoint: {path}"})
            return
        try:
            body = self._read_json()
            job, opts = _parse_submission(body)
        except _BadRequest as exc:
            self._send(400, {"error": str(exc)})
            return
        try:
            handle = self.gateway.submit(
                job,
                priority=opts["priority"],
                deadline=opts["deadline"],
                tenant=opts["tenant"],
            )
        except Overloaded as exc:
            headers = {}
            if exc.retry_after is not None:
                # RFC 9110 §10.2.3: delay-seconds is a non-negative
                # *integer*.  Round up so clients never retry early; a
                # 0.0 budget still advertises "Retry-After: 0".
                headers["Retry-After"] = str(math.ceil(exc.retry_after))
            self._send(
                429,
                {"error": str(exc), "reason": exc.reason,
                 "tenant": exc.tenant},
                headers,
            )
            return
        except Draining as exc:
            self._send(503, {"error": str(exc), "draining": True})
            return
        if opts["wait"]:
            try:
                result = handle.wait(opts["wait_timeout"])
            except TimeoutError:
                self._send(
                    202,
                    {"job_id": handle.job_id, "status": handle.status,
                     "priority": handle.priority},
                )
                return
            self._send(
                200, result.to_dict(include_artifact=opts["artifact"])
            )
            return
        self._send(
            202,
            {
                "job_id": handle.job_id,
                "status": handle.status,
                "priority": handle.priority,
                "tenant": handle.tenant,
            },
        )

    # -- GET helpers ---------------------------------------------------

    def _get_healthz(self) -> None:
        gw = self.gateway
        if gw.draining:
            self._send(503, {"ok": False, "draining": True})
            return
        self._send(200, {"ok": True, "draining": False})

    def _get_job(self, job_id: str) -> None:
        handle = self.gateway.get(job_id)
        if handle is None:
            self._send(404, {"error": f"unknown job {job_id!r}"})
            return
        self._send(
            200,
            {
                "job_id": handle.job_id,
                "status": handle.status,
                "terminal": handle.done(),
                "priority": handle.priority,
                "tenant": handle.tenant,
                "events": handle.event_log(),
            },
        )

    def _get_result(self, job_id: str, params: dict) -> None:
        handle = self.gateway.get(job_id)
        if handle is None:
            self._send(404, {"error": f"unknown job {job_id!r}"})
            return
        if not handle.done():
            self._send(
                202, {"job_id": handle.job_id, "status": handle.status}
            )
            return
        include = params.get("artifact", ["0"])[-1] not in ("0", "", "false")
        self._send(
            200, handle.wait(0).to_dict(include_artifact=include)
        )


def _parse_submission(body: dict) -> tuple[CompileJob, dict]:
    """Validate a POST /jobs body into (job, gateway options)."""
    qasm = body.get("qasm")
    if not isinstance(qasm, str) or not qasm.strip():
        raise _BadRequest('"qasm" must be a non-empty string')
    device = body.get("device")
    if isinstance(device, str):
        if device not in available_devices():
            raise _BadRequest(
                f"unknown device {device!r}; "
                f"one of {sorted(available_devices())} or a device dict"
            )
        device = get_device(device).to_dict()
    elif not isinstance(device, dict):
        raise _BadRequest('"device" must be a registry name or device dict')
    config = body.get("config", {})
    if not isinstance(config, dict):
        raise _BadRequest('"config" must be an object')
    priority = body.get("priority")
    if priority is not None and priority not in PRIORITIES:
        raise _BadRequest(
            f"unknown priority {priority!r}; expected one of {PRIORITIES}"
        )
    for name in ("deadline", "timeout", "wait_timeout"):
        value = body.get(name)
        if value is not None and not isinstance(value, (int, float)):
            raise _BadRequest(f'"{name}" must be a number')
    metadata = body.get("metadata", {})
    if not isinstance(metadata, dict):
        raise _BadRequest('"metadata" must be an object')
    try:
        job = CompileJob.create(
            qasm,
            device,
            config or None,
            job_id=str(body.get("job_id", "")),
            timeout=body.get("timeout"),
            metadata=metadata,
        )
    except (TypeError, ValueError, KeyError) as exc:
        raise _BadRequest(f"invalid job: {exc}")
    opts = {
        "priority": priority,
        "deadline": body.get("deadline"),
        "tenant": str(body.get("tenant", "default")),
        "wait": bool(body.get("wait", False)),
        "wait_timeout": float(body.get("wait_timeout") or _DEFAULT_WAIT_S),
        "artifact": bool(body.get("artifact", False)),
    }
    return job, opts


class GatewayServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` bound to one gateway.

    Args:
        address: ``(host, port)``; port ``0`` binds an ephemeral port
            (read it back from :attr:`port`).
        gateway: The :class:`AsyncCompileService` handlers submit into.
        verbose: Log requests to stderr (default: quiet).
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int],
                 gateway: AsyncCompileService, *,
                 verbose: bool = False) -> None:
        self.gateway = gateway
        self.verbose = verbose
        super().__init__(address, GatewayRequestHandler)

    @property
    def port(self) -> int:
        return self.server_address[1]
