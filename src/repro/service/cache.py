"""The two-tier content-addressed compile cache.

Tier 1 is an in-memory LRU of artefact dicts; tier 2 an optional
on-disk store with one JSON file per key (``<key>.json`` under the cache
directory), written atomically (temp file + rename) so concurrent
writers can never leave a torn entry.  Disk hits are promoted to
memory.  Corrupt or unreadable disk entries count as misses and are
deleted best-effort — the cache is always allowed to forget, never to
return wrong bytes.

Keys come from :mod:`repro.service.keys`; because the key commits to
circuit, device, pass config and library version, entries never need
explicit invalidation — a change to any input simply addresses a
different slot.

Besides whole-pipeline artefacts the cache stores *stage* entries —
per-stage intermediates (a placement, a routed circuit, a lowered
circuit, a schedule) keyed by :func:`repro.service.keys.stage_key`.
Stage entries live in a namespace per stage: in memory the LRU key is
prefixed ``<stage>/``; on disk they sit under
``stages/<stage>/<key>.json`` next to the flat ``<key>.json`` artefact
files.  Both kinds share the LRU capacity and all the disk semantics
(atomic writes, corrupt entries deleted and counted, never returned).
:class:`CacheStageStore` adapts this to the duck-typed ``stage_store``
interface of :func:`repro.core.pipeline.compile_circuit`.
"""

from __future__ import annotations

import copy
import itertools
import json
import os
from collections import Counter, OrderedDict
from pathlib import Path
from typing import Mapping

from ..obs import trace_span
from .keys import stage_key

__all__ = ["CompileCache", "CacheStageStore"]

#: Per-process counter distinguishing concurrent same-key temp files —
#: the PID alone collides when two threads of one process write one key.
_TMP_COUNTER = itertools.count()


class CompileCache:
    """Content-addressed artefact store with memory and disk tiers.

    Args:
        max_memory_entries: LRU capacity of the in-memory tier
            (0 disables it).
        directory: Root of the on-disk tier; ``None`` disables it.
            Created on first write.
    """

    def __init__(
        self,
        *,
        max_memory_entries: int = 512,
        directory: str | os.PathLike | None = None,
    ) -> None:
        self.max_memory_entries = int(max_memory_entries)
        self.directory = Path(directory) if directory is not None else None
        self._memory: OrderedDict[str, dict] = OrderedDict()
        self._counters: Counter = Counter()
        self._stage_counters: dict[str, Counter] = {}

    # ------------------------------------------------------------------

    def _disk_path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def _stage_path(self, stage: str, key: str) -> Path:
        assert self.directory is not None
        return self.directory / "stages" / stage / f"{key}.json"

    @staticmethod
    def _stage_mem_key(stage: str, key: str) -> str:
        # Keys are hex digests (no "/"), so the prefix cannot collide
        # with a whole-pipeline entry.
        return f"{stage}/{key}"

    def _stage(self, stage: str) -> Counter:
        counters = self._stage_counters.get(stage)
        if counters is None:
            counters = self._stage_counters[stage] = Counter()
        return counters

    def lookup(self, key: str) -> tuple[dict | None, str | None]:
        """``(artifact, tier)`` for ``key``; ``(None, None)`` on miss.

        The tier (``"memory"`` or ``"disk"``) is returned *with* the
        artefact so concurrent callers can never misattribute a hit.
        (The stateful ``last_tier()`` accessor this replaced — a shared
        slot any interleaved lookup could overwrite — was deprecated in
        the tracing release and has been removed.)
        """
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            self._counters["memory_hits"] += 1
            return entry, "memory"
        if self.directory is not None:
            path = self._disk_path(key)
            try:
                with open(path) as fh:
                    entry = json.load(fh)
            except FileNotFoundError:
                pass
            except (OSError, ValueError):
                self._counters["disk_errors"] += 1
                try:
                    path.unlink()
                except OSError:
                    pass
            else:
                self._counters["disk_hits"] += 1
                self._remember(key, entry)
                return entry, "disk"
        self._counters["misses"] += 1
        return None, None

    def get(self, key: str) -> dict | None:
        """The cached artefact for ``key``, or ``None`` on miss."""
        return self.lookup(key)[0]

    def put(self, key: str, artifact: dict) -> None:
        """Store ``artifact`` under ``key`` in every enabled tier."""
        self._counters["puts"] += 1
        self._remember(key, artifact)
        if self.directory is not None:
            self._write_disk(self._disk_path(key), artifact, self._counters)

    def _write_disk(self, path: Path, entry: dict, counters: Counter) -> None:
        """Atomic best-effort write; any disk failure — including the
        ``mkdir`` of the cache directory itself — is counted in
        ``counters["disk_errors"]``, never raised."""
        tmp = path.with_suffix(
            f".{os.getpid()}-{next(_TMP_COUNTER)}.tmp"
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            counters["disk_errors"] += 1
            try:
                tmp.unlink()
            except OSError:
                pass

    def _remember(self, key: str, artifact: dict) -> None:
        if self.max_memory_entries <= 0:
            return
        # Deep-copied so a caller mutating its dict after (or an engine
        # annotating a returned artefact) cannot desynchronise the
        # memory tier from the bytes on disk.
        self._memory[key] = copy.deepcopy(artifact)
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            evicted, _ = self._memory.popitem(last=False)
            self._counters["evictions"] += 1
            stage, sep, _rest = evicted.partition("/")
            if sep:
                self._stage(stage)["evictions"] += 1

    # -- stage entries --------------------------------------------------

    def lookup_stage(self, stage: str, key: str) -> dict | None:
        """The stage entry for ``(stage, key)``, or ``None`` on miss.

        Same tier walk as :meth:`lookup` (memory, then disk with
        promotion; corrupt disk entries deleted and counted), but hits,
        misses and disk errors land in the per-stage counters surfaced
        by :meth:`stats` under ``"stages"``.
        """
        counters = self._stage(stage)
        mem_key = self._stage_mem_key(stage, key)
        entry = self._memory.get(mem_key)
        if entry is not None:
            self._memory.move_to_end(mem_key)
            counters["memory_hits"] += 1
            return entry
        if self.directory is not None:
            path = self._stage_path(stage, key)
            try:
                with open(path) as fh:
                    entry = json.load(fh)
            except FileNotFoundError:
                pass
            except (OSError, ValueError):
                counters["disk_errors"] += 1
                try:
                    path.unlink()
                except OSError:
                    pass
            else:
                counters["disk_hits"] += 1
                self._remember(mem_key, entry)
                return entry
        counters["misses"] += 1
        return None

    def put_stage(self, stage: str, key: str, entry: dict) -> None:
        """Store a stage entry in every enabled tier."""
        counters = self._stage(stage)
        counters["puts"] += 1
        self._remember(self._stage_mem_key(stage, key), entry)
        if self.directory is not None:
            self._write_disk(self._stage_path(stage, key), entry, counters)

    def stage_counters(self) -> dict:
        """Plain-dict snapshot of the per-stage counters (stages with
        no activity omitted) — the form workers ship back to the parent
        for :meth:`merge_stage_counters`."""
        return {
            stage: dict(counters)
            for stage, counters in self._stage_counters.items()
            if counters
        }

    def merge_stage_counters(self, counters: Mapping) -> None:
        """Fold another cache's :meth:`stage_counters` snapshot into
        this one (pool workers probe the disk tier with their own
        :class:`CompileCache`; the parent owns the aggregate)."""
        for stage, values in counters.items():
            self._stage(stage).update(values)

    # ------------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        """Whether :meth:`get` would hit — corrupt disk entries excluded.

        Membership shares :meth:`lookup`'s semantics: a disk file that
        does not parse is *not* contained (it is deleted best-effort and
        counted as a ``disk_error``, exactly as a lookup would treat
        it), so ``key in cache`` never promises an artefact that ``get``
        then fails to return.  Hit/miss counters are untouched —
        membership is not a lookup.
        """
        if key in self._memory:
            return True
        if self.directory is None:
            return False
        path = self._disk_path(key)
        try:
            with open(path) as fh:
                json.load(fh)
        except FileNotFoundError:
            return False
        except (OSError, ValueError):
            self._counters["disk_errors"] += 1
            try:
                path.unlink()
            except OSError:
                pass
            return False
        return True

    def __len__(self) -> int:
        """Number of entries in the memory tier (disk not enumerated)."""
        return len(self._memory)

    def stats(self) -> dict:
        """Counter snapshot plus tier occupancy.

        Stage-cache activity appears as the ``stage_hits`` /
        ``stage_misses`` / ``stage_hit_rate`` aggregates plus a
        ``"stages"`` block with one counter dict per active stage.
        """
        snapshot = {
            key: self._counters[key]
            for key in (
                "memory_hits", "disk_hits", "misses", "puts",
                "evictions", "disk_errors",
            )
        }
        hits = snapshot["memory_hits"] + snapshot["disk_hits"]
        lookups = hits + snapshot["misses"]
        snapshot["hit_rate"] = round(hits / lookups, 4) if lookups else 0.0
        # Stage entries share the LRU but are tallied apart, so
        # ``memory_entries`` keeps meaning whole-pipeline artefacts.
        stage_mem = sum(1 for k in self._memory if "/" in k)
        snapshot["memory_entries"] = len(self._memory) - stage_mem
        snapshot["stage_memory_entries"] = stage_mem
        if self.directory is not None and self.directory.is_dir():
            snapshot["disk_entries"] = sum(
                1 for _ in self.directory.glob("*.json")
            )
        stage_hits = stage_misses = 0
        stages: dict[str, dict] = {}
        for stage, counters in sorted(self._stage_counters.items()):
            if not counters:
                continue
            block = dict(counters)
            hits = block.get("memory_hits", 0) + block.get("disk_hits", 0)
            looks = hits + block.get("misses", 0)
            block["hit_rate"] = round(hits / looks, 4) if looks else 0.0
            stages[stage] = block
            stage_hits += hits
            stage_misses += block.get("misses", 0)
        snapshot["stage_hits"] = stage_hits
        snapshot["stage_misses"] = stage_misses
        stage_lookups = stage_hits + stage_misses
        snapshot["stage_hit_rate"] = (
            round(stage_hits / stage_lookups, 4) if stage_lookups else 0.0
        )
        snapshot["stages"] = stages
        return snapshot

    def clear(self, *, memory_only: bool = False) -> None:
        """Drop every entry (optionally only the memory tier)."""
        self._memory.clear()
        if not memory_only and self.directory is not None:
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass
            for path in self.directory.glob("stages/*/*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass


class CacheStageStore:
    """Adapter giving :class:`CompileCache` the pipeline's duck-typed
    ``stage_store`` interface.

    :func:`repro.core.pipeline.compile_circuit` hands over each stage's
    input snapshot and config slice; this class derives the
    content-addressed key (:func:`repro.service.keys.stage_key`), walks
    the cache's stage namespace, and emits a zero-length
    ``cache.stage_hit`` / ``cache.stage_miss`` trace span per probe so
    traces show which stages earn their keys.  Inputs with no canonical
    JSON form (e.g. exotic router options) are treated as uncacheable:
    the probe is skipped entirely and no span is emitted.
    """

    def __init__(self, cache: CompileCache) -> None:
        self.cache = cache

    @staticmethod
    def _key(stage: str, inputs: dict, config: dict) -> str | None:
        try:
            return stage_key(stage, inputs, config)
        except (TypeError, ValueError):
            return None

    def load(self, stage: str, inputs: dict, config: dict) -> dict | None:
        key = self._key(stage, inputs, config)
        if key is None:
            return None
        entry = self.cache.lookup_stage(stage, key)
        name = "cache.stage_hit" if entry is not None else "cache.stage_miss"
        with trace_span(name, pass_="cache", stage=stage):
            pass
        return entry

    def store(self, stage: str, inputs: dict, config: dict,
              entry: dict) -> None:
        key = self._key(stage, inputs, config)
        if key is None:
            return
        self.cache.put_stage(stage, key, entry)
