"""The two-tier content-addressed compile cache.

Tier 1 is an in-memory LRU of artefact dicts; tier 2 an optional
on-disk store with one JSON file per key (``<key>.json`` under the cache
directory), written atomically (temp file + rename) so concurrent
writers can never leave a torn entry.  Disk hits are promoted to
memory.  Corrupt or unreadable disk entries count as misses and are
deleted best-effort — the cache is always allowed to forget, never to
return wrong bytes.

Keys come from :mod:`repro.service.keys`; because the key commits to
circuit, device, pass config and library version, entries never need
explicit invalidation — a change to any input simply addresses a
different slot.
"""

from __future__ import annotations

import itertools
import json
import os
from collections import Counter, OrderedDict
from pathlib import Path

__all__ = ["CompileCache"]

#: Per-process counter distinguishing concurrent same-key temp files —
#: the PID alone collides when two threads of one process write one key.
_TMP_COUNTER = itertools.count()


class CompileCache:
    """Content-addressed artefact store with memory and disk tiers.

    Args:
        max_memory_entries: LRU capacity of the in-memory tier
            (0 disables it).
        directory: Root of the on-disk tier; ``None`` disables it.
            Created on first write.
    """

    def __init__(
        self,
        *,
        max_memory_entries: int = 512,
        directory: str | os.PathLike | None = None,
    ) -> None:
        self.max_memory_entries = int(max_memory_entries)
        self.directory = Path(directory) if directory is not None else None
        self._memory: OrderedDict[str, dict] = OrderedDict()
        self._counters: Counter = Counter()

    # ------------------------------------------------------------------

    def _disk_path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def lookup(self, key: str) -> tuple[dict | None, str | None]:
        """``(artifact, tier)`` for ``key``; ``(None, None)`` on miss.

        The tier (``"memory"`` or ``"disk"``) is returned *with* the
        artefact so concurrent callers can never misattribute a hit.
        (The stateful ``last_tier()`` accessor this replaced — a shared
        slot any interleaved lookup could overwrite — was deprecated in
        the tracing release and has been removed.)
        """
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            self._counters["memory_hits"] += 1
            return entry, "memory"
        if self.directory is not None:
            path = self._disk_path(key)
            try:
                with open(path) as fh:
                    entry = json.load(fh)
            except FileNotFoundError:
                pass
            except (OSError, ValueError):
                self._counters["disk_errors"] += 1
                try:
                    path.unlink()
                except OSError:
                    pass
            else:
                self._counters["disk_hits"] += 1
                self._remember(key, entry)
                return entry, "disk"
        self._counters["misses"] += 1
        return None, None

    def get(self, key: str) -> dict | None:
        """The cached artefact for ``key``, or ``None`` on miss."""
        return self.lookup(key)[0]

    def put(self, key: str, artifact: dict) -> None:
        """Store ``artifact`` under ``key`` in every enabled tier."""
        self._counters["puts"] += 1
        self._remember(key, artifact)
        if self.directory is not None:
            path = self._disk_path(key)
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(
                f".{os.getpid()}-{next(_TMP_COUNTER)}.tmp"
            )
            try:
                with open(tmp, "w") as fh:
                    json.dump(artifact, fh, sort_keys=True)
                os.replace(tmp, path)
            except OSError:
                self._counters["disk_errors"] += 1
                try:
                    tmp.unlink()
                except OSError:
                    pass

    def _remember(self, key: str, artifact: dict) -> None:
        if self.max_memory_entries <= 0:
            return
        self._memory[key] = artifact
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self._counters["evictions"] += 1

    # ------------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        """Whether :meth:`get` would hit — corrupt disk entries excluded.

        Membership shares :meth:`lookup`'s semantics: a disk file that
        does not parse is *not* contained (it is deleted best-effort and
        counted as a ``disk_error``, exactly as a lookup would treat
        it), so ``key in cache`` never promises an artefact that ``get``
        then fails to return.  Hit/miss counters are untouched —
        membership is not a lookup.
        """
        if key in self._memory:
            return True
        if self.directory is None:
            return False
        path = self._disk_path(key)
        try:
            with open(path) as fh:
                json.load(fh)
        except FileNotFoundError:
            return False
        except (OSError, ValueError):
            self._counters["disk_errors"] += 1
            try:
                path.unlink()
            except OSError:
                pass
            return False
        return True

    def __len__(self) -> int:
        """Number of entries in the memory tier (disk not enumerated)."""
        return len(self._memory)

    def stats(self) -> dict:
        """Counter snapshot plus tier occupancy."""
        snapshot = {
            key: self._counters[key]
            for key in (
                "memory_hits", "disk_hits", "misses", "puts",
                "evictions", "disk_errors",
            )
        }
        hits = snapshot["memory_hits"] + snapshot["disk_hits"]
        lookups = hits + snapshot["misses"]
        snapshot["hit_rate"] = round(hits / lookups, 4) if lookups else 0.0
        snapshot["memory_entries"] = len(self._memory)
        if self.directory is not None and self.directory.is_dir():
            snapshot["disk_entries"] = sum(
                1 for _ in self.directory.glob("*.json")
            )
        return snapshot

    def clear(self, *, memory_only: bool = False) -> None:
        """Drop every entry (optionally only the memory tier)."""
        self._memory.clear()
        if not memory_only and self.directory is not None:
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass
