"""The async job gateway: submit/await, priority queues, admission control.

:class:`AsyncCompileService` turns the batch-oriented
:class:`~repro.service.engine.CompileService` into a *server*: callers
:meth:`~AsyncCompileService.submit` one job at a time and get a
:class:`JobHandle` back immediately, while a single dispatcher thread
drains an admission-controlled priority queue into the warm worker pool
in micro-batches.  The handle offers three consumption styles:

* ``await handle.result()`` — asyncio callers await the terminal
  :class:`~repro.service.jobs.JobResult`;
* ``handle.wait(timeout)`` — synchronous callers (the HTTP front end's
  request threads) block on the same future;
* ``async for event in handle.events()`` — per-job lifecycle stream
  ``queued -> started -> retrying -> <terminal status>`` fed from the
  engine's per-job callbacks, which in turn ride the pool's existing
  ``start``/``done`` event channel.

Admission control rejects instead of queuing without bound: a global
queue-depth cap and a per-tenant token bucket (burst capacity plus a
steady refill rate) raise the typed :class:`Overloaded` before a job
ever enters the queue, and :class:`Draining` once shutdown has begun —
the HTTP layer maps these to 429 and 503.  A per-job SLO ``deadline``
becomes a :class:`~repro.resilience.deadline.Deadline`: jobs still
queued when it expires short-circuit to ``status == "timeout"`` at
dispatch time without ever touching the compile service or a pool
worker, and jobs that do dispatch carry their *remaining* budget into
the engine's cooperative deadline machinery.

Everything in this module is stdlib-only and thread-safe: ``submit``
may be called from any thread (HTTP handler threads, an asyncio loop,
tests), while the dispatcher thread is the only code that ever touches
the underlying :class:`CompileService`.
"""

from __future__ import annotations

import concurrent.futures
import heapq
import threading
import time
from collections import Counter, OrderedDict, deque

from ..obs import add_counter, trace_span
from ..resilience.deadline import Deadline
from .engine import CompileService
from .jobs import JOB_STATUSES, CompileJob, JobResult

__all__ = [
    "AsyncCompileService",
    "Draining",
    "JobHandle",
    "Overloaded",
    "PRIORITIES",
]

#: Priority tiers, highest first.  ``interactive`` jobs are always
#: drained from the queue before ``batch`` jobs submitted earlier.
PRIORITIES = ("interactive", "batch")

_RANK = {name: rank for rank, name in enumerate(PRIORITIES)}

#: How many queue-wait / latency samples each tier retains for the
#: p50/p95 estimates in :meth:`AsyncCompileService.stats`.
_SAMPLE_WINDOW = 2048


class Overloaded(RuntimeError):
    """A submission was rejected by admission control (never queued).

    Attributes:
        reason: ``"queue_full"`` (global queue-depth cap) or
            ``"tenant_budget"`` (the tenant's token bucket is empty).
        tenant: The tenant the submission was billed to.
        retry_after: Suggested seconds to wait before retrying
            (``None`` when the bucket cannot refill, e.g. rate 0).
    """

    def __init__(self, reason: str, message: str, *, tenant: str = "",
                 retry_after: float | None = None):
        super().__init__(message)
        self.reason = reason
        self.tenant = tenant
        self.retry_after = retry_after


class Draining(RuntimeError):
    """The gateway is shutting down and no longer accepts jobs."""


class _TokenBucket:
    """Per-tenant admission budget: ``capacity`` burst, ``rate``/s refill."""

    __slots__ = ("capacity", "rate", "tokens", "updated")

    def __init__(self, capacity: float, rate: float):
        self.capacity = float(capacity)
        self.rate = float(rate)
        self.tokens = float(capacity)
        self.updated = time.monotonic()

    def try_take(self, now: float) -> bool:
        self.tokens = min(
            self.capacity, self.tokens + (now - self.updated) * self.rate
        )
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float | None:
        """Seconds until the next token, ``None`` when it never refills.

        ``rate=0`` is a legitimate burst-only budget (``capacity``
        admissions, then closed): dividing by the rate would raise
        ``ZeroDivisionError``, so the guard must stay ahead of the
        division and callers must treat ``None`` as "do not advertise a
        retry time" (the HTTP front end omits the ``Retry-After``
        header entirely)."""
        if self.rate <= 0:
            return None
        return max(0.0, (1.0 - self.tokens) / self.rate)


class JobHandle:
    """A submitted job: id, live status, event stream, awaitable result.

    Handles are created by :meth:`AsyncCompileService.submit` and are
    safe to use from any thread or asyncio loop.  The lifecycle events
    a handle emits are dicts ``{"event": ..., "t": <seconds since
    submit>}``; the final one carries ``"terminal": True`` and its
    ``event`` is the job's terminal status from
    :data:`~repro.service.jobs.JOB_STATUSES`.
    """

    def __init__(self, job: CompileJob, priority: str, tenant: str,
                 deadline: Deadline | None):
        self.job = job
        self.job_id = job.job_id
        self.priority = priority
        self.tenant = tenant
        self.deadline = deadline
        self.submitted_mono = time.monotonic()
        #: Seconds the job waited in the gateway queue before dispatch
        #: (set by the dispatcher; ``None`` while still queued).
        self.queue_wait_s: float | None = None
        #: Global drain order (set by the dispatcher; tests use this to
        #: assert priority ordering deterministically).
        self.dispatch_index: int | None = None
        self._state = "queued"
        self._resolved = False
        self._future: concurrent.futures.Future = concurrent.futures.Future()
        self._events: list[dict] = []
        self._watchers: list[tuple] = []  # (loop, asyncio.Queue)
        self._lock = threading.Lock()

    # -- introspection -------------------------------------------------

    @property
    def status(self) -> str:
        """``queued``/``started``/``retrying`` or a terminal status."""
        return self._state

    def done(self) -> bool:
        return self._future.done()

    def event_log(self) -> list[dict]:
        """Snapshot of every lifecycle event emitted so far."""
        with self._lock:
            return list(self._events)

    # -- consumption ---------------------------------------------------

    async def result(self) -> JobResult:
        """Await the terminal :class:`JobResult` (never raises per-job
        failures — they are statuses, not exceptions)."""
        import asyncio

        return await asyncio.wrap_future(self._future)

    def wait(self, timeout: float | None = None) -> JobResult:
        """Synchronous :meth:`result`; raises
        :class:`concurrent.futures.TimeoutError` when ``timeout``
        elapses first."""
        return self._future.result(timeout)

    async def events(self):
        """Async-iterate lifecycle events, ending at the terminal one.

        Events emitted before the iteration started are replayed first,
        so a consumer that attaches late still sees the full
        ``queued -> ... -> terminal`` history exactly once.
        """
        import asyncio

        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()
        with self._lock:
            backlog = list(self._events)
            live = not self._resolved
            if live:
                self._watchers.append((loop, queue))
        try:
            for evt in backlog:
                yield evt
                if evt.get("terminal"):
                    return
            if live:
                while True:
                    evt = await queue.get()
                    yield evt
                    if evt.get("terminal"):
                        return
        finally:
            with self._lock:
                try:
                    self._watchers.remove((loop, queue))
                except ValueError:
                    pass

    # -- gateway-side plumbing -----------------------------------------

    def _emit(self, event: str, **fields) -> None:
        evt = {
            "event": event,
            "t": round(time.monotonic() - self.submitted_mono, 6),
            **fields,
        }
        with self._lock:
            if self._resolved:
                return  # never emit past the terminal event
            if event in ("queued", "started", "retrying"):
                self._state = event
            self._events.append(evt)
            watchers = list(self._watchers)
        self._post(watchers, evt)

    def _resolve(self, result: JobResult) -> bool:
        """Record the terminal result; False when already resolved."""
        evt = {
            "event": result.status,
            "terminal": True,
            "t": round(time.monotonic() - self.submitted_mono, 6),
        }
        with self._lock:
            if self._resolved:
                return False
            self._resolved = True
            self._state = result.status
            self._events.append(evt)
            watchers = list(self._watchers)
        self._future.set_result(result)
        self._post(watchers, evt)
        return True

    @staticmethod
    def _post(watchers: list[tuple], evt: dict) -> None:
        for loop, queue in watchers:
            try:
                loop.call_soon_threadsafe(queue.put_nowait, evt)
            except RuntimeError:  # loop already closed
                pass


class AsyncCompileService:
    """Priority-queued, admission-controlled front end of a
    :class:`CompileService`.

    Args:
        service: The compile service to dispatch into.  ``None`` builds
            a private one (closed again by :meth:`close`); a service you
            pass in stays yours to close.
        max_queue_depth: Global cap on queued-but-not-dispatched jobs;
            submissions beyond it raise :class:`Overloaded`
            (``queue_full``) instead of queuing without bound.
        tenant_burst: Token-bucket capacity per tenant (max submissions
            in one burst).
        tenant_rate: Token refill rate per tenant, tokens/second
            (``0``: the burst is the tenant's total budget).
        micro_batch: Max jobs the dispatcher drains per engine batch.
            Smaller values let late-arriving interactive jobs preempt
            sooner; larger ones amortise dispatch overhead.  Default:
            ``max(4, 2 * service.max_workers)``.
        default_priority: Tier used when ``submit`` names none.
        retain_handles: How many handles stay addressable through
            :meth:`get` (oldest evicted first).
        auto_dispatch: Start the dispatcher thread on first submit
            (tests pass ``False`` and call :meth:`start` explicitly to
            build contention deterministically).
    """

    def __init__(
        self,
        service: CompileService | None = None,
        *,
        max_queue_depth: int = 256,
        tenant_burst: int = 64,
        tenant_rate: float = 32.0,
        micro_batch: int | None = None,
        default_priority: str = "batch",
        retain_handles: int = 4096,
        auto_dispatch: bool = True,
    ) -> None:
        if default_priority not in _RANK:
            raise ValueError(f"unknown priority {default_priority!r}")
        self._owns_service = service is None
        self.service = service or CompileService()
        self.max_queue_depth = int(max_queue_depth)
        self.tenant_burst = int(tenant_burst)
        self.tenant_rate = float(tenant_rate)
        self.micro_batch = micro_batch or max(4, 2 * self.service.max_workers)
        self.default_priority = default_priority
        self.retain_handles = int(retain_handles)
        self._auto_dispatch = auto_dispatch
        self._cv = threading.Condition()
        self._queue: list[tuple[int, int, JobHandle]] = []  # heap
        self._seq = 0
        self._dispatch_seq = 0
        self._buckets: dict[str, _TokenBucket] = {}
        self._handles: OrderedDict[str, JobHandle] = OrderedDict()
        self._counters: Counter = Counter()
        self._status_counts: Counter = Counter()
        self._wait_samples: dict[str, deque] = {
            tier: deque(maxlen=_SAMPLE_WINDOW) for tier in PRIORITIES
        }
        self._latency_samples: dict[str, deque] = {
            tier: deque(maxlen=_SAMPLE_WINDOW) for tier in PRIORITIES
        }
        self._draining = False
        self._stop = False
        self._dispatcher: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Submission / admission control
    # ------------------------------------------------------------------

    def submit(
        self,
        job: CompileJob,
        *,
        priority: str | None = None,
        deadline: float | None = None,
        tenant: str = "default",
    ) -> JobHandle:
        """Enqueue one job; returns its :class:`JobHandle` immediately.

        Args:
            job: The compile request.
            priority: ``"interactive"`` or ``"batch"`` (default: the
                gateway's ``default_priority``).  Interactive jobs are
                always dispatched before queued batch jobs.
            deadline: Per-job SLO budget in seconds, measured from this
                call.  Expires in the queue: the job short-circuits to
                ``timeout`` without touching a worker.  Dispatches in
                time: the *remaining* budget rides into the engine as
                the job's cooperative routing deadline.
            tenant: Admission-control account this submission is billed
                to (one token from the tenant's bucket).

        Raises:
            Overloaded: The queue-depth cap or this tenant's token
                budget rejected the submission (typed; never queued).
            Draining: The gateway is shutting down.
            ValueError: Unknown priority tier.
        """
        tier = priority or self.default_priority
        if tier not in _RANK:
            raise ValueError(
                f"unknown priority {tier!r}; expected one of {PRIORITIES}"
            )
        dl = Deadline.after(deadline) if deadline is not None else None
        handle = JobHandle(job, tier, tenant, dl)
        with self._cv:
            self._counters["submitted"] += 1
            if self._draining:
                self._counters["rejected_draining"] += 1
                raise Draining("gateway is draining; not accepting jobs")
            if len(self._queue) >= self.max_queue_depth:
                self._counters["rejected_queue_full"] += 1
                add_counter("gateway.rejected")
                raise Overloaded(
                    "queue_full",
                    f"gateway queue is full ({self.max_queue_depth} jobs)",
                    tenant=tenant,
                )
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = _TokenBucket(
                    self.tenant_burst, self.tenant_rate
                )
            if not bucket.try_take(time.monotonic()):
                self._counters["rejected_tenant_budget"] += 1
                add_counter("gateway.rejected")
                raise Overloaded(
                    "tenant_budget",
                    f"tenant {tenant!r} is out of admission tokens",
                    tenant=tenant,
                    retry_after=bucket.retry_after(),
                )
            self._counters["admitted"] += 1
            add_counter("gateway.admitted")
            self._seq += 1
            heapq.heappush(self._queue, (_RANK[tier], self._seq, handle))
            depth = len(self._queue)
            if depth > self._counters["queue_depth_max"]:
                self._counters["queue_depth_max"] = depth
            self._handles[handle.job_id] = handle
            while len(self._handles) > self.retain_handles:
                self._handles.popitem(last=False)
            if self._auto_dispatch and self._dispatcher is None:
                self._start_locked()
            self._cv.notify()
        handle._emit("queued", priority=tier, tenant=tenant)
        return handle

    def get(self, job_id: str) -> JobHandle | None:
        """The handle for ``job_id`` (most recent submission wins), or
        ``None`` once evicted / never seen."""
        with self._cv:
            return self._handles.get(job_id)

    # ------------------------------------------------------------------
    # Dispatcher lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the dispatcher thread (idempotent)."""
        with self._cv:
            self._start_locked()

    def _start_locked(self) -> None:
        if self._dispatcher is None or not self._dispatcher.is_alive():
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop,
                name="repro-gateway-dispatch",
                daemon=True,
            )
            self._dispatcher.start()

    @property
    def draining(self) -> bool:
        return self._draining

    def close(self, *, drain: bool = True, timeout: float = 60.0) -> None:
        """Stop accepting jobs, then stop the dispatcher.  Idempotent.

        Args:
            drain: ``True`` lets already-queued jobs run to a terminal
                status first; ``False`` abandons them (their handles
                resolve ``crashed`` with a shutdown error).
            timeout: Max seconds to wait for the dispatcher to finish.

        A service passed into the constructor is left open (its owner
        closes it); a gateway-created one is closed here.
        """
        abandoned: list[JobHandle] = []
        with self._cv:
            self._draining = True
            self._stop = True
            if not drain:
                abandoned = [handle for _, _, handle in self._queue]
                self._queue.clear()
            elif self._queue and (
                self._dispatcher is None or not self._dispatcher.is_alive()
            ):
                # auto_dispatch=False and start() never called: the
                # queued jobs still deserve a terminal status.
                self._start_locked()
            self._cv.notify_all()
            dispatcher = self._dispatcher
        for handle in abandoned:
            self._finish(
                handle,
                JobResult(
                    job_id=handle.job_id,
                    key="",
                    status="crashed",
                    error="gateway shut down before the job ran",
                    attempts=0,
                    metadata=handle.job.metadata,
                ),
            )
        if dispatcher is not None and dispatcher.is_alive():
            dispatcher.join(timeout)
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "AsyncCompileService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Dispatch loop (the only code that touches the CompileService)
    # ------------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._stop:
                    self._cv.wait()
                if not self._queue and self._stop:
                    return
                drained: list[JobHandle] = []
                while self._queue and len(drained) < self.micro_batch:
                    _, _, handle = heapq.heappop(self._queue)
                    drained.append(handle)
            self._run_batch(drained)

    def _run_batch(self, drained: list[JobHandle]) -> None:
        now = time.monotonic()
        ready: list[JobHandle] = []
        for handle in drained:
            handle.queue_wait_s = now - handle.submitted_mono
            handle.dispatch_index = self._dispatch_seq
            self._dispatch_seq += 1
            with self._cv:
                self._wait_samples[handle.priority].append(
                    handle.queue_wait_s
                )
            if handle.deadline is not None and handle.deadline.expired():
                # Queued past its SLO: short-circuit without consuming
                # a worker (or even touching the compile service).
                with self._cv:
                    self._counters["deadline_drops"] += 1
                budget = handle.deadline.budget
                self._finish(
                    handle,
                    JobResult(
                        job_id=handle.job_id,
                        key=handle.job.key(),
                        status="timeout",
                        error=(
                            f"queued past its {budget}s SLO deadline; "
                            "never dispatched"
                        ),
                        attempts=0,
                        metadata=handle.job.metadata,
                    ),
                )
                continue
            if handle.deadline is not None:
                remaining = max(handle.deadline.remaining(), 1e-3)
                job = handle.job
                job.deadline = (
                    remaining if job.deadline is None
                    else min(job.deadline, remaining)
                )
            ready.append(handle)
        if not ready:
            return

        def on_event(i: int, kind: str, info=None) -> None:
            handle = ready[i]
            if kind == "started":
                handle._emit("started")
            elif kind == "retrying":
                handle._emit("retrying", error=str(info or ""))
            elif kind == "done" and info is not None:
                self._finish(handle, info)

        with self._cv:
            self._counters["dispatched"] += len(ready)
        jobs = [handle.job for handle in ready]
        try:
            with trace_span("gateway.dispatch", pass_="gateway",
                            jobs=len(jobs)):
                results = self.service.submit_batch(jobs, on_event=on_event)
        except Exception as exc:  # noqa: BLE001 — keep the gateway alive
            results = [
                JobResult(
                    job_id=handle.job_id,
                    key="",
                    status="crashed",
                    error=f"gateway dispatch failed: "
                          f"{type(exc).__name__}: {exc}",
                    metadata=handle.job.metadata,
                )
                for handle in ready
            ]
        for handle, result in zip(ready, results):
            self._finish(handle, result)

    def _finish(self, handle: JobHandle, result: JobResult) -> None:
        if not handle._resolve(result):
            return
        latency = time.monotonic() - handle.submitted_mono
        with self._cv:
            self._status_counts[result.status] += 1
            self._latency_samples[handle.priority].append(latency)

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Gateway counters and per-tier latency percentiles, plus the
        underlying :meth:`CompileService.stats` sections."""
        with self._cv:
            gw = {
                key: self._counters[key]
                for key in (
                    "submitted", "admitted", "dispatched",
                    "rejected_queue_full", "rejected_tenant_budget",
                    "rejected_draining", "deadline_drops",
                    "queue_depth_max",
                )
            }
            gw["rejected"] = (
                gw["rejected_queue_full"] + gw["rejected_tenant_budget"]
                + gw["rejected_draining"]
            )
            gw["queue_depth"] = len(self._queue)
            gw["draining"] = self._draining
            gw["completed"] = {
                status: self._status_counts[status]
                for status in JOB_STATUSES
                if self._status_counts[status]
            }
            waits = {t: list(s) for t, s in self._wait_samples.items()}
            lats = {t: list(s) for t, s in self._latency_samples.items()}
        tiers = {}
        for tier in PRIORITIES:
            tiers[tier] = {
                "n": len(lats[tier]),
                "queue_wait_p50_ms": _percentile_ms(waits[tier], 0.50),
                "queue_wait_p95_ms": _percentile_ms(waits[tier], 0.95),
                "latency_p50_ms": _percentile_ms(lats[tier], 0.50),
                "latency_p95_ms": _percentile_ms(lats[tier], 0.95),
            }
        gw["tiers"] = tiers
        all_lats = [x for tier in PRIORITIES for x in lats[tier]]
        gw["job_latency_p50_ms"] = _percentile_ms(all_lats, 0.50)
        gw["job_latency_p95_ms"] = _percentile_ms(all_lats, 0.95)
        report = self.service.stats()
        report["gateway"] = gw
        return report


def _percentile_ms(samples: list[float], q: float) -> float | None:
    """The q-th percentile of ``samples`` (seconds), in milliseconds."""
    if not samples:
        return None
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return round(ordered[idx] * 1000.0, 3)
