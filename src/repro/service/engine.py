"""The compile service: cache-aware single and parallel batch compiles.

:class:`CompileService` turns :func:`repro.core.pipeline.compile_circuit`
into a servable engine:

* :meth:`CompileService.submit` — one job, in-process, through the
  content-addressed cache;
* :meth:`CompileService.submit_batch` — a list of jobs fanned across a
  ``ProcessPoolExecutor`` with per-job timeouts, bounded retry when a
  worker process dies, in-batch deduplication of identical requests,
  and **deterministic result ordering** (results[i] always corresponds
  to jobs[i], whatever order the workers finish in);
* :meth:`CompileService.stats` — a counter snapshot of everything the
  service has done (jobs, cache tiers, compile seconds, retries).

Workers receive plain-dict payloads (:meth:`CompileJob.payload`) and
return plain-dict outcomes, so nothing un-picklable ever crosses the
process boundary; the parent owns the cache, so a batch warms it for
every later request regardless of which worker compiled what.
"""

from __future__ import annotations

import os
import time
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from typing import Iterable, Sequence

from ..core.pipeline import PassConfig, compile_with_config
from ..devices.device import Device
from ..obs import Tracer, current_tracer, trace_span, use_tracer
from ..qasm import parse_qasm
from .artifact import artifact_metrics, result_to_artifact
from .cache import CompileCache
from .jobs import CompileJob, JobResult

__all__ = ["CompileService", "run_payload"]


def run_payload(
    payload: dict,
    *,
    dispatch_mono: float | None = None,
    trace: bool = False,
) -> dict:
    """Compile one job payload; always returns, never raises.

    Module-level so :class:`ProcessPoolExecutor` can pickle it.  The
    ``__test_hook__`` metadata key is an internal testing aid: ``crash``
    kills the worker process (exercising the retry path) and
    ``sleep:<seconds>`` delays the compile (exercising timeouts).

    Args:
        payload: A :meth:`CompileJob.payload` dict.
        dispatch_mono: The dispatcher's :func:`time.monotonic` reading
            at hand-off.  ``time.monotonic`` is system-wide, so the
            worker's own reading on the same clock yields the queue wait
            directly — no wall clock (NTP steps, suspend) ever enters
            the metric.  Echoed back so the parent needs no bookkeeping.
        trace: Record pass-level spans for this compile and ship them
            back in the outcome's ``spans`` list for the parent tracer
            to absorb.
    """
    started_mono = time.monotonic()
    hook = payload.get("metadata", {}).get("__test_hook__", "")
    if hook == "crash":
        os._exit(13)
    if hook.startswith("sleep:"):
        time.sleep(float(hook.split(":", 1)[1]))
    tracer = Tracer() if trace else None
    t0 = time.perf_counter()
    try:
        with use_tracer(tracer) if tracer is not None else nullcontext():
            with trace_span(
                "job", pass_="service", job_id=payload.get("job_id", "")
            ):
                circuit = parse_qasm(payload["qasm"])
                device = Device.from_dict(payload["device"])
                config = PassConfig.from_dict(payload["config"])
                result = compile_with_config(circuit, device, config)
                artifact = result_to_artifact(result, config=config)
        outcome = {
            "status": "ok",
            "artifact": artifact,
            "compile_seconds": time.perf_counter() - t0,
        }
    except Exception as exc:  # noqa: BLE001 — report, don't kill the pool
        outcome = {
            "status": "error",
            "error": f"{type(exc).__name__}: {exc}",
            "compile_seconds": time.perf_counter() - t0,
        }
    outcome["started_mono"] = started_mono
    if dispatch_mono is not None:
        outcome["dispatch_mono"] = dispatch_mono
    if tracer is not None:
        outcome["spans"] = tracer.finished()
        outcome["trace_counters"] = tracer.counters()
    return outcome


#: Sentinel distinguishing "no cache argument" from an explicit ``None``.
_DEFAULT_CACHE = object()


class CompileService:
    """Compile jobs against devices, with caching and parallel batches.

    Args:
        cache: The artefact cache.  Omitted: a fresh in-memory-only
            :class:`CompileCache`.  An explicit ``None`` disables
            caching entirely (every submit compiles fresh; batches
            still dedup identical requests internally).
        max_workers: Default parallelism of :meth:`submit_batch`
            (default: the machine's CPU count).
        retries: How many times a batch re-dispatches jobs whose worker
            process crashed before reporting them as errors.
        default_timeout: Per-job wall-clock budget in seconds applied
            when neither the job nor the batch call specifies one
            (``None``: unlimited).
    """

    def __init__(
        self,
        cache: CompileCache | None = _DEFAULT_CACHE,  # type: ignore[assignment]
        *,
        max_workers: int | None = None,
        retries: int = 1,
        default_timeout: float | None = None,
    ) -> None:
        self.cache = CompileCache() if cache is _DEFAULT_CACHE else cache
        self.max_workers = max_workers or (os.cpu_count() or 1)
        self.retries = int(retries)
        self.default_timeout = default_timeout
        self._counters: Counter = Counter()
        self._compile_seconds = 0.0
        self._queue_wait_seconds = 0.0

    # ------------------------------------------------------------------
    # Single submit
    # ------------------------------------------------------------------

    def submit(self, job: CompileJob) -> JobResult:
        """Compile one job in-process (cache first, then fresh)."""
        self._counters["jobs_submitted"] += 1
        key = job.key()
        hit = self._try_cache(job, key)
        if hit is not None:
            return hit
        dispatch_mono = time.monotonic()
        outcome = run_payload(
            job.payload(),
            dispatch_mono=dispatch_mono,
            trace=current_tracer().enabled,
        )
        return self._finish(job, key, outcome, dispatch_mono, attempts=1)

    # ------------------------------------------------------------------
    # Batch submit
    # ------------------------------------------------------------------

    def submit_batch(
        self,
        jobs: Iterable[CompileJob],
        *,
        max_workers: int | None = None,
        timeout: float | None = None,
        retries: int | None = None,
    ) -> list[JobResult]:
        """Compile ``jobs``, fanning cache misses across worker processes.

        Args:
            jobs: The requests, in the order results are returned.
            max_workers: Parallelism for this batch (default: the
                service's ``max_workers``; ``1`` runs in-process).
            timeout: Per-job wall-clock budget in seconds, measured from
                batch dispatch; a job's own ``timeout`` takes precedence.
                Timed-out jobs report ``status == "timeout"`` (the
                worker is abandoned, not interrupted).
            retries: Crash-retry budget for this batch (default: the
                service's ``retries``).

        Returns:
            One :class:`JobResult` per job, positionally aligned with
            the input regardless of completion order.
        """
        jobs = list(jobs)
        workers = self.max_workers if max_workers is None else max_workers
        budget = self.retries if retries is None else int(retries)
        self._counters["jobs_submitted"] += len(jobs)
        self._counters["batches"] += 1

        keys = [job.key() for job in jobs]
        results: list[JobResult | None] = [None] * len(jobs)

        # Tier lookups and in-batch dedup: identical requests compile once.
        pending: list[int] = []
        first_for_key: dict[str, int] = {}
        duplicate_of: dict[int, int] = {}
        for i, (job, key) in enumerate(zip(jobs, keys)):
            hit = self._try_cache(job, key)
            if hit is not None:
                results[i] = hit
            elif key in first_for_key:
                duplicate_of[i] = first_for_key[key]
                self._counters["batch_dedup_hits"] += 1
            else:
                first_for_key[key] = i
                pending.append(i)

        if pending:
            # Pool dispatch is only worth it with real parallelism, but
            # timeouts can only be enforced from outside the worker, so
            # any timed job forces the pool path — as does a crash/sleep
            # test hook, which must never run in this process.
            needs_pool = workers > 1 and (
                len(pending) > 1
                or timeout is not None
                or self.default_timeout is not None
                or any(jobs[i].timeout is not None for i in pending)
                or any(
                    "__test_hook__" in jobs[i].metadata for i in pending
                )
            )
            if not needs_pool:
                trace = current_tracer().enabled
                for i in pending:
                    dispatch_mono = time.monotonic()
                    outcome = run_payload(
                        jobs[i].payload(),
                        dispatch_mono=dispatch_mono,
                        trace=trace,
                    )
                    results[i] = self._finish(
                        jobs[i], keys[i], outcome, dispatch_mono, attempts=1
                    )
            else:
                self._run_pool(
                    jobs, keys, pending, results, workers, timeout, budget
                )

        for i, src in duplicate_of.items():
            base = results[src]
            assert base is not None
            results[i] = JobResult(
                job_id=jobs[i].job_id,
                key=keys[i],
                status=base.status,
                cache_hit="batch" if base.ok else base.cache_hit,
                artifact=base.artifact,
                error=base.error,
                attempts=base.attempts,
                metrics={**base.metrics, "queue_wait_s": 0.0, "compile_s": 0.0},
                metadata=jobs[i].metadata,
            )

        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def _run_pool(
        self,
        jobs: Sequence[CompileJob],
        keys: Sequence[str],
        pending: list[int],
        results: list[JobResult | None],
        workers: int,
        timeout: float | None,
        budget: int,
    ) -> None:
        """Dispatch ``pending`` job indices across a process pool.

        Each round uses a fresh pool; when the pool breaks (a worker
        died), unfinished jobs are re-dispatched until the retry budget
        runs out.  Pools are shut down without waiting so an abandoned
        (timed-out) worker never stalls the batch.
        """
        attempts = {i: 0 for i in pending}
        remaining = set(pending)
        rounds_left = budget + 1
        isolate = False
        trace = current_tracer().enabled
        while remaining and rounds_left > 0:
            rounds_left -= 1
            if max(attempts.values()) > 0:
                self._counters["crash_retries"] += 1
            if isolate:
                # Recovery round: one single-worker pool per job, so a
                # deterministic crasher can no longer take down the
                # results of the jobs that happened to share its pool.
                for i in sorted(remaining.copy()):
                    attempts[i] += 1
                    self._dispatch_one(
                        jobs[i], keys[i], i, results, remaining,
                        attempts[i], timeout,
                    )
                continue
            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(remaining))
            )
            # One shared-epoch monotonic reading per future: the worker
            # subtracts its own monotonic reading on the same system-wide
            # clock, so queue waits survive NTP steps and suspends.
            dispatched: dict[int, float] = {}
            futures = {}
            broken = False
            abandoned = False
            try:
                for i in sorted(remaining):
                    attempts[i] += 1
                    dispatched[i] = time.monotonic()
                    futures[i] = pool.submit(
                        run_payload,
                        jobs[i].payload(),
                        dispatch_mono=dispatched[i],
                        trace=trace,
                    )
            except BrokenProcessPool:
                broken = True
            for i in sorted(futures):
                job_timeout = self._job_timeout(jobs[i], timeout)
                try:
                    # After a pool break, completed futures still hold
                    # results; only never-run ones raise (instantly), so
                    # keep harvesting instead of abandoning the round.
                    if job_timeout is None and not broken:
                        outcome = futures[i].result()
                    else:
                        left = (
                            0.0
                            if job_timeout is None
                            else job_timeout
                            - (time.monotonic() - dispatched[i])
                        )
                        outcome = futures[i].result(timeout=max(0.0, left))
                except _FutureTimeout:
                    if broken:
                        continue  # retry in the next round
                    futures[i].cancel()
                    abandoned = True
                    self._counters["timeouts"] += 1
                    results[i] = self._timeout_result(
                        jobs[i], keys[i], job_timeout, attempts[i]
                    )
                    remaining.discard(i)
                except BrokenProcessPool:
                    broken = True
                    continue
                else:
                    results[i] = self._finish(
                        jobs[i], keys[i], outcome, dispatched[i], attempts[i]
                    )
                    remaining.discard(i)
            # Join the pool threads when every worker is accounted for —
            # tearing down without waiting is only needed when a worker
            # was abandoned mid-job, and it races interpreter exit.
            pool.shutdown(wait=not (abandoned or broken), cancel_futures=True)
            isolate = broken
        for i in sorted(remaining):
            self._counters["crash_failures"] += 1
            results[i] = JobResult(
                job_id=jobs[i].job_id,
                key=keys[i],
                status="error",
                error=f"worker process crashed ({attempts[i]} attempts)",
                attempts=attempts[i],
                metadata=jobs[i].metadata,
            )

    def _dispatch_one(
        self,
        job: CompileJob,
        key: str,
        index: int,
        results: list[JobResult | None],
        remaining: set[int],
        attempts: int,
        timeout: float | None,
    ) -> None:
        """Run one job in its own single-worker pool (recovery rounds)."""
        pool = ProcessPoolExecutor(max_workers=1)
        dispatch_mono = time.monotonic()
        job_timeout = self._job_timeout(job, timeout)
        abandoned = False
        try:
            future = pool.submit(
                run_payload,
                job.payload(),
                dispatch_mono=dispatch_mono,
                trace=current_tracer().enabled,
            )
            outcome = future.result(timeout=job_timeout)
        except _FutureTimeout:
            abandoned = True
            self._counters["timeouts"] += 1
            results[index] = self._timeout_result(
                job, key, job_timeout, attempts
            )
            remaining.discard(index)
        except BrokenProcessPool:
            abandoned = True  # worker died; nothing left to join cleanly
        else:
            results[index] = self._finish(
                job, key, outcome, dispatch_mono, attempts
            )
            remaining.discard(index)
        pool.shutdown(wait=not abandoned, cancel_futures=True)

    def _job_timeout(
        self, job: CompileJob, batch_timeout: float | None
    ) -> float | None:
        if job.timeout is not None:
            return job.timeout
        if batch_timeout is not None:
            return batch_timeout
        return self.default_timeout

    def _timeout_result(
        self, job: CompileJob, key: str, job_timeout: float | None, attempts: int
    ) -> JobResult:
        return JobResult(
            job_id=job.job_id,
            key=key,
            status="timeout",
            error=f"exceeded the {job_timeout}s budget",
            attempts=attempts,
            metadata=job.metadata,
        )

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------

    def _try_cache(self, job: CompileJob, key: str) -> JobResult | None:
        if self.cache is None:
            return None
        t0 = time.perf_counter()
        with trace_span("cache.lookup", pass_="cache", job_id=job.job_id) as sp:
            artifact, tier = self.cache.lookup(key)
            if sp.enabled:
                sp.set(tier=tier or "miss")
        if artifact is None:
            return None
        self._counters["cache_hits"] += 1
        metrics = {
            "queue_wait_s": 0.0,
            "compile_s": 0.0,
            "total_s": round(time.perf_counter() - t0, 6),
        }
        metrics.update(artifact_metrics(artifact))
        return JobResult(
            job_id=job.job_id,
            key=key,
            status="ok",
            cache_hit=tier,
            artifact=artifact,
            metrics=metrics,
            metadata=job.metadata,
        )

    def _finish(
        self,
        job: CompileJob,
        key: str,
        outcome: dict,
        dispatch_mono: float,
        attempts: int,
    ) -> JobResult:
        # Both readings come from the system-wide monotonic clock (the
        # dispatch one crossed the process boundary as a shared epoch),
        # so the difference is non-negative by construction — no clamp,
        # which would silently turn a clock bug into a zero wait.
        queue_wait = outcome.get("started_mono", dispatch_mono) - dispatch_mono
        compile_s = outcome.get("compile_seconds", 0.0)
        spans = outcome.get("spans")
        if spans:
            tracer = current_tracer()
            tracer.absorb(spans)
            for name, value in outcome.get("trace_counters", {}).items():
                tracer.counter(name, value)
        if outcome["status"] != "ok":
            self._counters["errors"] += 1
            return JobResult(
                job_id=job.job_id,
                key=key,
                status="error",
                error=outcome.get("error", "unknown failure"),
                attempts=attempts,
                metrics={
                    "queue_wait_s": round(queue_wait, 6),
                    "compile_s": round(compile_s, 6),
                },
                metadata=job.metadata,
            )
        artifact = outcome["artifact"]
        if self.cache is not None:
            self.cache.put(key, artifact)
        self._counters["fresh_compiles"] += 1
        self._compile_seconds += compile_s
        self._queue_wait_seconds += queue_wait
        metrics = {
            "queue_wait_s": round(queue_wait, 6),
            "compile_s": round(compile_s, 6),
            "total_s": round(queue_wait + compile_s, 6),
        }
        metrics.update(artifact_metrics(artifact))
        return JobResult(
            job_id=job.job_id,
            key=key,
            status="ok",
            artifact=artifact,
            attempts=attempts,
            metrics=metrics,
            metadata=job.metadata,
        )

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Counter snapshot: service totals plus cache tier counters."""
        service = {
            key: self._counters[key]
            for key in (
                "jobs_submitted", "batches", "cache_hits",
                "batch_dedup_hits", "fresh_compiles", "errors",
                "timeouts", "crash_retries", "crash_failures",
            )
        }
        service["compile_seconds"] = round(self._compile_seconds, 6)
        service["queue_wait_seconds"] = round(self._queue_wait_seconds, 6)
        lookups = service["cache_hits"] + service["fresh_compiles"]
        service["hit_rate"] = (
            round(service["cache_hits"] / lookups, 4) if lookups else 0.0
        )
        cache_stats = self.cache.stats() if self.cache is not None else None
        return {"service": service, "cache": cache_stats}

    def trace_report(self, tracer) -> dict:
        """Per-job span trees plus service/cache/pool counters.

        Args:
            tracer: The :class:`~repro.obs.Tracer` that was current
                while jobs ran (worker spans were absorbed into it).

        Returns:
            A JSON-able report: one entry per ``job`` root span with its
            total seconds and per-pass time breakdown (children matched
            by pid/tid and time containment), the tracer's counter
            totals, and :meth:`stats`.
        """
        events = tracer.finished()
        roots = [
            e for e in events if e["name"] == "job" and e.get("depth", 0) == 0
        ]
        job_rows = []
        for root in roots:
            t0, t1 = root["ts"], root["ts"] + root["dur"]
            passes: dict[str, float] = {}
            for e in events:
                if e is root or e["pid"] != root["pid"] \
                        or e["tid"] != root["tid"]:
                    continue
                key = e.get("pass") or e["name"]
                # Leaf passes only: "pipeline"/"service" wrappers would
                # double-count the stages nested inside them.
                if key in ("pipeline", "service"):
                    continue
                if t0 <= e["ts"] and e["ts"] + e["dur"] <= t1 + 1e-9:
                    passes[key] = round(passes.get(key, 0.0) + e["dur"], 6)
            job_rows.append(
                {
                    "job_id": root["args"].get("job_id", ""),
                    "total_s": round(root["dur"], 6),
                    "passes": passes,
                }
            )
        return {
            "schema": 1,
            "jobs": job_rows,
            "counters": tracer.counters(),
            "stats": self.stats(),
        }
