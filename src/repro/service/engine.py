"""The compile service: cache-aware single and parallel batch compiles.

:class:`CompileService` turns :func:`repro.core.pipeline.compile_circuit`
into a servable engine:

* :meth:`CompileService.submit` — one job, in-process, through the
  content-addressed cache;
* :meth:`CompileService.submit_batch` — a list of jobs fanned across
  the service's warm worker pool with per-job compute budgets, an
  overall batch deadline, bounded retry-with-fallback when a worker
  process dies,
  in-batch deduplication of identical requests, and **deterministic
  result ordering** (results[i] always corresponds to jobs[i], whatever
  order the workers finish in);
* :meth:`CompileService.stats` — a counter snapshot of everything the
  service has done (jobs, cache tiers, compile seconds, retries).

Workers receive plain-dict payloads (:meth:`CompileJob.payload`) and
return plain-dict outcomes, so nothing un-picklable ever crosses the
process boundary; the parent owns the cache, so a batch warms it for
every later request regardless of which worker compiled what.

Parallel batches run on a **persistent warm worker pool**
(:class:`repro.service.pool.WarmPool`): workers are forked once per
service, preload the device library and the native A* kernel in their
initializer, and are reused across batches and retry rounds.  Jobs are
dispatched in chunks; each worker streams ``start``/``done`` events back
over its own lightweight channel (there is no per-batch
``multiprocessing.Manager`` process any more).

Resilience (see ``docs/resilience.md``): every job ends in exactly one
of the terminal statuses ``ok | degraded | timeout | crashed | invalid``
(:data:`repro.service.jobs.JOB_STATUSES`) — a batch never loses a job.
Per-job budgets are **compute budgets measured from worker start** (the
worker posts its start instant on the pool's event channel), not from
batch dispatch, so jobs queued behind a full pool are not billed for
their queue wait.  A separate ``batch_timeout`` bounds the whole batch.
A worker that crashes or is abandoned on a hang is recycled alone —
surviving warm workers keep their preloaded state.  Crashed jobs are
retried down the router fallback chain
(:func:`repro.core.pipeline.fallback_chain`) instead of blindly: the
pool reports which job the dead worker was actually running, so only
that job is blamed (and degraded on retry) while chunk-mates that never
started are re-queued with their original router at no attempt cost.
Worker-shipped artefacts are validated
(:func:`repro.service.artifact.validate_artifact`) before they can reach
the cache.  Only clean ``ok`` artefacts are ever cached — a degraded
compile must not impersonate the requested configuration.
"""

from __future__ import annotations

import os
import threading
import time
from collections import Counter, deque
from contextlib import nullcontext
from typing import Callable, Iterable, Sequence

from ..core.pipeline import PassConfig, compile_with_config, fallback_chain
from ..devices.device import Device
from ..obs import Tracer, current_tracer, trace_span, use_tracer
from ..qasm import parse_qasm
from ..resilience.deadline import Deadline, DeadlineExceeded
from ..resilience.faults import (
    FaultInjected,
    FaultPlan,
    corrupt_point,
    fault_point,
    use_faults,
)
from .artifact import artifact_metrics, result_to_artifact, validate_artifact
from .cache import CacheStageStore, CompileCache
from .jobs import CompileJob, JobResult
from .pool import WarmPool

__all__ = ["CompileService", "run_payload"]

#: Parent-side poll interval of the batch wait loop, seconds.
_POLL_INTERVAL = 0.02

#: Upper bound on dispatch chunk size (load balance beats IPC savings).
_MAX_CHUNK = 8


def run_payload(
    payload: dict,
    *,
    dispatch_mono: float | None = None,
    trace: bool = False,
    stage_store: CacheStageStore | None = None,
) -> dict:
    """Compile one job payload; always returns, never raises.

    Module-level so pool workers can import it by name.  The
    ``__test_hook__`` metadata key is an internal testing aid: ``crash``
    kills the worker process (exercising the retry path) and
    ``sleep:<seconds>`` delays the compile (exercising timeouts).

    Resilience keys the engine may add to a payload:

    * ``faults`` — a :meth:`FaultPlan.to_dict`, installed around the
      compile with this job's id (fault injection crosses the process
      boundary here);
    * ``deadline_s`` — per-job compute budget in seconds; the worker
      starts the clock on **its own** entry, so queue wait is free;
    * ``batch_deadline`` — a :meth:`Deadline.to_dict` (absolute
      monotonic instant, valid across processes) bounding the batch;
    * ``router_override`` — route with this router instead of the
      config's (a fallback retry after a crash); the result is marked
      degraded.
    * ``stage_cache_dir`` — the parent cache's disk directory.  A pool
      worker opens its own disk-only view of it
      (:class:`CompileCache` with the memory tier off) and probes the
      per-stage entries before running each stage, then ships the
      per-stage hit/miss counters back in the outcome's
      ``stage_counters`` for the parent to merge.  Inline callers pass
      ``stage_store`` directly instead.  Fault-plan runs never touch
      the stage cache.

    The outcome's ``status`` is one of ``ok | degraded | timeout |
    crashed | invalid`` — the same taxonomy the parent reports.

    Args:
        payload: A :meth:`CompileJob.payload` dict, possibly augmented.
        dispatch_mono: The dispatcher's :func:`time.monotonic` reading
            at hand-off.  ``time.monotonic`` is system-wide, so the
            worker's own reading on the same clock yields the queue wait
            directly — no wall clock (NTP steps, suspend) ever enters
            the metric.  Echoed back so the parent needs no bookkeeping.
        trace: Record pass-level spans for this compile and ship them
            back in the outcome's ``spans`` list for the parent tracer
            to absorb.
    """
    started_mono = time.monotonic()
    hook = payload.get("metadata", {}).get("__test_hook__", "")
    if hook == "crash":
        os._exit(13)
    if hook.startswith("sleep:"):
        time.sleep(float(hook.split(":", 1)[1]))

    plan = None
    if payload.get("faults"):
        plan = FaultPlan.from_dict(payload["faults"])
    local_store = None
    if plan is not None:
        # Fault runs must never read or warm the stage cache: injected
        # failures and corruption hooks would otherwise interleave with
        # real traffic's intermediates.
        stage_store = None
    elif stage_store is None and payload.get("stage_cache_dir"):
        local_store = CacheStageStore(
            CompileCache(
                max_memory_entries=0,
                directory=payload["stage_cache_dir"],
            )
        )
        stage_store = local_store
    deadline = None
    if payload.get("deadline_s") is not None:
        deadline = Deadline.after(float(payload["deadline_s"]))
    if payload.get("batch_deadline"):
        batch_dl = Deadline.from_dict(payload["batch_deadline"])
        if deadline is None or batch_dl.expires_mono < deadline.expires_mono:
            deadline = batch_dl

    tracer = Tracer() if trace else None
    t0 = time.perf_counter()
    try:
        with use_faults(plan, payload.get("job_id", "")) \
                if plan is not None else nullcontext():
            fault_point("worker")
            with use_tracer(tracer) if tracer is not None else nullcontext():
                with trace_span(
                    "job", pass_="service", job_id=payload.get("job_id", "")
                ):
                    fault_point("parse")
                    circuit = parse_qasm(payload["qasm"])
                    device = Device.from_dict(payload["device"])
                    config = PassConfig.from_dict(payload["config"])
                    requested = config.router
                    override = payload.get("router_override")
                    if override and override != requested:
                        run_cfg = config.to_dict()
                        run_cfg["router"] = override
                        run_cfg["router_options"] = {}
                        run_config = PassConfig.from_dict(run_cfg)
                    else:
                        override = None
                        run_config = config
                    result = compile_with_config(
                        circuit, device, run_config, deadline=deadline,
                        stage_store=stage_store,
                    )
                    if override is not None:
                        # A fallback retry: record the full degradation
                        # path from the *originally requested* router.
                        inner = result.metadata.get("resilience")
                        path = [requested] + (
                            inner["fallback_path"] if inner else [override]
                        )
                        failures = [{
                            "router": requested,
                            "kind": "retry",
                            "error": "previous attempt crashed or timed out",
                        }] + (inner["failures"] if inner else [])
                        result.metadata["resilience"] = {
                            "degraded": True,
                            "requested_router": requested,
                            "router_used": result.router,
                            "fallback_path": path,
                            "failures": failures,
                        }
                    fault_point("artifact")
                    artifact = result_to_artifact(result, config=config)
                    artifact = corrupt_point("artifact", artifact)
        degraded = bool(
            result.metadata.get("resilience", {}).get("degraded")
        )
        outcome = {
            "status": "degraded" if degraded else "ok",
            "artifact": artifact,
            "compile_seconds": time.perf_counter() - t0,
        }
    except DeadlineExceeded as exc:
        outcome = {
            "status": "timeout",
            "error": f"{type(exc).__name__}: {exc}",
            "compile_seconds": time.perf_counter() - t0,
        }
    except FaultInjected as exc:
        outcome = {
            "status": "crashed",
            "error": f"{type(exc).__name__}: {exc}",
            "compile_seconds": time.perf_counter() - t0,
        }
    except Exception as exc:  # noqa: BLE001 — report, don't kill the pool
        outcome = {
            "status": "invalid",
            "error": f"{type(exc).__name__}: {exc}",
            "compile_seconds": time.perf_counter() - t0,
        }
    outcome["started_mono"] = started_mono
    if local_store is not None:
        # Worker-local counters; the parent owns the aggregate (inline
        # stores hit the parent cache directly and ship nothing).
        counters = local_store.cache.stage_counters()
        if counters:
            outcome["stage_counters"] = counters
    if dispatch_mono is not None:
        outcome["dispatch_mono"] = dispatch_mono
    if tracer is not None:
        outcome["spans"] = tracer.finished()
        outcome["trace_counters"] = tracer.counters()
    return outcome


#: Sentinel distinguishing "no cache argument" from an explicit ``None``.
_DEFAULT_CACHE = object()


def _NO_EMIT(i: int, kind: str, info=None) -> None:  # noqa: N802
    """The free no-observer path of ``submit_batch(on_event=...)``."""


class CompileService:
    """Compile jobs against devices, with caching and parallel batches.

    Args:
        cache: The artefact cache.  Omitted: a fresh in-memory-only
            :class:`CompileCache`.  An explicit ``None`` disables
            caching entirely (every submit compiles fresh; batches
            still dedup identical requests internally).
        max_workers: Default parallelism of :meth:`submit_batch`
            (default: the machine's CPU count).
        retries: How many times a batch re-dispatches jobs whose worker
            process crashed (or shipped a corrupt artefact) before
            reporting them as ``crashed``.  Retries walk the router
            fallback chain.
        default_timeout: Per-job compute budget in seconds applied when
            neither the job nor the batch call specifies one (``None``:
            unlimited).  Measured from worker start, not from dispatch.
        default_deadline: Cooperative routing deadline in seconds handed
            to every job that does not override it (``None``: no
            deadline).  Routers poll it and degrade through the fallback
            chain instead of being killed.
        fault_plan: A :class:`FaultPlan` injected into every batch
            (testing/chaos runs; ``None``: no faults).
        preload_native: Have pool workers resolve the native A* kernel
            in their initializer (default on; moot under
            ``REPRO_NO_NATIVE``).
        stage_cache: Probe and populate the cache's per-stage entries
            (placement / routing / lower / schedule) on full-key misses,
            so e.g. a router sweep re-keys only the stages downstream of
            the changed knob.  Inline compiles share the service cache's
            stage namespace directly; pool workers probe the disk tier
            via the payload's ``stage_cache_dir`` (a memory-only service
            cache keeps stage entries parent-side only).  Default on;
            moot when ``cache`` is ``None``.

    The service owns one :class:`~repro.service.pool.WarmPool`, created
    lazily on the first pooled batch and reused for every batch after
    it.  Call :meth:`close` (or use the service as a context manager)
    to stop the workers; an unclosed service's pool is torn down by a
    GC finalizer, and the workers are daemonic either way.
    """

    def __init__(
        self,
        cache: CompileCache | None = _DEFAULT_CACHE,  # type: ignore[assignment]
        *,
        max_workers: int | None = None,
        retries: int = 1,
        default_timeout: float | None = None,
        default_deadline: float | None = None,
        fault_plan: FaultPlan | None = None,
        preload_native: bool = True,
        stage_cache: bool = True,
    ) -> None:
        self.cache = CompileCache() if cache is _DEFAULT_CACHE else cache
        self.max_workers = max_workers or (os.cpu_count() or 1)
        self.retries = int(retries)
        self.default_timeout = default_timeout
        self.default_deadline = default_deadline
        self.fault_plan = fault_plan
        self.preload_native = preload_native
        self.stage_cache = bool(stage_cache)
        self._pool: WarmPool | None = None
        self._pool_lock = threading.Lock()
        self._counters: Counter = Counter()
        self._compile_seconds = 0.0
        self._queue_wait_seconds = 0.0

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def _ensure_pool(self) -> WarmPool:
        with self._pool_lock:
            if self._pool is None or self._pool.closed:
                self._pool = WarmPool(preload_native=self.preload_native)
                self._counters["pools_created"] += 1
            else:
                self._counters["pool_reuse_batches"] += 1
            return self._pool

    def prewarm(self, workers: int | None = None, *,
                timeout: float = 60.0) -> list[dict]:
        """Spawn the worker pool now and wait until every worker is ready.

        Separates one-time pool start-up (fork + device-library import +
        native-kernel resolve) from steady-state dispatch, e.g. before a
        timed benchmark phase or ahead of expected traffic.  Returns the
        workers' preload reports.
        """
        pool = self._ensure_pool()
        with trace_span("pool.prewarm", pass_="pool"):
            pool.ensure(workers or self.max_workers)
            return pool.wait_ready(timeout)

    def close(self) -> None:
        """Shut the warm pool down.  The service stays usable; the next
        pooled batch starts a fresh pool.

        Idempotent and safe to call from any thread, including while a
        batch is in flight on another thread: the batch observes the
        closed pool, stops dispatching, and reports every job it could
        not finish with a terminal ``crashed`` status instead of
        deadlocking or leaking an exception.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Single submit
    # ------------------------------------------------------------------

    def submit(self, job: CompileJob) -> JobResult:
        """Compile one job in-process (cache first, then fresh).

        Raises:
            ValueError: when the service's fault plan contains ``crash``
                or ``hang`` faults — those would kill or stall *this*
                process; use :meth:`submit_batch`, which isolates them
                in pool workers.
        """
        plan = self.fault_plan
        if plan is not None and plan.has_action("crash", "hang"):
            raise ValueError(
                "crash/hang fault plans cannot run in-process; "
                "use submit_batch"
            )
        self._counters["jobs_submitted"] += 1
        key = job.key()
        hit = self._try_cache(job, key)
        if hit is not None:
            return hit
        dispatch_mono = time.monotonic()
        payload = self._augment(
            job.payload(),
            deadline=self._effective_deadline(job, self.default_deadline),
            batch_deadline=None, plan=plan,
        )
        outcome = run_payload(
            payload,
            dispatch_mono=dispatch_mono,
            trace=current_tracer().enabled,
            stage_store=self._stage_store(plan),
        )
        return self._finish(job, key, outcome, dispatch_mono, attempts=1)

    def _stage_store(self, plan: FaultPlan | None) -> CacheStageStore | None:
        """The parent-side stage store for inline compiles (``None``
        when stage caching is off, uncached, or a fault plan is live)."""
        if not self.stage_cache or self.cache is None or plan is not None:
            return None
        return CacheStageStore(self.cache)

    # ------------------------------------------------------------------
    # Batch submit
    # ------------------------------------------------------------------

    def submit_batch(
        self,
        jobs: Iterable[CompileJob],
        *,
        max_workers: int | None = None,
        timeout: float | None = None,
        retries: int | None = None,
        deadline: float | None = None,
        batch_timeout: float | None = None,
        fault_plan: FaultPlan | None = None,
        on_event: Callable[[int, str, object], None] | None = None,
    ) -> list[JobResult]:
        """Compile ``jobs``, fanning cache misses across worker processes.

        Args:
            jobs: The requests, in the order results are returned.
            max_workers: Parallelism for this batch (default: the
                service's ``max_workers``; ``1`` runs in-process).
            timeout: Per-job **compute budget** in seconds, measured
                from the instant the worker starts the job — queue wait
                behind a full pool is free.  A job's own ``timeout``
                takes precedence.  Timed-out jobs report
                ``status == "timeout"`` (the worker is abandoned, not
                interrupted).
            retries: Crash-retry budget for this batch (default: the
                service's ``retries``).  Retries walk the router
                fallback chain, so a router that crashes its worker is
                replaced by a cheaper one instead of crashing again.
            deadline: Cooperative routing deadline in seconds per job
                (default: the service's ``default_deadline``).  Routers
                poll it and degrade through the fallback chain.
            batch_timeout: Overall wall-clock bound on the whole batch,
                measured from this call; when it expires, every
                unfinished job reports ``status == "timeout"``.
            fault_plan: Fault plan for this batch (default: the
                service's plan).
            on_event: Optional per-job lifecycle callback
                ``on_event(i, kind, info)`` where ``i`` indexes into
                ``jobs``: ``("started", None)`` when a worker (or the
                inline path) begins the job, ``("retrying", message)``
                when a blamed crash re-queues it, and ``("done",
                JobResult)`` the moment its terminal result exists —
                before the batch as a whole returns, which is what the
                async gateway streams job events from.  Exceptions it
                raises are swallowed; it runs on the batch thread and
                must be cheap.

        Returns:
            One :class:`JobResult` per job, positionally aligned with
            the input regardless of completion order.  Every result has
            a terminal status — a batch never loses a job.
        """
        jobs = list(jobs)
        workers = self.max_workers if max_workers is None else max_workers
        budget = self.retries if retries is None else int(retries)
        plan = self.fault_plan if fault_plan is None else fault_plan
        job_deadline = (
            self.default_deadline if deadline is None else deadline
        )
        batch_dl = (
            Deadline.after(batch_timeout) if batch_timeout is not None
            else None
        )
        self._counters["jobs_submitted"] += len(jobs)
        self._counters["batches"] += 1

        if on_event is None:
            emit = _NO_EMIT
        else:
            def emit(i: int, kind: str, info=None) -> None:
                try:
                    on_event(i, kind, info)
                except Exception:  # noqa: BLE001 — observers can't kill a batch
                    pass

        keys = [job.key() for job in jobs]
        results: list[JobResult | None] = [None] * len(jobs)

        # Tier lookups and in-batch dedup: identical requests compile once.
        pending: list[int] = []
        first_for_key: dict[str, int] = {}
        duplicate_of: dict[int, int] = {}
        for i, (job, key) in enumerate(zip(jobs, keys)):
            hit = self._try_cache(job, key)
            if hit is not None:
                results[i] = hit
                emit(i, "done", hit)
            elif key in first_for_key:
                duplicate_of[i] = first_for_key[key]
                self._counters["batch_dedup_hits"] += 1
            else:
                first_for_key[key] = i
                pending.append(i)

        if pending:
            # Pool placement: crash/hang fault plans (and the legacy
            # test hooks that simulate them) must never run in this
            # process, and real parallelism needs more than one pending
            # job.  A single-job batch runs inline — spawning a worker
            # for it buys nothing — with any hard timeout applied as a
            # *cooperative* deadline (the compile degrades through the
            # fallback chain instead of being abandoned; only a pool can
            # kill a truly hung worker, and hangs come from lethal
            # plans/hooks, which still force the pool).
            lethal = plan is not None and plan.has_action("crash", "hang")
            hooks = any(
                "__test_hook__" in jobs[i].metadata for i in pending
            )
            needs_pool = lethal or (
                workers > 1 and (hooks or len(pending) > 1)
            )
            if not needs_pool:
                trace = current_tracer().enabled
                inline_store = self._stage_store(plan)
                for i in pending:
                    if batch_dl is not None and batch_dl.expired():
                        self._counters["timeouts"] += 1
                        results[i] = self._timeout_result(
                            jobs[i], keys[i], None, 1,
                            reason="batch deadline expired",
                        )
                        emit(i, "done", results[i])
                        continue
                    inline_deadline = self._effective_deadline(
                        jobs[i], job_deadline
                    )
                    hard = self._job_timeout(jobs[i], timeout)
                    if hard is not None:
                        inline_deadline = (
                            hard if inline_deadline is None
                            else min(inline_deadline, hard)
                        )
                    dispatch_mono = time.monotonic()
                    payload = self._augment(
                        jobs[i].payload(), deadline=inline_deadline,
                        batch_deadline=batch_dl, plan=plan,
                    )
                    emit(i, "started")
                    outcome = run_payload(
                        payload, dispatch_mono=dispatch_mono, trace=trace,
                        stage_store=inline_store,
                    )
                    results[i] = self._finish(
                        jobs[i], keys[i], outcome, dispatch_mono, attempts=1
                    )
                    emit(i, "done", results[i])
            else:
                self._run_pool(
                    jobs, keys, pending, results, max(workers, 1), timeout,
                    budget, job_deadline, batch_dl, plan, emit,
                )

        for i, src in duplicate_of.items():
            base = results[src]
            assert base is not None
            results[i] = JobResult(
                job_id=jobs[i].job_id,
                key=keys[i],
                status=base.status,
                cache_hit="batch" if base.ok else base.cache_hit,
                artifact=base.artifact,
                error=base.error,
                attempts=base.attempts,
                metrics={**base.metrics, "queue_wait_s": 0.0, "compile_s": 0.0},
                metadata=jobs[i].metadata,
            )
            emit(i, "done", results[i])

        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def _run_pool(
        self,
        jobs: Sequence[CompileJob],
        keys: Sequence[str],
        pending: list[int],
        results: list[JobResult | None],
        workers: int,
        timeout: float | None,
        budget: int,
        job_deadline: float | None,
        batch_dl: Deadline | None,
        plan: FaultPlan | None,
        emit: Callable[..., None] = None,  # type: ignore[assignment]
    ) -> None:
        """Dispatch ``pending`` job indices across the warm worker pool.

        Jobs go out in chunks to idle workers; per-job budgets are
        measured from the ``start`` events workers post on the pool's
        event channel, so queue wait never counts against a job's
        compute budget.  A dead worker is recycled alone: the job it was
        running is blamed (retried down the router fallback chain, up to
        ``budget`` extra attempts), its never-started chunk-mates are
        re-queued with their original router at no attempt cost, and
        every other warm worker keeps running.  A job abandoned on a
        hard timeout takes its worker with it — a hung process can never
        stall the batch or poison the pool.

        :meth:`close` may shut the pool down from another thread while
        this loop runs (the gateway's shutdown path): the loop notices
        the closed pool, stops dispatching, and the mop-up below gives
        every unfinished job a terminal ``crashed`` status.
        """
        if emit is None:
            emit = _NO_EMIT
        pool = self._ensure_pool()
        service_closed = False
        attempts = {i: 0 for i in pending}
        # How many failures are *attributable* to job i itself (the
        # worker died while running it, or it shipped a corrupt
        # artefact).  A job that was collateral damage of a chunk-mate's
        # crash is retried with its original router — degrading it would
        # punish it for someone else's fault.
        blamed = {i: 0 for i in pending}
        last_error: dict[int, str] = {}
        chains = {i: fallback_chain(jobs[i].config.router) for i in pending}
        remaining = set(pending)
        trace = current_tracer().enabled

        queue: deque[int] = deque(sorted(pending))
        token_job: dict[str, int] = {}
        token_dispatch: dict[str, float] = {}
        started_at: dict[str, float] = {}
        active: dict[str, int] = {}  # token -> worker id

        def requeue_blamed(i: int, message: str) -> None:
            blamed[i] += 1
            last_error[i] = message
            if attempts[i] <= budget:
                self._counters["crash_retries"] += 1
                queue.append(i)
                emit(i, "retrying", message)
            # else: stays in remaining -> mop-up reports it crashed

        def requeue_collateral(tokens: list[str]) -> None:
            for token in tokens:
                if active.pop(token, None) is None:
                    continue
                i = token_job[token]
                if i not in remaining:
                    continue
                attempts[i] -= 1  # never ran: not a real attempt
                queue.append(i)

        while queue or active:
            if pool.closed:
                service_closed = True
                active.clear()
                queue.clear()
                break
            if batch_dl is not None and batch_dl.expired():
                # Batch deadline: abandon everything still in flight and
                # recycle the busy workers (an abandoned worker can't be
                # handed new jobs); the mop-up below marks every
                # remaining job timeout.
                for wid in set(active.values()):
                    pool.discard_worker(wid)
                active.clear()
                queue.clear()
                break
            if queue:
                try:
                    busy = len(set(active.values()))
                    idle = pool.idle_workers()
                    want = min(workers, busy + len(queue))
                    if busy + len(idle) < want:
                        with trace_span(
                            "pool.spawn", pass_="pool",
                            n=want - busy - len(idle),
                        ):
                            pool.ensure(want)
                        idle = pool.idle_workers()
                    for wid in idle:
                        if not queue or busy >= workers:
                            break
                        chunk = self._build_chunk(
                            queue, len(pool.alive_workers()), jobs, attempts,
                            blamed, chains, job_deadline, batch_dl, plan,
                            token_job, token_dispatch,
                        )
                        with trace_span(
                            "pool.dispatch", pass_="pool",
                            worker=wid, jobs=len(chunk),
                        ):
                            pool.submit_chunk(wid, chunk, trace)
                        for token, _, _ in chunk:
                            active[token] = wid
                        busy += 1
                except (RuntimeError, KeyError, OSError):
                    # close() won the race mid-dispatch: the pool (or
                    # the worker we just picked) is gone.  Anything
                    # else is a real bug and must propagate.
                    if not pool.closed:
                        raise
                    service_closed = True
                    active.clear()
                    queue.clear()
                    break

            try:
                pool_events = pool.poll(_POLL_INTERVAL)
            except (RuntimeError, OSError, ValueError):
                if not pool.closed:
                    raise
                service_closed = True
                active.clear()
                queue.clear()
                break
            for evt in pool_events:
                kind = evt[0]
                if kind == "start":
                    started_at[evt[2]] = evt[3]
                    i = token_job.get(evt[2])
                    if i is not None and i in remaining:
                        emit(i, "started")
                elif kind == "done":
                    _, wid, token, outcome = evt
                    i = token_job.get(token)
                    if i is None or token not in active:
                        continue  # stale (job already timed out)
                    del active[token]
                    if i not in remaining:
                        continue
                    problem = self._artifact_problem(outcome)
                    if problem is not None:
                        # A corrupt artefact is a worker malfunction
                        # attributable to this job: treat like a crash
                        # (retry down the chain, never cache).
                        self._counters["corrupt_artifacts"] += 1
                        requeue_blamed(i, f"corrupt artifact: {problem}")
                        continue
                    results[i] = self._finish(
                        jobs[i], keys[i], outcome,
                        token_dispatch[token], attempts[i],
                    )
                    remaining.discard(i)
                    emit(i, "done", results[i])
                elif kind == "exit":
                    _, wid, exitcode, current, never_started = evt
                    if current is None and never_started:
                        # The start event was lost with the worker;
                        # chunks run in order, so the head of its queue
                        # is the job that was (about to be) running.
                        current = never_started[0]
                        never_started = never_started[1:]
                    if current is not None and active.pop(
                        current, None
                    ) is not None:
                        i = token_job[current]
                        if i in remaining:
                            requeue_blamed(
                                i,
                                "worker process crashed "
                                f"(exit code {exitcode})",
                            )
                    requeue_collateral(list(never_started))

            # Hard compute budgets, measured from worker start.
            now = time.monotonic()
            for token, wid in list(active.items()):
                i = token_job[token]
                job_timeout = self._job_timeout(jobs[i], timeout)
                started = started_at.get(token)
                if (
                    job_timeout is None
                    or started is None
                    or now - started <= job_timeout
                ):
                    continue
                # Budget exhausted.  The worker cannot be interrupted:
                # abandon the job and recycle that one worker; its
                # unstarted chunk-mates go back in the queue for free.
                _, never_started = pool.discard_worker(wid)
                del active[token]
                self._counters["timeouts"] += 1
                results[i] = self._timeout_result(
                    jobs[i], keys[i], job_timeout, attempts[i]
                )
                remaining.discard(i)
                emit(i, "done", results[i])
                requeue_collateral(list(never_started))

        for i in sorted(remaining):
            if batch_dl is not None and batch_dl.expired():
                self._counters["timeouts"] += 1
                results[i] = self._timeout_result(
                    jobs[i], keys[i], None, max(attempts[i], 1),
                    reason="batch deadline expired",
                )
                emit(i, "done", results[i])
                continue
            self._counters["crash_failures"] += 1
            if service_closed:
                message = "service was closed while the batch was running"
            else:
                message = last_error.get(
                    i, f"worker process crashed ({attempts[i]} attempts)"
                )
            results[i] = JobResult(
                job_id=jobs[i].job_id,
                key=keys[i],
                status="crashed",
                error=message,
                attempts=attempts[i],
                metadata=jobs[i].metadata,
            )
            emit(i, "done", results[i])

    def _build_chunk(
        self,
        queue: deque,
        n_workers: int,
        jobs: Sequence[CompileJob],
        attempts: dict[int, int],
        blamed: dict[int, int],
        chains: dict[int, tuple[str, ...]],
        job_deadline: float | None,
        batch_dl: Deadline | None,
        plan: FaultPlan | None,
        token_job: dict[str, int],
        token_dispatch: dict[str, float],
    ) -> list[tuple[str, dict, float]]:
        """Pop the next dispatch chunk off ``queue`` and build payloads.

        Chunk size adapts to the backlog — roughly a quarter of a fair
        per-worker share, capped at ``_MAX_CHUNK`` — so IPC round-trips
        are amortized early in a large batch while the tail still load
        balances one job at a time.
        """
        share = -(-len(queue) // max(1, n_workers * 4))
        size = max(1, min(_MAX_CHUNK, share, len(queue)))
        chunk: list[tuple[str, dict, float]] = []
        for _ in range(size):
            i = queue.popleft()
            attempts[i] += 1
            chain = chains[i]
            # Walk the fallback chain one step per *attributed*
            # failure; un-blamed retries keep the requested router.
            router = chain[min(blamed[i], len(chain) - 1)]
            override = router if router != chain[0] else None
            if override is not None:
                self._counters["fallback_retries"] += 1
            token = f"{i}:{attempts[i]}"
            token_job[token] = i
            dispatch_mono = time.monotonic()
            token_dispatch[token] = dispatch_mono
            payload = self._augment(
                jobs[i].payload(),
                deadline=self._effective_deadline(jobs[i], job_deadline),
                batch_deadline=batch_dl, plan=plan,
                router_override=override,
            )
            chunk.append((token, payload, dispatch_mono))
        return chunk

    @staticmethod
    def _artifact_problem(outcome: dict) -> str | None:
        if outcome.get("status") not in ("ok", "degraded"):
            return None
        return validate_artifact(outcome.get("artifact"))

    def _augment(
        self,
        payload: dict,
        *,
        deadline: float | None,
        batch_deadline: Deadline | None,
        plan: FaultPlan | None,
        router_override: str | None = None,
    ) -> dict:
        """Attach the resilience and stage-cache keys to a worker payload.

        With no plan, no deadline and no override the payload is
        returned untouched apart from ``stage_cache_dir`` (a pure cache
        hint that never influences artefact bytes) — the clean-path
        artefacts stay stable.
        """
        if plan is not None:
            payload["faults"] = plan.to_dict()
        elif (
            self.stage_cache
            and self.cache is not None
            and self.cache.directory is not None
        ):
            payload["stage_cache_dir"] = str(self.cache.directory)
        if deadline is not None:
            payload["deadline_s"] = deadline
        if batch_deadline is not None:
            payload["batch_deadline"] = batch_deadline.to_dict()
        if router_override is not None:
            payload["router_override"] = router_override
        return payload

    def _job_timeout(
        self, job: CompileJob, batch_timeout: float | None
    ) -> float | None:
        if job.timeout is not None:
            return job.timeout
        if batch_timeout is not None:
            return batch_timeout
        return self.default_timeout

    @staticmethod
    def _effective_deadline(
        job: CompileJob, batch_deadline: float | None
    ) -> float | None:
        """A job's own cooperative deadline beats the batch-wide one
        (the gateway threads per-job SLO remainders through here)."""
        return job.deadline if job.deadline is not None else batch_deadline

    def _timeout_result(
        self,
        job: CompileJob,
        key: str,
        job_timeout: float | None,
        attempts: int,
        *,
        reason: str | None = None,
    ) -> JobResult:
        message = reason or (
            f"exceeded the {job_timeout}s compute budget"
        )
        return JobResult(
            job_id=job.job_id,
            key=key,
            status="timeout",
            error=message,
            attempts=attempts,
            metadata=job.metadata,
        )

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------

    def _try_cache(self, job: CompileJob, key: str) -> JobResult | None:
        if self.cache is None:
            return None
        t0 = time.perf_counter()
        with trace_span("cache.lookup", pass_="cache", job_id=job.job_id) as sp:
            artifact, tier = self.cache.lookup(key)
            if sp.enabled:
                sp.set(tier=tier or "miss")
        if artifact is None:
            return None
        self._counters["cache_hits"] += 1
        metrics = {
            "queue_wait_s": 0.0,
            "compile_s": 0.0,
            "total_s": round(time.perf_counter() - t0, 6),
        }
        metrics.update(artifact_metrics(artifact))
        return JobResult(
            job_id=job.job_id,
            key=key,
            status="ok",
            cache_hit=tier,
            artifact=artifact,
            metrics=metrics,
            metadata=job.metadata,
        )

    def _finish(
        self,
        job: CompileJob,
        key: str,
        outcome: dict,
        dispatch_mono: float,
        attempts: int,
    ) -> JobResult:
        # Both readings come from the system-wide monotonic clock (the
        # dispatch one crossed the process boundary as a shared epoch),
        # so the difference is non-negative by construction — no clamp,
        # which would silently turn a clock bug into a zero wait.
        queue_wait = outcome.get("started_mono", dispatch_mono) - dispatch_mono
        compile_s = outcome.get("compile_seconds", 0.0)
        stage_counters = outcome.get("stage_counters")
        if stage_counters and self.cache is not None:
            self.cache.merge_stage_counters(stage_counters)
        spans = outcome.get("spans")
        if spans:
            tracer = current_tracer()
            tracer.absorb(spans)
            for name, value in outcome.get("trace_counters", {}).items():
                tracer.counter(name, value)
        status = outcome["status"]
        if status not in ("ok", "degraded"):
            if status == "timeout":
                self._counters["timeouts"] += 1
            else:
                self._counters["errors"] += 1
            return JobResult(
                job_id=job.job_id,
                key=key,
                status=status,
                error=outcome.get("error", "unknown failure"),
                attempts=attempts,
                metrics={
                    "queue_wait_s": round(queue_wait, 6),
                    "compile_s": round(compile_s, 6),
                },
                metadata=job.metadata,
            )
        artifact = outcome["artifact"]
        problem = validate_artifact(artifact)
        if problem is not None:
            # In-process path (the pool path screens before _finish):
            # a corrupt artefact must never reach the cache or caller.
            self._counters["corrupt_artifacts"] += 1
            self._counters["errors"] += 1
            return JobResult(
                job_id=job.job_id,
                key=key,
                status="crashed",
                error=f"corrupt artifact: {problem}",
                attempts=attempts,
                metrics={
                    "queue_wait_s": round(queue_wait, 6),
                    "compile_s": round(compile_s, 6),
                },
                metadata=job.metadata,
            )
        if status == "ok":
            if self.cache is not None:
                self.cache.put(key, artifact)
        else:
            # Degraded artefacts answer under a *different* configuration
            # than the key commits to — caching one would serve fallback
            # output to every future clean request.
            self._counters["degraded"] += 1
        self._counters["fresh_compiles"] += 1
        self._compile_seconds += compile_s
        self._queue_wait_seconds += queue_wait
        metrics = {
            "queue_wait_s": round(queue_wait, 6),
            "compile_s": round(compile_s, 6),
            "total_s": round(queue_wait + compile_s, 6),
        }
        metrics.update(artifact_metrics(artifact))
        return JobResult(
            job_id=job.job_id,
            key=key,
            status=status,
            artifact=artifact,
            attempts=attempts,
            metrics=metrics,
            metadata=job.metadata,
        )

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Counter snapshot: service, cache tier, and warm-pool counters."""
        service = {
            key: self._counters[key]
            for key in (
                "jobs_submitted", "batches", "cache_hits",
                "batch_dedup_hits", "fresh_compiles", "errors",
                "timeouts", "crash_retries", "crash_failures",
                "degraded", "corrupt_artifacts", "fallback_retries",
                "pools_created", "pool_reuse_batches",
            )
        }
        service["compile_seconds"] = round(self._compile_seconds, 6)
        service["queue_wait_seconds"] = round(self._queue_wait_seconds, 6)
        lookups = service["cache_hits"] + service["fresh_compiles"]
        service["hit_rate"] = (
            round(service["cache_hits"] / lookups, 4) if lookups else 0.0
        )
        pool_stats = self._pool.stats() if self._pool is not None else None
        # The headline warm-pool numbers ride on the service dict too,
        # so reports that only keep the service section still show them.
        service["worker_spawns"] = (
            pool_stats["worker_spawns"] if pool_stats else 0
        )
        service["pool_reuse_hits"] = (
            pool_stats["pool_reuse_hits"] if pool_stats else 0
        )
        cache_stats = self.cache.stats() if self.cache is not None else None
        # Headline stage-cache numbers ride on the service dict too, so
        # reports that only keep the service section still show them.
        for name in ("stage_hits", "stage_misses", "stage_hit_rate"):
            service[name] = cache_stats[name] if cache_stats else 0
        # In-process native-kernel activity (worker processes report
        # their own counters through the pool section).
        from ..mapping.routing._astar_native import kernel_stats

        return {
            "service": service,
            "cache": cache_stats,
            "pool": pool_stats,
            "kernel": kernel_stats(),
        }

    def trace_report(self, tracer) -> dict:
        """Per-job span trees plus service/cache/pool counters.

        Args:
            tracer: The :class:`~repro.obs.Tracer` that was current
                while jobs ran (worker spans were absorbed into it).

        Returns:
            A JSON-able report: one entry per ``job`` root span with its
            total seconds and per-pass time breakdown (children matched
            by pid/tid and time containment), the tracer's counter
            totals, and :meth:`stats`.
        """
        events = tracer.finished()
        roots = [
            e for e in events if e["name"] == "job" and e.get("depth", 0) == 0
        ]
        job_rows = []
        for root in roots:
            t0, t1 = root["ts"], root["ts"] + root["dur"]
            passes: dict[str, float] = {}
            for e in events:
                if e is root or e["pid"] != root["pid"] \
                        or e["tid"] != root["tid"]:
                    continue
                key = e.get("pass") or e["name"]
                # Leaf passes only: "pipeline"/"service" wrappers would
                # double-count the stages nested inside them.
                if key in ("pipeline", "service"):
                    continue
                if t0 <= e["ts"] and e["ts"] + e["dur"] <= t1 + 1e-9:
                    passes[key] = round(passes.get(key, 0.0) + e["dur"], 6)
            job_rows.append(
                {
                    "job_id": root["args"].get("job_id", ""),
                    "total_s": round(root["dur"], 6),
                    "passes": passes,
                }
            )
        return {
            "schema": 1,
            "jobs": job_rows,
            "counters": tracer.counters(),
            "stats": self.stats(),
        }
