"""Serialisation of :class:`~repro.core.pipeline.CompilationResult`.

An *artefact* is the JSON-able dict form of one compilation result: the
thing the compile cache stores and the batch workers ship back to the
parent process.  Circuits are stored as OpenQASM text (via
:func:`repro.qasm.to_openqasm`, whose output :func:`repro.qasm.parse_qasm`
accepts in full), the schedule through the snapshot serialisers
(:func:`repro.core.snapshot.schedule_to_obj`), and placements as the
paper's program->physical integer arrays.  The artefact embeds the
device description, so :func:`artifact_to_result` rebuilds a complete,
standalone :class:`CompilationResult` with no other context.

Byte-stability contract: serialising a fresh compile of the same
(circuit, device, config) always yields the same artefact bytes under
:func:`repro.service.keys.canonical_json` — the cache-correctness tests
assert this over the whole perf corpus.
"""

from __future__ import annotations

from typing import Mapping

from ..core.pipeline import CompilationResult, PassConfig
from ..core.snapshot import (
    placement_from_obj,
    placement_to_obj,
    schedule_from_obj,
    schedule_to_obj,
)
from ..devices.device import Device
from ..mapping.routing import RoutingResult
from ..qasm import parse_qasm, to_openqasm
from .keys import ARTIFACT_SCHEMA

__all__ = [
    "result_to_artifact",
    "artifact_to_result",
    "artifact_metrics",
    "validate_artifact",
]


def result_to_artifact(
    result: CompilationResult, *, config: PassConfig | None = None
) -> dict:
    """Serialise ``result`` into a JSON-able artefact dict.

    Args:
        result: A full compilation result.
        config: The pass configuration that produced it, recorded for
            provenance (the cache key already commits to it).
    """
    from .. import __version__

    artifact: dict = {
        "schema": ARTIFACT_SCHEMA,
        "version": __version__,
        "original_qasm": to_openqasm(result.original),
        "routed_qasm": to_openqasm(result.routed.circuit),
        "native_qasm": to_openqasm(result.native),
        "schedule": (
            schedule_to_obj(result.schedule)
            if result.schedule is not None
            else None
        ),
        "routing": {
            "router": result.routed.router,
            "added_swaps": result.routed.added_swaps,
            "initial": placement_to_obj(result.routed.initial),
            "final": placement_to_obj(result.routed.final),
        },
        "flips": result.flips,
        "placer": result.placer,
        "router": result.router,
        "device": result.device.to_dict(),
        "metrics": {
            "original_gates": result.original.size(),
            "original_depth": result.original.depth(),
            "native_gates": result.native.size(),
            "native_depth": result.native.depth(),
            "added_swaps": result.added_swaps,
            "gate_overhead": result.gate_overhead,
            "depth_ratio": result.depth_ratio,
            "flips": result.flips,
            "latency": result.latency,
            "latency_ns": result.latency_ns,
        },
    }
    if config is not None:
        artifact["config"] = config.to_dict()
    if result.original.name:
        artifact["circuit_name"] = result.original.name
    # Only present on degraded compiles (router fallback), so artefacts of
    # clean compiles keep their pre-resilience byte layout.
    resilience = result.metadata.get("resilience")
    if resilience:
        artifact["resilience"] = resilience
    return artifact


def artifact_to_result(artifact: Mapping) -> CompilationResult:
    """Rebuild a standalone :class:`CompilationResult` from an artefact.

    Raises:
        ValueError: when the artefact schema is from a different,
            incompatible layout version.
    """
    if artifact.get("schema") != ARTIFACT_SCHEMA:
        raise ValueError(
            f"artifact schema {artifact.get('schema')!r} is not supported "
            f"(expected {ARTIFACT_SCHEMA})"
        )
    device = Device.from_dict(artifact["device"])
    original = parse_qasm(artifact["original_qasm"])
    if "circuit_name" in artifact:
        original.name = artifact["circuit_name"]
    routing = artifact["routing"]
    routed = RoutingResult(
        circuit=parse_qasm(artifact["routed_qasm"]),
        initial=placement_from_obj(routing["initial"]),
        final=placement_from_obj(routing["final"]),
        added_swaps=routing["added_swaps"],
        router=routing["router"],
    )
    schedule = (
        schedule_from_obj(artifact["schedule"])
        if artifact.get("schedule") is not None
        else None
    )
    metadata: dict = {"from_artifact": True}
    if artifact.get("resilience"):
        metadata["resilience"] = dict(artifact["resilience"])
    return CompilationResult(
        original=original,
        device=device,
        routed=routed,
        native=parse_qasm(artifact["native_qasm"]),
        schedule=schedule,
        flips=artifact["flips"],
        placer=artifact["placer"],
        router=artifact["router"],
        metadata=metadata,
    )


def artifact_metrics(artifact: Mapping) -> dict:
    """The pre-computed headline metrics stored in an artefact."""
    return dict(artifact.get("metrics", {}))


#: Keys every artefact must carry, with their expected container types.
_REQUIRED_FIELDS = (
    ("original_qasm", str),
    ("routed_qasm", str),
    ("native_qasm", str),
    ("routing", Mapping),
    ("metrics", Mapping),
    ("device", Mapping),
)


def validate_artifact(artifact) -> str | None:
    """Structural check of an artefact shipped back by a worker.

    Returns ``None`` when the artefact looks sound, else a one-line
    description of the first problem.  The batch engine runs this on
    every worker-produced artefact before caching or reporting it, so a
    worker that ships garbage (bit-flips, a ``corrupt`` fault, a
    truncated pickle) is treated like a crash instead of poisoning the
    cache.  Cheap by design: structure and headers only, no re-parse of
    the QASM bodies.
    """
    if not isinstance(artifact, Mapping):
        return f"artifact is {type(artifact).__name__}, not a mapping"
    if artifact.get("schema") != ARTIFACT_SCHEMA:
        return (
            f"artifact schema {artifact.get('schema')!r} is not "
            f"{ARTIFACT_SCHEMA}"
        )
    for name, kind in _REQUIRED_FIELDS:
        value = artifact.get(name)
        if not isinstance(value, kind):
            return f"artifact field {name!r} is missing or mistyped"
    for name in ("original_qasm", "routed_qasm", "native_qasm"):
        if "OPENQASM" not in artifact[name]:
            return f"artifact field {name!r} is not OpenQASM text"
    return None
