"""Serialisation of :class:`~repro.core.pipeline.CompilationResult`.

An *artefact* is the JSON-able dict form of one compilation result: the
thing the compile cache stores and the batch workers ship back to the
parent process.  Circuits are stored as OpenQASM text (via
:func:`repro.qasm.to_openqasm`, whose output :func:`repro.qasm.parse_qasm`
accepts in full), the schedule through the snapshot serialisers
(:func:`repro.core.snapshot.schedule_to_obj`), and placements as the
paper's program->physical integer arrays.  The artefact embeds the
device description, so :func:`artifact_to_result` rebuilds a complete,
standalone :class:`CompilationResult` with no other context.

Byte-stability contract: serialising a fresh compile of the same
(circuit, device, config) always yields the same artefact bytes under
:func:`repro.service.keys.canonical_json` — the cache-correctness tests
assert this over the whole perf corpus.
"""

from __future__ import annotations

from typing import Mapping

from ..core.pipeline import CompilationResult, PassConfig
from ..core.snapshot import schedule_from_obj, schedule_to_obj
from ..devices.device import Device
from ..mapping.placement import Placement
from ..mapping.routing import RoutingResult
from ..qasm import parse_qasm, to_openqasm
from .keys import ARTIFACT_SCHEMA

__all__ = ["result_to_artifact", "artifact_to_result", "artifact_metrics"]


def _placement_to_obj(placement: Placement) -> dict:
    return {
        "prog_to_phys": placement.prog_to_phys(),
        "num_program": placement.num_program,
    }


def _placement_from_obj(obj: Mapping) -> Placement:
    return Placement(obj["prog_to_phys"], obj["num_program"])


def result_to_artifact(
    result: CompilationResult, *, config: PassConfig | None = None
) -> dict:
    """Serialise ``result`` into a JSON-able artefact dict.

    Args:
        result: A full compilation result.
        config: The pass configuration that produced it, recorded for
            provenance (the cache key already commits to it).
    """
    from .. import __version__

    artifact: dict = {
        "schema": ARTIFACT_SCHEMA,
        "version": __version__,
        "original_qasm": to_openqasm(result.original),
        "routed_qasm": to_openqasm(result.routed.circuit),
        "native_qasm": to_openqasm(result.native),
        "schedule": (
            schedule_to_obj(result.schedule)
            if result.schedule is not None
            else None
        ),
        "routing": {
            "router": result.routed.router,
            "added_swaps": result.routed.added_swaps,
            "initial": _placement_to_obj(result.routed.initial),
            "final": _placement_to_obj(result.routed.final),
        },
        "flips": result.flips,
        "placer": result.placer,
        "router": result.router,
        "device": result.device.to_dict(),
        "metrics": {
            "original_gates": result.original.size(),
            "original_depth": result.original.depth(),
            "native_gates": result.native.size(),
            "native_depth": result.native.depth(),
            "added_swaps": result.added_swaps,
            "gate_overhead": result.gate_overhead,
            "depth_ratio": result.depth_ratio,
            "flips": result.flips,
            "latency": result.latency,
            "latency_ns": result.latency_ns,
        },
    }
    if config is not None:
        artifact["config"] = config.to_dict()
    if result.original.name:
        artifact["circuit_name"] = result.original.name
    return artifact


def artifact_to_result(artifact: Mapping) -> CompilationResult:
    """Rebuild a standalone :class:`CompilationResult` from an artefact.

    Raises:
        ValueError: when the artefact schema is from a different,
            incompatible layout version.
    """
    if artifact.get("schema") != ARTIFACT_SCHEMA:
        raise ValueError(
            f"artifact schema {artifact.get('schema')!r} is not supported "
            f"(expected {ARTIFACT_SCHEMA})"
        )
    device = Device.from_dict(artifact["device"])
    original = parse_qasm(artifact["original_qasm"])
    if "circuit_name" in artifact:
        original.name = artifact["circuit_name"]
    routing = artifact["routing"]
    routed = RoutingResult(
        circuit=parse_qasm(artifact["routed_qasm"]),
        initial=_placement_from_obj(routing["initial"]),
        final=_placement_from_obj(routing["final"]),
        added_swaps=routing["added_swaps"],
        router=routing["router"],
    )
    schedule = (
        schedule_from_obj(artifact["schedule"])
        if artifact.get("schedule") is not None
        else None
    )
    return CompilationResult(
        original=original,
        device=device,
        routed=routed,
        native=parse_qasm(artifact["native_qasm"]),
        schedule=schedule,
        flips=artifact["flips"],
        placer=artifact["placer"],
        router=artifact["router"],
        metadata={"from_artifact": True},
    )


def artifact_metrics(artifact: Mapping) -> dict:
    """The pre-computed headline metrics stored in an artefact."""
    return dict(artifact.get("metrics", {}))
