"""Persistent warm worker pool for the compile service.

The batch engine used to build a fresh ``ProcessPoolExecutor`` (plus a
``multiprocessing.Manager`` server process for start reports) for every
batch, every retry round, and every isolation round — which made cold
parallel throughput *slower* than serial (0.91x on the 40-case corpus).
:class:`WarmPool` replaces all of that with workers that live as long as
the :class:`~repro.service.engine.CompileService` that owns them:

* **Spawn once, reuse forever.**  Workers are forked on first use and
  survive across batches and retry rounds.  Each runs an initializer
  that imports the device library and resolves (compiles or dlopens)
  the native A* kernel exactly once — jobs never pay preload cost.
* **Chunked dispatch.**  The engine hands each idle worker a chunk of
  jobs in one IPC message; the worker streams back one ``start`` and
  one ``done`` event per job, so per-job budgets stay measured from
  worker start while task-queue round-trips are amortized.
* **Lightweight event channel.**  Every worker owns a
  ``multiprocessing.SimpleQueue`` back to the parent — synchronous pipe
  writes with no feeder thread, so a worker that ``os._exit``\\ s right
  after an event can never lose it (the Manager dict this replaces was
  a whole extra server process per batch).
* **Recycle only the broken worker.**  A crash or an abandoned hang
  kills exactly one worker; survivors keep their preloaded state.  The
  pool reports which job the dead worker was running (``current``) and
  which chunk-mates never started, so the engine's blame-based retry
  taxonomy is preserved without isolation rounds.

Counters (surfaced through ``CompileService.stats()`` and the service
benchmark summary): ``worker_spawns``, ``worker_recycles``,
``worker_crashes``, ``pool_reuse_hits`` (jobs dispatched to an
already-used warm worker), ``jobs_dispatched``, ``chunks_dispatched``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import weakref
from collections import Counter, deque
from multiprocessing.connection import wait as _connection_wait

__all__ = ["WarmPool"]

#: Task sentinels on a worker's task queue.
_TASK_CHUNK = "chunk"
_TASK_STATS = "stats"
_TASK_STOP = "stop"


def _pool_context():
    """Prefer fork: cheap spawn, and preloaded state is inherited."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _worker_main(worker_id: int, task_queue, out_queue, preload_native):
    """Worker loop: preload once, then compile chunks until told to stop.

    The ``ready`` event carries the preload report; each job produces a
    ``start`` event (posted *before* the compile, over a feederless
    SimpleQueue, so it survives a crash inside the compile) and a
    ``done`` event with the :func:`~repro.service.engine.run_payload`
    outcome.
    """
    from ..mapping.routing import _astar_native

    builds_before = _astar_native.kernel_stats()["build_calls"]
    t0 = time.perf_counter()
    native_preloaded = False
    if preload_native and not os.environ.get("REPRO_NO_NATIVE"):
        native_preloaded = _astar_native.warm_kernel()
    # Pull the heavy imports (device library, pipeline, parser) into
    # this process now, not on the first job's critical path.
    from ..devices import device as _device  # noqa: F401
    from .engine import run_payload

    stats = _astar_native.kernel_stats()
    jobs_run = 0

    def _report():
        return {
            "worker_id": worker_id,
            "pid": os.getpid(),
            "native_preloaded": native_preloaded,
            "native_available": stats["available"],
            "kernel_builds": stats["build_calls"] - builds_before,
            "native_layers": stats["native_layers"],
            "python_layers": stats["python_layers"],
            "batch_calls": stats["batch_calls"],
            "sabre_native_calls": stats["sabre_native_calls"],
            "sabre_python_calls": stats["sabre_python_calls"],
            "preload_s": round(time.perf_counter() - t0, 6),
            "jobs_run": jobs_run,
        }

    out_queue.put(("ready", worker_id, _report()))
    while True:
        task = task_queue.get()
        kind = task[0]
        if kind == _TASK_STOP:
            break
        if kind == _TASK_STATS:
            stats = _astar_native.kernel_stats()
            out_queue.put(("stats", worker_id, _report()))
            continue
        # ("chunk", [(token, payload, dispatch_mono), ...], trace)
        _, items, trace = task
        for token, payload, dispatch_mono in items:
            out_queue.put(("start", worker_id, token, time.monotonic()))
            outcome = run_payload(
                payload, dispatch_mono=dispatch_mono, trace=trace
            )
            jobs_run += 1
            out_queue.put(("done", worker_id, token, outcome))


class _Worker:
    """Parent-side handle of one pool worker."""

    __slots__ = (
        "wid", "proc", "tasks", "events", "outstanding", "current",
        "jobs_done", "chunks", "ready_info", "stats_info",
    )

    def __init__(self, wid, proc, tasks, events):
        self.wid = wid
        self.proc = proc
        self.tasks = tasks
        self.events = events
        #: Tokens dispatched but not yet ``done``, in execution order.
        self.outstanding: deque = deque()
        #: The token that reported ``start`` but not yet ``done``.
        self.current: str | None = None
        self.jobs_done = 0
        self.chunks = 0
        self.ready_info: dict | None = None
        self.stats_info: dict | None = None

    @property
    def idle(self) -> bool:
        return not self.outstanding and self.proc.is_alive()

    def close_channels(self) -> None:
        for q in (self.tasks, self.events):
            try:
                q.close()
            except (OSError, AttributeError):  # pragma: no cover
                pass


def _terminate_workers(workers: dict) -> None:
    """Finalizer target: best-effort teardown of every live worker."""
    for worker in list(workers.values()):
        try:
            if worker.proc.is_alive():
                if worker.idle:
                    worker.tasks.put((_TASK_STOP,))
                else:
                    worker.proc.terminate()
        except (OSError, ValueError):  # pragma: no cover
            pass
    deadline = time.monotonic() + 2.0
    for worker in list(workers.values()):
        try:
            worker.proc.join(max(0.0, deadline - time.monotonic()))
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(0.5)
            worker.close_channels()
        except (OSError, ValueError, AssertionError):  # pragma: no cover
            pass
    workers.clear()


class WarmPool:
    """Long-lived compile workers shared across batches.

    Args:
        preload_native: Have each worker resolve the native A* kernel in
            its initializer (skipped automatically when
            ``REPRO_NO_NATIVE`` is set).
        context: A ``multiprocessing`` context override (tests); default
            fork where available, else spawn.

    The pool has no hard size cap of its own — :meth:`ensure` grows it
    to whatever parallelism the current batch asks for, and idle warm
    workers stick around for the next batch.
    """

    def __init__(self, *, preload_native: bool = True, context=None) -> None:
        self._ctx = context or _pool_context()
        self._preload_native = preload_native
        self._workers: dict[int, _Worker] = {}
        self._next_id = 0
        self.counters: Counter = Counter()
        self._closed = False
        # Finalizer (not __del__): tears the workers down when the pool
        # is garbage collected or the interpreter exits, so unclosed
        # services never leak processes.
        self._finalizer = weakref.finalize(
            self, _terminate_workers, self._workers
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def ensure(self, n: int) -> int:
        """Grow the pool to ``n`` live workers; returns how many spawned."""
        if self._closed:
            raise RuntimeError("pool is closed")
        spawned = 0
        while len(self.alive_workers()) < n:
            wid = self._next_id
            self._next_id += 1
            tasks = self._ctx.Queue()
            events = self._ctx.SimpleQueue()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(wid, tasks, events, self._preload_native),
                name=f"repro-pool-{wid}",
                daemon=True,
            )
            proc.start()
            self._workers[wid] = _Worker(wid, proc, tasks, events)
            self.counters["worker_spawns"] += 1
            spawned += 1
        return spawned

    def shutdown(self) -> None:
        """Stop every worker and close the channels.  Idempotent."""
        self._closed = True
        self._finalizer()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def alive_workers(self) -> list[int]:
        return [
            w.wid for w in self._workers.values() if w.proc.is_alive()
        ]

    def idle_workers(self) -> list[int]:
        """Live workers with nothing outstanding, oldest first."""
        return [w.wid for w in self._workers.values() if w.idle]

    def size(self) -> int:
        return len(self.alive_workers())

    def stats(self) -> dict:
        data = dict(self.counters)
        for key in (
            "worker_spawns", "worker_recycles", "worker_crashes",
            "pool_reuse_hits", "jobs_dispatched", "chunks_dispatched",
        ):
            data.setdefault(key, 0)
        data["workers_alive"] = len(self.alive_workers())
        return data

    # ------------------------------------------------------------------
    # Dispatch and events
    # ------------------------------------------------------------------

    def submit_chunk(self, wid: int, items, trace: bool) -> None:
        """Send ``[(token, payload, dispatch_mono), ...]`` to worker ``wid``.

        The task queue has a parent-side feeder thread, so this never
        blocks even for chunks larger than the pipe buffer.
        """
        worker = self._workers[wid]
        if worker.jobs_done or worker.chunks:
            self.counters["pool_reuse_hits"] += len(items)
        worker.chunks += 1
        self.counters["chunks_dispatched"] += 1
        self.counters["jobs_dispatched"] += len(items)
        worker.outstanding.extend(token for token, _, _ in items)
        worker.tasks.put((_TASK_CHUNK, list(items), trace))

    def poll(self, timeout: float) -> list[tuple]:
        """Wait up to ``timeout`` for events; return everything pending.

        Returns worker events (``ready`` / ``stats`` / ``start`` /
        ``done``) plus synthesized ``("exit", wid, exitcode, current,
        pending_tokens)`` events for workers found dead — emitted once,
        after their event channel is fully drained, so a ``done`` sent
        just before death is never misread as a crash.
        """
        waitables = []
        # Copy: shutdown() (possibly from another thread — the engine's
        # close() is documented concurrency-safe) clears the dict and
        # closes channels while we iterate.
        for worker in list(self._workers.values()):
            try:
                waitables.append(worker.events._reader)
                waitables.append(worker.proc.sentinel)
            except (OSError, ValueError):  # torn down under us
                continue
        if not waitables:
            time.sleep(min(timeout, 0.005))
            return []
        try:
            _connection_wait(waitables, timeout)
        except OSError:  # a channel died between listing and waiting
            pass
        events: list[tuple] = []
        for worker in list(self._workers.values()):
            events.extend(self._drain(worker))
            if not worker.proc.is_alive():
                events.extend(self._drain(worker))
                current = worker.current
                pending = [
                    t for t in worker.outstanding if t != current
                ]
                self.counters["worker_crashes"] += 1
                events.append(
                    ("exit", worker.wid, worker.proc.exitcode,
                     current, pending)
                )
                self._forget(worker)
        return events

    def _drain(self, worker: _Worker) -> list[tuple]:
        events = []
        try:
            while worker.events._reader.poll():
                evt = self._note(worker, worker.events.get())
                if evt is not None:
                    events.append(evt)
        except (OSError, EOFError):  # channel torn down under us
            pass
        return events

    def _note(self, worker: _Worker, evt: tuple) -> tuple | None:
        """Update worker bookkeeping for one event; None hides it."""
        kind = evt[0]
        if kind == "start":
            worker.current = evt[2]
        elif kind == "done":
            token = evt[2]
            if worker.current == token:
                worker.current = None
            try:
                worker.outstanding.remove(token)
            except ValueError:  # pragma: no cover — stale token
                pass
            worker.jobs_done += 1
        elif kind == "ready":
            worker.ready_info = evt[2]
        elif kind == "stats":
            worker.stats_info = evt[2]
        return evt

    # ------------------------------------------------------------------
    # Recycling
    # ------------------------------------------------------------------

    def discard_worker(self, wid: int) -> tuple[str | None, list[str]]:
        """Kill one worker (abandoned hang / timeout) and forget it.

        Returns ``(current, pending_tokens)``: the token the worker was
        running and the chunk-mates that never started — the engine
        re-queues the latter at no attempt cost.  Survivors are
        untouched; :meth:`ensure` replaces the lost capacity lazily.
        """
        worker = self._workers.get(wid)
        if worker is None:
            return None, []
        self._drain(worker)
        current = worker.current
        pending = [t for t in worker.outstanding if t != current]
        if worker.proc.is_alive():
            worker.proc.terminate()
            worker.proc.join(1.0)
            if worker.proc.is_alive():  # pragma: no cover
                worker.proc.kill()
                worker.proc.join(0.5)
        self.counters["worker_recycles"] += 1
        self._forget(worker)
        return current, pending

    def _forget(self, worker: _Worker) -> None:
        worker.close_channels()
        self._workers.pop(worker.wid, None)

    # ------------------------------------------------------------------
    # Warm-up and worker stats
    # ------------------------------------------------------------------

    def wait_ready(self, timeout: float = 60.0) -> list[dict]:
        """Block until every live worker reported ``ready``; the reports.

        Used by ``CompileService.prewarm`` so benchmarks can separate
        one-time pool start-up from steady-state dispatch cost.
        """
        deadline = time.monotonic() + timeout
        while any(
            w.ready_info is None
            for w in self._workers.values()
            if w.proc.is_alive()
        ):
            if time.monotonic() > deadline:
                break
            self.poll(0.05)
        return [
            w.ready_info
            for w in self._workers.values()
            if w.ready_info is not None
        ]

    def worker_stats(self, timeout: float = 10.0) -> list[dict]:
        """Ask every idle worker for its stats report and collect them."""
        asked = []
        for wid in self.idle_workers():
            worker = self._workers[wid]
            worker.stats_info = None
            worker.tasks.put((_TASK_STATS,))
            asked.append(wid)
        deadline = time.monotonic() + timeout
        while any(
            self._workers[wid].stats_info is None
            for wid in asked
            if wid in self._workers
        ):
            if time.monotonic() > deadline:
                break
            self.poll(0.05)
        return [
            self._workers[wid].stats_info
            for wid in asked
            if wid in self._workers
            and self._workers[wid].stats_info is not None
        ]
