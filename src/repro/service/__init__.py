"""The compilation service layer.

The paper's observation that "every device is (almost) equal before the
compiler" makes the mapper a *service*: one engine invoked over many
circuit/device pairs.  This package wraps the Fig. 2 pipeline
(:func:`repro.core.pipeline.compile_circuit`) in production plumbing:

* :mod:`repro.service.keys` — content-addressed cache keys over
  (canonical QASM, device description, pass config, library version);
* :mod:`repro.service.artifact` — JSON-able serialisation of
  :class:`~repro.core.pipeline.CompilationResult`;
* :mod:`repro.service.cache` — the two-tier (memory LRU + on-disk)
  :class:`CompileCache`;
* :mod:`repro.service.jobs` — the :class:`CompileJob` /
  :class:`JobResult` API;
* :mod:`repro.service.engine` — :class:`CompileService` with
  ``submit``, parallel ``submit_batch``, and ``stats``;
* :mod:`repro.service.pool` — the persistent :class:`WarmPool` of
  preloaded compile workers behind ``submit_batch``;
* :mod:`repro.service.gateway` — the async job gateway:
  :class:`AsyncCompileService` (``submit``/``await result``/event
  streams, priority queues, admission control) over a
  :class:`CompileService`;
* :mod:`repro.service.httpd` — the :class:`GatewayServer` HTTP/JSON
  front end behind the ``repro serve`` CLI command.

The ``repro batch`` / ``repro serve`` CLI commands and
:mod:`repro.perf.service_bench` build on this package; see
``docs/service.md`` for the cache-key scheme and ``docs/gateway.md``
for the job API and HTTP endpoints.
"""

from .artifact import artifact_to_result, result_to_artifact
from .cache import CompileCache
from .engine import CompileService
from .gateway import (
    PRIORITIES,
    AsyncCompileService,
    Draining,
    JobHandle,
    Overloaded,
)
from .httpd import GatewayServer
from .jobs import JOB_STATUSES, CompileJob, JobResult
from .keys import canonical_qasm, compute_key, device_fingerprint
from .pool import WarmPool

__all__ = [
    "AsyncCompileService",
    "CompileCache",
    "CompileJob",
    "CompileService",
    "Draining",
    "GatewayServer",
    "JOB_STATUSES",
    "JobHandle",
    "JobResult",
    "Overloaded",
    "PRIORITIES",
    "WarmPool",
    "artifact_to_result",
    "canonical_qasm",
    "compute_key",
    "device_fingerprint",
    "result_to_artifact",
]
