"""The compilation service layer.

The paper's observation that "every device is (almost) equal before the
compiler" makes the mapper a *service*: one engine invoked over many
circuit/device pairs.  This package wraps the Fig. 2 pipeline
(:func:`repro.core.pipeline.compile_circuit`) in production plumbing:

* :mod:`repro.service.keys` — content-addressed cache keys over
  (canonical QASM, device description, pass config, library version);
* :mod:`repro.service.artifact` — JSON-able serialisation of
  :class:`~repro.core.pipeline.CompilationResult`;
* :mod:`repro.service.cache` — the two-tier (memory LRU + on-disk)
  :class:`CompileCache`;
* :mod:`repro.service.jobs` — the :class:`CompileJob` /
  :class:`JobResult` API;
* :mod:`repro.service.engine` — :class:`CompileService` with
  ``submit``, parallel ``submit_batch``, and ``stats``;
* :mod:`repro.service.pool` — the persistent :class:`WarmPool` of
  preloaded compile workers behind ``submit_batch``.

The ``repro batch`` CLI command and
:mod:`repro.perf.service_bench` build on this package; see
``docs/service.md`` for the cache-key scheme and usage.
"""

from .artifact import artifact_to_result, result_to_artifact
from .cache import CompileCache
from .engine import CompileService
from .jobs import CompileJob, JobResult
from .keys import canonical_qasm, compute_key, device_fingerprint
from .pool import WarmPool

__all__ = [
    "CompileCache",
    "CompileJob",
    "CompileService",
    "JobResult",
    "WarmPool",
    "artifact_to_result",
    "canonical_qasm",
    "compute_key",
    "device_fingerprint",
    "result_to_artifact",
]
