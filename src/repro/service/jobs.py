"""The compile-service job API: :class:`CompileJob` and :class:`JobResult`.

A job is a fully self-contained compile request — canonical QASM text,
device description dict, and a :class:`~repro.core.pipeline.PassConfig`
— so it can be hashed for the cache, pickled to a worker process, or
written into a batch manifest without losing information.  A result
carries the artefact (see :mod:`repro.service.artifact`), a status, and
per-job metrics: queue wait, compile wall-clock, cache tier, and the
gate/depth deltas of the compilation.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field
from typing import Mapping

from ..core.circuit import Circuit
from ..core.pipeline import CompilationResult, PassConfig
from ..devices.device import Device
from ..qasm import QasmError
from .artifact import artifact_to_result
from .keys import canonical_qasm, compute_key, device_fingerprint

__all__ = ["CompileJob", "JOB_STATUSES", "JobResult"]

#: The terminal status taxonomy of a batch job (see :class:`JobResult`).
JOB_STATUSES = ("ok", "degraded", "timeout", "crashed", "invalid")


@dataclass
class CompileJob:
    """One compile request for the service.

    Attributes:
        qasm: Canonical OpenQASM text of the input circuit.
        device: Device description in ``Device.to_dict`` form.
        config: Pass configuration (hashable, serialisable).
        job_id: Caller-chosen identifier (auto-generated when empty);
            reported back on the matching :class:`JobResult`.
        timeout: Per-job wall-clock budget in seconds for batch runs
            (``None``: the service default).
        deadline: Per-job *cooperative* routing deadline in seconds —
            routers poll it and degrade through the fallback chain
            instead of being killed.  Overrides any batch-wide
            ``deadline`` for this job; the async gateway sets it to the
            remaining SLO budget at dispatch time.  Not part of the
            cache key (it changes when an answer arrives, not what the
            clean answer is).
        metadata: Free-form caller annotations, passed through to the
            result untouched.
    """

    qasm: str
    device: dict
    config: PassConfig = field(default_factory=PassConfig)
    job_id: str = ""
    timeout: float | None = None
    deadline: float | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.job_id:
            self.job_id = uuid.uuid4().hex[:12]

    @classmethod
    def create(
        cls,
        circuit: Circuit | str,
        device: Device | Mapping,
        config: PassConfig | Mapping | None = None,
        *,
        job_id: str = "",
        timeout: float | None = None,
        deadline: float | None = None,
        metadata: dict | None = None,
    ) -> "CompileJob":
        """Build a job from rich objects, normalising every field.

        Args:
            circuit: A :class:`Circuit` or OpenQASM text (canonicalised
                either way, so formatting never splits the cache).
            device: A :class:`Device` or its dict form.
            config: A :class:`PassConfig`, a dict of its fields, or
                ``None`` for the pipeline defaults.
        """
        if isinstance(config, PassConfig):
            cfg = config
        elif config is None:
            cfg = PassConfig()
        else:
            cfg = PassConfig.from_dict(config)
        try:
            qasm = canonical_qasm(circuit)
        except QasmError:
            # Keep the raw text: the compile itself will fail and report
            # the parse error as this job's JobResult instead of making
            # job construction throw.
            qasm = circuit
        return cls(
            qasm=qasm,
            device=(
                device.to_dict() if isinstance(device, Device) else dict(device)
            ),
            config=cfg,
            job_id=job_id,
            timeout=timeout,
            deadline=deadline,
            metadata=dict(metadata or {}),
        )

    def key(self) -> str:
        """The content-addressed cache key of this request."""
        return compute_key(self.qasm, self.device, self.config)

    def payload(self) -> dict:
        """Picklable, JSON-able form shipped to worker processes."""
        return {
            "qasm": self.qasm,
            "device": self.device,
            "config": self.config.to_dict(),
            "job_id": self.job_id,
            "metadata": self.metadata,
        }

    def describe(self) -> str:
        """Short human-readable label for reports."""
        return (
            f"{self.job_id} [{self.device.get('name', '?')}"
            f"/{self.config.router} dev:{device_fingerprint(self.device)[:8]}]"
        )


@dataclass
class JobResult:
    """Outcome of one job, successful or not.

    Attributes:
        job_id: Identifier of the originating job.
        key: The job's cache key.
        status: The terminal outcome, one of :data:`JOB_STATUSES`:

            * ``"ok"`` — compiled as requested; artefact present and
              cached.
            * ``"degraded"`` — compiled, but through the router fallback
              chain (the requested router failed or timed out); artefact
              present, carries a ``resilience`` record, and is **not**
              cached under the clean key.
            * ``"timeout"`` — the compute budget ran out (cooperative
              :class:`~repro.resilience.deadline.DeadlineExceeded`, a
              hard per-job budget, or the batch deadline).
            * ``"crashed"`` — the worker process died, an injected fault
              fired, or the artefact failed validation on every attempt.
            * ``"invalid"`` — the request itself is bad (parse error,
              unknown device/config field, …); retrying cannot help.
        cache_hit: ``"memory"``, ``"disk"``, ``"batch"`` (deduplicated
            against an identical job earlier in the same batch), or
            ``None`` for a fresh compile.
        artifact: The serialised compilation result (``None`` unless the
            job completed: ``status`` in ``("ok", "degraded")``).
        error: One-line failure description for failed results.
        attempts: Number of compile attempts (>1 after crash retries).
        metrics: Per-job numbers: ``queue_wait_s``, ``compile_s``,
            ``total_s``, and the artefact's gate/depth metrics.
        metadata: The job's metadata, passed through.
    """

    job_id: str
    key: str
    status: str
    cache_hit: str | None = None
    artifact: dict | None = None
    error: str | None = None
    attempts: int = 1
    metrics: dict = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Compiled exactly as requested (excludes degraded results)."""
        return self.status == "ok"

    @property
    def completed(self) -> bool:
        """An artefact was produced (``ok`` or ``degraded``)."""
        return self.status in ("ok", "degraded")

    def result(self) -> CompilationResult:
        """Rebuild the full :class:`CompilationResult`.

        Raises:
            RuntimeError: when the job produced no artefact.
        """
        if not self.completed or self.artifact is None:
            raise RuntimeError(
                f"job {self.job_id} has no artifact (status={self.status})"
            )
        return artifact_to_result(self.artifact)

    def to_dict(self, *, include_artifact: bool = False) -> dict:
        """JSON-able report row (artefact omitted by default: it is
        large and addressable through ``key`` in the cache)."""
        row = {
            "job_id": self.job_id,
            "key": self.key,
            "status": self.status,
            "cache_hit": self.cache_hit,
            "error": self.error,
            "attempts": self.attempts,
            "metrics": dict(self.metrics),
        }
        if self.metadata:
            row["metadata"] = dict(self.metadata)
        if include_artifact:
            row["artifact"] = self.artifact
        return row
