"""Content-addressed cache keys for compilation artefacts.

A compile is a pure function of four inputs: the circuit, the device,
the pass configuration, and the compiler version.  The cache key is a
SHA-256 over a canonical serialisation of exactly those four — nothing
else may influence the output, so two requests with equal keys are
guaranteed interchangeable, and any change to one of the inputs changes
the key (the invalidation rule; see ``docs/service.md``).

Canonical forms:

* **circuit** — the OpenQASM text produced by
  :func:`repro.qasm.to_openqasm` after a parse round-trip, which
  normalises whitespace, comments, register names and parameter
  spellings.  Semantically identical sources therefore share a key.
* **device** — :meth:`repro.devices.device.Device.to_dict`, serialised
  as minified sorted-key JSON.
* **pass config** — :meth:`repro.core.pipeline.PassConfig.to_dict`,
  same JSON canonicalisation.
* **version** — :data:`repro.__version__` plus the artefact schema
  number, so upgrading the library or the artefact layout invalidates
  every stale entry at once.
"""

from __future__ import annotations

import hashlib
import json

from .. import __version__
from ..core.circuit import Circuit
from ..core.pipeline import PassConfig
from ..devices.device import Device
from ..qasm import QasmError, parse_qasm, to_openqasm

__all__ = [
    "canonical_json",
    "canonical_qasm",
    "device_fingerprint",
    "compute_key",
    "stage_key",
]

#: Bump when the artefact dict layout changes incompatibly.
ARTIFACT_SCHEMA = 1

#: Bump when any *stage* entry layout changes incompatibly
#: (independent of the full-artefact schema: the two evolve separately).
STAGE_SCHEMA = 1


def canonical_json(obj) -> str:
    """Minified, sorted-key JSON — byte-stable across dict orderings."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def canonical_qasm(source: str | Circuit) -> str:
    """The normal-form OpenQASM text of ``source``.

    Accepts raw QASM text or a :class:`Circuit`; either way the result
    is ``to_openqasm`` applied to the parsed circuit, so formatting
    differences in the input never produce distinct cache keys.

    Raises:
        repro.qasm.QasmError: when ``source`` is text and unparsable.
    """
    circuit = parse_qasm(source) if isinstance(source, str) else source
    return to_openqasm(circuit)


def device_fingerprint(device: Device | dict) -> str:
    """16-hex-digit digest of a device's canonical description."""
    data = device.to_dict() if isinstance(device, Device) else device
    return hashlib.sha256(canonical_json(data).encode()).hexdigest()[:16]


def compute_key(
    source: str | Circuit,
    device: Device | dict,
    config: PassConfig | None = None,
    *,
    version: str = __version__,
) -> str:
    """The full cache key (64 hex digits) of one compile request."""
    config = config or PassConfig()
    device_data = device.to_dict() if isinstance(device, Device) else device
    try:
        qasm = canonical_qasm(source)
    except QasmError:
        # Unparsable text still needs a deterministic key so the batch
        # engine can report the parse failure as a JobResult; it is
        # never cached (the compile fails before producing an artefact).
        qasm = f"<unparsable>{source}"
    payload = canonical_json(
        {
            "schema": ARTIFACT_SCHEMA,
            "version": version,
            "qasm": qasm,
            "device": device_data,
            "config": config.to_dict(),
        }
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def stage_key(
    stage: str,
    inputs: dict,
    config: dict,
    *,
    version: str = __version__,
) -> str:
    """The cache key (64 hex digits) of one pipeline *stage*.

    Commits to the stage name, the stage's content-addressed input
    snapshot (circuits as canonical OpenQASM text, the device as its
    dict form — exactly what :func:`repro.core.pipeline.compile_circuit`
    hands its ``stage_store``), that stage's slice of the pass config
    (:meth:`repro.core.pipeline.PassConfig.stage_slice`), the stage
    schema and the library version.  Because only the *relevant* config
    slice is hashed, a placement entry survives a router change and a
    routing entry survives a scheduler change — invalidation by
    addressing, per stage.

    Raises:
        TypeError: when ``inputs``/``config`` contain values with no
            canonical JSON form (such entries are uncacheable).
    """
    payload = canonical_json(
        {
            "stage_schema": STAGE_SCHEMA,
            "version": version,
            "stage": stage,
            "inputs": inputs,
            "config": config,
        }
    )
    return hashlib.sha256(payload.encode()).hexdigest()
