"""Application-aware architecture exploration (paper Sec. VII / ref [69])."""

from .architecture import (
    ArchitectureResult,
    augment_topology,
    compare_topologies,
    evaluate_architecture,
)

__all__ = [
    "ArchitectureResult",
    "augment_topology",
    "compare_topologies",
    "evaluate_architecture",
]
