"""Application-aware architecture exploration.

The paper closes (Section VII) with the observation that mapping
optimisations "should consider both the quantum device and the quantum
application characteristics.  In this direction, reference [69] proposes
an approach which takes the planned quantum functionality into account
when determining an architecture."

This module implements that loop: given a *workload suite* (the planned
functionality) and a base topology, it searches for the coupling graph
that minimises the aggregate mapping cost — e.g. "which two extra
resonators would help this chip most?" — by greedy edge addition with
full routing in the evaluation loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Sequence

from ..core.circuit import Circuit
from ..devices.device import Device
from ..mapping.placement import greedy_placement
from ..mapping.routing import route

__all__ = [
    "ArchitectureResult",
    "evaluate_architecture",
    "augment_topology",
    "compare_topologies",
]


def evaluate_architecture(
    device: Device,
    workloads: Sequence[Circuit],
    *,
    router: str = "sabre",
    metric: str = "swaps",
) -> float:
    """Aggregate mapping cost of ``workloads`` on ``device``.

    Args:
        device: Candidate architecture.
        workloads: The planned quantum functionality.
        router: Router used for the evaluation (heuristics keep the
            exploration loop fast).
        metric: ``"swaps"`` (total added SWAPs) or ``"depth"`` (total
            routed depth).

    Returns:
        The summed cost; lower is better.
    """
    if metric not in ("swaps", "depth"):
        raise ValueError(f"unknown metric {metric!r}")
    total = 0.0
    for circuit in workloads:
        placement = greedy_placement(circuit, device)
        result = route(circuit, device, router, placement)
        total += result.added_swaps if metric == "swaps" else result.circuit.depth()
    return total


def _with_edges(base: Device, extra: Sequence[tuple[int, int]], name: str) -> Device:
    edges = list(base.undirected_edges()) + list(extra)
    return Device(
        name,
        base.num_qubits,
        edges,
        base.native_gates,
        symmetric=True,
        two_qubit_gate=base.two_qubit_gate,
        durations=base.durations,
        cycle_time_ns=base.cycle_time_ns,
        positions=base.positions,
        constraints=base.constraints,
        features=base.features,
    )


@dataclass
class ArchitectureResult:
    """Outcome of an exploration run."""

    base: Device
    device: Device
    added_edges: list[tuple[int, int]] = field(default_factory=list)
    base_cost: float = 0.0
    cost: float = 0.0
    history: list[tuple[tuple[int, int], float]] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Relative cost reduction in [0, 1]."""
        if self.base_cost == 0:
            return 0.0
        return 1.0 - self.cost / self.base_cost

    def summary(self) -> str:
        lines = [
            f"architecture exploration from {self.base.name!r}:",
            f"  base cost: {self.base_cost:.0f}",
        ]
        for edge, cost in self.history:
            lines.append(f"  + edge {edge[0]}-{edge[1]} -> cost {cost:.0f}")
        lines.append(
            f"  final cost: {self.cost:.0f} "
            f"({100 * self.improvement:.0f}% better)"
        )
        return "\n".join(lines)


def augment_topology(
    base: Device,
    workloads: Sequence[Circuit],
    *,
    edge_budget: int = 2,
    router: str = "sabre",
    metric: str = "swaps",
    max_candidate_distance: int = 3,
) -> ArchitectureResult:
    """Greedily add up to ``edge_budget`` couplings that help the workloads.

    Each round evaluates every candidate non-edge (between qubits at hop
    distance <= ``max_candidate_distance``, which is where a new
    resonator is physically plausible and where the win is largest) by
    routing the whole suite, then keeps the best edge.  Stops early when
    no edge improves the cost.

    Returns:
        An :class:`ArchitectureResult`; ``result.device`` carries the
        augmented topology (symmetric coupling).
    """
    base_cost = evaluate_architecture(
        base, workloads, router=router, metric=metric
    )
    chosen: list[tuple[int, int]] = []
    history: list[tuple[tuple[int, int], float]] = []
    current_cost = base_cost

    for round_index in range(edge_budget):
        candidates = [
            (a, b)
            for a, b in combinations(range(base.num_qubits), 2)
            if (a, b) not in set(chosen)
            and not base.connected(a, b)
            and base.distance(a, b) <= max_candidate_distance
        ]
        best_edge, best_cost = None, current_cost
        for edge in candidates:
            candidate = _with_edges(base, chosen + [edge], f"{base.name}+tmp")
            cost = evaluate_architecture(
                candidate, workloads, router=router, metric=metric
            )
            if cost < best_cost:
                best_cost, best_edge = cost, edge
        if best_edge is None:
            break
        chosen.append(best_edge)
        current_cost = best_cost
        history.append((best_edge, best_cost))

    final = _with_edges(base, chosen, f"{base.name}+{len(chosen)}e")
    return ArchitectureResult(
        base=base,
        device=final,
        added_edges=chosen,
        base_cost=base_cost,
        cost=current_cost,
        history=history,
    )


def compare_topologies(
    workloads: Sequence[Circuit],
    devices: Sequence[Device],
    *,
    router: str = "sabre",
    metric: str = "swaps",
) -> list[tuple[str, float]]:
    """Rank candidate architectures for a workload suite (best first)."""
    ranking = [
        (device.name, evaluate_architecture(device, workloads, router=router, metric=metric))
        for device in devices
    ]
    ranking.sort(key=lambda item: item[1])
    return ranking
