"""Gate decomposition into device-native gate sets."""

from .controlled import (
    controlled_gate,
    controlled_unitary,
    multi_controlled_x,
    multi_controlled_z,
)
from .decomposer import count_native_misses, decompose_circuit, decompose_gate
from .euler import u_angles, zyz_angles
from . import rules

__all__ = [
    "controlled_gate",
    "controlled_unitary",
    "count_native_misses",
    "decompose_circuit",
    "decompose_gate",
    "multi_controlled_x",
    "multi_controlled_z",
    "rules",
    "u_angles",
    "zyz_angles",
]
