"""Controlled and multi-controlled gate synthesis.

Section IV: "all gates acting over more than two qubits, such as the
Toffoli operation or the Fredkin operation, have to be decomposed" —
citing the classic synthesis literature [20]-[23].  This module provides
the standard constructions beyond the fixed Toffoli/Fredkin rules:

* :func:`controlled_unitary` — any controlled single-qubit unitary from
  two CNOTs and single-qubit rotations (the ABC decomposition);
* :func:`multi_controlled_x` / :func:`multi_controlled_z` — n-controlled
  NOT/Z via the Toffoli ladder over clean ancilla qubits.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core import gates as G
from ..core.gates import Gate
from .euler import zyz_angles

__all__ = [
    "controlled_unitary",
    "controlled_gate",
    "multi_controlled_x",
    "multi_controlled_z",
]

_EPS = 1e-12


def controlled_unitary(
    matrix: np.ndarray, control: int, target: int
) -> list[Gate]:
    """Synthesise controlled-``matrix`` from CNOTs and rotations.

    Uses the ABC decomposition: with
    ``U = exp(i alpha) Rz(phi) Ry(theta) Rz(lam)`` choose

    * ``A = Rz(phi) Ry(theta / 2)``
    * ``B = Ry(-theta / 2) Rz(-(phi + lam) / 2)``
    * ``C = Rz((lam - phi) / 2)``

    so that ``A B C = I`` and ``A X B X C = U`` (up to the phase), giving
    ``CU = P(alpha)_control . A . CNOT . B . CNOT . C`` where ``P`` is a
    phase gate realised as ``Rz`` (exact, not just up to global phase).

    Returns:
        Gate list in circuit order; at most 2 CNOTs and 5 rotations.
    """
    theta, phi, lam, alpha = zyz_angles(np.asarray(matrix, dtype=complex))
    sequence: list[Gate] = []

    # C (applied first)
    c_angle = (lam - phi) / 2.0
    if abs(c_angle) > _EPS:
        sequence.append(G.rz(c_angle, target))
    sequence.append(G.cnot(control, target))
    # B
    b_rz = -(phi + lam) / 2.0
    if abs(b_rz) > _EPS:
        sequence.append(G.rz(b_rz, target))
    if abs(theta) > _EPS:
        sequence.append(G.ry(-theta / 2.0, target))
    sequence.append(G.cnot(control, target))
    # A
    if abs(theta) > _EPS:
        sequence.append(G.ry(theta / 2.0, target))
    if abs(phi) > _EPS:
        sequence.append(G.rz(phi, target))
    # Phase on the control: P(alpha) = e^{i alpha/2} Rz(alpha); realise
    # the exact phase gate with Rz plus a *global* phase, which is
    # unobservable.
    if abs(alpha) > _EPS:
        sequence.append(G.rz(alpha, control))
    return sequence


def controlled_gate(gate: Gate, control: int) -> list[Gate]:
    """Controlled version of a single-qubit ``gate`` (ABC synthesis).

    Note: the result implements ``control-U`` up to a *global* phase when
    ``gate``'s matrix carries a phase (e.g. controlled-X synthesised this
    way is an exact CNOT up to global phase).
    """
    if len(gate.qubits) != 1 or not gate.is_unitary:
        raise ValueError(f"controlled_gate needs a 1-qubit unitary, got {gate}")
    return controlled_unitary(gate.matrix(), control, gate.qubits[0])


def multi_controlled_x(
    controls: Sequence[int],
    target: int,
    ancillas: Sequence[int] = (),
) -> list[Gate]:
    """n-controlled NOT via the Toffoli ladder.

    Args:
        controls: Control qubits (1, 2, or more).
        target: Target qubit.
        ancillas: Clean (|0>) work qubits; ``len(controls) - 2`` are
            required when ``len(controls) > 2``.  They are returned to
            |0> by the uncomputation half of the ladder.

    Returns:
        Gate list in circuit order.

    Raises:
        ValueError: on overlapping operands or insufficient ancillas.
    """
    controls = list(controls)
    if not controls:
        raise ValueError("need at least one control")
    operands = set(controls) | {target} | set(ancillas)
    if len(operands) != len(controls) + 1 + len(ancillas):
        raise ValueError("controls, target, and ancillas must be distinct")
    if len(controls) == 1:
        return [G.cnot(controls[0], target)]
    if len(controls) == 2:
        return [G.toffoli(controls[0], controls[1], target)]
    needed = len(controls) - 2
    if len(ancillas) < needed:
        raise ValueError(
            f"{len(controls)}-controlled X needs {needed} clean ancillas, "
            f"got {len(ancillas)}"
        )
    work = list(ancillas[:needed])

    compute: list[Gate] = [G.toffoli(controls[0], controls[1], work[0])]
    for index in range(needed - 1):
        compute.append(
            G.toffoli(controls[2 + index], work[index], work[index + 1])
        )
    final = G.toffoli(controls[-1], work[-1], target)
    return compute + [final] + list(reversed(compute))


def multi_controlled_z(
    controls: Sequence[int],
    target: int,
    ancillas: Sequence[int] = (),
) -> list[Gate]:
    """n-controlled Z: H-conjugated :func:`multi_controlled_x`."""
    return (
        [G.h(target)]
        + multi_controlled_x(controls, target, ancillas)
        + [G.h(target)]
    )
