"""Gate rewrite rules toward the native sets of real devices.

Each rule maps one gate to an equivalent (up to global phase) sequence of
simpler gates.  Two rule families cover the paper's devices:

* **IBM basis** (Section IV): every single-qubit gate becomes one
  ``u(theta, phi, lam)``; the entangler is CNOT; SWAP becomes three
  CNOTs; a wrong-direction CNOT is flipped with four Hadamards.
* **Surface basis** (Section V, Fig. 6): single-qubit gates become X/Y
  rotations; CNOT becomes ``Ry(-90) . CZ . Ry(+90)`` on the target; SWAP
  becomes three such CNOTs; Z-axis rotations are conjugated onto the X
  axis by ``y90 / ym90``.

All rules are validated by unitary-equivalence tests; the rule bodies
list gates in *circuit order* (first gate applied first).
"""

from __future__ import annotations

import math

from ..core import gates as G
from ..core.gates import Gate

__all__ = [
    "CNOT_RULES",
    "SURFACE_1Q_RULES",
    "IBM_1Q_RULES",
    "expand_swap_cnot",
    "expand_cnot_to_cz",
    "expand_cnot_to_rxx",
    "expand_rxx_to_cnot",
    "expand_toffoli",
    "expand_fredkin",
    "expand_cp",
    "expand_crz",
    "flip_cnot",
    "rz_as_xy",
    "hadamard_as_xy",
]

PI = math.pi


# ---------------------------------------------------------------------------
# Two-qubit and larger rewrites (basis independent)
# ---------------------------------------------------------------------------

def expand_swap_cnot(a: int, b: int) -> list[Gate]:
    """SWAP as three alternating CNOTs (Section IV)."""
    return [G.cnot(a, b), G.cnot(b, a), G.cnot(a, b)]


def expand_cnot_to_cz(control: int, target: int) -> list[Gate]:
    """CNOT in the Surface-17 basis (paper Fig. 6, left).

    ``CNOT(c, t) = Ry(+90)_t . CZ . Ry(-90)_t`` (matrix order), i.e. the
    circuit applies ``ym90`` on the target, then CZ, then ``y90``.
    """
    return [G.ym90(target), G.cz(control, target), G.y90(target)]


def expand_swap_to_cz(a: int, b: int) -> list[Gate]:
    """SWAP in the Surface-17 basis (paper Fig. 6, middle)."""
    sequence: list[Gate] = []
    for control, target in ((a, b), (b, a), (a, b)):
        sequence.extend(expand_cnot_to_cz(control, target))
    return sequence


def expand_toffoli(c1: int, c2: int, target: int) -> list[Gate]:
    """The standard 6-CNOT + T realisation of the Toffoli gate."""
    return [
        G.h(target),
        G.cnot(c2, target),
        G.tdg(target),
        G.cnot(c1, target),
        G.t(target),
        G.cnot(c2, target),
        G.tdg(target),
        G.cnot(c1, target),
        G.t(c2),
        G.t(target),
        G.h(target),
        G.cnot(c1, c2),
        G.t(c1),
        G.tdg(c2),
        G.cnot(c1, c2),
    ]


def expand_fredkin(control: int, a: int, b: int) -> list[Gate]:
    """Fredkin (controlled SWAP) via CNOT conjugation of a Toffoli."""
    return [G.cnot(b, a), G.toffoli(control, a, b), G.cnot(b, a)]


def expand_cp(theta: float, a: int, b: int) -> list[Gate]:
    """Controlled phase as Rz rotations and two CNOTs."""
    return [
        G.rz(theta / 2.0, a),
        G.cnot(a, b),
        G.rz(-theta / 2.0, b),
        G.cnot(a, b),
        G.rz(theta / 2.0, b),
    ]


def expand_crz(theta: float, control: int, target: int) -> list[Gate]:
    """Controlled Rz as Rz rotations and two CNOTs."""
    return [
        G.rz(theta / 2.0, target),
        G.cnot(control, target),
        G.rz(-theta / 2.0, target),
        G.cnot(control, target),
    ]


def expand_cnot_to_rxx(control: int, target: int) -> list[Gate]:
    """CNOT from the Moelmer-Soerensen interaction (trapped ions).

    ``CNOT = (Ry(90) x I) . RXX(90) . (Rx(-90) x Rx(90)) . (Ry(-90) x I)``
    in matrix order (up to global phase); circuit order below.
    """
    return [
        G.ym90(control),
        G.xm90(control),
        G.x90(target),
        Gate("rxx", (control, target), (PI / 2,)),
        G.y90(control),
    ]


def expand_rxx_to_cnot(theta: float, a: int, b: int) -> list[Gate]:
    """RXX via CNOT conjugation: ``RXX(t) = CNOT . (Rx(t) x I) . CNOT``."""
    return [G.cnot(a, b), G.rx(theta, a), G.cnot(a, b)]


def flip_cnot(control: int, target: int) -> list[Gate]:
    """Reverse the CNOT direction with four Hadamards (Section IV).

    Produces a CNOT with control and target exchanged, for devices whose
    coupling graph only provides the opposite orientation.
    """
    return [
        G.h(control),
        G.h(target),
        G.cnot(target, control),
        G.h(control),
        G.h(target),
    ]


#: Expansion of multi-qubit / composite gates into the CNOT + 1q basis.
#: Maps gate name to a function of (params, qubits) -> list[Gate].
CNOT_RULES = {
    "rxx": lambda params, qubits: expand_rxx_to_cnot(params[0], *qubits),
    "swap": lambda params, qubits: expand_swap_cnot(*qubits),
    "toffoli": lambda params, qubits: expand_toffoli(*qubits),
    "fredkin": lambda params, qubits: expand_fredkin(*qubits),
    "cp": lambda params, qubits: expand_cp(params[0], *qubits),
    "crz": lambda params, qubits: expand_crz(params[0], *qubits),
    "cz": lambda params, qubits: [
        G.h(qubits[1]),
        G.cnot(qubits[0], qubits[1]),
        G.h(qubits[1]),
    ],
}


# ---------------------------------------------------------------------------
# Single-qubit rewrites, IBM basis: everything is one u(theta, phi, lam)
# ---------------------------------------------------------------------------

def _u(theta: float, phi: float, lam: float):
    return lambda params, qubits: [G.u(theta, phi, lam, qubits[0])]


#: Fixed single-qubit gates as IBM ``u`` instructions (up to global phase).
IBM_1Q_RULES = {
    "h": _u(PI / 2, 0.0, PI),
    "x": _u(PI, 0.0, PI),
    "y": _u(PI, PI / 2, PI / 2),
    "z": _u(0.0, 0.0, PI),
    "s": _u(0.0, 0.0, PI / 2),
    "sdg": _u(0.0, 0.0, -PI / 2),
    "t": _u(0.0, 0.0, PI / 4),
    "tdg": _u(0.0, 0.0, -PI / 4),
    "x90": _u(PI / 2, -PI / 2, PI / 2),
    "xm90": _u(-PI / 2, -PI / 2, PI / 2),
    "y90": _u(PI / 2, 0.0, 0.0),
    "ym90": _u(-PI / 2, 0.0, 0.0),
    "rx": lambda params, qubits: [G.u(params[0], -PI / 2, PI / 2, qubits[0])],
    "ry": lambda params, qubits: [G.u(params[0], 0.0, 0.0, qubits[0])],
    "rz": lambda params, qubits: [G.u(0.0, 0.0, params[0], qubits[0])],
}


# ---------------------------------------------------------------------------
# Single-qubit rewrites, Surface basis: X/Y rotations only
# ---------------------------------------------------------------------------

def rz_as_xy(theta: float, q: int) -> list[Gate]:
    """Z rotation conjugated onto the X axis: Rz = Ry(-90) Rx(theta) Ry(90).

    The sequence is returned in circuit order: ``y90``, ``rx(theta)``,
    ``ym90``.
    """
    return [G.y90(q), G.rx(theta, q), G.ym90(q)]


def hadamard_as_xy(q: int) -> list[Gate]:
    """H = X . Ry(90) (matrix order): apply ``y90`` then ``x``."""
    return [G.y90(q), G.x(q)]


#: Fixed single-qubit gates as X/Y rotations (up to global phase).
SURFACE_1Q_RULES = {
    "h": lambda params, qubits: hadamard_as_xy(qubits[0]),
    "x": lambda params, qubits: [G.x(qubits[0])],
    "y": lambda params, qubits: [G.y(qubits[0])],
    "z": lambda params, qubits: [G.x(qubits[0]), G.y(qubits[0])],
    "s": lambda params, qubits: rz_as_xy(PI / 2, qubits[0]),
    "sdg": lambda params, qubits: rz_as_xy(-PI / 2, qubits[0]),
    "t": lambda params, qubits: rz_as_xy(PI / 4, qubits[0]),
    "tdg": lambda params, qubits: rz_as_xy(-PI / 4, qubits[0]),
    "rx": lambda params, qubits: [G.rx(params[0], qubits[0])],
    "ry": lambda params, qubits: [G.ry(params[0], qubits[0])],
    "rz": lambda params, qubits: rz_as_xy(params[0], qubits[0]),
    "u": lambda params, qubits: (
        rz_as_xy(params[2], qubits[0])
        + [G.ry(params[0], qubits[0])]
        + rz_as_xy(params[1], qubits[0])
    ),
}
