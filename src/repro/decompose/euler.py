"""Euler-angle synthesis of single-qubit unitaries.

IBM's QX devices expose the elementary gate
``U(theta, phi, lam) = Rz(phi) Ry(theta) Rz(lam)`` (paper, Section IV);
"by adjusting the parameters, single-qubit gates of other gate libraries
like the H or the T gate can be realized".  This module computes those
parameters for an arbitrary 2x2 unitary — the ZYZ Euler decomposition —
so the decomposer can lower any single-qubit gate to one native ``u``
instruction (or to Rz/Ry rotation chains for other native sets).
"""

from __future__ import annotations

import cmath
import math

import numpy as np

__all__ = ["zyz_angles", "u_angles"]

_ATOL = 1e-10


def zyz_angles(matrix: np.ndarray) -> tuple[float, float, float, float]:
    """Decompose a 2x2 unitary as ``exp(i alpha) Rz(phi) Ry(theta) Rz(lam)``.

    Returns:
        ``(theta, phi, lam, alpha)`` with ``theta`` in ``[0, pi]``.

    Raises:
        ValueError: when ``matrix`` is not (close to) unitary.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2, 2):
        raise ValueError(f"expected a 2x2 matrix, got shape {matrix.shape}")
    if not np.allclose(matrix @ matrix.conj().T, np.eye(2), atol=1e-8):
        raise ValueError("matrix is not unitary")

    # Remove the global phase: det(U) = exp(2 i alpha) for U in SU(2)
    # scaled by exp(i alpha).
    det = matrix[0, 0] * matrix[1, 1] - matrix[0, 1] * matrix[1, 0]
    alpha = cmath.phase(det) / 2.0
    su2 = matrix * cmath.exp(-1j * alpha)

    # su2 = [[ cos(t/2) e^{-i(phi+lam)/2}, -sin(t/2) e^{-i(phi-lam)/2}],
    #        [ sin(t/2) e^{ i(phi-lam)/2},  cos(t/2) e^{ i(phi+lam)/2}]]
    cos_half = abs(su2[0, 0])
    cos_half = min(1.0, max(0.0, cos_half))
    theta = 2.0 * math.acos(cos_half)

    if abs(su2[0, 0]) > _ATOL and abs(su2[1, 0]) > _ATOL:
        plus = 2.0 * cmath.phase(su2[1, 1])   # phi + lam
        minus = 2.0 * cmath.phase(su2[1, 0])  # phi - lam
        phi = (plus + minus) / 2.0
        lam = (plus - minus) / 2.0
    elif abs(su2[0, 0]) > _ATOL:
        # theta ~ 0: only phi + lam matters; put it all in lam.
        phi = 0.0
        lam = 2.0 * cmath.phase(su2[1, 1])
    else:
        # theta ~ pi: only phi - lam matters; put it all in phi... note
        # su2[1, 0] = sin(t/2) e^{i(phi-lam)/2}.
        lam = 0.0
        phi = 2.0 * cmath.phase(su2[1, 0])

    # Wrap first: wrapping shifts angles by 2*pi, which flips the sign of
    # an SU(2) rotation, so the phase correction below must see the final
    # angles.
    phi, lam = _wrap(phi), _wrap(lam)

    # det(U) only fixes alpha modulo pi (the SU(2) double cover): check
    # the reconstruction and absorb a possible -1 into the phase.
    reconstruction = cmath.exp(1j * alpha) * (
        _rz(phi) @ _ry(theta) @ _rz(lam)
    )
    pivot = int(np.argmax(np.abs(matrix)))
    if (
        abs(matrix.reshape(-1)[pivot]) > _ATOL
        and (reconstruction.reshape(-1)[pivot] / matrix.reshape(-1)[pivot]).real < 0
    ):
        alpha += math.pi

    return theta, phi, lam, alpha


def _rz(angle: float) -> np.ndarray:
    phase = cmath.exp(1j * angle / 2.0)
    return np.array([[1.0 / phase, 0.0], [0.0, phase]], dtype=complex)


def _ry(angle: float) -> np.ndarray:
    c, s = math.cos(angle / 2.0), math.sin(angle / 2.0)
    return np.array([[c, -s], [s, c]], dtype=complex)


def u_angles(matrix: np.ndarray) -> tuple[float, float, float]:
    """The ``(theta, phi, lam)`` realizing ``matrix`` up to global phase."""
    theta, phi, lam, _ = zyz_angles(matrix)
    return theta, phi, lam


def _wrap(angle: float) -> float:
    """Wrap an angle to ``(-pi, pi]``."""
    wrapped = math.fmod(angle, 2.0 * math.pi)
    if wrapped > math.pi:
        wrapped -= 2.0 * math.pi
    elif wrapped <= -math.pi:
        wrapped += 2.0 * math.pi
    return wrapped
