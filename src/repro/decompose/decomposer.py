"""Gate decomposition driver.

Lowers a circuit into the native gate set of a target device ("gate
decomposition", task 1 of the compiler in Section III-A).  Decomposition
is purely about gate *names*: connectivity and directions are handled
later by routing (:mod:`repro.mapping`).

The driver rewrites gates with the rule tables of
:mod:`repro.decompose.rules` until everything is native, falling back to
ZYZ Euler synthesis (:mod:`repro.decompose.euler`) for single-qubit gates
without a direct rule.  Equivalence is up to global phase, which is
exactly what hardware realises.
"""

from __future__ import annotations

from ..core.circuit import Circuit
from ..core import gates as G
from ..core.gates import Gate
from ..devices.device import Device
from . import rules
from .euler import u_angles

__all__ = ["decompose_circuit", "decompose_gate", "count_native_misses"]

_MAX_PASSES = 16


def decompose_gate(gate: Gate, device: Device) -> list[Gate]:
    """Rewrite ``gate`` one step toward the native set of ``device``.

    Returns a gate list equivalent to ``gate`` up to global phase; the
    result may need further passes (e.g. a Toffoli first becomes CNOTs
    and T gates, which on Surface-17 then become CZ and rotations).

    Raises:
        ValueError: when no rule makes progress (non-universal target).
    """
    if gate.is_barrier or not gate.is_unitary or device.is_native(gate):
        return [gate]

    if gate.condition is not None:
        # A classically conditioned gate decomposes into the same
        # sequence with the condition on every factor: the whole block
        # fires or skips together, and any global-phase mismatch of the
        # expansion is unobservable within a measurement trajectory.
        bare = Gate(gate.name, gate.qubits, gate.params)
        return [
            Gate(g.name, g.qubits, g.params, gate.condition)
            for g in decompose_gate(bare, device)
        ]

    surface_style = _is_surface_basis(device)

    # A shuttle on hardware without shuttling support degenerates to the
    # SWAP it is unitarily equal to (paper Sec. VI-C).
    if gate.name == "shuttle":
        return [Gate("swap", gate.qubits)]

    # Composite gates first: multi-qubit and symmetric-phase gates reduce
    # to the CNOT + single-qubit basis, and CNOT reduces to CZ if needed.
    if gate.name in rules.CNOT_RULES and gate.name != "cz":
        if gate.name == "swap" and device.two_qubit_gate == "cz":
            return rules.expand_swap_to_cz(*gate.qubits)
        return rules.CNOT_RULES[gate.name](gate.params, gate.qubits)
    if gate.name == "cz" and "cz" not in device.native_gates:
        return rules.CNOT_RULES["cz"](gate.params, gate.qubits)
    if gate.name == "cnot" and "cnot" not in device.native_gates:
        if "cz" in device.native_gates:
            return rules.expand_cnot_to_cz(*gate.qubits)
        if "rxx" in device.native_gates:
            return rules.expand_cnot_to_rxx(*gate.qubits)
        raise ValueError(
            f"device {device.name!r} has no rule for entangler "
            f"{device.two_qubit_gate!r}"
        )

    if len(gate.qubits) == 1:
        if surface_style:
            rule = rules.SURFACE_1Q_RULES.get(gate.name)
            if rule is not None:
                return rule(gate.params, gate.qubits)
        elif "u" in device.native_gates:
            rule = rules.IBM_1Q_RULES.get(gate.name)
            if rule is not None:
                return rule(gate.params, gate.qubits)
        # Fallback: synthesise from the unitary.
        theta, phi, lam = u_angles(gate.matrix())
        q = gate.qubits[0]
        if surface_style:
            return rules.SURFACE_1Q_RULES["u"]((theta, phi, lam), (q,))
        if "u" in device.native_gates:
            return [G.u(theta, phi, lam, q)]
        if {"rz", "ry"} <= device.native_gates:
            # Rotation-only basis (trapped ions): plain ZYZ chain.
            return [G.rz(lam, q), G.ry(theta, q), G.rz(phi, q)]
        raise ValueError(
            f"device {device.name!r} has no universal single-qubit basis"
        )

    raise ValueError(f"no decomposition rule for gate {gate.name!r} on {device.name!r}")


def decompose_circuit(circuit: Circuit, device: Device) -> Circuit:
    """Lower every gate of ``circuit`` into the native set of ``device``.

    The output circuit is equivalent to the input up to global phase and
    contains only native gates (plus measure/prep/barrier).

    Raises:
        ValueError: when rewriting fails to converge, meaning the device's
            native set is not universal for the input.
    """
    current = circuit
    for _ in range(_MAX_PASSES):
        out = Circuit(current.num_qubits, name=current.name)
        changed = False
        for gate in current.gates:
            replacement = decompose_gate(gate, device)
            if len(replacement) != 1 or replacement[0] != gate:
                changed = True
            out.extend(replacement)
        if not changed:
            return out
        current = out
    raise ValueError(
        f"decomposition did not converge on device {device.name!r}; "
        f"native set {sorted(device.native_gates)} may not be universal"
    )


def count_native_misses(circuit: Circuit, device: Device) -> int:
    """Number of gates that are not native to ``device``."""
    return sum(
        1
        for g in circuit.gates
        if g.is_unitary and not device.is_native(g)
    )


def _is_surface_basis(device: Device) -> bool:
    """True when the device lacks ``u`` but has X/Y rotations (Surface)."""
    natives = device.native_gates
    return "u" not in natives and "rz" not in natives and {"rx", "ry"} <= natives
