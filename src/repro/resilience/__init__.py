"""Resilience layer: fault injection, deadlines, graceful degradation.

"Every device is (almost) equal before the compiler" (the paper's
conclusion) only holds in practice when the compiler *always returns an
answer* within its budget.  This package gives the stack the three
mechanisms that guarantee that:

* :mod:`repro.resilience.deadline` — a monotonic :class:`Deadline`
  threaded through :func:`repro.core.pipeline.compile_with_config` into
  the routers, which poll it and abandon search cleanly
  (:class:`DeadlineExceeded`) instead of being killed from outside;
* :mod:`repro.resilience.faults` — a seeded, deterministic
  :class:`FaultPlan` (crash / hang / raise / corrupt at named pipeline
  stages) that crosses the process boundary into pool workers, driving
  the resilience tests and the CI fault-injection smoke;
* the router **fallback chain** (``astar -> sabre -> naive``) in
  :func:`repro.core.pipeline.compile_with_config`, which retries a
  failed or timed-out routing stage with the next cheaper router and
  records ``degraded=True`` plus the fallback path in the artefact.

The batch engine (:mod:`repro.service.engine`) builds its per-job
outcome taxonomy (``ok | degraded | timeout | crashed | invalid``) on
these pieces; see ``docs/resilience.md``.
"""

from .deadline import (
    Deadline,
    DeadlineExceeded,
    current_deadline,
    use_deadline,
)
from .faults import (
    FAULT_ACTIONS,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    corrupt_point,
    fault_point,
    reset_env_cache,
    use_faults,
)

__all__ = [
    "FAULT_ACTIONS",
    "Deadline",
    "DeadlineExceeded",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "corrupt_point",
    "current_deadline",
    "fault_point",
    "reset_env_cache",
    "use_deadline",
    "use_faults",
]
