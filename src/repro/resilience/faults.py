"""Deterministic fault injection for the compile pipeline and service.

A :class:`FaultPlan` names pipeline stages at which faults fire:
``crash`` (kill the worker process), ``hang`` (sleep far past any
budget), ``raise`` (throw :class:`FaultInjected`), and ``corrupt``
(mangle the artefact a worker ships back).  Plans are seeded and
deterministic — the same plan over the same jobs fires the same faults —
so resilience tests and the CI fault smoke are reproducible.

Activation crosses the process boundary two ways:

* the batch engine ships the service's plan inside each job payload and
  the worker installs it around the compile
  (:func:`use_faults`, carrying the job id for per-job matching);
* the ``REPRO_FAULTS`` environment variable (inline JSON, or a path /
  ``@path`` to a JSON file) arms every process that imports this module,
  which reaches pool workers regardless of start method.

Instrumentation calls :func:`fault_point` at named stages (the pipeline
stages of :func:`repro.core.pipeline.compile_circuit`, plus ``worker``
at pool-worker entry) and :func:`corrupt_point` where an artefact is
produced.  Both are no-ops costing one context-variable read when no
plan is armed.
"""

from __future__ import annotations

import json
import os
import random
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = [
    "FAULT_ACTIONS",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "corrupt_point",
    "fault_point",
    "use_faults",
]

#: Supported fault actions.
FAULT_ACTIONS = ("crash", "hang", "raise", "corrupt")

#: Stage names the pipeline/service instrument (free-form strings are
#: accepted; these are the ones that exist today).
KNOWN_STAGES = (
    "worker", "parse", "placement", "routing", "decompose",
    "direction-fix", "optimize", "verify", "schedule", "artifact",
)

#: Exit code of a ``crash`` fault (distinct from the legacy test hook's
#: 13 so traces can tell them apart).
CRASH_EXIT_CODE = 23

#: Default sleep of a ``hang`` fault — far past any sane job budget.
DEFAULT_HANG_SECONDS = 3600.0


class FaultInjected(RuntimeError):
    """The exception thrown by a ``raise`` fault."""

    def __init__(self, message: str, stage: str = ""):
        super().__init__(message)
        self.stage = stage


@dataclass(frozen=True)
class FaultSpec:
    """One fault: where it fires, what it does, and what it matches.

    Attributes:
        stage: Pipeline stage name the fault is attached to.
        action: One of :data:`FAULT_ACTIONS`.
        job_id: Only fire for this job id (``None``: every job).
        router: Only fire when the routing attempt uses this router
            (matched at stages that report one, i.e. ``routing``);
            lets a plan crash the primary router while the fallback
            chain's retry succeeds.
        times: Maximum firings per process (``None``: unlimited).
            Counters are per-process: a ``crash`` respawns a fresh
            worker whose counter starts at zero, so a crash fault
            without a ``router``/``job_id`` discriminator fires on
            every retry.
        probability: Chance of firing per eligible invocation, decided
            by the plan's seed (deterministic).
        delay: Sleep seconds for ``hang``.
        message: Custom text for ``raise`` faults.
    """

    stage: str
    action: str
    job_id: str | None = None
    router: str | None = None
    times: int | None = 1
    probability: float = 1.0
    delay: float = DEFAULT_HANG_SECONDS
    message: str = ""

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; "
                f"expected one of {FAULT_ACTIONS}"
            )
        if not self.stage:
            raise ValueError("fault spec needs a stage name")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("fault probability must be in [0, 1]")

    def to_dict(self) -> dict:
        data = {"stage": self.stage, "action": self.action}
        if self.job_id is not None:
            data["job_id"] = self.job_id
        if self.router is not None:
            data["router"] = self.router
        if self.times != 1:
            data["times"] = self.times
        if self.probability != 1.0:
            data["probability"] = self.probability
        if self.delay != DEFAULT_HANG_SECONDS:
            data["delay"] = self.delay
        if self.message:
            data["message"] = self.message
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultSpec":
        known = {
            "stage", "action", "job_id", "router", "times",
            "probability", "delay", "message",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault spec fields: {sorted(unknown)}")
        return cls(**{k: data[k] for k in known if k in data})


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic collection of :class:`FaultSpec`."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def has_action(self, *actions: str) -> bool:
        """Whether any spec uses one of ``actions``."""
        return any(spec.action in actions for spec in self.specs)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        if not isinstance(data, Mapping):
            raise ValueError("fault plan must be a JSON object")
        unknown = set(data) - {"seed", "faults"}
        if unknown:
            raise ValueError(f"unknown fault plan fields: {sorted(unknown)}")
        faults = data.get("faults", [])
        if not isinstance(faults, Iterable) or isinstance(faults, (str, bytes)):
            raise ValueError('fault plan "faults" must be a list')
        return cls(
            specs=tuple(FaultSpec.from_dict(entry) for entry in faults),
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from JSON text."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid fault plan JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path) -> "FaultPlan":
        with open(path) as fh:
            return cls.from_json(fh.read())


class _Injector:
    """Per-process firing state for one installed plan."""

    __slots__ = ("plan", "job_id", "fired")

    def __init__(self, plan: FaultPlan, job_id: str = ""):
        self.plan = plan
        self.job_id = job_id
        self.fired: dict[int, int] = {}

    def _matching(self, stage: str, router: str | None, actions: tuple):
        # ``actions`` scopes the match to the caller's injection kind:
        # fault_point() must not burn a corrupt spec's firing budget
        # (and vice versa) when both visit the same stage.
        for index, spec in enumerate(self.plan.specs):
            if spec.stage != stage or spec.action not in actions:
                continue
            if spec.job_id is not None and spec.job_id != self.job_id:
                continue
            if spec.router is not None and spec.router != router:
                continue
            count = self.fired.get(index, 0)
            if spec.times is not None and count >= spec.times:
                continue
            if spec.probability < 1.0:
                rng = random.Random(
                    f"{self.plan.seed}:{index}:{self.job_id}:{stage}:{count}"
                )
                if rng.random() >= spec.probability:
                    # A declined roll still consumes an invocation slot so
                    # the decision sequence is reproducible.
                    self.fired[index] = count + 1
                    continue
            self.fired[index] = count + 1
            yield spec

    def fire(self, stage: str, router: str | None = None) -> None:
        for spec in self._matching(stage, router, ("crash", "hang", "raise")):
            if spec.action == "crash":
                os._exit(CRASH_EXIT_CODE)
            if spec.action == "hang":
                time.sleep(spec.delay)
            elif spec.action == "raise":
                message = spec.message or (
                    f"injected fault at stage {stage!r}"
                )
                raise FaultInjected(message, stage=stage)

    def corrupt(self, stage: str, artifact: dict) -> dict:
        for _spec in self._matching(stage, None, ("corrupt",)):
            artifact = dict(artifact)
            artifact["schema"] = "corrupt"
            artifact["native_qasm"] = "@@fault-injected-corruption@@"
            artifact["__corrupted__"] = True
        return artifact


_CURRENT: ContextVar[_Injector | None] = ContextVar(
    "repro-faults", default=None
)

#: Lazily-built injector from the REPRO_FAULTS environment variable.
#: ``False`` means "not checked yet"; ``None`` means "checked, absent".
_ENV_INJECTOR: _Injector | None | bool = False


def _env_injector() -> _Injector | None:
    global _ENV_INJECTOR
    if _ENV_INJECTOR is False:
        value = os.environ.get("REPRO_FAULTS", "").strip()
        if not value:
            _ENV_INJECTOR = None
        else:
            if value.startswith("@"):
                plan = FaultPlan.from_file(value[1:])
            elif value.lstrip().startswith("{"):
                plan = FaultPlan.from_json(value)
            else:
                plan = FaultPlan.from_file(value)
            _ENV_INJECTOR = _Injector(plan)
    return _ENV_INJECTOR


def reset_env_cache() -> None:
    """Forget the cached ``REPRO_FAULTS`` parse (tests change the env)."""
    global _ENV_INJECTOR
    _ENV_INJECTOR = False


@contextmanager
def use_faults(plan: FaultPlan | None, job_id: str = ""):
    """Install ``plan`` (with ``job_id`` context) for the ``with`` body."""
    token = _CURRENT.set(_Injector(plan, job_id) if plan is not None else None)
    try:
        yield
    finally:
        _CURRENT.reset(token)


def _active() -> _Injector | None:
    injector = _CURRENT.get()
    if injector is not None:
        return injector
    return _env_injector()


def fault_point(stage: str, router: str | None = None) -> None:
    """Fire any armed crash/hang/raise fault attached to ``stage``.

    Free (one context-variable read) when no plan is installed.
    """
    injector = _active()
    if injector is not None:
        injector.fire(stage, router)


def corrupt_point(stage: str, artifact: dict) -> dict:
    """Apply any armed ``corrupt`` fault at ``stage`` to ``artifact``."""
    injector = _active()
    if injector is not None:
        return injector.corrupt(stage, artifact)
    return artifact
