"""Monotonic deadlines, propagated through the compile pipeline.

A :class:`Deadline` is a point on the system-wide monotonic clock
(``time.monotonic``) by which a compilation should have produced an
answer.  It is *cooperative*: the pipeline threads the current deadline
through a :class:`~contextvars.ContextVar` (:func:`use_deadline` /
:func:`current_deadline`) and long-running searches — SABRE's decision
loop, the A* layer kernel — poll it and abandon their search by raising
:class:`DeadlineExceeded` instead of being killed from outside.  The
router fallback chain in :func:`repro.core.pipeline.compile_with_config`
catches that exception and retries the routing stage with a cheaper
router, so an expiring deadline degrades the answer instead of losing
it.

Because ``time.monotonic`` is system-wide (CLOCK_MONOTONIC on Linux —
the same property the batch engine's queue-wait metric relies on), a
deadline created in the service parent can cross the process boundary
into a pool worker as its absolute ``expires_mono`` reading and keep
meaning the same instant.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Mapping

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "current_deadline",
    "use_deadline",
]


class DeadlineExceeded(RuntimeError):
    """A cooperative search abandoned its work because time ran out."""


class Deadline:
    """An absolute point on the monotonic clock with a recorded budget.

    Args:
        expires_mono: Absolute ``time.monotonic`` reading at which the
            deadline expires.
        budget: The original allowance in seconds (for messages only).
    """

    __slots__ = ("expires_mono", "budget")

    def __init__(self, expires_mono: float, budget: float | None = None):
        self.expires_mono = float(expires_mono)
        self.budget = budget

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now."""
        seconds = float(seconds)
        if seconds < 0:
            raise ValueError(f"deadline budget must be >= 0, got {seconds}")
        return cls(time.monotonic() + seconds, budget=seconds)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_mono - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_mono

    def check(self, where: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed."""
        if self.expired():
            budget = f"{self.budget}s budget" if self.budget is not None \
                else "deadline"
            suffix = f" in {where}" if where else ""
            raise DeadlineExceeded(f"exceeded the {budget}{suffix}")

    def to_dict(self) -> dict:
        """JSON/pickle-able form (absolute monotonic instant)."""
        return {"expires_mono": self.expires_mono, "budget": self.budget}

    @classmethod
    def from_dict(cls, data: Mapping) -> "Deadline":
        return cls(data["expires_mono"], data.get("budget"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.3f}s)"


#: The deadline governing the current compilation (None: unlimited).
_CURRENT: ContextVar[Deadline | None] = ContextVar(
    "repro-deadline", default=None
)


def current_deadline() -> Deadline | None:
    """The deadline in effect for this context, or ``None``."""
    return _CURRENT.get()


@contextmanager
def use_deadline(deadline: Deadline | None):
    """Install ``deadline`` as the current one for the ``with`` body.

    ``None`` explicitly clears any outer deadline (used by the last
    fallback router, which must always complete).
    """
    token = _CURRENT.set(deadline)
    try:
        yield deadline
    finally:
        _CURRENT.reset(token)
