"""Workload generators: paper examples, standard algorithms, random circuits."""

from .algorithms import deutsch_jozsa, hidden_shift, phase_estimation, w_state
from .paper import fig1_circuit, fig1_cnot_skeleton, fig1_qx4_placement, fig2_circuit
from .random_circuits import random_circuit, random_cnot_circuit, random_clifford_t
from .standard import (
    WORKLOADS,
    bernstein_vazirani,
    cuccaro_adder,
    get_workload,
    ghz,
    hardware_efficient_ansatz,
    grover,
    qft,
    quantum_volume_layers,
)

__all__ = [
    "WORKLOADS",
    "bernstein_vazirani",
    "cuccaro_adder",
    "deutsch_jozsa",
    "fig1_circuit",
    "fig1_cnot_skeleton",
    "fig1_qx4_placement",
    "fig2_circuit",
    "get_workload",
    "ghz",
    "grover",
    "hardware_efficient_ansatz",
    "hidden_shift",
    "phase_estimation",
    "qft",
    "quantum_volume_layers",
    "random_circuit",
    "random_cnot_circuit",
    "random_clifford_t",
    "w_state",
]
