"""Standard quantum algorithm workloads.

The mapping literature the paper surveys benchmarks on well-known
algorithm families; this module generates them as circuits over the
paper's universal gate set (Section II), ready for the compilation
pipeline:

* :func:`ghz` — GHZ state preparation (maximal entanglement, a chain of
  CNOTs; routing-friendly);
* :func:`qft` — quantum Fourier transform (all-to-all controlled-phase
  interactions; routing-hostile, the classic mapping stress test);
* :func:`bernstein_vazirani` — the Bernstein-Vazirani algorithm for a
  hidden bit string (star-shaped interaction onto the ancilla);
* :func:`grover` — Grover search with a marked computational-basis state
  (multi-controlled phase oracles, exercises Toffoli decomposition);
* :func:`cuccaro_adder` — the ripple-carry adder of Cuccaro et al.
  (MAJ/UMA ladders of Toffolis and CNOTs);
* :func:`quantum_volume_layers` — alternating permutation + two-qubit
  layers in the spirit of quantum-volume circuits.
"""

from __future__ import annotations

import math
import random

from ..core.circuit import Circuit

__all__ = [
    "ghz",
    "hardware_efficient_ansatz",
    "qft",
    "bernstein_vazirani",
    "grover",
    "cuccaro_adder",
    "quantum_volume_layers",
    "WORKLOADS",
    "get_workload",
]


def ghz(num_qubits: int) -> Circuit:
    """GHZ state preparation: H then a CNOT chain."""
    if num_qubits < 1:
        raise ValueError("GHZ needs at least one qubit")
    circuit = Circuit(num_qubits, name=f"ghz{num_qubits}")
    circuit.h(0)
    for q in range(num_qubits - 1):
        circuit.cnot(q, q + 1)
    return circuit


def qft(num_qubits: int, *, include_swaps: bool = True) -> Circuit:
    """Quantum Fourier transform on ``num_qubits`` qubits.

    Args:
        include_swaps: Append the final qubit-reversal SWAPs (set False
            when the caller tracks the reversal classically).
    """
    circuit = Circuit(num_qubits, name=f"qft{num_qubits}")
    for target in range(num_qubits):
        circuit.h(target)
        for control in range(target + 1, num_qubits):
            angle = math.pi / (2 ** (control - target))
            circuit.cp(angle, control, target)
    if include_swaps:
        for q in range(num_qubits // 2):
            circuit.swap(q, num_qubits - 1 - q)
    return circuit


def bernstein_vazirani(secret: str) -> Circuit:
    """Bernstein-Vazirani for the hidden string ``secret``.

    Uses ``len(secret)`` data qubits plus one ancilla (the last qubit).
    After the circuit, measuring the data qubits yields ``secret``.
    """
    if not secret or any(ch not in "01" for ch in secret):
        raise ValueError("secret must be a non-empty bit string")
    n = len(secret)
    circuit = Circuit(n + 1, name=f"bv{secret}")
    ancilla = n
    circuit.x(ancilla)
    for q in range(n + 1):
        circuit.h(q)
    for q, bit in enumerate(secret):
        if bit == "1":
            circuit.cnot(q, ancilla)
    for q in range(n):
        circuit.h(q)
    for q in range(n):
        circuit.measure(q)
    return circuit


def grover(num_qubits: int, marked: int, iterations: int | None = None) -> Circuit:
    """Grover search for the computational-basis state ``marked``.

    Supports 2 and 3 qubits (the regime of the paper's devices); the
    oracle and diffuser use CZ / CCZ built from the universal set.

    Args:
        num_qubits: Search register width (2 or 3).
        marked: Index of the marked basis state.
        iterations: Grover iterations (default: the optimal
            ``round(pi/4 * sqrt(N))``).
    """
    if num_qubits not in (2, 3):
        raise ValueError("grover() supports 2 or 3 qubits")
    if not 0 <= marked < 2**num_qubits:
        raise ValueError("marked state out of range")
    if iterations is None:
        iterations = max(1, math.floor(math.pi / 4 * math.sqrt(2**num_qubits)))
    circuit = Circuit(num_qubits, name=f"grover{num_qubits}_m{marked}")
    for q in range(num_qubits):
        circuit.h(q)
    bits = format(marked, f"0{num_qubits}b")

    def flip_marked() -> None:
        for q, bit in enumerate(bits):
            if bit == "0":
                circuit.x(q)

    for _ in range(iterations):
        # Oracle: phase flip on |marked>.
        flip_marked()
        _controlled_z_all(circuit, num_qubits)
        flip_marked()
        # Diffuser: inversion about the mean.
        for q in range(num_qubits):
            circuit.h(q)
            circuit.x(q)
        _controlled_z_all(circuit, num_qubits)
        for q in range(num_qubits):
            circuit.x(q)
            circuit.h(q)
    return circuit


def _controlled_z_all(circuit: Circuit, num_qubits: int) -> None:
    """CZ (2 qubits) or CCZ (3 qubits, via H-conjugated Toffoli)."""
    if num_qubits == 2:
        circuit.cz(0, 1)
    else:
        circuit.h(2)
        circuit.toffoli(0, 1, 2)
        circuit.h(2)


def cuccaro_adder(bits: int) -> Circuit:
    """Cuccaro ripple-carry adder computing ``b += a`` on ``bits``-bit registers.

    Layout: qubit 0 is the incoming carry, then pairs ``(a_i, b_i)`` per
    bit, and a final carry-out qubit — ``2 * bits + 2`` qubits in total.
    """
    if bits < 1:
        raise ValueError("adder needs at least one bit")
    n = 2 * bits + 2
    circuit = Circuit(n, name=f"adder{bits}")
    carry_in = 0
    a = [1 + 2 * i for i in range(bits)]
    b = [2 + 2 * i for i in range(bits)]
    carry_out = n - 1

    def maj(x: int, y: int, z: int) -> None:
        circuit.cnot(z, y)
        circuit.cnot(z, x)
        circuit.toffoli(x, y, z)

    def uma(x: int, y: int, z: int) -> None:
        circuit.toffoli(x, y, z)
        circuit.cnot(z, x)
        circuit.cnot(x, y)

    maj(carry_in, b[0], a[0])
    for i in range(1, bits):
        maj(a[i - 1], b[i], a[i])
    circuit.cnot(a[bits - 1], carry_out)
    for i in range(bits - 1, 0, -1):
        uma(a[i - 1], b[i], a[i])
    uma(carry_in, b[0], a[0])
    return circuit


def hardware_efficient_ansatz(
    num_qubits: int, layers: int, seed: int = 0
) -> Circuit:
    """A hardware-efficient variational ansatz (VQE/QAOA-style NISQ load).

    Each layer applies per-qubit Ry and Rz rotations with random
    parameters followed by a CNOT entangler ring — the circuit family
    most near-term applications compile, and a routing workload whose
    interaction graph is a cycle.
    """
    if num_qubits < 2:
        raise ValueError("ansatz needs at least two qubits")
    rng = random.Random(seed)
    circuit = Circuit(num_qubits, name=f"hea{num_qubits}x{layers}")
    for _ in range(layers):
        for q in range(num_qubits):
            circuit.ry(rng.uniform(-math.pi, math.pi), q)
            circuit.rz(rng.uniform(-math.pi, math.pi), q)
        for q in range(num_qubits):
            circuit.cnot(q, (q + 1) % num_qubits)
    return circuit


def quantum_volume_layers(
    num_qubits: int, depth: int, seed: int = 0
) -> Circuit:
    """Alternating random-pairing entangling layers (quantum-volume style).

    Each layer randomly pairs the qubits and applies a CNOT dressed with
    random single-qubit rotations on each pair — a dense, unstructured
    workload that stresses routers uniformly.
    """
    rng = random.Random(seed)
    circuit = Circuit(num_qubits, name=f"qv{num_qubits}x{depth}")
    for _ in range(depth):
        order = list(range(num_qubits))
        rng.shuffle(order)
        for i in range(0, num_qubits - 1, 2):
            a, b = order[i], order[i + 1]
            circuit.ry(rng.uniform(0, math.pi), a)
            circuit.rz(rng.uniform(0, 2 * math.pi), b)
            circuit.cnot(a, b)
    return circuit


#: Named workload families for bench parameterisation.  Each entry maps a
#: name to a zero-argument default-instance factory.
WORKLOADS = {
    "ghz": lambda: ghz(5),
    "qft": lambda: qft(4),
    "bv": lambda: bernstein_vazirani("1011"),
    "grover": lambda: grover(2, marked=3),
    "adder": lambda: cuccaro_adder(1),
    "qv": lambda: quantum_volume_layers(5, 4),
    "hea": lambda: hardware_efficient_ansatz(5, 3),
}


def get_workload(name: str) -> Circuit:
    """Default instance of the named workload family."""
    try:
        return WORKLOADS[name]()
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; available: {sorted(WORKLOADS)}")
