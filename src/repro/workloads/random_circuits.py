"""Random circuit generators for router stress testing.

Routing papers (Section III-B) evaluate on large suites of random and
RevLib circuits; these generators provide reproducible random workloads
with controllable width, size, and two-qubit-gate density.
"""

from __future__ import annotations

import math
import random

from ..core.circuit import Circuit

__all__ = ["random_circuit", "random_cnot_circuit", "random_clifford_t"]

_ONE_QUBIT = ("h", "x", "y", "z", "s", "t", "sdg", "tdg")


def random_circuit(
    num_qubits: int,
    num_gates: int,
    *,
    two_qubit_fraction: float = 0.5,
    parametrised: bool = True,
    seed: int = 0,
) -> Circuit:
    """A random circuit over the universal gate set.

    Args:
        num_qubits: Circuit width (>= 2 when two-qubit gates requested).
        num_gates: Total gate count.
        two_qubit_fraction: Probability of drawing a CNOT per slot.
        parametrised: Include random-angle rotations among the
            single-qubit choices.
        seed: RNG seed for reproducibility.
    """
    if num_qubits < 2 and two_qubit_fraction > 0:
        raise ValueError("two-qubit gates need at least two qubits")
    rng = random.Random(seed)
    circuit = Circuit(num_qubits, name=f"rand{num_qubits}x{num_gates}s{seed}")
    for _ in range(num_gates):
        if rng.random() < two_qubit_fraction:
            a, b = rng.sample(range(num_qubits), 2)
            circuit.cnot(a, b)
        else:
            q = rng.randrange(num_qubits)
            if parametrised and rng.random() < 0.3:
                axis = rng.choice(("rx", "ry", "rz"))
                angle = rng.uniform(-math.pi, math.pi)
                getattr(circuit, axis)(angle, q)
            else:
                getattr(circuit, rng.choice(_ONE_QUBIT))(q)
    return circuit


def random_cnot_circuit(num_qubits: int, num_cnots: int, seed: int = 0) -> Circuit:
    """CNOTs only — the pure routing workload (cf. the paper's Fig. 1b)."""
    rng = random.Random(seed)
    circuit = Circuit(num_qubits, name=f"cnots{num_qubits}x{num_cnots}s{seed}")
    for _ in range(num_cnots):
        a, b = rng.sample(range(num_qubits), 2)
        circuit.cnot(a, b)
    return circuit


def random_clifford_t(num_qubits: int, num_gates: int, seed: int = 0) -> Circuit:
    """Random Clifford+T circuit (H, S, T, CNOT) — fault-tolerant flavour."""
    rng = random.Random(seed)
    circuit = Circuit(num_qubits, name=f"cliffordt{num_qubits}x{num_gates}s{seed}")
    for _ in range(num_gates):
        choice = rng.random()
        if choice < 0.4 and num_qubits >= 2:
            a, b = rng.sample(range(num_qubits), 2)
            circuit.cnot(a, b)
        else:
            q = rng.randrange(num_qubits)
            getattr(circuit, rng.choice(("h", "s", "t")))(q)
    return circuit
