"""The worked example circuits of the paper.

The paper's running example (Fig. 1) is a four-qubit circuit mixing
single-qubit gates with five CNOTs whose first CNOT has control ``q3``
and target ``q4`` — the gate that is "not allowed" on IBM QX4 under the
placement ``q_i -> Q_i`` (Section IV).  The exact figure artwork is not
machine-readable, so the circuit here is reconstructed to satisfy every
property the text states about it:

* four program qubits ``q1..q4`` (indices 0..3 here), single-qubit H/T
  gates plus five CNOTs, the first being ``CNOT(q3, q4)``;
* under placement ``q_i -> Q_i`` on IBM QX4 that first CNOT violates the
  coupling constraints (Fig. 3);
* its interaction graph contains a triangle, so on the (bipartite,
  triangle-free) Surface-17 lattice no placement makes every CNOT pair
  adjacent — Qmap needs exactly one SWAP (Fig. 5);
* the naive / heuristic [54] / exact [57] QX4 mappings of Fig. 3 rank
  naive >= heuristic >= exact in overhead.

Fig. 2's flow example uses three program qubits with H and CNOT gates on
Surface-7; :func:`fig2_circuit` provides that fragment.
"""

from __future__ import annotations

from ..core.circuit import Circuit
from ..mapping.placement import Placement

__all__ = [
    "fig1_circuit",
    "fig1_cnot_skeleton",
    "fig2_circuit",
    "fig1_qx4_placement",
]


def fig1_circuit() -> Circuit:
    """The paper's Fig. 1(a) example circuit (reconstruction, see module doc).

    Program indices 0..3 stand for the paper's ``q1..q4``.
    """
    circuit = Circuit(4, name="fig1")
    circuit.h(0)         # H on q1
    circuit.t(3)         # T on q4
    circuit.cnot(2, 3)   # CNOT(q3, q4) -- the first CNOT of Section IV
    circuit.h(2)
    circuit.cnot(0, 2)   # CNOT(q1, q3)
    circuit.t(1)
    circuit.cnot(3, 1)   # CNOT(q4, q2)
    circuit.cnot(1, 2)   # CNOT(q2, q3)
    circuit.h(3)
    circuit.cnot(0, 2)   # CNOT(q1, q3)
    return circuit


def fig1_cnot_skeleton() -> Circuit:
    """Fig. 1(b): the example with "all single-qubit gates removed"."""
    skeleton = fig1_circuit().only_two_qubit()
    skeleton.name = "fig1b"
    return skeleton


def fig1_qx4_placement(num_physical: int = 5) -> Placement:
    """The Section IV placement ``q1..q4 -> Q1..Q4`` (physical Q0 free)."""
    return Placement.from_partial(
        {0: 1, 1: 2, 2: 3, 3: 4}, num_program=4, num_physical=num_physical
    )


def fig2_circuit() -> Circuit:
    """The three-qubit H/CNOT fragment of the paper's Fig. 2 flow example."""
    circuit = Circuit(3, name="fig2")
    circuit.h(0)
    circuit.cnot(0, 1)
    circuit.h(2)
    circuit.cnot(1, 2)
    circuit.cnot(0, 2)
    return circuit
