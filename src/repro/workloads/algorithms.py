"""Further textbook algorithm workloads.

Extends :mod:`repro.workloads.standard` with the remaining classics the
mapping literature benchmarks on: quantum phase estimation (built on the
inverse QFT), Deutsch-Jozsa, W-state preparation, and the hidden-shift
style bent-function circuits.
"""

from __future__ import annotations

import math

from ..core.circuit import Circuit
from .standard import qft

__all__ = [
    "phase_estimation",
    "deutsch_jozsa",
    "w_state",
    "hidden_shift",
]


def phase_estimation(counting_qubits: int, phase: float) -> Circuit:
    """Quantum phase estimation of ``U = Rz``-like phase gate.

    Estimates ``phase`` (in turns, i.e. the eigenvalue is
    ``exp(2*pi*i*phase)``) of the single-qubit phase unitary applied to
    the eigenstate |1>.  Qubits ``0 .. counting_qubits - 1`` form the
    counting register (qubit 0 the most significant bit of the result);
    the last qubit carries the eigenstate.

    Measuring the counting register yields ``round(phase * 2**n)`` with
    certainty when the phase is an exact ``n``-bit fraction.
    """
    if counting_qubits < 1:
        raise ValueError("need at least one counting qubit")
    n = counting_qubits
    circuit = Circuit(n + 1, name=f"qpe{n}")
    target = n
    circuit.x(target)  # eigenstate |1> of the phase gate
    for q in range(n):
        circuit.h(q)
    # Controlled-U^(2^k): qubit q controls 2^(n-1-q) applications.
    for q in range(n):
        repetitions = 2 ** (n - 1 - q)
        angle = 2.0 * math.pi * phase * repetitions
        circuit.cp(angle, q, target)
    # Inverse QFT on the counting register: after kickback the register
    # holds QFT|phase * 2^n>, so the full inverse transform recovers the
    # binary expansion exactly.
    for gate in qft(n).inverse().gates:
        circuit.append(gate)
    return circuit


def deutsch_jozsa(num_qubits: int, oracle: str = "balanced") -> Circuit:
    """Deutsch-Jozsa on ``num_qubits`` data qubits plus one ancilla.

    Args:
        num_qubits: Data register width.
        oracle: ``"constant0"``, ``"constant1"``, or ``"balanced"`` (the
            balanced function is the parity of the first data qubit).

    Measuring the data register gives all zeros iff the function is
    constant.
    """
    if oracle not in ("constant0", "constant1", "balanced"):
        raise ValueError(f"unknown oracle {oracle!r}")
    n = num_qubits
    circuit = Circuit(n + 1, name=f"dj{n}_{oracle}")
    ancilla = n
    circuit.x(ancilla)
    for q in range(n + 1):
        circuit.h(q)
    if oracle == "constant1":
        circuit.x(ancilla)
    elif oracle == "balanced":
        circuit.cnot(0, ancilla)
    for q in range(n):
        circuit.h(q)
    for q in range(n):
        circuit.measure(q)
    return circuit


def w_state(num_qubits: int) -> Circuit:
    """Prepare the W state (equal superposition of one-hot strings).

    Uses the standard cascade of partial rotations and CNOTs: qubit 0
    starts in |1> and the excitation is coherently shared down the line.
    """
    if num_qubits < 1:
        raise ValueError("need at least one qubit")
    circuit = Circuit(num_qubits, name=f"w{num_qubits}")
    circuit.x(0)
    for k in range(1, num_qubits):
        # Controlled rotation sharing 1/(n-k+1) of the remaining weight,
        # implemented as Ry conjugation around a CNOT (a controlled-Ry).
        remaining = num_qubits - k + 1
        theta = 2.0 * math.acos(math.sqrt(1.0 / remaining))
        circuit.ry(theta / 2.0, k)
        circuit.cnot(k - 1, k)
        circuit.ry(-theta / 2.0, k)
        circuit.cnot(k - 1, k)
        circuit.cnot(k, k - 1)
    return circuit


def hidden_shift(shift: str) -> Circuit:
    """A Clifford hidden-shift circuit for the bit string ``shift``.

    Uses the Maiorana-McFarland bent function given by the full CZ
    pairing of adjacent qubits, which requires an *even* number of
    qubits.  Structure: Hadamard wall, shift (X on the set bits), CZ
    ladder, shift again, Hadamard wall, CZ ladder, Hadamard wall.
    Measuring yields ``shift``.  A routing-friendly benchmark family
    with tunable width.
    """
    if not shift or any(ch not in "01" for ch in shift):
        raise ValueError("shift must be a non-empty bit string")
    if len(shift) % 2 != 0:
        raise ValueError("hidden_shift needs an even number of qubits")
    n = len(shift)
    circuit = Circuit(n, name=f"hs{shift}")

    def walls() -> None:
        for q in range(n):
            circuit.h(q)

    def apply_shift() -> None:
        for q, bit in enumerate(shift):
            if bit == "1":
                circuit.x(q)

    def ladder() -> None:
        for q in range(0, n - 1, 2):
            circuit.cz(q, q + 1)

    walls()
    apply_shift()
    ladder()
    apply_shift()
    walls()
    ladder()
    walls()
    for q in range(n):
        circuit.measure(q)
    return circuit
