"""repro — a quantum circuit mapping toolkit.

Reproduction of C. G. Almudever, L. Lao, R. Wille, G. G. Guerreschi,
"Realizing Quantum Algorithms on Real Quantum Computing Devices",
DATE 2020: a complete, retargetable compiler stack that adapts quantum
circuits to the constraints of real quantum processors (gate
decomposition, initial placement, SWAP-based routing, and
control-constraint-aware scheduling), together with device models for
IBM QX4/QX5 and the Surface-7/17 chips, a statevector simulator for
verification, workload generators, and benchmark harnesses regenerating
every figure of the paper.

Quickstart::

    from repro import Circuit, get_device, compile_circuit

    circuit = Circuit(3).h(0).cnot(0, 1).cnot(1, 2)
    device = get_device("ibm_qx4")
    result = compile_circuit(circuit, device, router="sabre")
    print(result.summary())
"""

__version__ = "1.0.0"

from .core import Circuit, DependencyGraph, Gate
from .core.pipeline import (
    CompilationResult,
    PassConfig,
    compile_circuit,
    compile_with_config,
)
from .core.snapshot import ExecutionSnapshot, GateColor
from .devices import Device, get_device
from .decompose import decompose_circuit
from .mapping import Placement, Schedule, qmap, route
from .metrics import mapping_overhead
from .qasm import parse_qasm, to_cqasm, to_openqasm
from .service import CompileCache, CompileJob, CompileService, JobResult
from .sim import StateVector, simulate
from .sim.noise import NoiseModel
from .verify import equivalent_circuits, equivalent_mapped

__all__ = [
    "Circuit",
    "CompilationResult",
    "CompileCache",
    "CompileJob",
    "CompileService",
    "DependencyGraph",
    "Device",
    "ExecutionSnapshot",
    "Gate",
    "GateColor",
    "JobResult",
    "NoiseModel",
    "PassConfig",
    "Placement",
    "Schedule",
    "StateVector",
    "__version__",
    "compile_circuit",
    "compile_with_config",
    "decompose_circuit",
    "equivalent_circuits",
    "equivalent_mapped",
    "get_device",
    "mapping_overhead",
    "parse_qasm",
    "qmap",
    "route",
    "simulate",
    "to_cqasm",
    "to_openqasm",
]
