"""Quantum device models.

The paper's compiler (Fig. 2) takes two inputs: the algorithm and "a
description of the machine, possibly including the control electronics in
addition to the quantum hardware".  :class:`Device` is that description:

* the **coupling graph** — which ordered qubit pairs may host a two-qubit
  gate.  For IBM QX devices the edges are *directed* (control/target roles
  are fixed, Section IV); for Surface-17 they are symmetric (Section V);
* the **native gate set** and per-gate **durations** in clock cycles;
* optionally the **control-electronics constraints** of Section V
  (shared microwave generators per frequency group, shared measurement
  feedlines, CZ parking), modelled by :class:`ControlConstraints`.

Devices can be serialised to and from plain dictionaries / JSON, mirroring
Qmap's "configuration file" retargetability: *every device is (almost)
equal before the compiler* (Section VI).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from functools import cached_property, lru_cache
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import networkx as nx

from ..core.circuit import Circuit
from ..core.gates import Gate, canonical_name

__all__ = ["ControlConstraints", "Device", "Violation"]

#: Fallback duration (in cycles) for gates without an explicit entry.
DEFAULT_DURATION = 1


@dataclass(frozen=True)
class ControlConstraints:
    """Classical-control restrictions of a superconducting chip (Sec. V).

    Attributes:
        frequency_group: Qubit index -> frequency group id.  Lower ids are
            *higher* frequencies (group 0 is f1, with f1 > f2 > f3).
            Qubits in the same group share one arbitrary waveform
            generator: in any cycle they may all run the *same*
            single-qubit gate, but two *different* single-qubit gates in
            one group cannot start in the same cycle.
        feedline: Qubit index -> measurement feedline id.  Measurements on
            one feedline may start together, but a new measurement cannot
            start while another on the same feedline is in flight.
        park_on_cz: When True, a CZ between a higher- and lower-frequency
            qubit forces every *other* neighbour of the detuned (higher
            frequency) qubit that sits at the operating frequency to be
            "parked": no gate may act on it while the CZ runs.
    """

    frequency_group: Mapping[int, int] = field(default_factory=dict)
    feedline: Mapping[int, int] = field(default_factory=dict)
    park_on_cz: bool = True

    def same_awg(self, a: int, b: int) -> bool:
        """True when qubits ``a`` and ``b`` share a waveform generator."""
        ga = self.frequency_group.get(a)
        gb = self.frequency_group.get(b)
        return ga is not None and ga == gb

    def same_feedline(self, a: int, b: int) -> bool:
        """True when qubits ``a`` and ``b`` share a measurement feedline."""
        fa = self.feedline.get(a)
        fb = self.feedline.get(b)
        return fa is not None and fa == fb

    def parked_qubits(self, a: int, b: int, neighbours: Mapping[int, Sequence[int]]) -> set[int]:
        """Qubits that must park while a CZ runs on ``(a, b)``.

        Args:
            a, b: The CZ operands.
            neighbours: Adjacency of the device's undirected coupling
                graph.

        Returns:
            The set of spectator qubits frozen for the CZ duration
            (empty when parking is disabled or frequencies are unknown).
        """
        if not self.park_on_cz:
            return set()
        fa = self.frequency_group.get(a)
        fb = self.frequency_group.get(b)
        if fa is None or fb is None or fa == fb:
            return set()
        # The higher-frequency operand (lower group id) detunes down to
        # the other operand's frequency; spectators at that operating
        # frequency adjacent to the detuned qubit would interact.
        high, low = (a, b) if fa < fb else (b, a)
        operating = max(fa, fb)
        parked = set()
        for n in neighbours.get(high, ()):  # spectators of the detuned qubit
            if n in (a, b):
                continue
            if self.frequency_group.get(n) == operating:
                parked.add(n)
        return parked


@dataclass(frozen=True)
class Violation:
    """One way a gate fails to satisfy the device constraints."""

    gate_index: int
    gate: Gate
    reason: str

    def __str__(self) -> str:
        return f"gate #{self.gate_index} ({self.gate}): {self.reason}"


class Device:
    """A quantum processor description the mapper compiles against.

    Args:
        name: Identifier ("ibm_qx4", "surface17", ...).
        num_qubits: Number of physical qubits.
        edges: Ordered pairs ``(control, target)`` on which the native
            two-qubit gate may act.  For devices with symmetric two-qubit
            gates pass each physical connection once in either order and
            set ``symmetric=True``.
        native_gates: Canonical gate names executable without further
            decomposition (measure/prep/barrier are implicitly allowed).
        symmetric: Whether two-qubit gates work in both orientations of an
            edge (Surface-17: yes; IBM QX: no).
        two_qubit_gate: Name of the native entangling gate.
        durations: Gate name -> duration in clock cycles.
        cycle_time_ns: Duration of one clock cycle in nanoseconds.
        positions: Optional 2D coordinates per qubit for visualisation.
        constraints: Optional control-electronics restrictions.
        features: Capability flags beyond the gate set; currently
            ``"shuttling"`` marks quantum-dot style devices on which a
            qubit can physically move into an empty neighbouring site
            (paper Section VI-C).
    """

    def __init__(
        self,
        name: str,
        num_qubits: int,
        edges: Iterable[tuple[int, int]],
        native_gates: Iterable[str],
        *,
        symmetric: bool = True,
        two_qubit_gate: str = "cnot",
        durations: Mapping[str, int] | None = None,
        cycle_time_ns: float = 20.0,
        positions: Mapping[int, tuple[float, float]] | None = None,
        constraints: ControlConstraints | None = None,
        features: Iterable[str] = (),
    ) -> None:
        self.name = name
        self.num_qubits = int(num_qubits)
        edge_set = set()
        for a, b in edges:
            if not (0 <= a < num_qubits and 0 <= b < num_qubits) or a == b:
                raise ValueError(f"invalid edge ({a}, {b})")
            edge_set.add((a, b))
            if symmetric:
                edge_set.add((b, a))
        self.edges: frozenset[tuple[int, int]] = frozenset(edge_set)
        self.native_gates: frozenset[str] = frozenset(
            canonical_name(g) for g in native_gates
        ) | {"measure", "prep_z", "barrier", "i"}
        self.symmetric = bool(symmetric)
        self.two_qubit_gate = canonical_name(two_qubit_gate)
        self.durations: dict[str, int] = {
            canonical_name(k): int(v) for k, v in (durations or {}).items()
        }
        self.cycle_time_ns = float(cycle_time_ns)
        self.positions = dict(positions) if positions else None
        self.constraints = constraints
        self.features: frozenset[str] = frozenset(features)
        if "shuttling" in self.features:
            # Shuttle is executable wherever the hardware supports it.
            self.native_gates = self.native_gates | {"shuttle"}

    # ------------------------------------------------------------------
    # Graph structure
    # ------------------------------------------------------------------

    @cached_property
    def graph(self) -> nx.DiGraph:
        """Directed coupling graph (nodes = physical qubits)."""
        g = nx.DiGraph()
        g.add_nodes_from(range(self.num_qubits))
        g.add_edges_from(self.edges)
        return g

    @cached_property
    def undirected(self) -> nx.Graph:
        """Undirected coupling graph (connectivity regardless of roles)."""
        g = nx.Graph()
        g.add_nodes_from(range(self.num_qubits))
        g.add_edges_from(self.edges)
        return g

    @cached_property
    def neighbours(self) -> dict[int, tuple[int, ...]]:
        """Adjacency of the undirected coupling graph."""
        return {
            q: tuple(sorted(self.undirected.neighbors(q)))
            for q in range(self.num_qubits)
        }

    @cached_property
    def distance_matrix(self) -> list[list[int]]:
        """All-pairs shortest-path hop counts on the undirected graph.

        Unreachable pairs get a large sentinel (num_qubits squared) so
        heuristics still order candidates sensibly on disconnected chips.
        """
        sentinel = self.num_qubits * self.num_qubits
        dist = [[sentinel] * self.num_qubits for _ in range(self.num_qubits)]
        for src, lengths in nx.all_pairs_shortest_path_length(self.undirected):
            for dst, d in lengths.items():
                dist[src][dst] = d
        return dist

    @cached_property
    def distance_flat(self) -> list[int]:
        """Row-major flattening of :attr:`distance_matrix`.

        ``distance_flat[a * num_qubits + b]`` equals
        ``distance_matrix[a][b]``; search kernels use it to turn the
        double indirection of nested lists into one multiply-add lookup.
        """
        return [d for row in self.distance_matrix for d in row]

    def distance(self, a: int, b: int) -> int:
        """Hops between physical qubits ``a`` and ``b``."""
        return self.distance_matrix[a][b]

    def connected(self, a: int, b: int) -> bool:
        """True when a two-qubit gate may act on ``(a, b)`` in some order."""
        return (a, b) in self.edges or (b, a) in self.edges

    def has_edge(self, control: int, target: int) -> bool:
        """True when the orientation ``control -> target`` is allowed."""
        return (control, target) in self.edges

    @cached_property
    def undirected_edge_list(self) -> tuple[tuple[int, int], ...]:
        """Each physical connection once, as a sorted pair (cached)."""
        return tuple(sorted({(min(a, b), max(a, b)) for a, b in self.edges}))

    @cached_property
    def incident_edges(self) -> tuple[tuple[tuple[int, int], ...], ...]:
        """Per-qubit tuple of the undirected edges touching that qubit.

        Routers use this to enumerate candidate SWAPs around the active
        qubits without scanning the whole edge list.
        """
        incident: list[list[tuple[int, int]]] = [[] for _ in range(self.num_qubits)]
        for a, b in self.undirected_edge_list:
            incident[a].append((a, b))
            incident[b].append((a, b))
        return tuple(tuple(edges) for edges in incident)

    def undirected_edges(self) -> list[tuple[int, int]]:
        """Each physical connection once, as a sorted pair."""
        return list(self.undirected_edge_list)

    @cached_property
    def _shortest_path_cache(self):
        # cached_property builds this closure once *per instance*, so the
        # lru_cache is keyed only on (a, b) but can never be shared
        # between devices — two same-size chips with different couplings
        # must not serve each other's paths.
        @lru_cache(maxsize=None)
        def _path(a: int, b: int) -> tuple[int, ...]:
            try:
                return tuple(nx.shortest_path(self.undirected, a, b))
            except nx.NetworkXNoPath:
                raise ValueError(
                    f"no path between qubits {a} and {b} on device "
                    f"{self.name!r}: the coupling graph is disconnected"
                ) from None

        return _path

    def shortest_path(self, a: int, b: int) -> list[int]:
        """A shortest undirected path from ``a`` to ``b`` (inclusive).

        Raises:
            ValueError: When ``a`` and ``b`` lie in different connected
                components (:meth:`distance` returns the
                ``num_qubits**2`` sentinel for such pairs instead).
        """
        return list(self._shortest_path_cache(a, b))

    # ------------------------------------------------------------------
    # Gate admissibility
    # ------------------------------------------------------------------

    def duration(self, gate: Gate | str) -> int:
        """Duration of ``gate`` in clock cycles."""
        name = gate if isinstance(gate, str) else gate.name
        return self.durations.get(canonical_name(name), DEFAULT_DURATION)

    def duration_ns(self, gate: Gate | str) -> float:
        """Duration of ``gate`` in nanoseconds."""
        return self.duration(gate) * self.cycle_time_ns

    def is_native(self, gate: Gate) -> bool:
        """True when the gate name is in the native set."""
        return gate.name in self.native_gates

    def allows(self, gate: Gate) -> bool:
        """True when ``gate`` is executable as-is on this device."""
        return not self.violation(gate)

    def violation(self, gate: Gate) -> str | None:
        """Explain why ``gate`` cannot run, or ``None`` when it can."""
        if gate.is_barrier:
            return None
        if gate.name not in self.native_gates:
            return f"gate {gate.name!r} is not native (native: {sorted(self.native_gates)})"
        if len(gate.qubits) == 2:
            a, b = gate.qubits
            if not self.connected(a, b):
                return f"qubits {a} and {b} are not connected"
            if not self.symmetric and not gate.is_symmetric and not self.has_edge(a, b):
                return (
                    f"edge {a}->{b} has the wrong direction "
                    f"(only {b}->{a} is available)"
                )
        if len(gate.qubits) > 2:
            return f"{len(gate.qubits)}-qubit gates are not supported natively"
        return None

    def validate_circuit(self, circuit: Circuit) -> list[Violation]:
        """All constraint violations of ``circuit`` on this device."""
        if circuit.num_qubits > self.num_qubits:
            return [
                Violation(
                    -1,
                    Gate("barrier", ()),
                    f"circuit uses {circuit.num_qubits} qubits but device "
                    f"has {self.num_qubits}",
                )
            ]
        problems = []
        demolition = "demolition_measurement" in self.features
        destroyed: set[int] = set()
        for index, gate in enumerate(circuit.gates):
            reason = self.violation(gate)
            if reason:
                problems.append(Violation(index, gate, reason))
            if demolition:
                if gate.name == "prep_z":
                    destroyed.discard(gate.qubits[0])
                    continue
                dead = destroyed.intersection(gate.qubits)
                if dead and not gate.is_barrier:
                    problems.append(
                        Violation(
                            index,
                            gate,
                            f"qubit {min(dead)} was destroyed by a demolition "
                            "measurement and not re-initialised",
                        )
                    )
                if gate.is_measurement:
                    destroyed.add(gate.qubits[0])
        return problems

    def conforms(self, circuit: Circuit) -> bool:
        """True when every gate of ``circuit`` is executable."""
        return not self.validate_circuit(circuit)

    # ------------------------------------------------------------------
    # Serialisation ("configuration file" retargetability)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dictionary form, JSON-serialisable."""
        data: dict = {
            "name": self.name,
            "num_qubits": self.num_qubits,
            "edges": sorted(self.edges),
            "native_gates": sorted(self.native_gates),
            "symmetric": self.symmetric,
            "two_qubit_gate": self.two_qubit_gate,
            "durations": dict(sorted(self.durations.items())),
            "cycle_time_ns": self.cycle_time_ns,
        }
        if self.features:
            data["features"] = sorted(self.features)
        if self.positions:
            data["positions"] = {str(q): list(p) for q, p in self.positions.items()}
        if self.constraints:
            data["constraints"] = {
                "frequency_group": {
                    str(q): g for q, g in self.constraints.frequency_group.items()
                },
                "feedline": {str(q): f for q, f in self.constraints.feedline.items()},
                "park_on_cz": self.constraints.park_on_cz,
            }
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "Device":
        """Inverse of :meth:`to_dict`."""
        constraints = None
        if "constraints" in data:
            raw = data["constraints"]
            constraints = ControlConstraints(
                frequency_group={int(q): g for q, g in raw.get("frequency_group", {}).items()},
                feedline={int(q): f for q, f in raw.get("feedline", {}).items()},
                park_on_cz=raw.get("park_on_cz", True),
            )
        positions = None
        if "positions" in data:
            positions = {int(q): tuple(p) for q, p in data["positions"].items()}
        # Dicts produced by to_dict carry fully expanded edges, but a
        # hand-written config may list each connection once.  Passing the
        # flag through the constructor expands reverse orientations in
        # both cases (the expansion is idempotent on expanded inputs), so
        # `symmetric=True` always implies `has_edge` both ways.
        return cls(
            data["name"],
            data["num_qubits"],
            [tuple(e) for e in data["edges"]],
            data["native_gates"],
            symmetric=bool(data.get("symmetric", True)),
            two_qubit_gate=data.get("two_qubit_gate", "cnot"),
            durations=data.get("durations"),
            cycle_time_ns=data.get("cycle_time_ns", 20.0),
            positions=positions,
            constraints=constraints,
            features=data.get("features", ()),
        )

    def to_json(self, path: str | Path | None = None) -> str:
        """Serialise to JSON, optionally writing ``path``."""
        text = json.dumps(self.to_dict(), indent=2)
        if path is not None:
            Path(path).write_text(text)
        return text

    @classmethod
    def from_json(cls, source: str | Path) -> "Device":
        """Load a device from a JSON string or file path."""
        if isinstance(source, Path) or (
            isinstance(source, str) and not source.lstrip().startswith("{")
        ):
            text = Path(source).read_text()
        else:
            text = source
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:
        return (
            f"<Device {self.name!r} qubits={self.num_qubits} "
            f"edges={len(self.undirected_edges())} "
            f"native={sorted(self.native_gates - {'measure', 'prep_z', 'barrier', 'i'})}>"
        )
