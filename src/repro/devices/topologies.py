"""Coupling-graph builders for the device families the paper discusses.

The mapping literature reviewed in Section III-B classifies devices by
topology: linear arrays (1D), 2D nearest-neighbour grids, "more arbitrary
shapes" such as the IBM QX chips, and the all-to-all connectivity of
trapped-ion modules.  Each builder here returns ``(edges, positions)``
where ``edges`` is a list of qubit pairs (one per physical connection)
and ``positions`` maps qubits to 2D coordinates for visualisation.
"""

from __future__ import annotations

from itertools import combinations

__all__ = [
    "linear_edges",
    "ring_edges",
    "grid_edges",
    "all_to_all_edges",
    "heavy_hex_edges",
    "ibm_qx4_edges",
    "ibm_qx5_edges",
    "surface_edges",
    "SURFACE17_ROWS",
    "SURFACE7_ROWS",
]

Edges = list[tuple[int, int]]
Positions = dict[int, tuple[float, float]]


def linear_edges(num_qubits: int) -> tuple[Edges, Positions]:
    """A 1D chain: qubit ``i`` couples to ``i + 1``."""
    edges = [(i, i + 1) for i in range(num_qubits - 1)]
    positions = {i: (float(i), 0.0) for i in range(num_qubits)}
    return edges, positions


def ring_edges(num_qubits: int) -> tuple[Edges, Positions]:
    """A 1D chain closed into a ring (e.g. Rigetti Aspen-like loops)."""
    import math

    edges, _ = linear_edges(num_qubits)
    if num_qubits > 2:
        edges.append((num_qubits - 1, 0))
    positions = {
        i: (
            math.cos(2 * math.pi * i / max(num_qubits, 1)),
            math.sin(2 * math.pi * i / max(num_qubits, 1)),
        )
        for i in range(num_qubits)
    }
    return edges, positions


def grid_edges(rows: int, cols: int) -> tuple[Edges, Positions]:
    """A ``rows x cols`` 2D nearest-neighbour lattice (row-major order)."""
    edges: Edges = []
    positions: Positions = {}
    for r in range(rows):
        for c in range(cols):
            q = r * cols + c
            positions[q] = (float(c), float(-r))
            if c + 1 < cols:
                edges.append((q, q + 1))
            if r + 1 < rows:
                edges.append((q, q + cols))
    return edges, positions


def all_to_all_edges(num_qubits: int) -> tuple[Edges, Positions]:
    """Full connectivity, as inside a trapped-ion module (Sec. VI-C)."""
    import math

    edges = list(combinations(range(num_qubits), 2))
    positions = {
        i: (
            math.cos(2 * math.pi * i / max(num_qubits, 1)),
            math.sin(2 * math.pi * i / max(num_qubits, 1)),
        )
        for i in range(num_qubits)
    }
    return edges, positions


def heavy_hex_edges(rows: int, row_len: int) -> tuple[Edges, Positions]:
    """A heavy-hexagon lattice in the style of IBM's Falcon/Eagle chips.

    ``rows`` horizontal chains of ``row_len`` qubits each, joined through
    dedicated *bridge* qubits: between row ``r`` and ``r + 1`` a bridge
    sits every four columns, anchored at column 0 after even-numbered
    rows and column 2 after odd-numbered ones, which staggers the
    vertical links into the hexagon pattern.  Row qubits are numbered
    row-major first, bridges afterwards gap by gap.  Every qubit has
    degree at most three — the property that gives the topology its
    name and its low crosstalk.  ``rows=7, row_len=15`` yields a
    129-qubit device comparable to a 127-qubit Eagle.
    """
    edges: Edges = []
    positions: Positions = {}
    row_start = []
    q = 0
    for r in range(rows):
        row_start.append(q)
        for c in range(row_len):
            positions[q] = (float(c), float(-2 * r))
            if c:
                edges.append((q - 1, q))
            q += 1
    for r in range(rows - 1):
        anchor = 0 if r % 2 == 0 else 2
        for c in range(anchor, row_len, 4):
            positions[q] = (float(c), float(-2 * r - 1))
            edges.append((row_start[r] + c, q))
            edges.append((q, row_start[r + 1] + c))
            q += 1
    return edges, positions


def ibm_qx4_edges() -> tuple[Edges, Positions]:
    """The directed CNOT edges of the 5-qubit IBM QX4 (paper Fig. 3a).

    Edges are ``(control, target)``: only that orientation of the CNOT is
    available in hardware; the reverse needs four extra Hadamards.  The
    directions follow the calibration the paper's example uses, where a
    CNOT with control Q3 and target Q4 is *not* allowed (Section IV):
    the Q3-Q4 connection only supports Q4 as control.
    """
    edges = [(1, 0), (2, 0), (2, 1), (3, 2), (4, 2), (4, 3)]
    positions = {
        0: (2.0, 1.0),
        1: (1.0, 1.0),
        2: (1.5, 0.0),
        3: (1.0, -1.0),
        4: (2.0, -1.0),
    }
    return edges, positions


def ibm_qx5_edges() -> tuple[Edges, Positions]:
    """The directed CNOT edges of the 16-qubit IBM QX5."""
    edges = [
        (1, 0), (1, 2), (2, 3), (3, 4), (3, 14), (5, 4), (6, 5), (6, 7),
        (6, 11), (7, 10), (8, 7), (9, 8), (9, 10), (11, 10), (12, 5),
        (12, 11), (12, 13), (13, 4), (13, 14), (15, 0), (15, 2), (15, 14),
    ]
    positions: Positions = {}
    for q in range(8):
        positions[q] = (float(q), 1.0)
    for q in range(8, 16):
        positions[q] = (float(15 - q), 0.0)
    return edges, positions


#: Row lengths of the Surface-17 lattice; qubits are numbered row-major,
#: rows offset by half a site so each qubit couples to the one or two
#: nearest qubits of the adjacent rows (Versluis et al. 2017 layout).
SURFACE17_ROWS = (3, 4, 3, 4, 3)

#: Row lengths of the smaller Surface-7 chip used in the paper's Fig. 2.
SURFACE7_ROWS = (2, 3, 2)


def surface_edges(rows: tuple[int, ...]) -> tuple[Edges, Positions]:
    """Edges of an offset-row ("brick wall") surface-code lattice.

    Consecutive rows alternate between shorter and longer; a qubit at
    position ``i`` in a short row couples to positions ``i`` and ``i + 1``
    of an adjacent longer row (and symmetrically).  With
    ``rows=SURFACE17_ROWS`` this reproduces the Surface-17 topology of the
    paper's Fig. 4, where e.g. qubits 1 and 5 can interact but 1 and 7
    cannot.
    """
    starts = []
    total = 0
    for length in rows:
        starts.append(total)
        total += length
    edges: Edges = []
    positions: Positions = {}
    for r, length in enumerate(rows):
        offset = 0.0 if length == max(rows) else 0.5
        for i in range(length):
            positions[starts[r] + i] = (i + offset, float(-r))
    for r in range(len(rows) - 1):
        upper, lower = rows[r], rows[r + 1]
        for i in range(upper):
            q = starts[r] + i
            if lower > upper:
                # Lower row longer: connect to positions i and i + 1.
                edges.append((q, starts[r + 1] + i))
                edges.append((q, starts[r + 1] + i + 1))
            else:
                # Lower row shorter: connect to positions i - 1 and i.
                if i - 1 >= 0:
                    edges.append((q, starts[r + 1] + i - 1))
                if i < lower:
                    edges.append((q, starts[r + 1] + i))
    return edges, positions
