"""Registry of concrete device models.

Provides ready-made :class:`~repro.devices.device.Device` instances for
every machine the paper discusses:

* ``ibm_qx4`` / ``ibm_qx5`` — IBM QX transmon chips with *directed* CNOT
  coupling and the ``U(theta, phi, lam)`` + CNOT native set (Section IV);
* ``surface17`` / ``surface7`` — QuTech/Intel surface-code chips with
  symmetric CZ coupling, X/Y-rotation natives, and the full
  control-electronics constraint model (Section V and Fig. 2);
* parametric generics ``linear``, ``ring``, ``grid``, ``all_to_all`` for
  the topology families of Section III-B and VI-C.

Use :func:`get_device` with a name, e.g. ``get_device("ibm_qx4")`` or
``get_device("grid", rows=4, cols=4)``.
"""

from __future__ import annotations

from typing import Callable

from .device import ControlConstraints, Device
from .topologies import (
    SURFACE7_ROWS,
    SURFACE17_ROWS,
    all_to_all_edges,
    grid_edges,
    heavy_hex_edges,
    ibm_qx4_edges,
    ibm_qx5_edges,
    linear_edges,
    ring_edges,
    surface_edges,
)

__all__ = [
    "get_device",
    "available_devices",
    "ibm_qx4",
    "ibm_qx5",
    "surface17",
    "surface7",
    "linear_device",
    "ring_device",
    "grid_device",
    "all_to_all_device",
    "heavy_hex_device",
]

#: Native single-qubit set of the IBM QX devices: the Euler-decomposition
#: gate U(theta, phi, lam) plus the rotations it is built from.
IBM_NATIVE = ("u", "rz", "ry", "rx")

#: Native set of the Surface chips: arbitrary X/Y rotations (named 90 and
#: 180 degree instances included) and the CZ entangling gate.
SURFACE_NATIVE = ("rx", "ry", "x", "y", "x90", "xm90", "y90", "ym90", "cz")

#: Durations in cycles at 20 ns per cycle, following the Qmap paper [39]:
#: single-qubit rotations take one cycle, the flux-based CZ two cycles,
#: measurement 30 cycles (600 ns) and initialisation 10 cycles.
SURFACE_DURATIONS = {
    "rx": 1, "ry": 1, "x": 1, "y": 1,
    "x90": 1, "xm90": 1, "y90": 1, "ym90": 1,
    "cz": 2, "swap": 12, "measure": 30, "prep_z": 10, "i": 1,
}

#: Abstract IBM QX durations: one cycle per U, two per CNOT; a routing
#: SWAP is three CNOTs back to back.
IBM_DURATIONS = {
    "u": 1, "rx": 1, "ry": 1, "rz": 1,
    "cnot": 2, "swap": 6, "measure": 10, "i": 1,
}


def ibm_qx4() -> Device:
    """The 5-qubit IBM QX4 with its directed coupling graph (Fig. 3a)."""
    edges, positions = ibm_qx4_edges()
    return Device(
        "ibm_qx4",
        5,
        edges,
        IBM_NATIVE + ("cnot",),
        symmetric=False,
        two_qubit_gate="cnot",
        durations=IBM_DURATIONS,
        cycle_time_ns=80.0,
        positions=positions,
    )


def ibm_qx5() -> Device:
    """The 16-qubit IBM QX5 with its directed coupling graph."""
    edges, positions = ibm_qx5_edges()
    return Device(
        "ibm_qx5",
        16,
        edges,
        IBM_NATIVE + ("cnot",),
        symmetric=False,
        two_qubit_gate="cnot",
        durations=IBM_DURATIONS,
        cycle_time_ns=80.0,
        positions=positions,
    )


def _surface_frequency_groups(rows: tuple[int, ...]) -> dict[int, int]:
    """Three-frequency assignment for an offset-row surface lattice.

    The lattice is bipartite between short and long rows, so giving the
    long rows the middle frequency f2 (group 1) and alternating the short
    rows between f1 (group 0) and f3 (group 2) makes every coupled pair
    differ in frequency, as the CZ implementation of Section V requires.
    """
    groups: dict[int, int] = {}
    longest = max(rows)
    q = 0
    short_seen = 0
    for length in rows:
        if length == longest:
            group = 1
        else:
            group = 0 if short_seen % 2 == 0 else 2
            short_seen += 1
        for _ in range(length):
            groups[q] = group
            q += 1
    return groups


def surface17() -> Device:
    """The 17-qubit Surface-17 chip of the paper's Section V / Fig. 4.

    Includes the control-electronics constraints: three frequency groups
    sharing microwave generators, three measurement feedlines (the paper
    names the feedline {0, 2, 3, 6, 9, 12} explicitly; the remaining two
    groups follow the lattice diagonals), and CZ parking.
    """
    edges, positions = surface_edges(SURFACE17_ROWS)
    constraints = ControlConstraints(
        frequency_group=_surface_frequency_groups(SURFACE17_ROWS),
        feedline=_feedline_map(
            [
                (0, 2, 3, 6, 9, 12),     # given explicitly in the paper
                (1, 5, 8, 11, 15),
                (4, 7, 10, 13, 14, 16),
            ]
        ),
        park_on_cz=True,
    )
    return Device(
        "surface17",
        17,
        edges,
        SURFACE_NATIVE,
        symmetric=True,
        two_qubit_gate="cz",
        durations=SURFACE_DURATIONS,
        cycle_time_ns=20.0,
        positions=positions,
        constraints=constraints,
    )


def surface7() -> Device:
    """The 7-qubit Surface-7 chip used in the paper's Fig. 2."""
    edges, positions = surface_edges(SURFACE7_ROWS)
    constraints = ControlConstraints(
        frequency_group=_surface_frequency_groups(SURFACE7_ROWS),
        feedline=_feedline_map([(0, 1, 2, 3), (4, 5, 6)]),
        park_on_cz=True,
    )
    return Device(
        "surface7",
        7,
        edges,
        SURFACE_NATIVE,
        symmetric=True,
        two_qubit_gate="cz",
        durations=SURFACE_DURATIONS,
        cycle_time_ns=20.0,
        positions=positions,
        constraints=constraints,
    )


def _feedline_map(groups: list[tuple[int, ...]]) -> dict[int, int]:
    mapping: dict[int, int] = {}
    for line, members in enumerate(groups):
        for q in members:
            if q in mapping:
                raise ValueError(f"qubit {q} assigned to two feedlines")
            mapping[q] = line
    return mapping


def linear_device(num_qubits: int, two_qubit_gate: str = "cnot") -> Device:
    """A 1D nearest-neighbour chain with symmetric coupling."""
    edges, positions = linear_edges(num_qubits)
    return _generic(f"linear{num_qubits}", num_qubits, edges, positions, two_qubit_gate)


def ring_device(num_qubits: int, two_qubit_gate: str = "cnot") -> Device:
    """A 1D ring with symmetric coupling."""
    edges, positions = ring_edges(num_qubits)
    return _generic(f"ring{num_qubits}", num_qubits, edges, positions, two_qubit_gate)


def grid_device(rows: int, cols: int, two_qubit_gate: str = "cnot") -> Device:
    """A rows-by-cols 2D nearest-neighbour grid with symmetric coupling."""
    edges, positions = grid_edges(rows, cols)
    return _generic(
        f"grid{rows}x{cols}", rows * cols, edges, positions, two_qubit_gate
    )


def all_to_all_device(num_qubits: int, two_qubit_gate: str = "cnot") -> Device:
    """Full connectivity, like a trapped-ion module (Section VI-C)."""
    edges, positions = all_to_all_edges(num_qubits)
    return _generic(f"ions{num_qubits}", num_qubits, edges, positions, two_qubit_gate)


def heavy_hex_device(
    rows: int, row_len: int, two_qubit_gate: str = "cnot"
) -> Device:
    """A heavy-hexagon lattice (IBM Falcon/Eagle style) with bridges."""
    edges, positions = heavy_hex_edges(rows, row_len)
    num_qubits = len(positions)
    return _generic(
        f"heavyhex{num_qubits}", num_qubits, edges, positions, two_qubit_gate
    )


def _generic(
    name: str,
    num_qubits: int,
    edges: list[tuple[int, int]],
    positions: dict[int, tuple[float, float]],
    two_qubit_gate: str,
) -> Device:
    native = IBM_NATIVE + ("h", "s", "sdg", "t", "tdg", "x", "y", "z", two_qubit_gate)
    durations = dict(IBM_DURATIONS)
    durations[two_qubit_gate] = 2
    return Device(
        name,
        num_qubits,
        edges,
        native,
        symmetric=True,
        two_qubit_gate=two_qubit_gate,
        durations=durations,
        cycle_time_ns=20.0,
        positions=positions,
    )


_FIXED: dict[str, Callable[[], Device]] = {
    "ibm_qx4": ibm_qx4,
    "ibm_qx5": ibm_qx5,
    "surface17": surface17,
    "surface7": surface7,
}

_PARAMETRIC = {
    "linear", "ring", "grid", "all_to_all", "heavy_hex", "dots", "iontrap",
    "photonic",
}


def available_devices() -> list[str]:
    """Names accepted by :func:`get_device`."""
    return sorted(_FIXED) + sorted(_PARAMETRIC)


def get_device(name: str, **params) -> Device:
    """Build a device by registry name.

    Examples:
        >>> get_device("ibm_qx4").num_qubits
        5
        >>> get_device("grid", rows=2, cols=3).num_qubits
        6
    """
    key = name.lower()
    if key in _FIXED:
        if params:
            raise TypeError(f"device {name!r} takes no parameters")
        return _FIXED[key]()
    if key == "linear":
        return linear_device(**params)
    if key == "ring":
        return ring_device(**params)
    if key == "grid":
        return grid_device(**params)
    if key == "all_to_all":
        return all_to_all_device(**params)
    if key == "heavy_hex":
        return heavy_hex_device(**params)
    if key == "dots":
        from .dots import quantum_dot_device

        return quantum_dot_device(**params)
    if key == "iontrap":
        from .ions import ion_trap_device

        return ion_trap_device(**params)
    if key == "photonic":
        from .ions import photonic_device

        return photonic_device(**params)
    raise KeyError(f"unknown device {name!r}; available: {available_devices()}")
