"""Trapped-ion and photonic device models (paper Section VI-C).

Trapped ions: "all-to-all connectivity, at least inside groups of tens
of ions ... However this desirable property comes at the price of
reduced two-qubit gate parallelism."  The model below couples every ion
pair through the Moelmer-Soerensen ``rxx`` interaction (mediated by the
shared vibrational bus) and carries the ``serial_two_qubit`` feature:
the bus supports only one entangling gate at a time, which the
constraint scheduler enforces.

Photonics: "limited to demolition measurements in which the qubit is
'destroyed' when measured ... One can generate a new photon to
re-initialize the qubit state."  The ``demolition_measurement`` feature
makes :meth:`repro.devices.device.Device.validate_circuit` reject gates
on a measured-but-not-reinitialised qubit;
:func:`repro.mapping.reinit.insert_photon_reinit` repairs circuits by
generating the new photon (``prep_z``).
"""

from __future__ import annotations

from .device import Device
from .topologies import all_to_all_edges, linear_edges

__all__ = ["ion_trap_device", "photonic_device"]

#: Ion gates are orders of magnitude slower than transmon gates; with a
#: 1 us cycle the relative durations still capture the structure: fast
#: single-qubit rotations, a much longer MS interaction, longer readout.
ION_DURATIONS = {
    "rx": 1, "ry": 1, "rz": 1,
    "x": 1, "y": 1, "z": 1, "x90": 1, "xm90": 1, "y90": 1, "ym90": 1,
    "rxx": 10, "swap": 30, "measure": 40, "prep_z": 10, "i": 1,
}

PHOTONIC_DURATIONS = {
    "rx": 1, "ry": 1, "rz": 1, "h": 1, "s": 1, "t": 1,
    "cz": 2, "cnot": 2, "swap": 6, "measure": 2, "prep_z": 4, "i": 1,
}


def ion_trap_device(num_qubits: int) -> Device:
    """A trapped-ion module: all-to-all ``rxx`` coupling, serial 2q gates."""
    edges, positions = all_to_all_edges(num_qubits)
    return Device(
        f"iontrap{num_qubits}",
        num_qubits,
        edges,
        ["rx", "ry", "rz", "x", "y", "z", "x90", "xm90", "y90", "ym90", "rxx"],
        symmetric=True,
        two_qubit_gate="rxx",
        durations=ION_DURATIONS,
        cycle_time_ns=1000.0,
        positions=positions,
        features=["serial_two_qubit"],
    )


def photonic_device(num_qubits: int) -> Device:
    """A photonic chain with demolition measurement (Section VI-C)."""
    edges, positions = linear_edges(num_qubits)
    return Device(
        f"photonic{num_qubits}",
        num_qubits,
        edges,
        ["rx", "ry", "rz", "h", "s", "sdg", "t", "tdg",
         "x", "y", "z", "cz", "cnot"],
        symmetric=True,
        two_qubit_gate="cz",
        durations=PHOTONIC_DURATIONS,
        cycle_time_ns=1.0,
        positions=positions,
        features=["demolition_measurement"],
    )
