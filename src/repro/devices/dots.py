"""Silicon quantum-dot device models (paper Section VI-C).

"In silicon quantum dots the role of qubits is played by the spin of
electrons confined in electromagnetic potential wells called dots. ...
certain dots can be momentarily empty and electrons can be moved to
empty dots in a way that maintains the qubit coherence, the so called
shuttling operation.  The electron movement can be interpreted either as
a change in the device connectivity or as an alternative qubit routing
not based on SWAP gates.  Specialized mappers are required to take full
advantage of these capabilities."

A dot array here is a 2D grid whose *sites* outnumber the electrons: the
extra sites are empty and shuttling a qubit into an adjacent empty site
is a single cheap native operation (the ``shuttle`` gate), far cheaper
than the three exchange-based CNOTs a SWAP costs.  The specialised
mapper is :func:`repro.mapping.routing.shuttle.route_shuttle`.
"""

from __future__ import annotations

from .device import Device
from .topologies import grid_edges

__all__ = ["quantum_dot_device"]

#: Exchange-interaction two-qubit gate duration in cycles.
_DOT_DURATIONS = {
    "u": 1, "rx": 1, "ry": 1, "rz": 1,
    "h": 1, "s": 1, "sdg": 1, "t": 1, "tdg": 1, "x": 1, "y": 1, "z": 1,
    "cnot": 4, "swap": 12, "shuttle": 2, "measure": 20, "i": 1,
}


def quantum_dot_device(rows: int, cols: int) -> Device:
    """A ``rows x cols`` quantum-dot array with shuttling support.

    Every site couples to its grid neighbours via the exchange
    interaction (CNOT-capable); any qubit may additionally *shuttle* into
    an adjacent empty site.  How many sites are actually occupied is a
    property of the circuit placement, not the device: place an
    ``n``-qubit circuit on the array and the remaining sites are free.
    """
    edges, positions = grid_edges(rows, cols)
    return Device(
        f"dots{rows}x{cols}",
        rows * cols,
        edges,
        ["u", "rx", "ry", "rz", "h", "s", "sdg", "t", "tdg",
         "x", "y", "z", "cnot"],
        symmetric=True,
        two_qubit_gate="cnot",
        durations=_DOT_DURATIONS,
        cycle_time_ns=20.0,
        positions=positions,
        features=["shuttling"],
    )
