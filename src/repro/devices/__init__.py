"""Device models: coupling graphs, native gates, control constraints."""

from .device import ControlConstraints, Device, Violation
from .dots import quantum_dot_device
from .ions import ion_trap_device, photonic_device
from .library import (
    all_to_all_device,
    available_devices,
    get_device,
    grid_device,
    heavy_hex_device,
    ibm_qx4,
    ibm_qx5,
    linear_device,
    ring_device,
    surface7,
    surface17,
)

__all__ = [
    "ControlConstraints",
    "Device",
    "Violation",
    "all_to_all_device",
    "available_devices",
    "get_device",
    "grid_device",
    "heavy_hex_device",
    "ion_trap_device",
    "ibm_qx4",
    "ibm_qx5",
    "linear_device",
    "photonic_device",
    "quantum_dot_device",
    "ring_device",
    "surface7",
    "surface17",
]
