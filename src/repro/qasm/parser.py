"""OpenQASM 2.0 (subset) parser.

The paper's Fig. 2 compiler consumes "the quantum algorithm in terms of a
sequential list of quantum gates" expressed in a quantum assembly
language (OpenQASM 2.0 [16] or cQASM [17]).  This module parses the
OpenQASM 2.0 subset those gate lists use:

* the ``OPENQASM 2.0;`` header and ``include`` statements (ignored);
* ``qreg`` / ``creg`` declarations (multiple registers are flattened
  into one qubit index space in declaration order);
* gate applications with parameter expressions (numbers, ``pi``,
  ``+ - * /``, unary minus, parentheses), including register broadcast
  (``h q;`` applies H to every qubit of ``q``);
* ``measure``, ``reset``, and ``barrier``.

Custom ``gate`` definitions, ``if`` statements and ``opaque`` are outside
the subset and raise :class:`QasmError` with a position.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from ..core.circuit import Circuit
from ..core.gates import Gate

__all__ = ["QasmError", "parse_qasm"]

#: OpenQASM gate names handled natively, mapped to canonical names.
#: Includes the toolkit's extension spellings the writer emits for
#: non-standard native gates (x90 family, rxx, shuttle), so that
#: ``parse_qasm`` accepts everything ``to_openqasm`` can produce.
_DIRECT = {
    "h": "h", "x": "x", "y": "y", "z": "z", "s": "s", "sdg": "sdg",
    "t": "t", "tdg": "tdg", "id": "i", "rx": "rx", "ry": "ry", "rz": "rz",
    "u3": "u", "u": "u", "cx": "cnot", "cnot": "cnot", "cz": "cz",
    "swap": "swap", "ccx": "toffoli", "cswap": "fredkin", "cp": "cp",
    "cu1": "cp", "crz": "crz",
    "x90": "x90", "xm90": "xm90", "y90": "y90", "ym90": "ym90",
    "rxx": "rxx", "shuttle": "shuttle",
}

#: Parameter counts for the direct gates (for arity checking).
_PARAM_COUNT = {
    "rx": 1, "ry": 1, "rz": 1, "u3": 3, "u": 3, "cp": 1, "cu1": 1, "crz": 1,
    "rxx": 1,
}


class QasmError(ValueError):
    """Parse error with position information.

    Attributes:
        message: The bare description (without the position prefix).
        line: 1-based source line of the offending statement.
        column: 1-based column of the statement's first character on
            that line, when known (``None`` otherwise) — statements
            after the first on a shared line report where *they* start.
    """

    def __init__(self, message: str, line: int, column: int | None = None):
        where = f"line {line}"
        if column is not None:
            where += f", col {column}"
        super().__init__(f"{where}: {message}")
        self.message = message
        self.line = line
        self.column = column


@dataclass
class _Register:
    name: str
    size: int
    offset: int


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?)"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<op>->|[-+*/()\[\],;])"
    r")"
)


def _tokenize(text: str, line: int) -> list[str]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            if text[pos:].strip():
                raise QasmError(f"unexpected character {text[pos]!r}", line)
            break
        tokens.append(match.group(match.lastgroup))
        pos = match.end()
    return tokens


class _ExprParser:
    """Recursive-descent parser for parameter expressions."""

    def __init__(self, tokens: list[str], line: int):
        self.tokens = tokens
        self.pos = 0
        self.line = line

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise QasmError("unexpected end of expression", self.line)
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.take()
        if got != token:
            raise QasmError(f"expected {token!r}, got {got!r}", self.line)

    def expression(self) -> float:
        value = self.term()
        while self.peek() in ("+", "-"):
            op = self.take()
            rhs = self.term()
            value = value + rhs if op == "+" else value - rhs
        return value

    def term(self) -> float:
        value = self.factor()
        while self.peek() in ("*", "/"):
            op = self.take()
            rhs = self.factor()
            value = value * rhs if op == "*" else value / rhs
        return value

    def factor(self) -> float:
        token = self.take()
        if token == "-":
            return -self.factor()
        if token == "+":
            return self.factor()
        if token == "(":
            value = self.expression()
            self.expect(")")
            return value
        if token == "pi":
            return math.pi
        try:
            return float(token)
        except ValueError:
            raise QasmError(f"bad expression token {token!r}", self.line)


def _strip_comments(source: str) -> list[tuple[int, int, str]]:
    """Split into statements annotated with 1-based (line, col) starts.

    The position is where each statement's first non-blank character
    sits, so the second statement on a shared line reports its own
    column instead of inheriting the line's first statement.  Line
    breaks inside an unfinished statement are preserved as ``\\n`` in
    the buffer — without them, tokens ending one line fused with tokens
    opening the next (``h\\nq[0];`` used to parse as the gate ``hq``).
    """
    statements: list[tuple[int, int, str]] = []
    buffer = ""
    start_line = 1
    start_col = 1
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("//", 1)[0]
        for colno, ch in enumerate(line, start=1):
            if not buffer.strip():
                start_line, start_col = lineno, colno
            if ch in ";{}":
                statements.append(
                    (start_line, start_col, (buffer + ch).strip())
                )
                buffer = ""
            else:
                buffer += ch
        if buffer.strip():
            buffer += "\n"
    if buffer.strip():
        statements.append((start_line, start_col, buffer.strip()))
    return statements


def parse_qasm(source: str) -> Circuit:
    """Parse OpenQASM 2.0 ``source`` into a :class:`Circuit`.

    Raises:
        QasmError: on syntax errors or unsupported constructs.
    """
    registers: dict[str, _Register] = {}
    total_qubits = 0
    gates: list[Gate] = []
    name = ""

    for line, col, statement in _strip_comments(source):
        try:
            body = statement.rstrip(";").strip()
            if not body:
                continue
            head = body.split(None, 1)[0].lower()

            if head == "openqasm":
                continue
            if head == "include":
                continue
            if head == "creg":
                continue  # classical registers only receive measurements
            if head in ("gate", "opaque"):
                raise QasmError(f"unsupported construct {head!r}", line)

            condition: tuple[int, int] | None = None
            if head == "if" or body.startswith("if"):
                match = re.fullmatch(
                    r"if\s*\(\s*([A-Za-z_]\w*)\s*==\s*(\d+)\s*\)\s*(.+)",
                    body,
                    flags=re.S,
                )
                if match is None:
                    raise QasmError("malformed if statement", line)
                reg_name, value_text, body = match.groups()
                bit_match = re.fullmatch(r"c(\d+)", reg_name)
                if bit_match is None:
                    raise QasmError(
                        "conditions must use the per-qubit classical "
                        f"registers c<N> (got {reg_name!r})",
                        line,
                    )
                value = int(value_text)
                if value not in (0, 1):
                    raise QasmError("condition value must be 0 or 1", line)
                condition = (int(bit_match.group(1)), value)
                head = body.split(None, 1)[0].lower()
            if head == "qreg":
                match = re.fullmatch(
                    r"qreg\s+([A-Za-z_]\w*)\s*\[\s*(\d+)\s*\]", body
                )
                if match is None:
                    raise QasmError("malformed qreg declaration", line)
                reg_name, size = match.group(1), int(match.group(2))
                if reg_name in registers:
                    raise QasmError(f"duplicate register {reg_name!r}", line)
                registers[reg_name] = _Register(reg_name, size, total_qubits)
                total_qubits += size
                continue
            if condition is not None and head in ("barrier", "measure", "reset"):
                raise QasmError(f"cannot condition {head!r}", line)
            if head == "barrier":
                operands = body[len("barrier"):].strip()
                qubits = (
                    _parse_operands(operands, registers, line)
                    if operands else []
                )
                flat = [q for group in qubits for q in group]
                gates.append(Gate("barrier", tuple(flat)))
                continue
            if head == "measure":
                match = re.fullmatch(
                    r"measure\s+(.+?)\s*(?:->\s*.+)?", body, flags=re.S
                )
                if match is None:
                    raise QasmError("malformed measure", line)
                for group in _parse_operands(match.group(1), registers, line):
                    for q in group:
                        gates.append(Gate("measure", (q,)))
                continue
            if head == "reset":
                operands = body[len("reset"):].strip()
                for group in _parse_operands(operands, registers, line):
                    for q in group:
                        gates.append(Gate("prep_z", (q,)))
                continue

            # Generic gate application: name[(params)] operands
            match = re.fullmatch(
                r"([A-Za-z_]\w*)\s*(?:\((.*?)\))?\s*(.+)", body, flags=re.S
            )
            if match is None:
                raise QasmError(f"cannot parse statement {body!r}", line)
            gate_name, params_text, operand_text = match.groups()
            key = gate_name.lower()
            if key not in _DIRECT:
                raise QasmError(f"unsupported gate {gate_name!r}", line)
            params = _parse_params(params_text, line)
            expected = _PARAM_COUNT.get(key, 0)
            if len(params) != expected:
                raise QasmError(
                    f"gate {gate_name!r} expects {expected} parameters, "
                    f"got {len(params)}",
                    line,
                )
            canonical = _DIRECT[key]
            if key in ("cu1", "cp"):
                pass  # identical semantics
            operand_groups = _parse_operands(operand_text, registers, line)
            for qubits in _broadcast(operand_groups, line):
                gates.append(Gate(canonical, qubits, tuple(params), condition))
        except QasmError as exc:
            if exc.column is None and exc.line == line:
                # Attach where this statement starts, so errors on the
                # second statement of a shared line point at it and not
                # at the line's first statement.
                raise QasmError(exc.message, line, col) from None
            raise

    circuit = Circuit(total_qubits, name=name)
    for gate in gates:
        circuit.append(gate)
    return circuit


def _parse_params(text: str | None, line: int) -> list[float]:
    if not text or not text.strip():
        return []
    params = []
    for chunk in _split_top_level(text):
        parser = _ExprParser(_tokenize(chunk, line), line)
        params.append(parser.expression())
        if parser.peek() is not None:
            raise QasmError(f"trailing tokens in expression {chunk!r}", line)
    return params


def _split_top_level(text: str) -> list[str]:
    chunks, depth, current = [], 0, ""
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            chunks.append(current)
            current = ""
        else:
            current += ch
    chunks.append(current)
    return chunks


def _parse_operands(
    text: str, registers: dict[str, _Register], line: int
) -> list[list[int]]:
    """Each operand becomes the list of flat qubit indices it denotes."""
    groups: list[list[int]] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        match = re.fullmatch(r"([A-Za-z_]\w*)\s*(?:\[\s*(\d+)\s*\])?", chunk)
        if match is None:
            raise QasmError(f"malformed operand {chunk!r}", line)
        reg_name, index = match.group(1), match.group(2)
        reg = registers.get(reg_name)
        if reg is None:
            raise QasmError(f"unknown register {reg_name!r}", line)
        if index is None:
            groups.append([reg.offset + i for i in range(reg.size)])
        else:
            i = int(index)
            if i >= reg.size:
                raise QasmError(
                    f"index {i} out of range for register {reg_name!r}", line
                )
            groups.append([reg.offset + i])
    return groups


def _broadcast(groups: list[list[int]], line: int) -> list[tuple[int, ...]]:
    """OpenQASM register broadcast: pair up whole-register operands."""
    if not groups:
        raise QasmError("gate application without operands", line)
    width = max(len(g) for g in groups)
    for g in groups:
        if len(g) not in (1, width):
            raise QasmError("mismatched register sizes in broadcast", line)
    applications = []
    for i in range(width):
        applications.append(tuple(g[0] if len(g) == 1 else g[i] for g in groups))
    return applications
