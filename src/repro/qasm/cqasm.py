"""cQASM 1.0 (subset) parser.

The paper's Fig. 2 feeds the compiler cQASM [17]; this parser accepts
the subset our writer produces plus the common hand-written forms:

* ``version 1.0`` header and ``qubits N`` declaration;
* ``#`` comments;
* gate lines ``name q[i](, q[j])(, angle)`` with cQASM gate names
  (``cnot``, ``toffoli``, ``measure_z``, ``prep_z``, ``x90`` / ``mx90``,
  rotations with a trailing angle operand);
* parallel bundles ``{ a | b }`` — flattened to sequential gates, which
  is semantics-preserving because bundled gates act on disjoint qubits;
* ``wait n`` (timing only; ignored for circuit semantics).
"""

from __future__ import annotations

import math
import re

from ..core.circuit import Circuit
from ..core.gates import GATE_SPECS, Gate

__all__ = ["parse_cqasm", "CqasmError"]


class CqasmError(ValueError):
    """cQASM parse error with line information."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


#: cQASM gate spellings -> canonical names.
_NAMES = {
    "i": "i", "x": "x", "y": "y", "z": "z", "h": "h",
    "s": "s", "sdag": "sdg", "t": "t", "tdag": "tdg",
    "rx": "rx", "ry": "ry", "rz": "rz",
    "x90": "x90", "mx90": "xm90", "y90": "y90", "my90": "ym90",
    "cnot": "cnot", "cx": "cnot", "cz": "cz", "swap": "swap",
    "cr": "cp", "crk": None,  # crk uses integer k; handled separately
    "crz": "crz", "rxx": "rxx",
    "toffoli": "toffoli", "fredkin": "fredkin",
    "measure_z": "measure", "measure": "measure",
    "prep_z": "prep_z", "prep": "prep_z",
    "shuttle": "shuttle",
    "u3": "u",
}

_QUBIT_RE = re.compile(r"q\[\s*(\d+)\s*\]")


def parse_cqasm(source: str) -> Circuit:
    """Parse cQASM ``source`` into a :class:`Circuit`.

    Raises:
        CqasmError: on syntax errors or unsupported constructs.
    """
    num_qubits: int | None = None
    gates: list[Gate] = []

    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        lowered = line.lower()
        if lowered.startswith("version"):
            continue
        if lowered.startswith("qubits"):
            match = re.fullmatch(r"qubits\s+(\d+)", lowered)
            if match is None:
                raise CqasmError("malformed qubits declaration", lineno)
            num_qubits = int(match.group(1))
            continue
        if num_qubits is None:
            raise CqasmError("statement before 'qubits' declaration", lineno)
        if lowered.startswith("wait"):
            if re.fullmatch(r"wait\s+\d+", lowered) is None:
                raise CqasmError("malformed wait", lineno)
            continue
        if lowered.startswith("{"):
            body = line.strip()
            if not body.endswith("}"):
                raise CqasmError("unterminated bundle", lineno)
            inner = body[1:-1]
            bundle_gates = []
            used: set[int] = set()
            for part in inner.split("|"):
                gate = _parse_gate(part.strip(), lineno)
                overlap = used.intersection(gate.qubits)
                if overlap:
                    raise CqasmError(
                        f"bundle gates overlap on qubit {min(overlap)}", lineno
                    )
                used.update(gate.qubits)
                bundle_gates.append(gate)
            gates.extend(bundle_gates)
            continue
        gates.append(_parse_gate(line, lineno))

    if num_qubits is None:
        raise CqasmError("missing 'qubits' declaration", 1)
    circuit = Circuit(num_qubits)
    for gate in gates:
        try:
            circuit.append(gate)
        except ValueError as exc:
            raise CqasmError(str(exc), 0)
    return circuit


def _parse_gate(text: str, lineno: int) -> Gate:
    match = re.fullmatch(r"(c-)?([A-Za-z_][A-Za-z0-9_-]*)\s+(.*)", text)
    if match is None:
        raise CqasmError(f"cannot parse statement {text!r}", lineno)
    controlled = match.group(1) is not None
    name, operand_text = match.group(2).lower(), match.group(3)

    condition: tuple[int, int] | None = None
    if controlled:
        bit_match = re.match(r"\s*(!?)b\[\s*(\d+)\s*\]\s*,\s*", operand_text)
        if bit_match is None:
            raise CqasmError(
                "binary-controlled gate needs a leading b[<bit>] operand",
                lineno,
            )
        condition = (int(bit_match.group(2)), 0 if bit_match.group(1) else 1)
        operand_text = operand_text[bit_match.end():]

    qubits = [int(m.group(1)) for m in _QUBIT_RE.finditer(operand_text)]
    # Everything after the qubit operands that parses as a number is an
    # angle parameter.
    trailing = _QUBIT_RE.sub("", operand_text)
    params = []
    for chunk in trailing.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        try:
            params.append(_number(chunk))
        except ValueError:
            raise CqasmError(f"bad parameter {chunk!r}", lineno)

    if name == "crk":
        # Controlled phase by pi / 2^(k-1), k a positive integer.
        if len(params) != 1 or len(qubits) != 2:
            raise CqasmError("crk needs two qubits and integer k", lineno)
        k = int(params[0])
        if k < 1:
            raise CqasmError("crk k must be >= 1", lineno)
        return Gate("cp", tuple(qubits), (math.pi / 2 ** (k - 1),), condition)

    canonical = _NAMES.get(name)
    if canonical is None:
        raise CqasmError(f"unsupported gate {name!r}", lineno)
    spec = GATE_SPECS[canonical]
    if len(qubits) != spec.num_qubits:
        raise CqasmError(
            f"gate {name!r} expects {spec.num_qubits} qubits, got {len(qubits)}",
            lineno,
        )
    if len(params) != spec.num_params:
        raise CqasmError(
            f"gate {name!r} expects {spec.num_params} parameters, "
            f"got {len(params)}",
            lineno,
        )
    return Gate(canonical, tuple(qubits), tuple(params), condition)


def _number(text: str) -> float:
    lowered = text.lower()
    if lowered == "pi":
        return math.pi
    if lowered == "-pi":
        return -math.pi
    return float(text)
