"""QASM front end: OpenQASM 2.0 parsing and OpenQASM/cQASM writing."""

from .cqasm import CqasmError, parse_cqasm
from .parser import QasmError, parse_qasm
from .writer import schedule_to_cqasm, to_cqasm, to_openqasm

__all__ = [
    "CqasmError",
    "QasmError",
    "parse_cqasm",
    "parse_qasm",
    "schedule_to_cqasm",
    "to_cqasm",
    "to_openqasm",
]
