"""OpenQASM 2.0 and cQASM writers.

The inverse of :mod:`repro.qasm.parser`, plus a cQASM 1.0 writer in the
style of the paper's Fig. 2, including the bundle notation
``{ gate | gate }`` for operations scheduled in the same cycle — the
"series of scheduled operations" the compiler outputs.
"""

from __future__ import annotations

from ..core.circuit import Circuit
from ..core.gates import Gate
from ..mapping.scheduler import Schedule

__all__ = ["to_openqasm", "to_cqasm", "schedule_to_cqasm"]

#: Canonical gate name -> OpenQASM spelling.
_QASM_NAMES = {
    "i": "id",
    "cnot": "cx",
    "toffoli": "ccx",
    "fredkin": "cswap",
    "u": "u3",
    "cp": "cu1",
}

#: Canonical gate name -> cQASM spelling.
_CQASM_NAMES = {
    "i": "i",
    "sdg": "sdag",
    "tdg": "tdag",
    "cnot": "cnot",
    "cp": "cr",
    "toffoli": "toffoli",
    "u": "u3",
    "measure": "measure_z",
    "prep_z": "prep_z",
    "x90": "x90",
    "xm90": "mx90",
    "y90": "y90",
    "ym90": "my90",
}


def _fmt(value: float) -> str:
    # repr() is the shortest representation that round-trips exactly.
    return repr(float(value))


def to_openqasm(circuit: Circuit, *, creg: bool = True) -> str:
    """Serialise ``circuit`` as OpenQASM 2.0 (register name ``q``).

    Measurements write into per-qubit single-bit classical registers
    ``cN`` and classically conditioned gates emit OpenQASM's
    ``if(cN==v)`` form, so feedforward circuits (e.g. teleportation
    routing output) round-trip.
    """
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    needs_bits = sorted(
        {g.qubits[0] for g in circuit.gates if g.is_measurement}
        | {g.condition[0] for g in circuit.gates if g.condition is not None}
    )
    if creg:
        for bit in needs_bits:
            lines.append(f"creg c{bit}[1];")
    for gate in circuit.gates:
        lines.append(_openqasm_line(gate))
    return "\n".join(lines) + "\n"


def _openqasm_line(gate: Gate) -> str:
    if gate.is_barrier:
        if gate.qubits:
            operands = ",".join(f"q[{q}]" for q in gate.qubits)
        else:
            operands = "q"
        return f"barrier {operands};"
    if gate.is_measurement:
        q = gate.qubits[0]
        return f"measure q[{q}] -> c{q}[0];"
    if gate.name == "prep_z":
        return f"reset q[{gate.qubits[0]}];"
    name = _QASM_NAMES.get(gate.name, gate.name)
    params = ""
    if gate.params:
        params = "(" + ",".join(_fmt(p) for p in gate.params) + ")"
    operands = ",".join(f"q[{q}]" for q in gate.qubits)
    prefix = ""
    if gate.condition is not None:
        bit, value = gate.condition
        prefix = f"if(c{bit}=={value}) "
    return f"{prefix}{name}{params} {operands};"


def to_cqasm(circuit: Circuit) -> str:
    """Serialise ``circuit`` as sequential cQASM 1.0."""
    lines = ["version 1.0", f"qubits {circuit.num_qubits}", ""]
    for gate in circuit.gates:
        lines.append(_cqasm_line(gate))
    return "\n".join(lines) + "\n"


def _cqasm_line(gate: Gate) -> str:
    if gate.is_barrier:
        return "# barrier " + " ".join(f"q[{q}]" for q in gate.qubits)
    name = _CQASM_NAMES.get(gate.name, gate.name)
    operands = ", ".join(f"q[{q}]" for q in gate.qubits)
    if gate.condition is not None:
        # cQASM binary-controlled gate: c-<name> b[bit], operands.
        # Only value-1 conditions have direct syntax; a value-0 condition
        # is expressed via the complement marker "!".
        bit, value = gate.condition
        marker = f"b[{bit}]" if value == 1 else f"!b[{bit}]"
        operands = f"{marker}, {operands}"
        name = f"c-{name}"
    if gate.params:
        params = ", ".join(_fmt(p) for p in gate.params)
        return f"{name} {operands}, {params}"
    return f"{name} {operands}"


def schedule_to_cqasm(schedule: Schedule) -> str:
    """Serialise a timed schedule as cQASM with per-cycle bundles.

    Gates starting in the same cycle share a ``{ a | b }`` bundle,
    making the parallelism explicit — the output format of the paper's
    Fig. 2 compiler.
    """
    lines = ["version 1.0", f"qubits {schedule.num_qubits}", ""]
    by_cycle: dict[int, list] = {}
    for item in schedule:
        if item.gate.is_barrier:
            continue
        by_cycle.setdefault(item.start, []).append(item.gate)
    previous: int | None = None
    for cycle in sorted(by_cycle):
        if previous is not None:
            # Each bundle advances time by one cycle in cQASM; longer
            # gaps (multi-cycle gates in flight) need an explicit wait.
            gap = cycle - previous - 1
            if gap > 0:
                lines.append(f"wait {gap}")
        bundle = [_cqasm_line(g) for g in sorted(by_cycle[cycle], key=lambda g: g.qubits)]
        if len(bundle) == 1:
            lines.append(bundle[0])
        else:
            lines.append("{ " + " | ".join(bundle) + " }")
        previous = cycle
    return "\n".join(lines) + "\n"
