"""Control-signal (pulse-level) lowering.

The bottom of the paper's Fig. 2 depicts the compiler's final output
"in terms of the control signals that implement it": microwave pulses
from shared AWGs, flux pulses realising CZs, and feedline readout
tones.  This module lowers a timed :class:`~repro.mapping.scheduler.Schedule`
onto those *channels*:

* one **microwave channel per frequency group** (shared AWG, Sec. V) —
  identical single-qubit gates co-starting in one group merge into a
  *single* pulse event driving several qubits, which is precisely why
  different simultaneous gates in a group are impossible;
* without frequency groups, one microwave channel per qubit (dedicated
  control);
* one **flux channel per coupling edge** for two-qubit gates;
* one **readout channel per feedline** (or per qubit without feedline
  data), on which measurement tones of one feedline may share a start;
* preparations use the qubit's microwave/readout path (modelled on the
  readout channel).

:meth:`PulseProgram.validate` re-derives the control constraints at the
signal level: two different events must never overlap on one channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..devices.device import Device
from ..mapping.scheduler import Schedule

__all__ = ["Channel", "PulseEvent", "PulseProgram", "lower_to_pulses"]


@dataclass(frozen=True, order=True)
class Channel:
    """One classical control line.

    Attributes:
        kind: ``"awg"`` (shared microwave source), ``"drive"`` (dedicated
            microwave line), ``"flux"`` (two-qubit flux pulse line), or
            ``"readout"`` (measurement feedline).
        index: Identifier within the kind (group id, qubit, or edge key).
    """

    kind: str
    index: tuple

    def __str__(self) -> str:
        inner = ",".join(str(i) for i in self.index)
        return f"{self.kind}[{inner}]"


@dataclass
class PulseEvent:
    """One pulse on one channel.

    Attributes:
        channel: The control line carrying the pulse.
        start: Start cycle.
        duration: Length in cycles.
        label: Signal description (gate name and parameters).
        qubits: Every qubit the pulse acts on (several for a shared-AWG
            pulse driving a whole frequency group).
        feedforward: True when the pulse is gated on a measurement
            result (classically conditioned gate).
    """

    channel: Channel
    start: int
    duration: int
    label: str
    qubits: tuple[int, ...]
    feedforward: bool = False

    @property
    def end(self) -> int:
        return self.start + self.duration


@dataclass
class PulseProgram:
    """A channelised control program."""

    events: list[PulseEvent]
    num_qubits: int
    cycle_time_ns: float

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def latency(self) -> int:
        return max((event.end for event in self.events), default=0)

    def channels(self) -> list[Channel]:
        """Every channel used, sorted."""
        return sorted({event.channel for event in self.events})

    def events_on(self, channel: Channel) -> list[PulseEvent]:
        return sorted(
            (e for e in self.events if e.channel == channel),
            key=lambda e: e.start,
        )

    def validate(self) -> list[str]:
        """Channel-level conflicts: distinct events overlapping in time."""
        problems: list[str] = []
        for channel in self.channels():
            timeline = self.events_on(channel)
            for first, second in zip(timeline, timeline[1:]):
                if second.start < first.end:
                    problems.append(
                        f"channel {channel}: {second.label!r} (cycle "
                        f"{second.start}) overlaps {first.label!r} "
                        f"(ends {first.end})"
                    )
        return problems

    def timeline(self) -> str:
        """ASCII channel/cycle occupancy chart."""
        channels = self.channels()
        width = self.latency
        names = [str(c) for c in channels]
        pad = max((len(n) for n in names), default=0)
        lines = [
            f"{'cycle':>{pad}} "
            + "".join(str(t % 10) for t in range(width))
        ]
        for channel, name in zip(channels, names):
            row = ["."] * width
            for event in self.events_on(channel):
                mark = "~" if event.feedforward else "#"
                for t in range(event.start, min(event.end, width)):
                    row[t] = mark
            lines.append(f"{name:>{pad}} " + "".join(row))
        return "\n".join(lines)


def _microwave_channel(device: Device, qubit: int) -> Channel:
    constraints = device.constraints
    if constraints is not None and qubit in constraints.frequency_group:
        return Channel("awg", (constraints.frequency_group[qubit],))
    return Channel("drive", (qubit,))


def _readout_channel(device: Device, qubit: int) -> Channel:
    constraints = device.constraints
    if constraints is not None and qubit in constraints.feedline:
        return Channel("readout", (constraints.feedline[qubit],))
    return Channel("readout", (qubit,))


def lower_to_pulses(schedule: Schedule, device: Device) -> PulseProgram:
    """Lower a timed schedule to channelised pulse events.

    Identical single-qubit gates co-starting on one shared AWG channel
    merge into a single multi-qubit pulse event; everything else maps
    one gate to one event.

    Raises:
        ValueError: when the schedule violates the channel model (e.g.
            different gates sharing an AWG simultaneously) — lowering a
            schedule produced by
            :func:`~repro.mapping.control.schedule_with_constraints`
            always succeeds.
    """
    events: list[PulseEvent] = []
    # Merge key -> event, for shared-AWG single-qubit pulses.
    mergeable: dict[tuple, PulseEvent] = {}

    for item in schedule:
        gate = item.gate
        if gate.is_barrier:
            continue
        feedforward = gate.condition is not None
        if gate.is_measurement:
            channel = _readout_channel(device, gate.qubits[0])
            key = (channel, item.start, "readout")
            if key in mergeable:
                existing = mergeable[key]
                existing.qubits = tuple(
                    sorted(set(existing.qubits) | set(gate.qubits))
                )
                continue
            event = PulseEvent(
                channel, item.start, item.duration, "readout", gate.qubits
            )
            mergeable[key] = event
            events.append(event)
            continue
        if gate.name == "prep_z":
            channel = _readout_channel(device, gate.qubits[0])
            key = (channel, item.start, "init")
            if key in mergeable:
                existing = mergeable[key]
                existing.qubits = tuple(
                    sorted(set(existing.qubits) | set(gate.qubits))
                )
                continue
            event = PulseEvent(
                channel, item.start, item.duration, "init", gate.qubits
            )
            mergeable[key] = event
            events.append(event)
            continue
        if len(gate.qubits) == 2:
            a, b = sorted(gate.qubits)
            channel = Channel("flux", (a, b))
            label = gate.name if not gate.params else (
                f"{gate.name}({', '.join(f'{p:.3g}' for p in gate.params)})"
            )
            events.append(
                PulseEvent(
                    channel, item.start, item.duration, label,
                    gate.qubits, feedforward,
                )
            )
            continue
        # Single-qubit microwave pulse.
        qubit = gate.qubits[0]
        channel = _microwave_channel(device, qubit)
        label = gate.name if not gate.params else (
            f"{gate.name}({', '.join(f'{p:.3g}' for p in gate.params)})"
        )
        if channel.kind == "awg" and not feedforward:
            key = (channel, item.start, label)
            if key in mergeable:
                existing = mergeable[key]
                existing.qubits = tuple(sorted(set(existing.qubits) | {qubit}))
                continue
            event = PulseEvent(
                channel, item.start, item.duration, label, (qubit,)
            )
            mergeable[key] = event
            events.append(event)
        else:
            events.append(
                PulseEvent(
                    channel, item.start, item.duration, label,
                    (qubit,), feedforward,
                )
            )

    program = PulseProgram(events, schedule.num_qubits, schedule.cycle_time_ns)
    problems = program.validate()
    if problems:
        raise ValueError(
            "schedule violates the control-channel model:\n  "
            + "\n  ".join(problems[:5])
        )
    return program
