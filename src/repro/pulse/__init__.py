"""Pulse-level lowering: schedules to control-signal channel programs."""

from .events import Channel, PulseEvent, PulseProgram, lower_to_pulses

__all__ = ["Channel", "PulseEvent", "PulseProgram", "lower_to_pulses"]
