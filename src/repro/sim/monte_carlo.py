"""Monte-Carlo noisy simulation by stochastic Pauli-error injection.

The analytic reliability model of :mod:`repro.sim.noise` multiplies
per-gate success probabilities — the estimate the mapping literature
optimises for (Section III-B).  This module provides the *sampled*
counterpart used to validate it: every gate is followed, with its error
probability, by a uniformly random Pauli on one of its operand qubits
(a standard depolarising-channel unravelling), and measurements flip
their classical outcome with the readout error probability.

Two entry points:

* :func:`average_fidelity` — mean fidelity of noisy trajectories against
  the ideal final state, for unitary circuits; should track the analytic
  gate-error product (idle decoherence excluded by construction).
* :func:`sample_noisy_counts` — shot histograms including readout
  errors, for algorithm-level success-rate experiments.
"""

from __future__ import annotations

import numpy as np

from ..core.circuit import Circuit
from ..core.gates import Gate
from .noise import NoiseModel
from .statevector import StateVector, apply_gate, zero_state

__all__ = ["average_fidelity", "sample_noisy_counts"]

_PAULIS = ("x", "y", "z")


def _inject(state: np.ndarray, qubit: int, num_qubits: int, rng) -> np.ndarray:
    pauli = _PAULIS[rng.integers(3)]
    return apply_gate(state, Gate(pauli, (qubit,)), num_qubits)


def average_fidelity(
    circuit: Circuit,
    noise: NoiseModel,
    *,
    trials: int = 200,
    seed: int = 0,
) -> float:
    """Mean |<ideal|noisy>|^2 over Pauli-error trajectories.

    Args:
        circuit: A unitary circuit (no measurements/preparations).
        noise: Error model supplying per-gate error probabilities.
        trials: Number of noisy trajectories.
        seed: RNG seed.

    Returns:
        The mean fidelity in [0, 1]; with error-free noise this is 1.

    Raises:
        ValueError: when the circuit contains non-unitary operations.
    """
    for gate in circuit.gates:
        if not gate.is_unitary and not gate.is_barrier:
            raise ValueError("average_fidelity needs a unitary circuit")
    n = circuit.num_qubits
    rng = np.random.default_rng(seed)

    ideal = zero_state(n)
    for gate in circuit.gates:
        if gate.is_barrier:
            continue
        ideal = apply_gate(ideal, gate, n)

    total = 0.0
    for _ in range(trials):
        state = zero_state(n)
        for gate in circuit.gates:
            if gate.is_barrier:
                continue
            state = apply_gate(state, gate, n)
            error = noise.gate_error(gate)
            if error > 0 and rng.random() < error:
                victim = gate.qubits[int(rng.integers(len(gate.qubits)))]
                state = _inject(state, victim, n, rng)
        total += abs(np.vdot(ideal, state)) ** 2
    return total / trials


def sample_noisy_counts(
    circuit: Circuit,
    noise: NoiseModel,
    *,
    shots: int = 512,
    seed: int = 0,
    measure_qubits=None,
) -> dict[str, int]:
    """Shot histogram under Pauli-error injection and readout flips.

    Args:
        circuit: Circuit, possibly containing ``measure`` operations; any
            qubit without an explicit measure is measured at the end when
            listed in ``measure_qubits`` (default: all qubits).
        noise: Error model.
        shots: Number of noisy executions.
        seed: RNG seed.
        measure_qubits: Qubits reported in the outcome strings, in order
            (default: all qubits ascending).

    Returns:
        Mapping from bit string to occurrence count.
    """
    n = circuit.num_qubits
    report = list(measure_qubits) if measure_qubits is not None else list(range(n))
    rng = np.random.default_rng(seed)
    counts: dict[str, int] = {}

    for _ in range(shots):
        sv = StateVector(n, rng=rng)
        for gate in circuit.gates:
            if gate.is_barrier:
                continue
            sv.apply(gate)
            error = noise.gate_error(gate)
            if gate.is_unitary and error > 0 and rng.random() < error:
                victim = gate.qubits[int(rng.integers(len(gate.qubits)))]
                sv.state = _inject(sv.state, victim, n, rng)
            if gate.is_measurement and rng.random() < noise.error_measure:
                q = gate.qubits[0]
                sv.results[q] = 1 - sv.results[q]
        bits = []
        for q in report:
            if q in sv.results:
                bits.append(str(sv.results[q]))
            else:
                outcome = sv.measure(q)
                if rng.random() < noise.error_measure:
                    outcome = 1 - outcome
                bits.append(str(outcome))
        key = "".join(bits)
        counts[key] = counts.get(key, 0) + 1
    return counts
