"""Dense statevector simulator.

This is the reproduction's substitute for running circuits on the real
IBM QX4 / Surface-17 hardware: it provides ground truth for functional
equivalence of mapped circuits (see :mod:`repro.verify`) and for the
example algorithms.

State convention: an ``n``-qubit state is a complex vector of length
``2**n``; basis index bits are ordered with **qubit 0 as the most
significant bit**, so ``|q0 q1 ... q_{n-1}>`` maps to integer
``q0*2**(n-1) + ... + q_{n-1}``.  This matches the matrix convention in
:mod:`repro.core.gates`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.circuit import Circuit
from ..core.gates import Gate

__all__ = [
    "StateVector",
    "simulate",
    "zero_state",
    "basis_state",
    "apply_gate",
]


def zero_state(num_qubits: int) -> np.ndarray:
    """The all-zeros state |0...0>."""
    state = np.zeros(2**num_qubits, dtype=complex)
    state[0] = 1.0
    return state


def basis_state(num_qubits: int, bits: str | int) -> np.ndarray:
    """A computational basis state.

    Args:
        num_qubits: Number of qubits.
        bits: Either an integer index or a bit string like ``"0101"``
            (qubit 0 first, i.e. most significant).
    """
    index = int(bits, 2) if isinstance(bits, str) else int(bits)
    if not 0 <= index < 2**num_qubits:
        raise ValueError(f"basis index {index} out of range for {num_qubits} qubits")
    state = np.zeros(2**num_qubits, dtype=complex)
    state[index] = 1.0
    return state


def apply_gate(state: np.ndarray, gate: Gate, num_qubits: int) -> np.ndarray:
    """Apply a unitary ``gate`` to ``state`` and return the new vector.

    Non-unitary operations (measure, prep, barrier) are rejected; use
    :class:`StateVector` to run full programs including measurement.
    """
    matrix = gate.matrix()
    return _apply_matrix(state, matrix, gate.qubits, num_qubits)


def _apply_matrix(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    k = len(qubits)
    tensor = state.reshape([2] * num_qubits)
    # Move the operand axes to the front, in gate order.
    axes = list(qubits)
    rest = [q for q in range(num_qubits) if q not in set(axes)]
    tensor = np.transpose(tensor, axes + rest)
    tensor = tensor.reshape(2**k, -1)
    tensor = matrix @ tensor
    tensor = tensor.reshape([2] * num_qubits)
    # Undo the permutation.
    inverse = np.argsort(axes + rest)
    tensor = np.transpose(tensor, inverse)
    return tensor.reshape(-1)


class StateVector:
    """A mutable statevector with gate application and measurement.

    Measurement uses a supplied :class:`numpy.random.Generator` (or a
    seeded default) so runs are reproducible.
    """

    def __init__(
        self,
        num_qubits: int,
        state: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.num_qubits = num_qubits
        self.state = zero_state(num_qubits) if state is None else state.astype(complex)
        if self.state.shape != (2**num_qubits,):
            raise ValueError("state vector has wrong dimension")
        self.rng = rng or np.random.default_rng(0)
        #: Classical results of measure operations, keyed by qubit.
        self.results: dict[int, int] = {}

    def apply(self, gate: Gate) -> "StateVector":
        """Apply one gate (unitary, measure, prep_z, or barrier).

        Classically conditioned gates consult the recorded measurement
        result of their condition bit and are skipped when unsatisfied.

        Raises:
            RuntimeError: when a condition references a bit that has not
                been measured yet.
        """
        if gate.is_barrier:
            return self
        if gate.name == "measure":
            self.measure(gate.qubits[0])
            return self
        if gate.name == "prep_z":
            self._prep_z(gate.qubits[0])
            return self
        if gate.condition is not None:
            bit, value = gate.condition
            if bit not in self.results:
                raise RuntimeError(
                    f"gate {gate} conditioned on unmeasured qubit {bit}"
                )
            if self.results[bit] != value:
                return self
        self.state = apply_gate(self.state, gate, self.num_qubits)
        return self

    def run(self, circuit: Circuit) -> "StateVector":
        """Apply every gate of ``circuit`` in order."""
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("circuit and state have different qubit counts")
        for gate in circuit.gates:
            self.apply(gate)
        return self

    # ------------------------------------------------------------------
    # Measurement and probabilities
    # ------------------------------------------------------------------

    def probabilities(self) -> np.ndarray:
        """Probability of each basis outcome."""
        return np.abs(self.state) ** 2

    def probability_of(self, qubit: int, value: int) -> float:
        """Marginal probability that ``qubit`` measures to ``value``."""
        probs = self.probabilities().reshape([2] * self.num_qubits)
        marginal = probs.sum(axis=tuple(a for a in range(self.num_qubits) if a != qubit))
        return float(marginal[value])

    def measure(self, qubit: int) -> int:
        """Projectively measure ``qubit``; collapses the state."""
        p1 = self.probability_of(qubit, 1)
        outcome = int(self.rng.random() < p1)
        self._project(qubit, outcome)
        self.results[qubit] = outcome
        return outcome

    def sample_counts(self, shots: int, qubits: Sequence[int] | None = None) -> dict[str, int]:
        """Sample measurement outcomes without collapsing the state.

        Returns a histogram keyed by bit string (qubit order as given,
        defaulting to all qubits in index order).
        """
        qubits = list(qubits) if qubits is not None else list(range(self.num_qubits))
        probs = self.probabilities()
        draws = self.rng.choice(len(probs), size=shots, p=probs / probs.sum())
        counts: dict[str, int] = {}
        for index in draws:
            bits = format(index, f"0{self.num_qubits}b")
            key = "".join(bits[q] for q in qubits)
            counts[key] = counts.get(key, 0) + 1
        return counts

    # ------------------------------------------------------------------

    def _project(self, qubit: int, outcome: int) -> None:
        tensor = self.state.reshape([2] * self.num_qubits)
        index = [slice(None)] * self.num_qubits
        index[qubit] = 1 - outcome
        tensor[tuple(index)] = 0.0
        flat = tensor.reshape(-1)
        norm = np.linalg.norm(flat)
        if norm < 1e-12:
            raise RuntimeError("measurement projected onto zero-probability branch")
        self.state = flat / norm

    def _prep_z(self, qubit: int) -> None:
        outcome = self.measure(qubit)
        if outcome == 1:
            self.state = apply_gate(self.state, Gate("x", (qubit,)), self.num_qubits)
        self.results.pop(qubit, None)

    def fidelity(self, other: "StateVector | np.ndarray") -> float:
        """|<self|other>|^2."""
        vec = other.state if isinstance(other, StateVector) else other
        return float(abs(np.vdot(self.state, vec)) ** 2)


def simulate(
    circuit: Circuit,
    initial: np.ndarray | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Run ``circuit`` from ``initial`` (default |0...0>) and return the state."""
    sv = StateVector(circuit.num_qubits, initial, np.random.default_rng(seed))
    sv.run(circuit)
    return sv.state
