"""Stabilizer-tableau (CHP) simulator for Clifford circuits.

The statevector simulator caps out around 20 qubits; Clifford circuits
— which include every surface-code cycle — simulate in polynomial time
with the Aaronson–Gottesman tableau algorithm (CHP).  This backend
unlocks the paper's fault-tolerance context at real scale: a
distance-5 rotated surface code needs 49 qubits, hopeless for dense
vectors and trivial here.

The tableau holds ``2n`` generator rows (destabilizers then
stabilizers) of ``x``/``z`` bit matrices plus a sign bit; gates update
rows in O(n), measurements in O(n^2).  Supported operations: the
Clifford generators H, S (and Sdg), CNOT, the Paulis, CZ and SWAP (by
composition), ``measure``, ``prep_z``, and classically conditioned
Clifford gates.
"""

from __future__ import annotations

import numpy as np

from ..core.circuit import Circuit
from ..core.gates import Gate

__all__ = ["StabilizerState", "CLIFFORD_GATES"]

#: Gate names this backend executes directly or by composition.
CLIFFORD_GATES = frozenset(
    ["i", "h", "s", "sdg", "x", "y", "z", "cnot", "cz", "swap",
     "measure", "prep_z", "barrier"]
)


class StabilizerState:
    """An ``n``-qubit stabilizer state in CHP tableau form."""

    def __init__(self, num_qubits: int, rng: np.random.Generator | None = None):
        self.num_qubits = int(num_qubits)
        n = self.num_qubits
        self.rng = rng or np.random.default_rng(0)
        # Rows 0..n-1: destabilizers; rows n..2n-1: stabilizers.
        self.x = np.zeros((2 * n, n), dtype=np.uint8)
        self.z = np.zeros((2 * n, n), dtype=np.uint8)
        self.r = np.zeros(2 * n, dtype=np.uint8)
        for i in range(n):
            self.x[i, i] = 1          # destabilizer i = X_i
            self.z[n + i, i] = 1      # stabilizer i = Z_i
        #: Classical measurement results by qubit.
        self.results: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Elementary Clifford updates
    # ------------------------------------------------------------------

    def _h(self, a: int) -> None:
        self.r ^= self.x[:, a] & self.z[:, a]
        self.x[:, a], self.z[:, a] = self.z[:, a].copy(), self.x[:, a].copy()

    def _s(self, a: int) -> None:
        self.r ^= self.x[:, a] & self.z[:, a]
        self.z[:, a] ^= self.x[:, a]

    def _cnot(self, a: int, b: int) -> None:
        self.r ^= self.x[:, a] & self.z[:, b] & (self.x[:, b] ^ self.z[:, a] ^ 1)
        self.x[:, b] ^= self.x[:, a]
        self.z[:, a] ^= self.z[:, b]

    def _x(self, a: int) -> None:
        self.r ^= self.z[:, a]

    def _z(self, a: int) -> None:
        self.r ^= self.x[:, a]

    def _y(self, a: int) -> None:
        self.r ^= self.x[:, a] ^ self.z[:, a]

    # ------------------------------------------------------------------

    def apply(self, gate: Gate) -> "StabilizerState":
        """Apply one gate.

        Raises:
            ValueError: for non-Clifford gates.
        """
        if gate.is_barrier:
            return self
        if gate.condition is not None:
            bit, value = gate.condition
            if bit not in self.results:
                raise RuntimeError(
                    f"gate {gate} conditioned on unmeasured qubit {bit}"
                )
            if self.results[bit] != value:
                return self
        name = gate.name
        if name == "measure":
            self.measure(gate.qubits[0])
        elif name == "prep_z":
            outcome = self.measure(gate.qubits[0])
            if outcome == 1:
                self._x(gate.qubits[0])
            self.results.pop(gate.qubits[0], None)
        elif name == "i":
            pass
        elif name == "h":
            self._h(gate.qubits[0])
        elif name == "s":
            self._s(gate.qubits[0])
        elif name == "sdg":
            self._s(gate.qubits[0])
            self._z(gate.qubits[0])
        elif name == "x":
            self._x(gate.qubits[0])
        elif name == "y":
            self._y(gate.qubits[0])
        elif name == "z":
            self._z(gate.qubits[0])
        elif name == "cnot":
            self._cnot(*gate.qubits)
        elif name == "cz":
            a, b = gate.qubits
            self._h(b)
            self._cnot(a, b)
            self._h(b)
        elif name == "swap":
            a, b = gate.qubits
            self._cnot(a, b)
            self._cnot(b, a)
            self._cnot(a, b)
        else:
            raise ValueError(
                f"gate {name!r} is not Clifford; the tableau backend "
                f"supports {sorted(CLIFFORD_GATES)}"
            )
        return self

    def run(self, circuit: Circuit) -> "StabilizerState":
        """Apply every gate of ``circuit`` in order."""
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("circuit and state have different qubit counts")
        for gate in circuit.gates:
            self.apply(gate)
        return self

    # ------------------------------------------------------------------
    # Measurement (Aaronson-Gottesman)
    # ------------------------------------------------------------------

    def _rowsum_into(self, hx, hz, hr, i: int) -> tuple:
        """Multiply row ``i`` into the explicit row (hx, hz, hr).

        Returns the updated (hx, hz, hr); phases tracked with the
        standard g-function accumulated over all qubits.
        """
        gx, gz = self.x[i], self.z[i]
        # g(x1,z1,x2,z2) per qubit, summed mod 4.
        g = (
            gx * gz * (hz.astype(np.int64) - hx.astype(np.int64))
            + gx * (1 - gz) * hz.astype(np.int64) * (2 * hx.astype(np.int64) - 1)
            + (1 - gx) * gz * hx.astype(np.int64) * (1 - 2 * hz.astype(np.int64))
        )
        total = 2 * int(self.r[i]) + 2 * int(hr) + int(g.sum())
        new_r = (total % 4) // 2
        return hx ^ gx, hz ^ gz, np.uint8(new_r)

    def _rowsum(self, h: int, i: int) -> None:
        """Standard in-tableau rowsum: row h *= row i."""
        hx, hz, hr = self._rowsum_into(self.x[h], self.z[h], self.r[h], i)
        self.x[h], self.z[h], self.r[h] = hx, hz, hr

    def measure(self, a: int) -> int:
        """Projectively measure qubit ``a`` in the Z basis."""
        n = self.num_qubits
        stab_rows = np.nonzero(self.x[n:, a])[0]
        if stab_rows.size:
            # Random outcome.
            p = int(stab_rows[0]) + n
            for i in range(2 * n):
                if i != p and self.x[i, a]:
                    self._rowsum(i, p)
            self.x[p - n] = self.x[p]
            self.z[p - n] = self.z[p]
            self.r[p - n] = self.r[p]
            outcome = int(self.rng.integers(2))
            self.x[p] = 0
            self.z[p] = 0
            self.z[p, a] = 1
            self.r[p] = outcome
            self.results[a] = outcome
            return outcome
        # Deterministic outcome: accumulate into a scratch row.
        hx = np.zeros(n, dtype=np.uint8)
        hz = np.zeros(n, dtype=np.uint8)
        hr = np.uint8(0)
        for i in range(n):
            if self.x[i, a]:
                hx, hz, hr = self._rowsum_into(hx, hz, hr, i + n)
        outcome = int(hr)
        self.results[a] = outcome
        return outcome

    # ------------------------------------------------------------------
    # Observables
    # ------------------------------------------------------------------

    def z_expectation(self, qubits) -> int:
        """<Z_q1 ... Z_qk>: +1, -1, or 0 (when the outcome is random).

        A Z-string commutes with every stabilizer iff its support hits
        each stabilizer's X part an even number of times; it is then a
        signed product of stabilizers, whose sign the destabilizer
        pairing extracts.
        """
        n = self.num_qubits
        support = np.zeros(n, dtype=np.uint8)
        for q in qubits:
            support[q] ^= 1
        # Anticommutes with a stabilizer -> expectation 0.
        if np.any((self.x[n:] @ support.astype(np.int64)) % 2):
            return 0
        hx = np.zeros(n, dtype=np.uint8)
        hz = np.zeros(n, dtype=np.uint8)
        hr = np.uint8(0)
        for i in range(n):
            if (int(self.x[i] @ support.astype(np.int64))) % 2:
                hx, hz, hr = self._rowsum_into(hx, hz, hr, i + n)
        # The accumulated product must equal the Z-string exactly.
        if np.any(hx) or np.any(hz != support):
            raise RuntimeError("stabilizer decomposition failed (internal)")
        return -1 if hr else 1

    def sample_counts(self, shots: int, qubits=None) -> dict[str, int]:
        """Shot histogram by repeated measurement on tableau copies."""
        qubits = list(qubits) if qubits is not None else list(range(self.num_qubits))
        counts: dict[str, int] = {}
        for _ in range(shots):
            clone = self.copy()
            bits = "".join(str(clone.measure(q)) for q in qubits)
            counts[bits] = counts.get(bits, 0) + 1
        return counts

    def copy(self) -> "StabilizerState":
        clone = StabilizerState(self.num_qubits, self.rng)
        clone.x = self.x.copy()
        clone.z = self.z.copy()
        clone.r = self.r.copy()
        clone.results = dict(self.results)
        return clone
