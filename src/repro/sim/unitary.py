"""Full-circuit unitary construction.

For small circuits (the regime where the paper's exact mapper [57] also
operates) we can build the complete ``2^n x 2^n`` unitary and compare
circuits exactly.  This backs the strongest form of mapping verification:
the mapped circuit's unitary must equal the original's up to global phase
and the output-permutation induced by routing SWAPs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.circuit import Circuit
from ..core.gates import Gate

__all__ = [
    "circuit_unitary",
    "gate_unitary",
    "permutation_unitary",
    "allclose_up_to_global_phase",
]

#: Above this qubit count the dense unitary (4**n complex entries) is
#: unreasonable to build; callers should fall back to statevector checks.
MAX_DENSE_QUBITS = 12


def gate_unitary(gate: Gate, num_qubits: int) -> np.ndarray:
    """The ``2^n x 2^n`` unitary of one gate embedded on ``num_qubits`` lines."""
    if not gate.is_unitary:
        raise ValueError(f"gate {gate.name!r} is not unitary")
    small = gate.matrix()
    return _embed(small, gate.qubits, num_qubits)


def _embed(matrix: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    # Act on each basis column with the statevector kernel; fast enough
    # for the MAX_DENSE_QUBITS regime and shares one code path with
    # simulation, so the two can never disagree.
    from .statevector import _apply_matrix  # local import to avoid cycle

    dim = 2**num_qubits
    out = np.empty((dim, dim), dtype=complex)
    eye = np.eye(dim, dtype=complex)
    for col in range(dim):
        out[:, col] = _apply_matrix(eye[:, col], matrix, qubits, num_qubits)
    return out


def circuit_unitary(circuit: Circuit) -> np.ndarray:
    """The unitary implemented by ``circuit`` (barriers ignored).

    Raises:
        ValueError: when the circuit contains measurements/preparations or
            has more than :data:`MAX_DENSE_QUBITS` qubits.
    """
    n = circuit.num_qubits
    if n > MAX_DENSE_QUBITS:
        raise ValueError(
            f"refusing to build dense unitary for {n} qubits "
            f"(limit {MAX_DENSE_QUBITS})"
        )
    from .statevector import _apply_matrix

    dim = 2**n
    unitary = np.eye(dim, dtype=complex)
    for gate in circuit.gates:
        if gate.is_barrier:
            continue
        if not gate.is_unitary:
            raise ValueError(f"circuit contains non-unitary gate {gate.name!r}")
        if gate.condition is not None:
            raise ValueError("circuit contains classically conditioned gates")
        matrix = gate.matrix()
        for col in range(dim):
            unitary[:, col] = _apply_matrix(unitary[:, col], matrix, gate.qubits, n)
    return unitary


def permutation_unitary(perm: Sequence[int], num_qubits: int) -> np.ndarray:
    """Unitary relabelling qubit ``q`` to ``perm[q]``.

    ``perm[q] = p`` means the state of (old) qubit ``q`` ends up on (new)
    line ``p``.  Used to account for the final placement after routing.
    """
    if sorted(perm) != list(range(num_qubits)):
        raise ValueError(f"{perm!r} is not a permutation of 0..{num_qubits - 1}")
    dim = 2**num_qubits
    unitary = np.zeros((dim, dim), dtype=complex)
    for src in range(dim):
        bits = format(src, f"0{num_qubits}b")
        new_bits = ["0"] * num_qubits
        for q in range(num_qubits):
            new_bits[perm[q]] = bits[q]
        dst = int("".join(new_bits), 2)
        unitary[dst, src] = 1.0
    return unitary


def allclose_up_to_global_phase(
    a: np.ndarray, b: np.ndarray, atol: float = 1e-8
) -> bool:
    """True when ``a = exp(i phi) * b`` for some real ``phi``."""
    if a.shape != b.shape:
        return False
    flat_a, flat_b = a.reshape(-1), b.reshape(-1)
    pivot = int(np.argmax(np.abs(flat_b)))
    if abs(flat_b[pivot]) < atol:
        return bool(np.allclose(a, b, atol=atol))
    phase = flat_a[pivot] / flat_b[pivot]
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    return bool(np.allclose(flat_a, phase * flat_b, atol=atol))
