"""Statevector / unitary simulation — the reproduction's stand-in for hardware."""

from .monte_carlo import average_fidelity, sample_noisy_counts
from .noise import NoiseModel
from .stabilizer import StabilizerState
from .statevector import StateVector, apply_gate, basis_state, simulate, zero_state
from .unitary import (
    allclose_up_to_global_phase,
    circuit_unitary,
    gate_unitary,
    permutation_unitary,
)

__all__ = [
    "NoiseModel",
    "StabilizerState",
    "StateVector",
    "average_fidelity",
    "sample_noisy_counts",
    "apply_gate",
    "basis_state",
    "simulate",
    "zero_state",
    "allclose_up_to_global_phase",
    "circuit_unitary",
    "gate_unitary",
    "permutation_unitary",
]
