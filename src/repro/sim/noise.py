"""Error and reliability model.

The paper's central motivation: "the success rate of the algorithm is
consequently reduced since quantum operations are error prone and qubits
easily degrade their state over the time" (Section I), and recent
mappers "started optimising directly for circuit reliability" (Section
III-B).  This module provides the standard first-order reliability
estimate those works use:

``P_success = prod_gates (1 - eps_gate) * prod_qubits exp(-t_idle / T2)``

with per-gate error rates (optionally varying per coupling edge, as on
real chips — the premise of variability-aware mapping [50]) and
exponential decoherence over each qubit's idle time in the schedule.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..core.circuit import Circuit
from ..core.gates import Gate
from ..devices.device import Device
from ..mapping.scheduler import Schedule, asap_schedule

__all__ = ["NoiseModel"]


@dataclass
class NoiseModel:
    """First-order device error model.

    Attributes:
        error_1q: Depolarising error per single-qubit gate.
        error_2q: Default error per two-qubit gate.
        error_measure: Readout error per measurement.
        t1_ns: Relaxation time (amplitude damping) in nanoseconds.
        t2_ns: Dephasing time in nanoseconds; idle qubits decay as
            ``exp(-t_idle / t2_ns)``.
        edge_error: Optional per-undirected-edge two-qubit error rates,
            keyed by sorted qubit pair; unlisted edges use ``error_2q``.
    """

    error_1q: float = 1e-3
    error_2q: float = 1e-2
    error_measure: float = 2e-2
    t1_ns: float = 50_000.0
    t2_ns: float = 30_000.0
    edge_error: dict[tuple[int, int], float] = field(default_factory=dict)

    @classmethod
    def with_random_edge_errors(
        cls,
        device: Device,
        *,
        base_2q: float = 1e-2,
        spread: float = 3.0,
        seed: int = 0,
        **kwargs,
    ) -> "NoiseModel":
        """A model whose edges vary in quality, like a real chip.

        Edge errors are drawn log-uniformly in
        ``[base_2q / spread, base_2q * spread]``.
        """
        rng = random.Random(seed)
        edges = {}
        for a, b in device.undirected_edges():
            factor = math.exp(rng.uniform(-math.log(spread), math.log(spread)))
            edges[(a, b)] = base_2q * factor
        return cls(error_2q=base_2q, edge_error=edges, **kwargs)

    # ------------------------------------------------------------------

    def gate_error(self, gate: Gate) -> float:
        """Error probability of one gate instance (on physical qubits)."""
        if gate.is_barrier or gate.name == "prep_z" or gate.name == "i":
            return 0.0
        if gate.is_measurement:
            return self.error_measure
        if len(gate.qubits) == 2:
            a, b = gate.qubits
            return self.edge_error.get((min(a, b), max(a, b)), self.error_2q)
        return self.error_1q

    def gate_success(self, gate: Gate) -> float:
        return 1.0 - self.gate_error(gate)

    def schedule_success(self, schedule: Schedule) -> float:
        """Estimated success probability of a timed schedule.

        Multiplies per-gate fidelities with per-qubit idle-time
        decoherence factors.  Idle time is the schedule makespan minus
        the cycles a qubit spends inside gates, converted to nanoseconds.
        """
        success = 1.0
        busy = [0] * schedule.num_qubits
        touched = [False] * schedule.num_qubits
        for item in schedule:
            success *= self.gate_success(item.gate)
            for q in item.gate.qubits:
                busy[q] += item.duration
                touched[q] = True
        makespan = schedule.latency
        for q in range(schedule.num_qubits):
            if not touched[q]:
                continue  # never-used qubits carry no state of interest
            idle_ns = max(0, makespan - busy[q]) * schedule.cycle_time_ns
            success *= math.exp(-idle_ns / self.t2_ns)
        return success

    def circuit_success(self, circuit: Circuit, device: Device) -> float:
        """Convenience: ASAP-schedule then estimate success."""
        return self.schedule_success(asap_schedule(circuit, device))

    def weighted_distance_matrix(self, device: Device) -> list[list[float]]:
        """All-pairs reliability-weighted distances for noise-aware routing.

        Edge weight is ``-log(1 - error_edge)``, so path length equals the
        negative log success probability of a SWAP chain along it; routers
        minimising this pick "the most reliable paths" (Section III-B).
        """
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(device.num_qubits))
        for a, b in device.undirected_edges():
            error = self.edge_error.get((a, b), self.error_2q)
            error = min(max(error, 1e-12), 0.999999)
            g.add_edge(a, b, weight=-math.log(1.0 - error))
        sentinel = float(device.num_qubits * device.num_qubits)
        dist = [[sentinel] * device.num_qubits for _ in range(device.num_qubits)]
        for src, lengths in nx.all_pairs_dijkstra_path_length(g, weight="weight"):
            for dst, d in lengths.items():
                dist[src][dst] = d
        return dist
