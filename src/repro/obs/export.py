"""Trace exporters and report helpers.

Finished span events (see :meth:`repro.obs.Tracer.finished`) are plain
dicts; this module turns them into

* the **Chrome trace event format** (the ``{"traceEvents": [...]}`` JSON
  object array documented for ``chrome://tracing`` / Perfetto), using
  complete ``"ph": "X"`` duration events with microsecond timestamps
  rebased to the earliest span, and
* human-facing **per-pass summaries** — total/mean seconds, share of
  root wall time, and the gate/swap deltas the spans carry — behind
  ``repro trace summarize``.

Events keep an extra ``depth`` field (nesting level at record time);
trace viewers ignore unknown keys, and the summariser uses it to find
root spans without re-deriving containment.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "format_summary",
    "load_trace",
    "summarize_trace",
    "to_chrome_trace",
    "write_chrome_trace",
]


def to_chrome_trace(
    events: list[dict], *, counters: dict | None = None,
    meta: dict | None = None,
) -> dict:
    """Convert finished span events into a Chrome-trace JSON object.

    Args:
        events: Span event dicts (``ts``/``dur`` in monotonic seconds).
        counters: Tracer counter totals, stored under ``otherData``.
        meta: Extra report payload (e.g. service stats) for ``otherData``.
    """
    base = min((e["ts"] for e in events), default=0.0)
    trace_events = []
    for e in events:
        trace_events.append(
            {
                "name": e["name"],
                "cat": e.get("pass") or e["name"],
                "ph": "X",
                "ts": round((e["ts"] - base) * 1e6, 3),
                "dur": round(e["dur"] * 1e6, 3),
                "pid": e.get("pid", 0),
                "tid": e.get("tid", 0),
                "depth": e.get("depth", 0),
                "args": dict(e.get("args", {})),
            }
        )
    trace_events.sort(key=lambda ev: (ev["pid"], ev["tid"], ev["ts"], -ev["dur"]))
    doc: dict = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    other: dict = {}
    if counters:
        other["counters"] = dict(counters)
    if meta:
        other.update(meta)
    if other:
        doc["otherData"] = other
    return doc


def write_chrome_trace(
    path: str | Path, events: list[dict], *, counters: dict | None = None,
    meta: dict | None = None,
) -> dict:
    """Write :func:`to_chrome_trace` output to ``path``; returns the doc."""
    doc = to_chrome_trace(events, counters=counters, meta=meta)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return doc


def load_trace(path: str | Path) -> dict:
    """Read a Chrome-trace JSON file written by :func:`write_chrome_trace`.

    Raises:
        ValueError: when the file is not a Chrome-trace object.
    """
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or not isinstance(
        doc.get("traceEvents"), list
    ):
        raise ValueError("not a Chrome-trace file (no traceEvents array)")
    return doc


#: Span attribute summed into the summary's swap column.
_DELTA_KEYS = ("added_swaps",)


def summarize_trace(doc: dict) -> list[dict]:
    """Aggregate a Chrome-trace doc into per-pass rows.

    Groups duration events by their ``cat`` (the span's pass), summing
    durations and the gate/swap deltas carried in ``args``.  The
    ``share`` column is each pass's fraction of the root wall time (the
    summed duration of ``depth == 0`` spans), so nested stages report
    what slice of the measured total they account for.
    """
    spans = [e for e in doc.get("traceEvents", []) if e.get("ph") == "X"]
    wall_us = sum(e["dur"] for e in spans if e.get("depth", 0) == 0)
    rows: dict[str, dict] = {}
    for e in spans:
        row = rows.setdefault(
            e.get("cat") or e["name"],
            {
                "pass": e.get("cat") or e["name"],
                "count": 0,
                "total_s": 0.0,
                "swaps": 0,
                "gates_delta": 0,
                "root": True,
            },
        )
        row["count"] += 1
        row["total_s"] += e["dur"] / 1e6
        row["root"] = row["root"] and e.get("depth", 0) == 0
        args = e.get("args", {})
        for key in _DELTA_KEYS:
            if isinstance(args.get(key), (int, float)):
                row["swaps" if key == "added_swaps" else "gates_delta"] += \
                    args[key]
        gin, gout = args.get("gates_in"), args.get("gates_out")
        if isinstance(gin, (int, float)) and isinstance(gout, (int, float)):
            row["gates_delta"] += gout - gin
    out = []
    for row in rows.values():
        # Share before rounding: µs-scale spans would otherwise pick up
        # the 1 µs quantisation of total_s as a visible share error.
        row["share"] = (
            round(row["total_s"] * 1e6 / wall_us, 4) if wall_us else 0.0
        )
        row["total_s"] = round(row["total_s"], 6)
        row["mean_s"] = round(row["total_s"] / row["count"], 6)
        out.append(row)
    out.sort(key=lambda r: (-r["root"], -r["total_s"]))
    return out


def format_summary(rows: list[dict], *, counters: dict | None = None) -> str:
    """Render :func:`summarize_trace` rows as an aligned text table."""
    lines = [
        f"{'pass':<16} {'spans':>6} {'total_s':>10} {'mean_s':>10} "
        f"{'share':>7} {'Δgates':>8} {'swaps':>7}"
    ]
    for row in rows:
        lines.append(
            f"{row['pass']:<16} {row['count']:>6} {row['total_s']:>10.4f} "
            f"{row['mean_s']:>10.4f} {row['share']:>6.1%} "
            f"{row['gates_delta']:>+8} {row['swaps']:>7}"
        )
    if counters:
        lines.append("\ncounters:")
        for name in sorted(counters):
            value = counters[name]
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"  {name:<40} {shown}")
    return "\n".join(lines)
