"""Observability: pass-level tracing and metrics for the compiler stack.

The paper's claim that "every device is (almost) equal before the
compiler" is only testable when each compilation can say *where* it
spent its time and gates — per pass, per device.  Mature mappers (tket,
MQT QMAP) expose per-pass diagnostics for exactly this reason: routing
cost is dominated by a few hot passes.  This zero-dependency package
gives the stack the same visibility:

* :mod:`repro.obs.tracer` — :class:`Tracer` (nested monotonic spans with
  gate/depth/swap deltas and counters, thread/process-safe),
  :class:`NullTracer` (the free disabled path), and the module-level
  :func:`trace_span` / :func:`add_counter` entry points instrumentation
  calls;
* :mod:`repro.obs.export` — Chrome-trace (``chrome://tracing`` /
  Perfetto event format) and JSON exporters plus the per-pass
  summariser behind ``repro trace summarize``.

Producers: :func:`repro.core.pipeline.compile_circuit` wraps every
pipeline stage in a span; the routers report per-run counters (SABRE
swap candidates scored, A* node expansions, native-kernel vs fallback
layers); the compile service forwards tracing into batch workers and
merges their spans back.  Consumers: ``--trace FILE`` on the ``map``,
``bench`` and ``batch`` CLI commands.  See ``docs/observability.md``.
"""

from .export import (
    format_summary,
    load_trace,
    summarize_trace,
    to_chrome_trace,
    write_chrome_trace,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    add_counter,
    current_tracer,
    trace_span,
    use_tracer,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "add_counter",
    "current_tracer",
    "format_summary",
    "load_trace",
    "summarize_trace",
    "to_chrome_trace",
    "trace_span",
    "use_tracer",
    "write_chrome_trace",
]
