"""Nested-span tracer with a zero-cost disabled path.

The observability core: a :class:`Tracer` records *spans* — named,
monotonic-clocked regions with a pass category, gate/depth/swap deltas
and free-form attributes — plus flat counters.  Code under test never
holds a tracer reference: it opens spans through the module-level
:func:`trace_span` / :func:`add_counter` helpers, which consult a
:mod:`contextvars` context variable holding the *current* tracer.  The
default is the :class:`NullTracer` singleton whose span context manager
is a shared no-op object, so instrumentation left in hot paths costs a
single ``ContextVar.get`` plus an empty ``with`` block when tracing is
off (the perf-corpus budget allows <2%; the overhead smoke test pins it
far below that).

Clocking discipline: span timestamps come from :func:`time.monotonic`,
which is system-wide, so spans recorded by batch worker processes are
directly comparable with spans recorded by the parent once shipped back
(see :func:`repro.service.engine.run_payload`).  Wall-clock never enters
a span.

Thread/process safety: the active-span stack is thread-local (each
thread nests its own spans), finished spans are appended under a lock,
and worker processes build their own tracer whose finished spans the
parent merges with :meth:`Tracer.absorb` — events carry ``pid``/``tid``
so merged traces stay attributable.
"""

from __future__ import annotations

import os
import threading
import time
from collections import Counter
from contextlib import contextmanager
from contextvars import ContextVar

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "add_counter",
    "current_tracer",
    "trace_span",
    "use_tracer",
]


class Span:
    """One timed region: name, pass category, attrs, and counters.

    Used as a context manager (entering starts the monotonic clock,
    exiting records the finished event on the owning tracer).  Callers
    may check :attr:`enabled` before computing expensive attributes —
    the null span reports ``False`` so metric computation is skipped
    entirely when tracing is off.
    """

    __slots__ = (
        "name", "category", "attrs", "counters",
        "start", "duration", "depth", "_tracer",
    )

    enabled = True

    def __init__(self, tracer: "Tracer", name: str, category: str | None,
                 attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.attrs = attrs
        self.counters: dict[str, float] = {}
        self.start = 0.0
        self.duration = 0.0
        self.depth = 0

    def set(self, **attrs) -> None:
        """Attach attributes (gate counts, deltas, labels) to the span."""
        self.attrs.update(attrs)

    def count(self, name: str, n: float = 1) -> None:
        """Bump a per-span counter (also totalled on the tracer)."""
        self.counters[name] = self.counters.get(name, 0) + n
        self._tracer._counters[name] += n

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        self.depth = len(stack)
        stack.append(self)
        self.start = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.monotonic() - self.start
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._record(self)
        return False

    def to_event(self) -> dict:
        """The finished span as a plain, picklable event dict."""
        args = dict(self.attrs)
        args.update(self.counters)
        return {
            "name": self.name,
            "pass": self.category or self.name,
            "ts": self.start,
            "dur": self.duration,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "depth": self.depth,
            "args": args,
        }


class _NullSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    enabled = False
    attrs: dict = {}

    def set(self, **attrs) -> None:
        pass

    def count(self, name: str, n: float = 1) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans and counters for one traced run."""

    enabled = True

    def __init__(self) -> None:
        self._events: list[dict] = []
        self._counters: Counter = Counter()
        self._lock = threading.Lock()
        self._tls = threading.local()

    # -- recording -----------------------------------------------------

    def span(self, name: str, *, pass_: str | None = None, **attrs) -> Span:
        """A new span context manager under the calling thread's stack."""
        return Span(self, name, pass_, attrs)

    def counter(self, name: str, n: float = 1) -> None:
        """Bump a counter on the innermost active span (or tracer-wide)."""
        stack = self._stack()
        if stack:
            stack[-1].count(name, n)
        else:
            self._counters[name] += n

    def absorb(self, events: list[dict]) -> None:
        """Merge finished span events from another tracer (e.g. a worker)."""
        with self._lock:
            self._events.extend(events)

    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _record(self, span: Span) -> None:
        with self._lock:
            self._events.append(span.to_event())

    # -- reading -------------------------------------------------------

    def finished(self) -> list[dict]:
        """Snapshot of every finished span event, in completion order."""
        with self._lock:
            return list(self._events)

    def counters(self) -> dict:
        """Tracer-wide counter totals (sum over all spans)."""
        return dict(self._counters)


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    A single module-level instance backs the default context, so the
    cost of instrumentation with tracing off is one ``ContextVar.get``
    and one empty context-manager round trip per span.
    """

    enabled = False

    def span(self, name: str, *, pass_: str | None = None, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def counter(self, name: str, n: float = 1) -> None:
        pass

    def absorb(self, events: list[dict]) -> None:
        pass

    def finished(self) -> list[dict]:
        return []

    def counters(self) -> dict:
        return {}


NULL_TRACER = NullTracer()

_CURRENT: ContextVar = ContextVar("repro_tracer", default=NULL_TRACER)


def current_tracer():
    """The tracer instrumentation reports to (default: the null tracer)."""
    return _CURRENT.get()


@contextmanager
def use_tracer(tracer):
    """Install ``tracer`` as the current tracer for the enclosed block."""
    token = _CURRENT.set(tracer)
    try:
        yield tracer
    finally:
        _CURRENT.reset(token)


def trace_span(name: str, *, pass_: str | None = None, **attrs):
    """Open a span on the current tracer (no-op when tracing is off)."""
    return _CURRENT.get().span(name, pass_=pass_, **attrs)


def add_counter(name: str, n: float = 1) -> None:
    """Bump a counter on the current tracer (no-op when tracing is off)."""
    _CURRENT.get().counter(name, n)
