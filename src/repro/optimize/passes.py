"""Peephole optimisation passes.

Mapping inflates gate counts (SWAP insertion, direction flips, native
decomposition), and much of that inflation is locally redundant:
direction-flip Hadamards meet decomposition Hadamards, SWAP chains leave
adjacent CNOT pairs, Z-rotations pile up on one wire.  The paper's
Section III-B lists dedicated pre-/post-processing among the "solution
features" of good mappers ([26]); these passes are the standard
peephole repertoire:

* :func:`cancel_inverse_pairs` — drop adjacent gate pairs that multiply
  to the identity (H·H, CNOT·CNOT on the same wires, T·Tdg, ...),
  looking *through* unrelated gates on other qubits;
* :func:`merge_rotations` — fuse runs of same-axis rotations
  (Rz·Rz → Rz(sum), with full-turn elimination);
* :func:`fuse_single_qubit_runs` — collapse every maximal run of
  single-qubit gates on one wire into a single ``u(θ,φ,λ)`` (or drop it
  when the run multiplies to the identity up to phase);
* :func:`remove_identities` — drop explicit ``i`` gates and zero-angle
  rotations.

All passes preserve the circuit unitary up to global phase; the driver
:func:`optimize_circuit` iterates them to a fixed point.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.circuit import Circuit
from ..core import gates as G
from ..core.gates import Gate
from ..decompose.euler import u_angles

__all__ = [
    "cancel_inverse_pairs",
    "merge_rotations",
    "fuse_single_qubit_runs",
    "remove_identities",
    "optimize_circuit",
]

_ANGLE_EPS = 1e-9
_ROTATIONS = {"rx", "ry", "rz", "cp", "crz"}


def _is_identity_angle(angle: float) -> bool:
    """True when a rotation by ``angle`` is the identity (mod 4*pi).

    SU(2) rotations have period 4*pi; a 2*pi rotation is -identity,
    which is only a global phase for uncontrolled rotations — but for
    *controlled* rotations the relative phase matters, so callers must
    use the full 4*pi period.  We conservatively use 4*pi everywhere.
    """
    return abs(math.remainder(angle, 4.0 * math.pi)) < _ANGLE_EPS


def cancel_inverse_pairs(circuit: Circuit) -> Circuit:
    """Remove adjacent mutually-inverse gate pairs.

    Two gates cancel when the second is the inverse of the first, they
    act on the same qubits in the same order (or any order for symmetric
    gates), and no intervening gate touches any of those qubits.  One
    sweep; run under :func:`optimize_circuit` for cascading cancels.
    """
    gates = list(circuit.gates)
    removed = [False] * len(gates)
    for index, gate in enumerate(gates):
        if removed[index] or not gate.is_unitary or gate.is_barrier:
            continue
        spec = gate.spec
        if spec.num_params and not spec.hermitian_params:
            continue  # handled by merge_rotations / fusion instead
        partner = _next_unremoved_on_qubits(circuit, gates, removed, index)
        if partner is None:
            continue
        other = gates[partner]
        if not other.is_unitary:
            continue
        if not _are_inverses(gate, other):
            continue
        removed[index] = removed[partner] = True
    out = Circuit(circuit.num_qubits, name=circuit.name)
    for index, gate in enumerate(gates):
        if not removed[index]:
            out.append(gate)
    return out


def _next_unremoved_on_qubits(circuit, gates, removed, start) -> int | None:
    wanted = set(gates[start].qubits)
    for index in range(start + 1, len(gates)):
        if removed[index]:
            continue
        gate = gates[index]
        touched = set(gate.qubits) if gate.qubits else set(range(circuit.num_qubits))
        overlap = touched & wanted
        if not overlap:
            continue
        # Only a *full* overlap candidate can cancel; a partial overlap
        # blocks the line.
        if touched == wanted:
            return index
        return None
    return None


def _are_inverses(a: Gate, b: Gate) -> bool:
    if set(a.qubits) != set(b.qubits):
        return False
    try:
        inverse = a.inverse()
    except ValueError:
        return False
    if inverse == b:
        return True
    if a.spec.symmetric and inverse == b.reversed_qubits():
        return True
    return False


def merge_rotations(circuit: Circuit) -> Circuit:
    """Fuse adjacent same-axis rotations on the same qubits.

    ``rx(a) rx(b) -> rx(a + b)`` (likewise ry/rz/cp/crz); sums that are
    full turns are dropped entirely.
    """
    out = Circuit(circuit.num_qubits, name=circuit.name)
    gates = list(circuit.gates)
    index = 0
    while index < len(gates):
        gate = gates[index]
        if gate.name in _ROTATIONS:
            angle = gate.params[0]
            cursor = index
            while True:
                nxt = _next_on_qubits_list(circuit, gates, cursor, gate.qubits)
                if nxt is None:
                    break
                other = gates[nxt]
                same_operands = other.qubits == gate.qubits or (
                    other.spec.symmetric
                    and set(other.qubits) == set(gate.qubits)
                )
                if other.name == gate.name and same_operands:
                    angle += other.params[0]
                    gates.pop(nxt)
                    continue
                break
            if not _is_identity_angle(angle):
                out.append(Gate(gate.name, gate.qubits, (angle,)))
            index += 1
            continue
        out.append(gate)
        index += 1
    return out


def _next_on_qubits_list(circuit, gates, start, qubits) -> int | None:
    wanted = set(qubits)
    for index in range(start + 1, len(gates)):
        gate = gates[index]
        touched = set(gate.qubits) if gate.qubits else set(range(circuit.num_qubits))
        overlap = touched & wanted
        if not overlap:
            continue
        if touched == wanted:
            return index
        return None
    return None


def fuse_single_qubit_runs(circuit: Circuit, *, emit: str = "u") -> Circuit:
    """Collapse maximal single-qubit gate runs into one gate per wire.

    Args:
        circuit: Input circuit.
        emit: ``"u"`` emits one ``u(θ,φ,λ)`` per non-trivial run (the IBM
            native form); ``"zyz"`` emits ``rz·ry·rz`` with zero-angle
            factors dropped.

    Runs whose product is the identity (up to global phase) vanish
    entirely.  Barriers, measurements, preparations and multi-qubit
    gates end a run.
    """
    if emit not in ("u", "zyz"):
        raise ValueError(f"unknown emit mode {emit!r}")
    out = Circuit(circuit.num_qubits, name=circuit.name)
    pending: dict[int, np.ndarray] = {}

    def flush(qubit: int) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is None:
            return
        if np.allclose(matrix @ matrix.conj().T, np.eye(2)) and _is_phase_identity(matrix):
            return
        theta, phi, lam = u_angles(matrix)
        if emit == "u":
            out.append(G.u(theta, phi, lam, qubit))
        else:
            if abs(lam) > _ANGLE_EPS:
                out.append(G.rz(lam, qubit))
            if abs(theta) > _ANGLE_EPS:
                out.append(G.ry(theta, qubit))
            if abs(phi) > _ANGLE_EPS:
                out.append(G.rz(phi, qubit))

    for gate in circuit.gates:
        if gate.is_unitary and len(gate.qubits) == 1:
            q = gate.qubits[0]
            pending[q] = gate.matrix() @ pending.get(q, np.eye(2, dtype=complex))
            continue
        touched = gate.qubits if gate.qubits else tuple(range(circuit.num_qubits))
        for q in touched:
            flush(q)
        out.append(gate)
    for q in sorted(pending):
        flush(q)
    return out


def _is_phase_identity(matrix: np.ndarray) -> bool:
    pivot = matrix[0, 0]
    if abs(abs(pivot) - 1.0) > 1e-9:
        return False
    return np.allclose(matrix, pivot * np.eye(2), atol=1e-9)


def remove_identities(circuit: Circuit) -> Circuit:
    """Drop explicit identity gates and zero-angle rotations."""
    out = Circuit(circuit.num_qubits, name=circuit.name)
    for gate in circuit.gates:
        if gate.name == "i":
            continue
        if gate.name in _ROTATIONS and _is_identity_angle(gate.params[0]):
            continue
        out.append(gate)
    return out


def optimize_circuit(
    circuit: Circuit,
    *,
    fuse: bool = False,
    emit: str = "u",
    max_passes: int = 20,
) -> Circuit:
    """Iterate the peephole passes to a fixed point.

    Args:
        circuit: Input circuit (any gate set).
        fuse: Additionally fuse single-qubit runs into ``u`` gates (off
            by default: fusion changes the gate vocabulary, which is not
            always wanted before decomposition).
        emit: Fusion output form, see :func:`fuse_single_qubit_runs`.
        max_passes: Safety bound on fixed-point iteration.

    Returns:
        An equivalent circuit (up to global phase) with fewer or equal
        gates.
    """
    current = remove_identities(circuit)
    for _ in range(max_passes):
        before = len(current.gates)
        current = cancel_inverse_pairs(current)
        current = merge_rotations(current)
        current = remove_identities(current)
        if fuse:
            current = fuse_single_qubit_runs(current, emit=emit)
        if len(current.gates) >= before:
            break
    return current
