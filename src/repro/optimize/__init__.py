"""Peephole circuit optimisation passes."""

from .passes import (
    cancel_inverse_pairs,
    fuse_single_qubit_runs,
    merge_rotations,
    optimize_circuit,
    remove_identities,
)

__all__ = [
    "cancel_inverse_pairs",
    "fuse_single_qubit_runs",
    "merge_rotations",
    "optimize_circuit",
    "remove_identities",
]
