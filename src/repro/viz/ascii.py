"""ASCII rendering of circuits, schedules, and device topologies.

The paper communicates entirely through circuit diagrams (Figs. 1, 3, 5,
6) and topology sketches (Figs. 3a, 4).  These renderers produce the
text equivalents used by the examples and benchmark reports.
"""

from __future__ import annotations

from ..core.circuit import Circuit
from ..core.gates import Gate
from ..devices.device import Device
from ..mapping.scheduler import Schedule

__all__ = ["draw_circuit", "draw_schedule", "draw_device"]

_SYMBOLS_2Q = {
    "cnot": ("*", "+"),
    "cz": ("*", "*"),
    "cp": ("*", "*"),
    "crz": ("*", "R"),
    "swap": ("x", "x"),
}


def _label(gate: Gate) -> str:
    if gate.params:
        angles = ",".join(f"{p:.2f}" for p in gate.params)
        text = f"{gate.name.upper()}({angles})"
    elif gate.is_measurement:
        text = "M"
    else:
        text = gate.name.upper()
    if gate.condition is not None:
        text += f"?c{gate.condition[0]}"
    return text


def draw_circuit(circuit: Circuit, *, qubit_prefix: str = "q") -> str:
    """Render ``circuit`` as a moment-aligned text diagram.

    One row per qubit; gates in the same moment share a column, with
    ``*`` marking controls, ``+`` CNOT targets, and ``x`` SWAP ends, as
    in the paper's figures.
    """
    n = circuit.num_qubits
    moments = circuit.moments()
    rows = [[f"{qubit_prefix}{q}: "] for q in range(n)]
    pad = max(len(r[0]) for r in rows)
    for r in rows:
        r[0] = r[0].rjust(pad)

    for moment in moments:
        cells = ["-"] * n
        links: list[tuple[int, int]] = []
        for gate in moment:
            if gate.is_barrier:
                for q in gate.qubits or range(n):
                    cells[q] = "|"
                continue
            if len(gate.qubits) == 1:
                cells[gate.qubits[0]] = _label(gate)
            elif len(gate.qubits) == 2 and gate.name in _SYMBOLS_2Q:
                a, b = gate.qubits
                sa, sb = _SYMBOLS_2Q[gate.name]
                cells[a], cells[b] = sa, sb
                links.append((min(a, b), max(a, b)))
            else:
                # Toffoli/Fredkin: controls then target(s).
                *controls, target = gate.qubits
                for c in controls:
                    cells[c] = "*"
                cells[target] = "+" if gate.name == "toffoli" else "x"
                links.append((min(gate.qubits), max(gate.qubits)))
        # Mark through-lines of vertical connections.
        for lo, hi in links:
            for q in range(lo + 1, hi):
                if cells[q] == "-":
                    cells[q] = "|"
        width = max(len(c) for c in cells)
        for q in range(n):
            if cells[q] == "|":
                rows[q].append("|".center(width, " "))
            else:
                rows[q].append(cells[q].center(width, "-"))
    return _join_rows(rows)


def _join_rows(rows: list[list[str]]) -> str:
    lines = []
    for parts in rows:
        head, cells = parts[0], parts[1:]
        lines.append(head + "-" + "--".join(cells) + "-")
    return "\n".join(lines)


def draw_schedule(schedule: Schedule) -> str:
    """Render a schedule as one column per start cycle.

    Cells show the gate label; idle qubits show dashes.  Multi-cycle
    gates are marked on their start cycle only (the table shows starts,
    like the paper's cycle tables).
    """
    n = schedule.num_qubits
    cycles = sorted({item.start for item in schedule if not item.gate.is_barrier})
    rows = [[f"Q{q}:"] for q in range(n)]
    header = ["cyc"]
    for cycle in cycles:
        cells = [""] * n
        for item in schedule.gates_starting_at(cycle):
            if item.gate.is_barrier:
                continue
            label = _label(item.gate)
            if len(item.gate.qubits) == 2:
                a, b = item.gate.qubits
                sa, sb = _SYMBOLS_2Q.get(item.gate.name, ("#", "#"))
                cells[a] = cells[a] + sa if cells[a] else sa
                cells[b] = cells[b] + sb if cells[b] else sb
            else:
                for q in item.gate.qubits:
                    cells[q] = label
        width = max([len(c) for c in cells] + [len(str(cycle))])
        header.append(str(cycle).rjust(width))
        for q in range(n):
            rows[q].append((cells[q] or ".").rjust(width))
    lines = [" ".join(header)]
    for parts in rows:
        lines.append(" ".join(parts))
    return "\n".join(lines)


def draw_device(device: Device) -> str:
    """Render the coupling graph using the device's 2D positions.

    Nodes are qubit indices placed on a character canvas; the edge list
    (with CNOT directions where asymmetric) follows below.
    """
    lines = [f"device {device.name}: {device.num_qubits} qubits"]
    if device.positions:
        xs = [p[0] for p in device.positions.values()]
        ys = [p[1] for p in device.positions.values()]
        min_x, max_x = min(xs), max(xs)
        min_y, max_y = min(ys), max(ys)
        scale_x, scale_y = 6, 2
        cols = int((max_x - min_x) * scale_x) + 4
        rows_n = int((max_y - min_y) * scale_y) + 1
        canvas = [[" "] * (cols + 2) for _ in range(rows_n + 1)]
        for q, (x, y) in sorted(device.positions.items()):
            col = int((x - min_x) * scale_x)
            row = int((max_y - y) * scale_y)
            text = f"({q})"
            for k, ch in enumerate(text):
                if col + k < len(canvas[row]):
                    canvas[row][col + k] = ch
        lines.extend("".join(r).rstrip() for r in canvas if "".join(r).strip())
    if device.symmetric:
        edge_text = ", ".join(f"{a}-{b}" for a, b in device.undirected_edges())
        lines.append(f"edges (symmetric): {edge_text}")
    else:
        edge_text = ", ".join(f"{a}->{b}" for a, b in sorted(device.edges))
        lines.append(f"edges (control->target): {edge_text}")
    if device.constraints and device.constraints.frequency_group:
        groups: dict[int, list[int]] = {}
        for q, g in device.constraints.frequency_group.items():
            groups.setdefault(g, []).append(q)
        for g in sorted(groups):
            lines.append(f"frequency f{g + 1}: qubits {sorted(groups[g])}")
    if device.constraints and device.constraints.feedline:
        feeds: dict[int, list[int]] = {}
        for q, f in device.constraints.feedline.items():
            feeds.setdefault(f, []).append(q)
        for f in sorted(feeds):
            lines.append(f"feedline {f}: qubits {sorted(feeds[f])}")
    return "\n".join(lines)
