"""ASCII visualisation of circuits, schedules, and devices."""

from .ascii import draw_circuit, draw_device, draw_schedule

__all__ = ["draw_circuit", "draw_device", "draw_schedule"]
