"""Equivalence checking for mapped circuits with measurement feedforward.

Teleportation-based routing produces circuits containing measurements
and classically conditioned corrections, so the unitary-based checker of
:mod:`repro.verify.equivalence` does not apply.  Teleportation is
nevertheless deterministic *on the data qubits*: whatever the Bell
outcomes, the corrected state equals the input.  This checker therefore

1. prepares a random product state on the program qubits (the same
   preparation on both sides),
2. runs the original circuit and the mapped circuit (collapsing
   measurements with a seeded RNG),
3. compares the mapped run's **reduced state on the final data qubits**
   against the original's output via the fidelity
   ``<phi| rho_data |phi>``, which must be 1 for every trajectory.
"""

from __future__ import annotations

import numpy as np

from ..core.circuit import Circuit
from ..core import gates as G
from ..mapping.placement import Placement
from ..sim.statevector import StateVector

__all__ = ["equivalent_mapped_with_feedforward", "data_qubit_fidelity"]


def data_qubit_fidelity(
    state: np.ndarray,
    data_qubits: list[int],
    expected: np.ndarray,
) -> float:
    """``<expected| rho_data |expected>`` for a pure global ``state``.

    Args:
        state: Full pure statevector on ``n`` qubits.
        data_qubits: The lines holding the data register, in the order
            matching ``expected``'s qubits.
        expected: Pure state on ``len(data_qubits)`` qubits.

    Returns:
        The fidelity of the reduced data state with ``expected``.
    """
    n = int(round(np.log2(state.size)))
    k = len(data_qubits)
    rest = [q for q in range(n) if q not in set(data_qubits)]
    tensor = state.reshape([2] * n)
    tensor = np.transpose(tensor, list(data_qubits) + rest)
    matrix = tensor.reshape(2**k, -1)
    # <phi| rho |phi> = sum_j |<phi| col_j>|^2.
    overlaps = expected.conj() @ matrix
    return float(np.sum(np.abs(overlaps) ** 2))


def equivalent_mapped_with_feedforward(
    original: Circuit,
    mapped: Circuit,
    initial: Placement,
    final: Placement,
    *,
    trials: int = 3,
    seed: int = 11,
    atol: float = 1e-7,
) -> bool:
    """Check a feedforward-containing mapping result.

    Args:
        original: The pre-mapping circuit on program qubits (unitary).
        mapped: The routed circuit on physical qubits; may contain
            measurements, preparations and conditioned gates.
        initial: Placement before the first mapped gate.
        final: Placement after the last mapped gate.
        trials: Number of random product input states (each trial also
            draws fresh measurement outcomes).
        seed: RNG seed.
        atol: Fidelity tolerance.

    Returns:
        True when every trial's data-qubit state matches the original's
        output with fidelity 1.
    """
    n_prog = original.num_qubits
    m = mapped.num_qubits
    rng = np.random.default_rng(seed)

    for trial in range(trials):
        # Random product input, applied as u3 gates on both sides.
        angles = rng.uniform(-np.pi, np.pi, size=(n_prog, 3))
        prep_program = Circuit(n_prog)
        prep_mapped = Circuit(m)
        for q in range(n_prog):
            theta, phi, lam = angles[q]
            prep_program.u(theta, phi, lam, q)
            prep_mapped.u(theta, phi, lam, initial.phys(q))

        ideal = StateVector(n_prog, rng=np.random.default_rng(trial))
        ideal.run(prep_program)
        ideal.run(original)

        actual = StateVector(m, rng=np.random.default_rng(1000 + trial))
        actual.run(prep_mapped)
        actual.run(mapped)

        data = [final.phys(q) for q in range(n_prog)]
        fidelity = data_qubit_fidelity(actual.state, data, ideal.state)
        if abs(fidelity - 1.0) > max(atol, 1e-7) * 100:
            return False
    return True
