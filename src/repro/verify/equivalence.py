"""Equivalence checking between original and mapped circuits.

Mapping must preserve the computation: the routed/decomposed circuit,
run on the physical qubits, must implement the original circuit up to

* a *global phase* (physically unobservable), and
* the *output permutation* induced by routing SWAPs — the paper's Fig. 2
  notes that "the initial placement of the program qubits may differ
  from the final placement".

Formally, with initial placement ``pi0`` and final placement ``pif``
(both full bijections including dummy/free qubits), the mapped circuit
``M`` must satisfy ``M = P(sigma) . E`` where ``E`` is the original
circuit embedded on physical qubits via ``pi0`` and ``sigma`` is the
physical permutation ``pif o pi0^{-1}``.

Small circuits are compared by dense unitaries; larger ones by applying
both sides to random statevectors (complete with probability 1).
"""

from __future__ import annotations

import numpy as np

from ..core.circuit import Circuit
from ..mapping.placement import Placement
from ..sim.statevector import simulate
from ..sim.unitary import (
    allclose_up_to_global_phase,
    circuit_unitary,
    permutation_unitary,
)

__all__ = [
    "equivalent_circuits",
    "equivalent_mapped",
    "apply_permutation",
    "STATEVECTOR_LIMIT",
]

#: Use dense unitaries at or below this qubit count; random states above.
_UNITARY_LIMIT = 8

#: Hard ceiling for the random-state check: a dense state is 2**n
#: amplitudes, so past this the check is physically infeasible and
#: callers must skip verification (the CLI prints a warning).
STATEVECTOR_LIMIT = 24


def equivalent_circuits(a: Circuit, b: Circuit, atol: float = 1e-7) -> bool:
    """True when two same-width circuits agree up to global phase."""
    if a.num_qubits != b.num_qubits:
        return False
    if a.num_qubits <= _UNITARY_LIMIT:
        return allclose_up_to_global_phase(
            circuit_unitary(a), circuit_unitary(b), atol
        )
    return _random_state_check(a, b, list(range(a.num_qubits)), atol)


def apply_permutation(state: np.ndarray, perm: list[int]) -> np.ndarray:
    """Move the amplitude of (old) qubit ``q`` onto line ``perm[q]``."""
    n = len(perm)
    tensor = state.reshape([2] * n)
    # new axis perm[q] carries old axis q => transpose with inverse map.
    inverse = [0] * n
    for old, new in enumerate(perm):
        inverse[new] = old
    return np.transpose(tensor, inverse).reshape(-1)


def equivalent_mapped(
    original: Circuit,
    mapped: Circuit,
    initial: Placement,
    final: Placement,
    atol: float = 1e-7,
) -> bool:
    """Check a mapping result against the original circuit.

    Args:
        original: The pre-mapping circuit on program qubits.
        mapped: The routed (optionally decomposed) circuit on physical
            qubits; must be unitary-only (no measurements).
        initial: Placement before the first mapped gate.
        final: Placement after the last mapped gate.
        atol: Numerical tolerance.

    Returns:
        True when ``mapped`` equals the embedded original followed by the
        routing permutation, up to global phase.
    """
    m = mapped.num_qubits
    if initial.num_physical != m or final.num_physical != m:
        raise ValueError("placements do not match the mapped circuit size")
    embedding = {q: initial.phys(q) for q in range(original.num_qubits)}
    embedded = original.remap_qubits(embedding, num_qubits=m)
    sigma = initial.permutation_to(final)

    if m <= _UNITARY_LIMIT:
        lhs = circuit_unitary(mapped)
        rhs = permutation_unitary(sigma, m) @ circuit_unitary(embedded)
        return allclose_up_to_global_phase(lhs, rhs, atol)

    return _random_state_check(mapped, embedded, sigma, atol)


def _random_state_check(
    lhs: Circuit, rhs: Circuit, sigma: list[int], atol: float, trials: int = 3
) -> bool:
    """Compare circuits on random states: lhs|psi> vs P(sigma) rhs|psi>."""
    n = lhs.num_qubits
    if n > STATEVECTOR_LIMIT:
        raise ValueError(
            f"cannot verify a {n}-qubit circuit by statevector simulation "
            f"(limit {STATEVECTOR_LIMIT} qubits)"
        )
    rng = np.random.default_rng(1234)
    for _ in range(trials):
        psi = rng.normal(size=2**n) + 1j * rng.normal(size=2**n)
        psi /= np.linalg.norm(psi)
        out_l = simulate(lhs, psi)
        out_r = apply_permutation(simulate(rhs, psi), sigma)
        overlap = abs(np.vdot(out_l, out_r))
        if abs(overlap - 1.0) > max(atol, 1e-7) * 100:
            return False
    return True
