"""Verification: mapped-circuit equivalence checking."""

from .equivalence import (
    STATEVECTOR_LIMIT,
    apply_permutation,
    equivalent_circuits,
    equivalent_mapped,
)
from .feedforward import data_qubit_fidelity, equivalent_mapped_with_feedforward

__all__ = [
    "STATEVECTOR_LIMIT",
    "apply_permutation",
    "data_qubit_fidelity",
    "equivalent_circuits",
    "equivalent_mapped",
    "equivalent_mapped_with_feedforward",
]
