"""The end-to-end compilation pipeline.

Implements the full flow of the paper's Fig. 2: a quantum circuit plus a
device description go in; a constraint-satisfying, scheduled program
comes out.  The pipeline stages match Section III-A's three compiler
tasks:

1. **initial placement** (:mod:`repro.mapping.placement`),
2. **routing** (:mod:`repro.mapping.routing`) with CNOT direction fixing,
3. **gate decomposition** (:mod:`repro.decompose`) into the native set,
4. **scheduling** (:mod:`repro.mapping.scheduler` /
   :mod:`repro.mapping.control`), dependency-only or
   control-constraint-aware.

Use :func:`compile_circuit` for the general entry point; the result
object records every intermediate artefact so experiments can report any
metric the paper discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..decompose import decompose_circuit
from ..devices.device import Device
from ..obs import add_counter, trace_span
from ..optimize import optimize_circuit
from ..mapping.control import schedule_with_constraints
from ..mapping.direction import fix_directions
from ..mapping.placement import PLACERS, Placement
from ..mapping.routing import ROUTERS, RoutingError, RoutingResult, \
    check_connectivity, route
from ..mapping.scheduler import Schedule, alap_schedule, asap_schedule
from ..qasm import parse_qasm, to_openqasm
from ..resilience.deadline import Deadline, DeadlineExceeded, use_deadline
from ..resilience.faults import FaultInjected, fault_point
from .circuit import Circuit
from .snapshot import (
    placement_from_obj,
    placement_to_obj,
    schedule_from_obj,
    schedule_to_obj,
)

__all__ = [
    "CompilationResult",
    "PassConfig",
    "STAGES",
    "compile_circuit",
    "compile_with_config",
    "fallback_chain",
    "routing_result_from_obj",
    "routing_result_to_obj",
]

#: The cacheable pipeline stages, in execution order.  Each stage's
#: output is a pure function of (its input snapshot, the device, its
#: slice of :class:`PassConfig`), which is what makes per-stage cache
#: entries sound: ``placement`` is reusable across router variants,
#: ``routing`` across scheduler tweaks, and so on downstream.
STAGES = ("placement", "routing", "lower", "schedule")

#: Cheaper routers tried, in order, when a routing stage times out or
#: fails: SABRE is the fast heuristic, naive always terminates.
_FALLBACK_ORDER = ("sabre", "naive")


def fallback_chain(router: str) -> tuple[str, ...]:
    """The router sequence tried for ``router``: itself, then cheaper ones.

    ``astar`` degrades through ``sabre`` to ``naive``; ``naive`` has no
    fallback.  Any unknown/expensive router degrades through the full
    ``sabre -> naive`` tail.
    """
    if router in _FALLBACK_ORDER:
        index = _FALLBACK_ORDER.index(router)
        return (router,) + _FALLBACK_ORDER[index + 1:]
    return (router,) + _FALLBACK_ORDER


def routing_result_to_obj(routed: RoutingResult) -> dict:
    """A routing outcome as a JSON-able dict (inverse of
    :func:`routing_result_from_obj`).

    The circuit travels as OpenQASM text — the writer is a fixed point
    of ``parse -> write``, so a stage entry loaded from cache re-hashes
    to the same key it was stored under.  Router metadata is
    deliberately dropped: it is diagnostic, not part of the artefact
    contract.
    """
    return {
        "circuit_qasm": to_openqasm(routed.circuit),
        "initial": placement_to_obj(routed.initial),
        "final": placement_to_obj(routed.final),
        "added_swaps": routed.added_swaps,
        "router": routed.router,
    }


def routing_result_from_obj(obj: Mapping) -> RoutingResult:
    """Rebuild a :class:`~repro.mapping.routing.RoutingResult` from
    :func:`routing_result_to_obj` output."""
    return RoutingResult(
        circuit=parse_qasm(obj["circuit_qasm"]),
        initial=placement_from_obj(obj["initial"]),
        final=placement_from_obj(obj["final"]),
        added_swaps=obj["added_swaps"],
        router=obj["router"],
    )


@dataclass(frozen=True)
class PassConfig:
    """Hashable, serialisable description of one pipeline configuration.

    Captures every knob of :func:`compile_circuit` that changes its
    output, in a canonical form: the compile cache
    (:mod:`repro.service`) keys artefacts on this object, so two configs
    compare (and hash) equal exactly when they drive identical
    compilations.  ``router_options`` is normalised to a sorted tuple of
    ``(name, value)`` pairs; a mapping may be passed and is converted.

    Only *named* placers are representable — a callable placer has no
    canonical serial form and must go through :func:`compile_circuit`
    directly.
    """

    placer: str = "assignment"
    router: str = "sabre"
    router_options: tuple[tuple[str, object], ...] = ()
    decompose: bool = True
    optimize: bool = False
    schedule: str | None = "asap"
    control_constraints: bool | None = None

    def __post_init__(self) -> None:
        opts = self.router_options
        if isinstance(opts, Mapping):
            pairs = opts.items()
        else:
            pairs = tuple(opts)
        object.__setattr__(
            self,
            "router_options",
            tuple(sorted((str(k), v) for k, v in pairs)),
        )

    def as_kwargs(self) -> dict:
        """Keyword arguments for :func:`compile_circuit`."""
        return {
            "placer": self.placer,
            "router": self.router,
            "router_options": dict(self.router_options),
            "decompose": self.decompose,
            "optimize": self.optimize,
            "schedule": self.schedule,
            "control_constraints": self.control_constraints,
        }

    def to_dict(self) -> dict:
        """JSON-serialisable form (inverse of :meth:`from_dict`)."""
        return {
            "placer": self.placer,
            "router": self.router,
            "router_options": dict(self.router_options),
            "decompose": self.decompose,
            "optimize": self.optimize,
            "schedule": self.schedule,
            "control_constraints": self.control_constraints,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PassConfig":
        """Rebuild a config from :meth:`to_dict` output (extras rejected)."""
        known = {
            "placer", "router", "router_options", "decompose",
            "optimize", "schedule", "control_constraints",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown PassConfig fields: {sorted(unknown)}")
        return cls(**{k: data[k] for k in known if k in data})

    def stage_slice(self, stage: str) -> dict:
        """The knobs of this config that stage ``stage`` depends on.

        Stage cache keys commit to *only* this slice, which is what lets
        one stage's entry survive a change to a later stage's knobs: a
        scheduler tweak re-keys ``schedule`` but not ``routing``.

        Raises:
            ValueError: for a name not in :data:`STAGES`.
        """
        if stage == "placement":
            return {"placer": self.placer}
        if stage == "routing":
            return {
                "router": self.router,
                "router_options": dict(self.router_options),
            }
        if stage == "lower":
            return {"decompose": self.decompose, "optimize": self.optimize}
        if stage == "schedule":
            return {
                "schedule": self.schedule,
                "control_constraints": self.control_constraints,
            }
        raise ValueError(f"unknown pipeline stage {stage!r}")


@dataclass
class CompilationResult:
    """Every artefact of one compilation run.

    Attributes:
        original: The input circuit on program qubits.
        device: The target device.
        routed: Routing outcome (circuit still contains ``swap`` gates
            and possibly wrong-direction CNOTs).
        native: The fully lowered circuit: native gates only, legal
            directions, connectivity satisfied.
        schedule: Timed schedule of ``native`` (``None`` when scheduling
            was disabled).
        flips: Number of CNOTs the direction pass had to reverse.
        placer: Name of the placement strategy used.
        router: Name of the router used.
    """

    original: Circuit
    device: Device
    routed: RoutingResult
    native: Circuit
    schedule: Schedule | None
    flips: int
    placer: str
    router: str
    metadata: dict = field(default_factory=dict)

    # -- headline metrics -------------------------------------------------

    @property
    def added_swaps(self) -> int:
        return self.routed.added_swaps

    @property
    def gate_overhead(self) -> int:
        """Native gates emitted minus native gates the input needs alone."""
        return self.native.size() - self.original.size()

    @property
    def depth_ratio(self) -> float:
        base = max(self.original.depth(), 1)
        return self.native.depth() / base

    @property
    def latency(self) -> int:
        """Latency in cycles (0 when unscheduled)."""
        return self.schedule.latency if self.schedule else 0

    @property
    def latency_ns(self) -> float:
        return self.schedule.latency_ns if self.schedule else 0.0

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        lines = [
            f"circuit {self.original.name or '<unnamed>'} -> {self.device.name}",
            f"  placer={self.placer} router={self.router}",
            f"  original: {self.original.size()} gates, depth {self.original.depth()}",
            f"  routed:   +{self.added_swaps} SWAPs, {self.flips} direction flips",
            f"  native:   {self.native.size()} gates, depth {self.native.depth()}",
        ]
        if self.schedule is not None:
            lines.append(
                f"  schedule: {self.schedule.latency} cycles "
                f"({self.schedule.latency_ns:.0f} ns)"
            )
        return "\n".join(lines)


def compile_circuit(
    circuit: Circuit,
    device: Device,
    *,
    placer: str | Callable = "assignment",
    router: str = "sabre",
    router_options: dict | None = None,
    decompose: bool = True,
    optimize: bool = False,
    schedule: str | None = "asap",
    control_constraints: bool | None = None,
    stage_store=None,
) -> CompilationResult:
    """Compile ``circuit`` for ``device`` through the full Fig. 2 flow.

    Args:
        circuit: Input circuit on program qubits.
        device: Target device description.
        placer: Placement strategy name (see
            :data:`repro.mapping.placement.PLACERS`) or a callable
            ``(circuit, device) -> Placement``.
        router: Router name (see :data:`repro.mapping.routing.ROUTERS`).
        router_options: Extra keyword arguments for the router.
        decompose: Lower to the native gate set (and fix CNOT directions).
            When False the result's ``native`` circuit still contains
            SWAP/composite gates.
        optimize: Run the peephole passes
            (:func:`repro.optimize.optimize_circuit`) on the lowered
            circuit — cancels e.g. direction-flip Hadamards meeting
            decomposition Hadamards.  Single-qubit fusion into ``u`` is
            enabled automatically when the device is ``u``-native.
        schedule: ``"asap"``, ``"alap"``, ``"constraints"`` (the
            control-aware scheduler) or ``None`` to skip scheduling.
        control_constraints: Only with ``schedule="constraints"``:
            explicitly enable/disable the electronics rules (default: use
            them when the device defines any).
        stage_store: Optional per-stage intermediate cache (duck-typed):
            ``load(stage, inputs, config) -> dict | None`` and
            ``store(stage, inputs, config, entry)``.  Before running a
            stage in :data:`STAGES` the pipeline probes the store with
            the stage's content-addressed inputs (circuits as OpenQASM
            text, device as its dict form) and that stage's
            :meth:`PassConfig.stage_slice`; a hit skips the stage, a
            miss stores the freshly computed entry.  ``None`` (the
            default) leaves the pipeline byte-identical to the
            pre-stage-cache behaviour.  Callable placers are never
            stage-cached (no canonical key).

    Returns:
        A :class:`CompilationResult`.
    """
    with trace_span(
        "compile", pass_="pipeline", device=device.name, router=router
    ) as root:
        # Multi-qubit gates cannot be routed; lower them first if present.
        prepared = circuit
        if any(len(g.qubits) > 2 for g in circuit.gates):
            with trace_span("decompose", pass_="decompose",
                            stage="pre-route") as sp:
                fault_point("decompose")
                prepared = decompose_circuit(circuit, device)
                if sp.enabled:
                    sp.set(gates_in=circuit.size(), gates_out=prepared.size())

        # Stage-store bookkeeping: every stage key hashes the stage's
        # *input* snapshot (circuits as QASM text, device as dict), so
        # the snapshots are only rendered when a store is present.
        store = stage_store
        if store is not None:
            device_obj = device.to_dict()
            prepared_qasm = to_openqasm(prepared)

        placement = None
        placer_name = None
        if store is not None and not callable(placer):
            placement_inputs = {
                "circuit_qasm": prepared_qasm, "device": device_obj,
            }
            entry = store.load("placement", placement_inputs,
                               {"placer": placer})
            if entry is not None:
                placement = placement_from_obj(entry["placement"])
                placer_name = entry["placer"]
        if placement is None:
            with trace_span("placement", pass_="placement") as sp:
                fault_point("placement")
                if callable(placer):
                    placement = placer(prepared, device)
                    placer_name = getattr(placer, "__name__", "custom")
                else:
                    placement = PLACERS[placer](prepared, device)
                    placer_name = placer
                if sp.enabled:
                    sp.set(placer=placer_name)
            if store is not None and not callable(placer):
                store.store(
                    "placement", placement_inputs, {"placer": placer},
                    {"placement": placement_to_obj(placement),
                     "placer": placer_name},
                )

        routed = None
        if store is not None:
            routing_inputs = {
                "circuit_qasm": prepared_qasm,
                "device": device_obj,
                "placement": placement_to_obj(placement),
            }
            routing_cfg = {
                "router": router,
                "router_options": dict(router_options or {}),
            }
            entry = store.load("routing", routing_inputs, routing_cfg)
            if entry is not None:
                routed = routing_result_from_obj(entry)
        if routed is None:
            with trace_span("routing", pass_="routing", router=router) as sp:
                fault_point("routing", router=router)
                routed = route(
                    prepared, device, router, placement,
                    **(router_options or {})
                )
                if sp.enabled:
                    sp.set(
                        added_swaps=routed.added_swaps,
                        gates_in=prepared.size(),
                        gates_out=routed.circuit.size(),
                        depth_in=prepared.depth(),
                        depth_out=routed.circuit.depth(),
                    )
            if store is not None:
                store.store("routing", routing_inputs, routing_cfg,
                            routing_result_to_obj(routed))

        native = routed.circuit
        native_qasm = None
        flips = 0
        lower_loaded = False
        if store is not None and (decompose or optimize):
            lower_inputs = {
                "circuit_qasm": to_openqasm(routed.circuit),
                "device": device_obj,
            }
            lower_cfg = {"decompose": decompose, "optimize": optimize}
            entry = store.load("lower", lower_inputs, lower_cfg)
            if entry is not None:
                native_qasm = entry["circuit_qasm"]
                native = parse_qasm(native_qasm)
                flips = entry["flips"]
                lower_loaded = True
        if not lower_loaded and decompose:
            with trace_span("decompose", pass_="decompose",
                            stage="lower") as sp:
                lowered = decompose_circuit(native, device)
                if sp.enabled:
                    sp.set(gates_in=native.size(), gates_out=lowered.size())
                native = lowered
            with trace_span("direction-fix", pass_="direction-fix") as sp:
                fault_point("direction-fix")
                gates_in = native.size() if sp.enabled else 0
                native, flips = fix_directions(native, device)
                if sp.enabled:
                    sp.set(flips=flips, gates_in=gates_in,
                           gates_out=native.size())
            if optimize:
                # Clean up *before* the final lowering so H/H pairs from
                # the direction fix cancel while still recognisable.
                with trace_span("optimize", pass_="optimize",
                                stage="pre-lower") as sp:
                    fault_point("optimize")
                    optimized = optimize_circuit(native)
                    if sp.enabled:
                        sp.set(gates_in=native.size(),
                               gates_out=optimized.size())
                    native = optimized
            with trace_span("decompose", pass_="decompose",
                            stage="native") as sp:
                lowered = decompose_circuit(native, device)
                if sp.enabled:
                    sp.set(gates_in=native.size(), gates_out=lowered.size())
                native = lowered
            if optimize:
                with trace_span("optimize", pass_="optimize",
                                stage="native") as sp:
                    optimized = optimize_circuit(
                        native, fuse="u" in device.native_gates
                    )
                    if sp.enabled:
                        sp.set(gates_in=native.size(),
                               gates_out=optimized.size())
                    native = optimized
            with trace_span("verify", pass_="verify"):
                fault_point("verify")
                check_connectivity(native, device)
        elif not lower_loaded and optimize:
            with trace_span("optimize", pass_="optimize") as sp:
                fault_point("optimize")
                optimized = optimize_circuit(native)
                if sp.enabled:
                    sp.set(gates_in=native.size(), gates_out=optimized.size())
                native = optimized
        if (
            store is not None
            and not lower_loaded
            and (decompose or optimize)
        ):
            native_qasm = to_openqasm(native)
            store.store("lower", lower_inputs, lower_cfg,
                        {"circuit_qasm": native_qasm, "flips": flips})

        timed: Schedule | None = None
        if schedule is not None:
            sched_loaded = False
            if store is not None:
                if native_qasm is None:
                    native_qasm = to_openqasm(native)
                sched_inputs = {
                    "circuit_qasm": native_qasm, "device": device_obj,
                }
                sched_cfg = {
                    "schedule": schedule,
                    "control_constraints": control_constraints,
                }
                entry = store.load("schedule", sched_inputs, sched_cfg)
                if entry is not None:
                    timed = schedule_from_obj(entry["schedule"])
                    sched_loaded = True
            if not sched_loaded:
                with trace_span("schedule", pass_="schedule",
                                mode=schedule) as sp:
                    fault_point("schedule")
                    if schedule == "asap":
                        timed = asap_schedule(native, device)
                    elif schedule == "alap":
                        timed = alap_schedule(native, device)
                    elif schedule == "constraints":
                        use = control_constraints
                        if use is None:
                            use = (
                                device.constraints is not None
                                or "serial_two_qubit" in device.features
                            )
                        timed = schedule_with_constraints(
                            native,
                            device,
                            awg=use,
                            feedlines=use,
                            parking=use,
                            serial_two_qubit=None if use else False,
                        )
                    else:
                        raise ValueError(
                            f"unknown schedule mode {schedule!r}"
                        )
                    if sp.enabled and timed is not None:
                        sp.set(latency=timed.latency)
                if store is not None:
                    store.store("schedule", sched_inputs, sched_cfg,
                                {"schedule": schedule_to_obj(timed)})

        if root.enabled:
            root.set(
                gates_in=circuit.size(),
                gates_out=native.size(),
                depth_in=circuit.depth(),
                depth_out=native.depth(),
                added_swaps=routed.added_swaps,
                flips=flips,
            )

    return CompilationResult(
        original=circuit,
        device=device,
        routed=routed,
        native=native,
        schedule=timed,
        flips=flips,
        placer=placer_name,
        router=router,
    )


def compile_with_config(
    circuit: Circuit,
    device: Device,
    config: PassConfig | None = None,
    *,
    deadline: Deadline | None = None,
    fallback: bool = True,
    stage_store=None,
) -> CompilationResult:
    """Run :func:`compile_circuit` under a :class:`PassConfig`.

    The entry point the compile service uses: configs are hashable and
    serialisable, so the same object that keys the cache also drives the
    compilation — there is no way for the two to drift apart.

    Resilience: when ``fallback`` is true and the routing stage times out
    (``deadline``, cooperative — the routers poll it) or fails, the
    compilation is retried down :func:`fallback_chain` with the next
    cheaper router.  A result produced by a fallback router carries
    ``metadata["resilience"]`` with ``degraded=True``, the requested and
    actually-used routers, the fallback path walked, and the failure
    messages.  The last router in the chain runs without a deadline if
    the budget is already spent — the chain's contract is to always
    return *an* answer.  With no deadline and no fault, the first
    attempt uses ``config``'s kwargs verbatim, so output is
    byte-identical to a plain :func:`compile_circuit` call.
    """
    config = config or PassConfig()
    chain = fallback_chain(config.router) if fallback else (config.router,)
    failures: list[dict] = []
    for position, router in enumerate(chain):
        last = position == len(chain) - 1
        kwargs = config.as_kwargs()
        if position > 0:
            # Router options belong to the requested router; the fallback
            # runs with its defaults.
            kwargs["router"] = router
            kwargs["router_options"] = {}
        attempt_deadline = deadline
        if fallback and last and deadline is not None and deadline.expired():
            # The budget is gone but the chain must still answer: run the
            # last-resort router unbounded.  (With fallback disabled the
            # caller asked for strict enforcement — let the router raise.)
            attempt_deadline = None
        try:
            with use_deadline(attempt_deadline):
                result = compile_circuit(
                    circuit, device, stage_store=stage_store, **kwargs
                )
        except DeadlineExceeded as exc:
            add_counter("pipeline.deadline_aborts", 1)
            if last:
                raise
            failures.append(
                {"router": router, "kind": "deadline", "error": str(exc)}
            )
            continue
        except (RoutingError, FaultInjected) as exc:
            add_counter("pipeline.router_failures", 1)
            if last:
                raise
            failures.append(
                {"router": router, "kind": type(exc).__name__,
                 "error": str(exc)}
            )
            continue
        if failures:
            add_counter("pipeline.router_fallbacks", 1)
            result.metadata["resilience"] = {
                "degraded": True,
                "requested_router": config.router,
                "router_used": router,
                "fallback_path": [f["router"] for f in failures] + [router],
                "failures": failures,
            }
        return result
    raise RuntimeError("unreachable: fallback chain exhausted")  # pragma: no cover
