"""The end-to-end compilation pipeline.

Implements the full flow of the paper's Fig. 2: a quantum circuit plus a
device description go in; a constraint-satisfying, scheduled program
comes out.  The pipeline stages match Section III-A's three compiler
tasks:

1. **initial placement** (:mod:`repro.mapping.placement`),
2. **routing** (:mod:`repro.mapping.routing`) with CNOT direction fixing,
3. **gate decomposition** (:mod:`repro.decompose`) into the native set,
4. **scheduling** (:mod:`repro.mapping.scheduler` /
   :mod:`repro.mapping.control`), dependency-only or
   control-constraint-aware.

Use :func:`compile_circuit` for the general entry point; the result
object records every intermediate artefact so experiments can report any
metric the paper discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..decompose import decompose_circuit
from ..devices.device import Device
from ..obs import add_counter, trace_span
from ..optimize import optimize_circuit
from ..mapping.control import schedule_with_constraints
from ..mapping.direction import fix_directions
from ..mapping.placement import PLACERS, Placement
from ..mapping.routing import ROUTERS, RoutingError, RoutingResult, \
    check_connectivity, route
from ..mapping.scheduler import Schedule, alap_schedule, asap_schedule
from ..resilience.deadline import Deadline, DeadlineExceeded, use_deadline
from ..resilience.faults import FaultInjected, fault_point
from .circuit import Circuit

__all__ = [
    "CompilationResult",
    "PassConfig",
    "compile_circuit",
    "compile_with_config",
    "fallback_chain",
]

#: Cheaper routers tried, in order, when a routing stage times out or
#: fails: SABRE is the fast heuristic, naive always terminates.
_FALLBACK_ORDER = ("sabre", "naive")


def fallback_chain(router: str) -> tuple[str, ...]:
    """The router sequence tried for ``router``: itself, then cheaper ones.

    ``astar`` degrades through ``sabre`` to ``naive``; ``naive`` has no
    fallback.  Any unknown/expensive router degrades through the full
    ``sabre -> naive`` tail.
    """
    if router in _FALLBACK_ORDER:
        index = _FALLBACK_ORDER.index(router)
        return (router,) + _FALLBACK_ORDER[index + 1:]
    return (router,) + _FALLBACK_ORDER


@dataclass(frozen=True)
class PassConfig:
    """Hashable, serialisable description of one pipeline configuration.

    Captures every knob of :func:`compile_circuit` that changes its
    output, in a canonical form: the compile cache
    (:mod:`repro.service`) keys artefacts on this object, so two configs
    compare (and hash) equal exactly when they drive identical
    compilations.  ``router_options`` is normalised to a sorted tuple of
    ``(name, value)`` pairs; a mapping may be passed and is converted.

    Only *named* placers are representable — a callable placer has no
    canonical serial form and must go through :func:`compile_circuit`
    directly.
    """

    placer: str = "assignment"
    router: str = "sabre"
    router_options: tuple[tuple[str, object], ...] = ()
    decompose: bool = True
    optimize: bool = False
    schedule: str | None = "asap"
    control_constraints: bool | None = None

    def __post_init__(self) -> None:
        opts = self.router_options
        if isinstance(opts, Mapping):
            pairs = opts.items()
        else:
            pairs = tuple(opts)
        object.__setattr__(
            self,
            "router_options",
            tuple(sorted((str(k), v) for k, v in pairs)),
        )

    def as_kwargs(self) -> dict:
        """Keyword arguments for :func:`compile_circuit`."""
        return {
            "placer": self.placer,
            "router": self.router,
            "router_options": dict(self.router_options),
            "decompose": self.decompose,
            "optimize": self.optimize,
            "schedule": self.schedule,
            "control_constraints": self.control_constraints,
        }

    def to_dict(self) -> dict:
        """JSON-serialisable form (inverse of :meth:`from_dict`)."""
        return {
            "placer": self.placer,
            "router": self.router,
            "router_options": dict(self.router_options),
            "decompose": self.decompose,
            "optimize": self.optimize,
            "schedule": self.schedule,
            "control_constraints": self.control_constraints,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PassConfig":
        """Rebuild a config from :meth:`to_dict` output (extras rejected)."""
        known = {
            "placer", "router", "router_options", "decompose",
            "optimize", "schedule", "control_constraints",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown PassConfig fields: {sorted(unknown)}")
        return cls(**{k: data[k] for k in known if k in data})


@dataclass
class CompilationResult:
    """Every artefact of one compilation run.

    Attributes:
        original: The input circuit on program qubits.
        device: The target device.
        routed: Routing outcome (circuit still contains ``swap`` gates
            and possibly wrong-direction CNOTs).
        native: The fully lowered circuit: native gates only, legal
            directions, connectivity satisfied.
        schedule: Timed schedule of ``native`` (``None`` when scheduling
            was disabled).
        flips: Number of CNOTs the direction pass had to reverse.
        placer: Name of the placement strategy used.
        router: Name of the router used.
    """

    original: Circuit
    device: Device
    routed: RoutingResult
    native: Circuit
    schedule: Schedule | None
    flips: int
    placer: str
    router: str
    metadata: dict = field(default_factory=dict)

    # -- headline metrics -------------------------------------------------

    @property
    def added_swaps(self) -> int:
        return self.routed.added_swaps

    @property
    def gate_overhead(self) -> int:
        """Native gates emitted minus native gates the input needs alone."""
        return self.native.size() - self.original.size()

    @property
    def depth_ratio(self) -> float:
        base = max(self.original.depth(), 1)
        return self.native.depth() / base

    @property
    def latency(self) -> int:
        """Latency in cycles (0 when unscheduled)."""
        return self.schedule.latency if self.schedule else 0

    @property
    def latency_ns(self) -> float:
        return self.schedule.latency_ns if self.schedule else 0.0

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        lines = [
            f"circuit {self.original.name or '<unnamed>'} -> {self.device.name}",
            f"  placer={self.placer} router={self.router}",
            f"  original: {self.original.size()} gates, depth {self.original.depth()}",
            f"  routed:   +{self.added_swaps} SWAPs, {self.flips} direction flips",
            f"  native:   {self.native.size()} gates, depth {self.native.depth()}",
        ]
        if self.schedule is not None:
            lines.append(
                f"  schedule: {self.schedule.latency} cycles "
                f"({self.schedule.latency_ns:.0f} ns)"
            )
        return "\n".join(lines)


def compile_circuit(
    circuit: Circuit,
    device: Device,
    *,
    placer: str | Callable = "assignment",
    router: str = "sabre",
    router_options: dict | None = None,
    decompose: bool = True,
    optimize: bool = False,
    schedule: str | None = "asap",
    control_constraints: bool | None = None,
) -> CompilationResult:
    """Compile ``circuit`` for ``device`` through the full Fig. 2 flow.

    Args:
        circuit: Input circuit on program qubits.
        device: Target device description.
        placer: Placement strategy name (see
            :data:`repro.mapping.placement.PLACERS`) or a callable
            ``(circuit, device) -> Placement``.
        router: Router name (see :data:`repro.mapping.routing.ROUTERS`).
        router_options: Extra keyword arguments for the router.
        decompose: Lower to the native gate set (and fix CNOT directions).
            When False the result's ``native`` circuit still contains
            SWAP/composite gates.
        optimize: Run the peephole passes
            (:func:`repro.optimize.optimize_circuit`) on the lowered
            circuit — cancels e.g. direction-flip Hadamards meeting
            decomposition Hadamards.  Single-qubit fusion into ``u`` is
            enabled automatically when the device is ``u``-native.
        schedule: ``"asap"``, ``"alap"``, ``"constraints"`` (the
            control-aware scheduler) or ``None`` to skip scheduling.
        control_constraints: Only with ``schedule="constraints"``:
            explicitly enable/disable the electronics rules (default: use
            them when the device defines any).

    Returns:
        A :class:`CompilationResult`.
    """
    with trace_span(
        "compile", pass_="pipeline", device=device.name, router=router
    ) as root:
        # Multi-qubit gates cannot be routed; lower them first if present.
        prepared = circuit
        if any(len(g.qubits) > 2 for g in circuit.gates):
            with trace_span("decompose", pass_="decompose",
                            stage="pre-route") as sp:
                fault_point("decompose")
                prepared = decompose_circuit(circuit, device)
                if sp.enabled:
                    sp.set(gates_in=circuit.size(), gates_out=prepared.size())

        with trace_span("placement", pass_="placement") as sp:
            fault_point("placement")
            if callable(placer):
                placement = placer(prepared, device)
                placer_name = getattr(placer, "__name__", "custom")
            else:
                placement = PLACERS[placer](prepared, device)
                placer_name = placer
            if sp.enabled:
                sp.set(placer=placer_name)

        with trace_span("routing", pass_="routing", router=router) as sp:
            fault_point("routing", router=router)
            routed = route(
                prepared, device, router, placement, **(router_options or {})
            )
            if sp.enabled:
                sp.set(
                    added_swaps=routed.added_swaps,
                    gates_in=prepared.size(),
                    gates_out=routed.circuit.size(),
                    depth_in=prepared.depth(),
                    depth_out=routed.circuit.depth(),
                )

        native = routed.circuit
        flips = 0
        if decompose:
            with trace_span("decompose", pass_="decompose",
                            stage="lower") as sp:
                lowered = decompose_circuit(native, device)
                if sp.enabled:
                    sp.set(gates_in=native.size(), gates_out=lowered.size())
                native = lowered
            with trace_span("direction-fix", pass_="direction-fix") as sp:
                fault_point("direction-fix")
                gates_in = native.size() if sp.enabled else 0
                native, flips = fix_directions(native, device)
                if sp.enabled:
                    sp.set(flips=flips, gates_in=gates_in,
                           gates_out=native.size())
            if optimize:
                # Clean up *before* the final lowering so H/H pairs from
                # the direction fix cancel while still recognisable.
                with trace_span("optimize", pass_="optimize",
                                stage="pre-lower") as sp:
                    fault_point("optimize")
                    optimized = optimize_circuit(native)
                    if sp.enabled:
                        sp.set(gates_in=native.size(),
                               gates_out=optimized.size())
                    native = optimized
            with trace_span("decompose", pass_="decompose",
                            stage="native") as sp:
                lowered = decompose_circuit(native, device)
                if sp.enabled:
                    sp.set(gates_in=native.size(), gates_out=lowered.size())
                native = lowered
            if optimize:
                with trace_span("optimize", pass_="optimize",
                                stage="native") as sp:
                    optimized = optimize_circuit(
                        native, fuse="u" in device.native_gates
                    )
                    if sp.enabled:
                        sp.set(gates_in=native.size(),
                               gates_out=optimized.size())
                    native = optimized
            with trace_span("verify", pass_="verify"):
                fault_point("verify")
                check_connectivity(native, device)
        elif optimize:
            with trace_span("optimize", pass_="optimize") as sp:
                fault_point("optimize")
                optimized = optimize_circuit(native)
                if sp.enabled:
                    sp.set(gates_in=native.size(), gates_out=optimized.size())
                native = optimized

        timed: Schedule | None = None
        if schedule is not None:
            with trace_span("schedule", pass_="schedule",
                            mode=schedule) as sp:
                fault_point("schedule")
                if schedule == "asap":
                    timed = asap_schedule(native, device)
                elif schedule == "alap":
                    timed = alap_schedule(native, device)
                elif schedule == "constraints":
                    use = control_constraints
                    if use is None:
                        use = (
                            device.constraints is not None
                            or "serial_two_qubit" in device.features
                        )
                    timed = schedule_with_constraints(
                        native,
                        device,
                        awg=use,
                        feedlines=use,
                        parking=use,
                        serial_two_qubit=None if use else False,
                    )
                else:
                    raise ValueError(f"unknown schedule mode {schedule!r}")
                if sp.enabled and timed is not None:
                    sp.set(latency=timed.latency)

        if root.enabled:
            root.set(
                gates_in=circuit.size(),
                gates_out=native.size(),
                depth_in=circuit.depth(),
                depth_out=native.depth(),
                added_swaps=routed.added_swaps,
                flips=flips,
            )

    return CompilationResult(
        original=circuit,
        device=device,
        routed=routed,
        native=native,
        schedule=timed,
        flips=flips,
        placer=placer_name,
        router=router,
    )


def compile_with_config(
    circuit: Circuit,
    device: Device,
    config: PassConfig | None = None,
    *,
    deadline: Deadline | None = None,
    fallback: bool = True,
) -> CompilationResult:
    """Run :func:`compile_circuit` under a :class:`PassConfig`.

    The entry point the compile service uses: configs are hashable and
    serialisable, so the same object that keys the cache also drives the
    compilation — there is no way for the two to drift apart.

    Resilience: when ``fallback`` is true and the routing stage times out
    (``deadline``, cooperative — the routers poll it) or fails, the
    compilation is retried down :func:`fallback_chain` with the next
    cheaper router.  A result produced by a fallback router carries
    ``metadata["resilience"]`` with ``degraded=True``, the requested and
    actually-used routers, the fallback path walked, and the failure
    messages.  The last router in the chain runs without a deadline if
    the budget is already spent — the chain's contract is to always
    return *an* answer.  With no deadline and no fault, the first
    attempt uses ``config``'s kwargs verbatim, so output is
    byte-identical to a plain :func:`compile_circuit` call.
    """
    config = config or PassConfig()
    chain = fallback_chain(config.router) if fallback else (config.router,)
    failures: list[dict] = []
    for position, router in enumerate(chain):
        last = position == len(chain) - 1
        kwargs = config.as_kwargs()
        if position > 0:
            # Router options belong to the requested router; the fallback
            # runs with its defaults.
            kwargs["router"] = router
            kwargs["router_options"] = {}
        attempt_deadline = deadline
        if fallback and last and deadline is not None and deadline.expired():
            # The budget is gone but the chain must still answer: run the
            # last-resort router unbounded.  (With fallback disabled the
            # caller asked for strict enforcement — let the router raise.)
            attempt_deadline = None
        try:
            with use_deadline(attempt_deadline):
                result = compile_circuit(circuit, device, **kwargs)
        except DeadlineExceeded as exc:
            add_counter("pipeline.deadline_aborts", 1)
            if last:
                raise
            failures.append(
                {"router": router, "kind": "deadline", "error": str(exc)}
            )
            continue
        except (RoutingError, FaultInjected) as exc:
            add_counter("pipeline.router_failures", 1)
            if last:
                raise
            failures.append(
                {"router": router, "kind": type(exc).__name__,
                 "error": str(exc)}
            )
            continue
        if failures:
            add_counter("pipeline.router_fallbacks", 1)
            result.metadata["resilience"] = {
                "degraded": True,
                "requested_router": config.router,
                "router_used": router,
                "fallback_path": [f["router"] for f in failures] + [router],
                "failures": failures,
            }
        return result
    raise RuntimeError("unreachable: fallback chain exhausted")  # pragma: no cover
