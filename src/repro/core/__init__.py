"""Circuit intermediate representation: gates, circuits, dependency DAG."""

from .circuit import Circuit
from .dag import DependencyGraph
from .gates import GATE_SPECS, Gate, GateSpec, canonical_name, gate_matrix

__all__ = [
    "Circuit",
    "DependencyGraph",
    "GATE_SPECS",
    "Gate",
    "GateSpec",
    "canonical_name",
    "gate_matrix",
]
