"""Commutation-aware dependency analysis.

Reference [58] of the paper (Itoko et al., "Quantum circuit compilers
using gate commutation rules", ASP-DAC 2019) relaxes the strict
qubit-line ordering of the dependency DAG: two gates acting on a shared
qubit commute — and may be reordered or scheduled in either order —
when both act *diagonally* (Z-like) or both act as *X-like* operations
on that qubit.  Classic instances: two CNOTs sharing their control
commute; two CNOTs sharing their target commute; an Rz commutes through
a CNOT control; an Rx through a CNOT target.

:func:`commutation_class` assigns each (gate, qubit) pair one of the
classes ``"z"``, ``"x"``, or ``None`` (non-commuting/opaque), and
:func:`relaxed_dependencies` builds the reduced dependency edge set used
by :class:`repro.core.dag.DependencyGraph` with ``commutation=True``.
Routers exploiting the relaxation gain freedom to execute whichever
commuting gate is cheapest first.
"""

from __future__ import annotations

from .circuit import Circuit
from .gates import Gate

__all__ = ["commutation_class", "commutes_on", "relaxed_dependencies"]

#: Single-qubit gates diagonal in the computational (Z) basis.
_Z_DIAGONAL_1Q = {"z", "s", "sdg", "t", "tdg", "rz", "i"}
#: Single-qubit gates diagonal in the X basis.
_X_DIAGONAL_1Q = {"x", "rx", "x90", "xm90", "i"}


def commutation_class(gate: Gate, qubit: int) -> str | None:
    """The commutation class of ``gate``'s action on ``qubit``.

    Returns:
        ``"z"`` when the action is diagonal in the computational basis
        (Z rotations, CZ/CP on either operand, the *control* of a
        CNOT/CRZ), ``"x"`` when diagonal in the X basis (X rotations,
        the *target* of a CNOT, either operand of RXX), and ``None``
        when the action fits neither class (H, Y, U, SWAP, measure, ...).
    """
    if gate.condition is not None:
        return None  # feedforward timing must stay ordered
    if qubit not in gate.qubits:
        raise ValueError(f"gate {gate} does not act on qubit {qubit}")
    name = gate.name
    if len(gate.qubits) == 1:
        if name in _Z_DIAGONAL_1Q:
            return "z"
        if name in _X_DIAGONAL_1Q:
            return "x"
        return None
    if name in ("cz", "cp"):
        return "z"
    if name == "rxx":
        return "x"
    if name in ("cnot", "crz"):
        return "z" if qubit == gate.qubits[0] else (
            "x" if name == "cnot" else None
        )
    if name == "toffoli":
        return "z" if qubit in gate.qubits[:2] else "x"
    return None


def commutes_on(a: Gate, b: Gate, qubit: int) -> bool:
    """True when gates ``a`` and ``b`` commute through shared ``qubit``."""
    class_a = commutation_class(a, qubit)
    if class_a is None:
        return False
    return class_a == commutation_class(b, qubit)


def relaxed_dependencies(circuit: Circuit) -> list[tuple[int, int]]:
    """Dependency edges under the commutation rules.

    Per qubit line, consecutive gates of one commutation class form a
    *block* with no internal edges; every gate of a block depends on
    every gate of the previous block on that line.  Gates outside both
    classes form singleton blocks, reproducing the strict ordering.

    Returns:
        Directed edges ``(earlier, later)`` over gate indices.
    """
    edges: set[tuple[int, int]] = set()
    # Per qubit: (class of current block, gate indices) and previous block.
    current: dict[int, tuple[str | None, list[int]]] = {}
    previous: dict[int, list[int]] = {}

    for index, gate in enumerate(circuit.gates):
        qubits = gate.qubits or tuple(range(circuit.num_qubits))
        if gate.condition is not None and gate.condition[0] not in qubits:
            qubits = qubits + (gate.condition[0],)
        for qubit in qubits:
            if gate.is_barrier or qubit not in gate.qubits:
                klass = None  # barriers / condition reads never commute
            else:
                klass = commutation_class(gate, qubit)
            block_class, block = current.get(qubit, (None, []))
            starts_new_block = (
                not block
                or klass is None
                or block_class is None
                or klass != block_class
            )
            if starts_new_block and block:
                previous[qubit] = block
                current[qubit] = (klass, [index])
            elif starts_new_block:
                current[qubit] = (klass, [index])
            else:
                block.append(index)
            for earlier in previous.get(qubit, ()):  # inter-block edges
                if earlier != index:
                    edges.add((earlier, index))
    return sorted(edges)
