"""Gate dependency graph.

Section VI-B of the paper describes the mapper's internal representation:
"the dependency graph is a directed, acyclic graph with nodes representing
the quantum gates and edges indicating dependencies (the target node
corresponds to the gate that depends on the source node)".  This module
builds exactly that graph from a :class:`~repro.core.circuit.Circuit` and
provides the traversals routers and schedulers need:

* the *front layer* — gates with no unscheduled predecessor, the set a
  router tries to make executable next;
* ASAP layering by dependency depth;
* topological iteration consistent with the original gate order.

Dependencies are the usual qubit-line ones: two gates are ordered when
they share a qubit.  Barriers depend on (and are depended on by) every
gate on the qubits they span.

Adjacency is stored as flat tuples built once at construction — routers
call :meth:`predecessors`/:meth:`successors` inside their hottest loops,
so those must be array lookups, not graph-library traversals.  The
:attr:`graph` networkx view is materialised lazily for callers that want
graph algorithms (transitive closure, drawing, ...).
"""

from __future__ import annotations

import heapq
from functools import cached_property
from typing import Iterator

from .circuit import Circuit
from .gates import Gate

__all__ = ["DependencyGraph"]


class DependencyGraph:
    """Directed acyclic dependency graph over the gates of a circuit.

    Nodes are gate indices into ``circuit.gates``; an edge ``u -> v``
    means gate ``v`` must wait for gate ``u``.  Only *direct* dependencies
    are stored (the last previous gate on each shared qubit line), so the
    edge count is linear in circuit size.
    """

    def __init__(self, circuit: Circuit, *, commutation: bool = False) -> None:
        """Args:
            circuit: The circuit to analyse.
            commutation: Relax the strict qubit-line ordering with the
                gate commutation rules of [58] (see
                :mod:`repro.core.commutation`): gates that commute on
                every shared qubit carry no edge, giving routers and
                schedulers extra freedom.
        """
        self.circuit = circuit
        self.commutation = commutation
        n = len(circuit.gates)
        if commutation:
            from .commutation import relaxed_dependencies

            edges = list(relaxed_dependencies(circuit))
        else:
            edges = []
            last_on_qubit: dict[int, int] = {}
            for index, gate in enumerate(circuit.gates):
                qubits = gate.qubits or tuple(range(circuit.num_qubits))
                # A classical condition reads the measurement result of its
                # bit's qubit line: the gate must wait for it (and later
                # operations on that line must wait for the read — we model
                # the read conservatively as a full touch).
                if gate.condition is not None:
                    qubits = tuple(dict.fromkeys(qubits + (gate.condition[0],)))
                preds = {last_on_qubit[q] for q in qubits if q in last_on_qubit}
                for p in preds:
                    edges.append((p, index))
                for q in qubits:
                    last_on_qubit[q] = index
        pred_sets: list[set[int]] = [set() for _ in range(n)]
        succ_sets: list[set[int]] = [set() for _ in range(n)]
        for u, v in edges:
            pred_sets[v].add(u)
            succ_sets[u].add(v)
        self._preds: tuple[list[int], ...] = tuple(sorted(s) for s in pred_sets)
        self._succs: tuple[list[int], ...] = tuple(sorted(s) for s in succ_sets)

    @cached_property
    def graph(self):
        """Networkx view of the DAG (built on first use only)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(len(self._preds)))
        for v, preds in enumerate(self._preds):
            for u in preds:
                g.add_edge(u, v)
        return g

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._preds)

    def gate(self, index: int) -> Gate:
        """The gate at node ``index``."""
        return self.circuit.gates[index]

    def predecessors(self, index: int) -> list[int]:
        return self._preds[index]

    def successors(self, index: int) -> list[int]:
        return self._succs[index]

    def front_layer(self, done: set[int] | None = None) -> list[int]:
        """Indices of gates whose predecessors are all in ``done``.

        With ``done=None`` this is the set of initially-executable gates.
        Gates already in ``done`` are never returned.
        """
        done = done or set()
        preds = self._preds
        return [
            node
            for node in range(len(preds))
            if node not in done and all(p in done for p in preds[node])
        ]

    def topological(self) -> Iterator[int]:
        """Topological order consistent with original gate order."""
        pending = [len(p) for p in self._preds]
        ready = [node for node, count in enumerate(pending) if count == 0]
        heapq.heapify(ready)
        succs = self._succs
        while ready:
            node = heapq.heappop(ready)
            yield node
            for succ in succs[node]:
                pending[succ] -= 1
                if pending[succ] == 0:
                    heapq.heappush(ready, succ)

    def asap_levels(self) -> list[int]:
        """Dependency depth of each gate (level 0 = no predecessors)."""
        # Dependency edges in either construction always point forward
        # (u < v), so a left-to-right sweep is a valid topological order.
        levels = [0] * len(self)
        for node, preds in enumerate(self._preds):
            levels[node] = 1 + max((levels[p] for p in preds), default=-1)
        return levels

    def layers(self) -> list[list[int]]:
        """Gates grouped by ASAP level."""
        levels = self.asap_levels()
        if not levels:
            return []
        grouped: list[list[int]] = [[] for _ in range(max(levels) + 1)]
        for node, level in enumerate(levels):
            grouped[level].append(node)
        return grouped

    def two_qubit_layers(self) -> list[list[int]]:
        """ASAP layers restricted to two-qubit gates (router look-ahead).

        Layering is computed on the *subsequence* of two-qubit gates,
        which is what look-ahead routers such as [54] consume: single
        qubit gates never constrain routing.
        """
        sub = self.circuit.only_two_qubit()
        index_of: list[int] = [
            i for i, g in enumerate(self.circuit.gates) if g.is_two_qubit
        ]
        sub_dag = DependencyGraph(sub)
        return [[index_of[i] for i in layer] for layer in sub_dag.layers()]

    def critical_path_length(self) -> int:
        """Length (in gates) of the longest dependency chain."""
        levels = self.asap_levels()
        return max(levels, default=-1) + 1
