"""The quantum circuit container.

A :class:`Circuit` is an ordered list of :class:`~repro.core.gates.Gate`
instances over a fixed number of qubit lines, exactly the "sequential list
of quantum gates" representation the paper uses as the mapper input
(Section III-A).  The container is deliberately simple; structure such as
the dependency DAG (Section VI-B) is derived on demand by
:mod:`repro.core.dag`.

Circuits also offer a small builder API (``circ.h(0)``,
``circ.cnot(0, 1)``, ...) so examples and workload generators read like
circuit diagrams.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Mapping, Sequence

from . import gates as G
from .gates import Gate

__all__ = ["Circuit"]


class Circuit:
    """An ordered sequence of gates on ``num_qubits`` qubit lines.

    Attributes:
        num_qubits: Number of qubit lines.  Gates must only address
            indices below this bound.
        name: Optional human-readable identifier used by reports.
    """

    def __init__(
        self,
        num_qubits: int,
        gates: Iterable[Gate] = (),
        name: str = "",
    ) -> None:
        if num_qubits < 0:
            raise ValueError("num_qubits must be non-negative")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._gates: list[Gate] = []
        for gate in gates:
            self.append(gate)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    @property
    def gates(self) -> list[Gate]:
        """The gate list (mutable; prefer :meth:`append` for checks)."""
        return self._gates

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index: int) -> Gate:
        return self._gates[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits and self._gates == other._gates
        )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Circuit{label} qubits={self.num_qubits} "
            f"gates={len(self._gates)} depth={self.depth()}>"
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def append(self, gate: Gate) -> "Circuit":
        """Append ``gate`` after validating its qubit indices."""
        for q in gate.qubits:
            if q >= self.num_qubits:
                raise ValueError(
                    f"gate {gate} addresses qubit {q} but circuit has "
                    f"{self.num_qubits} qubits"
                )
        self._gates.append(gate)
        return self

    def extend(self, more: Iterable[Gate]) -> "Circuit":
        """Append every gate in ``more``."""
        for gate in more:
            self.append(gate)
        return self

    def copy(self, name: str | None = None) -> "Circuit":
        """A shallow copy (gates are immutable, so this is safe)."""
        return Circuit(self.num_qubits, self._gates, name or self.name)

    # Builder helpers -- one per common gate, returning self for chaining.

    def i(self, q: int) -> "Circuit":
        return self.append(G.i(q))

    def x(self, q: int) -> "Circuit":
        return self.append(G.x(q))

    def y(self, q: int) -> "Circuit":
        return self.append(G.y(q))

    def z(self, q: int) -> "Circuit":
        return self.append(G.z(q))

    def h(self, q: int) -> "Circuit":
        return self.append(G.h(q))

    def s(self, q: int) -> "Circuit":
        return self.append(G.s(q))

    def sdg(self, q: int) -> "Circuit":
        return self.append(G.sdg(q))

    def t(self, q: int) -> "Circuit":
        return self.append(G.t(q))

    def tdg(self, q: int) -> "Circuit":
        return self.append(G.tdg(q))

    def rx(self, theta: float, q: int) -> "Circuit":
        return self.append(G.rx(theta, q))

    def ry(self, theta: float, q: int) -> "Circuit":
        return self.append(G.ry(theta, q))

    def rz(self, theta: float, q: int) -> "Circuit":
        return self.append(G.rz(theta, q))

    def u(self, theta: float, phi: float, lam: float, q: int) -> "Circuit":
        return self.append(G.u(theta, phi, lam, q))

    def cnot(self, control: int, target: int) -> "Circuit":
        return self.append(G.cnot(control, target))

    def cx(self, control: int, target: int) -> "Circuit":
        return self.append(G.cnot(control, target))

    def cz(self, a: int, b: int) -> "Circuit":
        return self.append(G.cz(a, b))

    def cp(self, theta: float, a: int, b: int) -> "Circuit":
        return self.append(G.cp(theta, a, b))

    def swap(self, a: int, b: int) -> "Circuit":
        return self.append(G.swap(a, b))

    def toffoli(self, c1: int, c2: int, target: int) -> "Circuit":
        return self.append(G.toffoli(c1, c2, target))

    def fredkin(self, control: int, a: int, b: int) -> "Circuit":
        return self.append(G.fredkin(control, a, b))

    def measure(self, q: int) -> "Circuit":
        return self.append(G.measure(q))

    def prep_z(self, q: int) -> "Circuit":
        return self.append(G.prep_z(q))

    def measure_all(self) -> "Circuit":
        for q in range(self.num_qubits):
            self.append(G.measure(q))
        return self

    def barrier(self, *qubits: int) -> "Circuit":
        return self.append(G.barrier(*qubits))

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def gate_counts(self) -> Counter:
        """Histogram of gate names (barriers excluded)."""
        return Counter(g.name for g in self._gates if not g.is_barrier)

    def count(self, name: str) -> int:
        """Number of gates named ``name`` (after alias resolution)."""
        key = G.canonical_name(name)
        return sum(1 for g in self._gates if g.name == key)

    def size(self) -> int:
        """Total gate count, barriers excluded."""
        return sum(1 for g in self._gates if not g.is_barrier)

    def num_two_qubit_gates(self) -> int:
        """Number of two-qubit unitary gates."""
        return sum(1 for g in self._gates if g.is_two_qubit)

    def two_qubit_gates(self) -> list[Gate]:
        """The two-qubit unitary gates in program order."""
        return [g for g in self._gates if g.is_two_qubit]

    def used_qubits(self) -> set[int]:
        """Indices of qubit lines touched by at least one gate.

        Classical condition bits count as touching their qubit line.
        """
        used: set[int] = set()
        for gate in self._gates:
            used.update(gate.qubits)
            if gate.condition is not None:
                used.add(gate.condition[0])
        return used

    def depth(self, *, count_single_qubit: bool = True) -> int:
        """Number of time-steps under an as-soon-as-possible schedule.

        Each gate takes one time-step; a barrier forces synchronisation of
        the qubits it spans.  With ``count_single_qubit=False`` only
        two-qubit (and larger) gates contribute, giving the "two-qubit
        depth" metric some mapping papers report.
        """
        level = [0] * self.num_qubits
        for gate in self._gates:
            qubits = gate.qubits or tuple(range(self.num_qubits))
            start = max((level[q] for q in qubits), default=0)
            contributes = count_single_qubit or len(gate.qubits) >= 2
            advance = 1 if (contributes and not gate.is_barrier) else 0
            for q in qubits:
                level[q] = start + advance
        return max(level, default=0)

    def moments(self) -> list[list[Gate]]:
        """Greedy ASAP partition of the gates into parallel layers.

        Layer ``k`` contains gates whose operands are all free at step
        ``k``; this matches the "gates vertically adjacent can be executed
        in parallel" reading of the paper's Fig. 5.
        """
        level = [0] * self.num_qubits
        layers: list[list[Gate]] = []
        for gate in self._gates:
            qubits = gate.qubits or tuple(range(self.num_qubits))
            start = max((level[q] for q in qubits), default=0)
            if gate.is_barrier:
                for q in qubits:
                    level[q] = start
                continue
            while len(layers) <= start:
                layers.append([])
            layers[start].append(gate)
            for q in qubits:
                level[q] = start + 1
        return layers

    def interaction_pairs(self) -> Counter:
        """Histogram of unordered qubit pairs coupled by two-qubit gates.

        This is the *interaction graph* placement algorithms match against
        the device coupling graph.
        """
        pairs: Counter = Counter()
        for gate in self._gates:
            if gate.is_two_qubit:
                a, b = gate.qubits
                pairs[(min(a, b), max(a, b))] += 1
        return pairs

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------

    def remap_qubits(
        self, mapping: Mapping[int, int], num_qubits: int | None = None
    ) -> "Circuit":
        """Return a circuit with every qubit ``q`` renamed to ``mapping[q]``.

        Args:
            mapping: Program-qubit to new-index map; must cover every used
                qubit and be injective on them.
            num_qubits: Line count of the result (defaults to the current
                count, or more when the mapping requires it).
        """
        used = self.used_qubits()
        image = [mapping[q] for q in used]
        if len(set(image)) != len(image):
            raise ValueError("qubit mapping is not injective on used qubits")
        top = max(image, default=-1) + 1
        n = num_qubits if num_qubits is not None else max(self.num_qubits, top)
        out = Circuit(n, name=self.name)
        for gate in self._gates:
            relevant = set(gate.qubits)
            if gate.condition is not None:
                relevant.add(gate.condition[0])
            out.append(gate.remap({q: mapping[q] for q in relevant}))
        return out

    def inverse(self) -> "Circuit":
        """The circuit implementing the inverse unitary (reversed gates).

        Raises:
            ValueError: when the circuit contains non-unitary operations.
        """
        out = Circuit(self.num_qubits, name=f"{self.name}_inv" if self.name else "")
        for gate in reversed(self._gates):
            if gate.is_barrier:
                out.append(gate)
            else:
                out.append(gate.inverse())
        return out

    def without(self, *names: str) -> "Circuit":
        """Copy with all gates whose name is in ``names`` removed."""
        keys = {G.canonical_name(n) for n in names}
        return Circuit(
            self.num_qubits,
            (g for g in self._gates if g.name not in keys),
            self.name,
        )

    def only_two_qubit(self) -> "Circuit":
        """Copy with only the two-qubit gates kept (the paper's Fig. 1b)."""
        return Circuit(
            self.num_qubits, (g for g in self._gates if g.is_two_qubit), self.name
        )

    def compose(self, other: "Circuit") -> "Circuit":
        """Concatenation ``self`` then ``other`` (qubit counts may differ)."""
        n = max(self.num_qubits, other.num_qubits)
        out = Circuit(n, self._gates, self.name)
        out.extend(other.gates)
        return out

    @staticmethod
    def from_pairs(
        num_qubits: int, pairs: Sequence[tuple[int, int]], gate: str = "cnot"
    ) -> "Circuit":
        """Build a circuit of two-qubit ``gate``s from (control, target) pairs."""
        key = G.canonical_name(gate)
        circ = Circuit(num_qubits)
        for a, b in pairs:
            circ.append(Gate(key, (a, b)))
        return circ
