"""The execution snapshot — the mapper's internal state (Section VI-B).

"Despite their differences, all mappers need an internal representation
of key quantities and these can be combined in the concept of the
*execution snapshot* ... a complete description of the algorithm and its
current, usually partial, schedule."  The paper lists its contents, all
present here:

* the dependency graph with the indication of which gates have already
  been scheduled (node colours :data:`GateColor.DONE`,
  :data:`GateColor.READY`, :data:`GateColor.PENDING`);
* the initial placement and the current placement of the qubits
  (:class:`~repro.mapping.placement.Placement`, which is exactly the
  paper's integer array with a *free* marker);
* the partial schedule as a clock-cycle table with explicit parallelism;
* the dynamically updated set of *compatible gates* — gates that are
  ready by dependencies **and** start-able under the device and control
  constraints at the current cycle.

The module also owns the plain-object (JSON-able) serialisation of the
snapshot's building blocks — gates and timed schedules — via
:func:`gate_to_obj` / :func:`gate_from_obj` and :func:`schedule_to_obj`
/ :func:`schedule_from_obj`.  The compile service
(:mod:`repro.service`) reuses these to persist
:class:`~repro.core.pipeline.CompilationResult` artefacts in its
content-addressed cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping

from ..devices.device import Device
from ..mapping.placement import Placement
from ..mapping.scheduler import Schedule, ScheduledGate
from .circuit import Circuit
from .dag import DependencyGraph
from .gates import Gate

__all__ = [
    "GateColor",
    "ExecutionSnapshot",
    "gate_to_obj",
    "gate_from_obj",
    "placement_to_obj",
    "placement_from_obj",
    "schedule_to_obj",
    "schedule_from_obj",
]


# ---------------------------------------------------------------------------
# Plain-object serialisation of snapshot building blocks
# ---------------------------------------------------------------------------

def gate_to_obj(gate: Gate) -> dict:
    """A gate as a JSON-able dict (inverse of :func:`gate_from_obj`).

    Optional fields (params, condition) are omitted when empty so the
    canonical JSON form of a gate is minimal and stable.
    """
    obj: dict = {"name": gate.name, "qubits": list(gate.qubits)}
    if gate.params:
        obj["params"] = [float(p) for p in gate.params]
    if gate.condition is not None:
        obj["condition"] = list(gate.condition)
    return obj


def gate_from_obj(obj: Mapping) -> Gate:
    """Rebuild a :class:`Gate` from :func:`gate_to_obj` output."""
    condition = obj.get("condition")
    return Gate(
        obj["name"],
        tuple(obj["qubits"]),
        tuple(obj.get("params", ())),
        tuple(condition) if condition is not None else None,
    )


def placement_to_obj(placement: Placement) -> dict:
    """A placement as a JSON-able dict (inverse of
    :func:`placement_from_obj`) — the paper's program->physical integer
    array plus the program-qubit count."""
    return {
        "prog_to_phys": placement.prog_to_phys(),
        "num_program": placement.num_program,
    }


def placement_from_obj(obj: Mapping) -> Placement:
    """Rebuild a :class:`~repro.mapping.placement.Placement` from
    :func:`placement_to_obj` output."""
    return Placement(obj["prog_to_phys"], obj["num_program"])


def schedule_to_obj(schedule: Schedule) -> dict:
    """A timed schedule as a JSON-able dict (inverse of
    :func:`schedule_from_obj`)."""
    return {
        "num_qubits": schedule.num_qubits,
        "cycle_time_ns": schedule.cycle_time_ns,
        "items": [
            {
                "gate": gate_to_obj(item.gate),
                "start": item.start,
                "duration": item.duration,
            }
            for item in schedule.items
        ],
    }


def schedule_from_obj(obj: Mapping) -> Schedule:
    """Rebuild a :class:`~repro.mapping.scheduler.Schedule` from
    :func:`schedule_to_obj` output."""
    return Schedule(
        items=[
            ScheduledGate(
                gate_from_obj(item["gate"]), item["start"], item["duration"]
            )
            for item in obj["items"]
        ],
        num_qubits=obj["num_qubits"],
        cycle_time_ns=obj.get("cycle_time_ns", 20.0),
    )


class GateColor(Enum):
    """Node colours of the dependency graph (Section VI-B)."""

    DONE = "done"        # already scheduled
    READY = "ready"      # can be scheduled next (dependencies met)
    PENDING = "pending"  # waiting on unscheduled predecessors


@dataclass
class ExecutionSnapshot:
    """Mutable mapper state over one circuit and one device.

    Create with :meth:`begin`, then repeatedly query
    :meth:`compatible_gates` and commit choices with :meth:`schedule`
    (optionally inserting SWAPs with :meth:`insert_swap`).  The snapshot
    maintains colours, placements, per-qubit busy times, and the cycle
    table; :meth:`finished` reports completion and :meth:`schedule_table`
    renders the partial schedule.
    """

    circuit: Circuit
    device: Device
    dag: DependencyGraph
    initial_placement: Placement
    current_placement: Placement
    colors: list[GateColor]
    scheduled: list[ScheduledGate] = field(default_factory=list)
    qubit_free: list[int] = field(default_factory=list)
    extra_gates: list[ScheduledGate] = field(default_factory=list)

    @classmethod
    def begin(
        cls,
        circuit: Circuit,
        device: Device,
        placement: Placement | None = None,
    ) -> "ExecutionSnapshot":
        """Fresh snapshot with nothing scheduled."""
        dag = DependencyGraph(circuit)
        colors = [GateColor.PENDING] * len(circuit.gates)
        for index in dag.front_layer():
            colors[index] = GateColor.READY
        place = placement or Placement.trivial(device.num_qubits, circuit.num_qubits)
        return cls(
            circuit=circuit,
            device=device,
            dag=dag,
            initial_placement=place.copy(),
            current_placement=place.copy(),
            colors=colors,
            qubit_free=[0] * device.num_qubits,
        )

    # ------------------------------------------------------------------

    def ready_gates(self) -> list[int]:
        """Indices of READY gates (dependencies satisfied)."""
        return [i for i, c in enumerate(self.colors) if c is GateColor.READY]

    def compatible_gates(self, cycle: int) -> list[int]:
        """READY gates that could *start* at ``cycle`` on the device.

        A gate is compatible when its operands are free, any two-qubit
        gate sits on a connected physical pair under the current
        placement, and its name is native (or a pseudo-operation).  This
        is the "set of compatible gates ... updated dynamically" the
        paper describes.
        """
        compatible = []
        for index in self.ready_gates():
            gate = self.circuit.gates[index]
            phys = [self.current_placement.phys(q) for q in gate.qubits]
            if any(self.qubit_free[p] > cycle for p in phys):
                continue
            if gate.is_unitary and not self.device.is_native(gate):
                continue
            if len(phys) == 2 and not self.device.connected(*phys):
                continue
            compatible.append(index)
        return compatible

    def schedule(self, index: int, cycle: int) -> ScheduledGate:
        """Commit gate ``index`` to start at ``cycle``; recolour the DAG.

        Raises:
            ValueError: when the gate is not READY or its operands are
                still busy at ``cycle``.
        """
        if self.colors[index] is GateColor.PENDING:
            raise ValueError(f"gate #{index} has unscheduled predecessors")
        if self.colors[index] is GateColor.DONE:
            raise ValueError(f"gate #{index} is already scheduled")
        gate = self.circuit.gates[index]
        phys_map = {q: self.current_placement.phys(q) for q in gate.qubits}
        for p in phys_map.values():
            if self.qubit_free[p] > cycle:
                raise ValueError(
                    f"physical qubit {p} is busy until {self.qubit_free[p]}"
                )
        duration = 0 if gate.is_barrier else self.device.duration(gate)
        item = ScheduledGate(gate.remap(phys_map), cycle, duration)
        self.scheduled.append(item)
        for p in phys_map.values():
            self.qubit_free[p] = cycle + duration
        self.colors[index] = GateColor.DONE
        for succ in self.dag.successors(index):
            if all(
                self.colors[p] is GateColor.DONE
                for p in self.dag.predecessors(succ)
            ):
                self.colors[succ] = GateColor.READY
        return item

    def insert_swap(self, phys_a: int, phys_b: int, cycle: int) -> ScheduledGate:
        """Insert a routing SWAP on two physical qubits at ``cycle``."""
        if not self.device.connected(phys_a, phys_b):
            raise ValueError(f"qubits {phys_a} and {phys_b} are not connected")
        for p in (phys_a, phys_b):
            if self.qubit_free[p] > cycle:
                raise ValueError(f"physical qubit {p} is busy until {self.qubit_free[p]}")
        duration = self.device.duration("swap")
        item = ScheduledGate(Gate("swap", (phys_a, phys_b)), cycle, duration)
        self.extra_gates.append(item)
        for p in (phys_a, phys_b):
            self.qubit_free[p] = cycle + duration
        self.current_placement.apply_swap(phys_a, phys_b)
        return item

    def finished(self) -> bool:
        """True when every gate is scheduled."""
        return all(c is GateColor.DONE for c in self.colors)

    def placement_array(self) -> list[int]:
        """The paper's physical->program array with the free marker."""
        return self.current_placement.phys_to_prog()

    def schedule_table(self) -> dict[int, list[ScheduledGate]]:
        """Partial schedule grouped by start cycle (explicit parallelism)."""
        table: dict[int, list[ScheduledGate]] = {}
        for item in sorted(
            self.scheduled + self.extra_gates, key=lambda it: it.start
        ):
            table.setdefault(item.start, []).append(item)
        return table

    def to_dict(self) -> dict:
        """JSON-able view of the mapper state (colours, placements,
        partial schedule) for logging and service-layer artefacts."""
        return {
            "device": self.device.name,
            "colors": [c.value for c in self.colors],
            "initial_placement": self.initial_placement.prog_to_phys(),
            "current_placement": self.current_placement.prog_to_phys(),
            "num_program": self.current_placement.num_program,
            "qubit_free": list(self.qubit_free),
            "scheduled": [
                {
                    "gate": gate_to_obj(item.gate),
                    "start": item.start,
                    "duration": item.duration,
                }
                for item in self.scheduled
            ],
            "extra_gates": [
                {
                    "gate": gate_to_obj(item.gate),
                    "start": item.start,
                    "duration": item.duration,
                }
                for item in self.extra_gates
            ],
        }
