"""Quantum gate definitions and their unitary matrices.

This module is the vocabulary of the whole toolkit: every circuit,
decomposition rule, router, and scheduler speaks in terms of the
:class:`Gate` instances defined here.

A :class:`Gate` is an *instance* of a named operation applied to concrete
qubit indices with concrete parameters.  Static knowledge about each
operation (arity, parameter count, matrix, symmetry, ...) lives in the
:data:`GATE_SPECS` registry, keyed by the canonical lower-case gate name.

The gate set covers everything used by the paper (DATE 2020,
"Realizing Quantum Algorithms on Real Quantum Computing Devices"):

* the universal set of Section II — ``H``, ``X``, ``Y``, ``Z``, ``T``,
  ``CNOT``, ``CZ``, ``SWAP``;
* IBM's native set of Section IV — ``U(theta, phi, lam)`` defined as the
  Euler decomposition ``Rz(phi) Ry(theta) Rz(lam)`` plus ``CNOT``;
* Surface-17's native set of Section V — arbitrary ``Rx``/``Ry``
  rotations (with the convenient named 90/180-degree instances
  ``x90``, ``xm90``, ``y90``, ``ym90``, ``x``, ``y``) plus ``CZ``;
* the larger gates whose decomposition Section IV discusses —
  ``toffoli`` (CCX) and ``fredkin`` (CSWAP);
* the non-unitary pseudo-operations ``measure``, ``prep_z`` and
  ``barrier`` needed to express full programs and schedules.

Angles are always in radians.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

import numpy as np

__all__ = [
    "Gate",
    "GateSpec",
    "GATE_SPECS",
    "GATE_ALIASES",
    "canonical_name",
    "gate_matrix",
    "is_unitary_gate",
    "barrier",
    "cnot",
    "cp",
    "crz",
    "cz",
    "fredkin",
    "h",
    "i",
    "measure",
    "prep_z",
    "rx",
    "ry",
    "rz",
    "s",
    "sdg",
    "swap",
    "t",
    "tdg",
    "toffoli",
    "u",
    "x",
    "x90",
    "xm90",
    "y",
    "y90",
    "ym90",
    "z",
]

_SQRT2_INV = 1.0 / math.sqrt(2.0)


# ---------------------------------------------------------------------------
# Matrix factories
# ---------------------------------------------------------------------------

def _mat_i(_: tuple[float, ...]) -> np.ndarray:
    return np.eye(2, dtype=complex)


def _mat_x(_: tuple[float, ...]) -> np.ndarray:
    return np.array([[0, 1], [1, 0]], dtype=complex)


def _mat_y(_: tuple[float, ...]) -> np.ndarray:
    return np.array([[0, -1j], [1j, 0]], dtype=complex)


def _mat_z(_: tuple[float, ...]) -> np.ndarray:
    return np.array([[1, 0], [0, -1]], dtype=complex)


def _mat_h(_: tuple[float, ...]) -> np.ndarray:
    return _SQRT2_INV * np.array([[1, 1], [1, -1]], dtype=complex)


def _mat_s(_: tuple[float, ...]) -> np.ndarray:
    return np.array([[1, 0], [0, 1j]], dtype=complex)


def _mat_sdg(_: tuple[float, ...]) -> np.ndarray:
    return np.array([[1, 0], [0, -1j]], dtype=complex)


def _mat_t(_: tuple[float, ...]) -> np.ndarray:
    return np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)


def _mat_tdg(_: tuple[float, ...]) -> np.ndarray:
    return np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex)


def _mat_rx(params: tuple[float, ...]) -> np.ndarray:
    (theta,) = params
    c, si = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -1j * si], [-1j * si, c]], dtype=complex)


def _mat_ry(params: tuple[float, ...]) -> np.ndarray:
    (theta,) = params
    c, si = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -si], [si, c]], dtype=complex)


def _mat_rz(params: tuple[float, ...]) -> np.ndarray:
    (theta,) = params
    phase = cmath.exp(1j * theta / 2.0)
    return np.array([[1.0 / phase, 0], [0, phase]], dtype=complex)


def _mat_u(params: tuple[float, ...]) -> np.ndarray:
    # U(theta, phi, lam) = Rz(phi) @ Ry(theta) @ Rz(lam), the Euler
    # decomposition IBM exposes on the QX devices (paper, Section IV).
    theta, phi, lam = params
    return _mat_rz((phi,)) @ _mat_ry((theta,)) @ _mat_rz((lam,))


def _mat_x90(_: tuple[float, ...]) -> np.ndarray:
    return _mat_rx((math.pi / 2.0,))


def _mat_xm90(_: tuple[float, ...]) -> np.ndarray:
    return _mat_rx((-math.pi / 2.0,))


def _mat_y90(_: tuple[float, ...]) -> np.ndarray:
    return _mat_ry((math.pi / 2.0,))


def _mat_ym90(_: tuple[float, ...]) -> np.ndarray:
    return _mat_ry((-math.pi / 2.0,))


def _mat_cnot(_: tuple[float, ...]) -> np.ndarray:
    # Qubit order convention: qubits[0] is the control, qubits[1] the
    # target; basis ordering is |q0 q1> with q0 the most significant bit.
    return np.array(
        [
            [1, 0, 0, 0],
            [0, 1, 0, 0],
            [0, 0, 0, 1],
            [0, 0, 1, 0],
        ],
        dtype=complex,
    )


def _mat_cz(_: tuple[float, ...]) -> np.ndarray:
    return np.diag([1, 1, 1, -1]).astype(complex)


def _mat_cp(params: tuple[float, ...]) -> np.ndarray:
    (theta,) = params
    return np.diag([1, 1, 1, cmath.exp(1j * theta)]).astype(complex)


def _mat_crz(params: tuple[float, ...]) -> np.ndarray:
    (theta,) = params
    phase = cmath.exp(1j * theta / 2.0)
    return np.diag([1, 1, 1.0 / phase, phase]).astype(complex)


def _mat_rxx(params: tuple[float, ...]) -> np.ndarray:
    # Moelmer-Soerensen interaction exp(-i theta XX / 2), the native
    # trapped-ion entangler (paper Sec. VI-C).
    (theta,) = params
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array(
        [
            [c, 0, 0, -1j * s],
            [0, c, -1j * s, 0],
            [0, -1j * s, c, 0],
            [-1j * s, 0, 0, c],
        ],
        dtype=complex,
    )


def _mat_swap(_: tuple[float, ...]) -> np.ndarray:
    return np.array(
        [
            [1, 0, 0, 0],
            [0, 0, 1, 0],
            [0, 1, 0, 0],
            [0, 0, 0, 1],
        ],
        dtype=complex,
    )


def _mat_toffoli(_: tuple[float, ...]) -> np.ndarray:
    m = np.eye(8, dtype=complex)
    m[[6, 7]] = m[[7, 6]]
    return m


def _mat_fredkin(_: tuple[float, ...]) -> np.ndarray:
    m = np.eye(8, dtype=complex)
    m[[5, 6]] = m[[6, 5]]
    return m


# ---------------------------------------------------------------------------
# Gate specification registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GateSpec:
    """Static description of a named quantum operation.

    Attributes:
        name: Canonical lower-case name, the registry key.
        num_qubits: Arity of the operation.
        num_params: Number of real (angle) parameters.
        matrix: Factory mapping the parameter tuple to the unitary, or
            ``None`` for non-unitary pseudo-operations (measure, barrier).
        symmetric: True when exchanging the operand qubits leaves the
            operation unchanged (``CZ``, ``SWAP``, ``CP`` are symmetric;
            ``CNOT`` is not).  Routers use this to decide whether a
            directed coupling edge suffices in either orientation.
        self_inverse: True when the gate squared is the identity, which
            optimisers exploit to cancel adjacent duplicates.
        hermitian_params: For parametrised gates, ``True`` when the
            inverse is obtained by negating all parameters.
    """

    name: str
    num_qubits: int
    num_params: int
    matrix: Callable[[tuple[float, ...]], np.ndarray] | None
    symmetric: bool = False
    self_inverse: bool = False
    hermitian_params: bool = False
    inverse_name: str | None = None


GATE_SPECS: dict[str, GateSpec] = {}


def _register(spec: GateSpec) -> None:
    if spec.name in GATE_SPECS:
        raise ValueError(f"duplicate gate spec {spec.name!r}")
    GATE_SPECS[spec.name] = spec


for _spec in [
    GateSpec("i", 1, 0, _mat_i, self_inverse=True),
    GateSpec("x", 1, 0, _mat_x, self_inverse=True),
    GateSpec("y", 1, 0, _mat_y, self_inverse=True),
    GateSpec("z", 1, 0, _mat_z, self_inverse=True),
    GateSpec("h", 1, 0, _mat_h, self_inverse=True),
    GateSpec("s", 1, 0, _mat_s, inverse_name="sdg"),
    GateSpec("sdg", 1, 0, _mat_sdg, inverse_name="s"),
    GateSpec("t", 1, 0, _mat_t, inverse_name="tdg"),
    GateSpec("tdg", 1, 0, _mat_tdg, inverse_name="t"),
    GateSpec("rx", 1, 1, _mat_rx, hermitian_params=True),
    GateSpec("ry", 1, 1, _mat_ry, hermitian_params=True),
    GateSpec("rz", 1, 1, _mat_rz, hermitian_params=True),
    GateSpec("u", 1, 3, _mat_u),
    GateSpec("x90", 1, 0, _mat_x90, inverse_name="xm90"),
    GateSpec("xm90", 1, 0, _mat_xm90, inverse_name="x90"),
    GateSpec("y90", 1, 0, _mat_y90, inverse_name="ym90"),
    GateSpec("ym90", 1, 0, _mat_ym90, inverse_name="y90"),
    GateSpec("cnot", 2, 0, _mat_cnot, self_inverse=True),
    # Shuttling (paper Sec. VI-C, silicon quantum dots): physically moves
    # a qubit into an *empty* neighbouring dot.  Unitarily it equals a
    # SWAP (the empty dot carries |0>), but it is a single cheap move
    # operation rather than three entangling gates.
    GateSpec("shuttle", 2, 0, _mat_swap, symmetric=True, self_inverse=True),
    GateSpec("cz", 2, 0, _mat_cz, symmetric=True, self_inverse=True),
    GateSpec("cp", 2, 1, _mat_cp, symmetric=True, hermitian_params=True),
    GateSpec("rxx", 2, 1, _mat_rxx, symmetric=True, hermitian_params=True),
    GateSpec("crz", 2, 1, _mat_crz, hermitian_params=True),
    GateSpec("swap", 2, 0, _mat_swap, symmetric=True, self_inverse=True),
    GateSpec("toffoli", 3, 0, _mat_toffoli, self_inverse=True),
    GateSpec("fredkin", 3, 0, _mat_fredkin, self_inverse=True),
    GateSpec("measure", 1, 0, None),
    GateSpec("prep_z", 1, 0, None),
    GateSpec("barrier", 0, 0, None),
]:
    _register(_spec)


#: Accepted spellings for gate names, mapped to the canonical registry key.
GATE_ALIASES: dict[str, str] = {
    "id": "i",
    "cx": "cnot",
    "ccx": "toffoli",
    "cswap": "fredkin",
    "u3": "u",
    "cphase": "cp",
    "sdag": "sdg",
    "tdag": "tdg",
    "mx90": "xm90",
    "my90": "ym90",
    "prepz": "prep_z",
}


def canonical_name(name: str) -> str:
    """Return the canonical registry key for ``name``.

    Raises:
        KeyError: if the name (after alias resolution) is unknown.
    """
    key = name.lower()
    key = GATE_ALIASES.get(key, key)
    if key not in GATE_SPECS:
        raise KeyError(f"unknown gate name {name!r}")
    return key


# ---------------------------------------------------------------------------
# Gate instances
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Gate:
    """A named quantum operation applied to concrete qubits.

    ``Gate`` is an immutable value object; circuits are lists of gates.
    Qubit indices refer either to *program* qubits (before mapping) or to
    *physical* qubits (after mapping) — the containing
    :class:`~repro.core.circuit.Circuit` records which.

    Attributes:
        name: Canonical gate name (a key of :data:`GATE_SPECS`).
        qubits: Operand qubit indices.  For controlled gates the controls
            come first and the target last.
        params: Real parameters (angles in radians).
        condition: Optional classical feedforward ``(bit, value)``: the
            gate executes only when the measurement result of qubit
            ``bit`` equals ``value`` (the classical-register model is one
            bit per qubit).  Used by teleportation-based routing.
    """

    name: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = ()
    condition: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        spec = GATE_SPECS.get(self.name)
        if spec is None:
            raise ValueError(f"unknown gate {self.name!r}; use canonical_name()")
        if spec.name != "barrier" and len(self.qubits) != spec.num_qubits:
            raise ValueError(
                f"gate {self.name!r} expects {spec.num_qubits} qubits, "
                f"got {len(self.qubits)}"
            )
        if len(self.params) != spec.num_params:
            raise ValueError(
                f"gate {self.name!r} expects {spec.num_params} params, "
                f"got {len(self.params)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"gate {self.name!r} has duplicate qubits {self.qubits}")
        if any(q < 0 for q in self.qubits):
            raise ValueError(f"gate {self.name!r} has negative qubit index")
        if self.condition is not None:
            bit, value = self.condition
            if value not in (0, 1) or bit < 0:
                raise ValueError(f"bad condition {self.condition!r}")
            if spec.matrix is None:
                raise ValueError("only unitary gates can be conditioned")

    # -- static info ------------------------------------------------------

    @property
    def spec(self) -> GateSpec:
        return GATE_SPECS[self.name]

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def is_two_qubit(self) -> bool:
        return len(self.qubits) == 2 and self.spec.matrix is not None

    @property
    def is_unitary(self) -> bool:
        return self.spec.matrix is not None

    @property
    def is_measurement(self) -> bool:
        return self.name == "measure"

    @property
    def is_barrier(self) -> bool:
        return self.name == "barrier"

    @property
    def is_symmetric(self) -> bool:
        return self.spec.symmetric

    # -- derived objects ---------------------------------------------------

    def matrix(self) -> np.ndarray:
        """The unitary matrix of this gate on its own qubits.

        Basis convention: ``qubits[0]`` is the most significant bit.

        Raises:
            ValueError: for non-unitary operations.
        """
        factory = self.spec.matrix
        if factory is None:
            raise ValueError(f"gate {self.name!r} has no unitary matrix")
        return factory(self.params)

    def inverse(self) -> "Gate":
        """The gate implementing the inverse unitary.

        Raises:
            ValueError: for non-unitary or classically-conditioned
                operations (a condition's defining measurement cannot be
                inverted).
        """
        spec = self.spec
        if spec.matrix is None:
            raise ValueError(f"gate {self.name!r} is not invertible")
        if self.condition is not None:
            raise ValueError("conditioned gates are not invertible")
        if spec.self_inverse:
            return self
        if spec.inverse_name is not None:
            return Gate(spec.inverse_name, self.qubits, self.params)
        if spec.hermitian_params:
            return Gate(self.name, self.qubits, tuple(-p for p in self.params))
        if self.name == "u":
            theta, phi, lam = self.params
            return Gate("u", self.qubits, (-theta, -lam, -phi))
        raise ValueError(f"no inverse rule for gate {self.name!r}")

    def remap(self, mapping: Mapping[int, int]) -> "Gate":
        """Return a copy acting on ``mapping[q]`` for each operand ``q``.

        A classical condition bit is remapped when present in ``mapping``
        and kept otherwise.
        """
        condition = self.condition
        if condition is not None:
            condition = (mapping.get(condition[0], condition[0]), condition[1])
        return Gate(
            self.name,
            tuple(mapping[q] for q in self.qubits),
            self.params,
            condition,
        )

    def reversed_qubits(self) -> "Gate":
        """Return a copy with the operand order reversed.

        Only meaningful for symmetric two-qubit gates, where it denotes
        the same operation.
        """
        return Gate(self.name, tuple(reversed(self.qubits)), self.params, self.condition)

    def __str__(self) -> str:
        args = ", ".join(f"q{q}" for q in self.qubits)
        text = f"{self.name} {args}"
        if self.params:
            angles = ", ".join(f"{p:.6g}" for p in self.params)
            text = f"{self.name}({angles}) {args}"
        if self.condition is not None:
            text += f" if c{self.condition[0]}=={self.condition[1]}"
        return text


# ---------------------------------------------------------------------------
# Constructor helpers
# ---------------------------------------------------------------------------

def i(q: int) -> Gate:
    """Identity gate."""
    return Gate("i", (q,))


def x(q: int) -> Gate:
    """Pauli-X (NOT) gate."""
    return Gate("x", (q,))


def y(q: int) -> Gate:
    """Pauli-Y gate."""
    return Gate("y", (q,))


def z(q: int) -> Gate:
    """Pauli-Z gate."""
    return Gate("z", (q,))


def h(q: int) -> Gate:
    """Hadamard gate."""
    return Gate("h", (q,))


def s(q: int) -> Gate:
    """Phase gate S = sqrt(Z)."""
    return Gate("s", (q,))


def sdg(q: int) -> Gate:
    """Inverse phase gate."""
    return Gate("sdg", (q,))


def t(q: int) -> Gate:
    """T gate = fourth root of Z (pi/8 gate)."""
    return Gate("t", (q,))


def tdg(q: int) -> Gate:
    """Inverse T gate."""
    return Gate("tdg", (q,))


def rx(theta: float, q: int) -> Gate:
    """Rotation about the X axis by ``theta`` radians."""
    return Gate("rx", (q,), (float(theta),))


def ry(theta: float, q: int) -> Gate:
    """Rotation about the Y axis by ``theta`` radians."""
    return Gate("ry", (q,), (float(theta),))


def rz(theta: float, q: int) -> Gate:
    """Rotation about the Z axis by ``theta`` radians."""
    return Gate("rz", (q,), (float(theta),))


def u(theta: float, phi: float, lam: float, q: int) -> Gate:
    """IBM's universal single-qubit gate Rz(phi) Ry(theta) Rz(lam)."""
    return Gate("u", (q,), (float(theta), float(phi), float(lam)))


def x90(q: int) -> Gate:
    """+90 degree X rotation (Surface-17 native)."""
    return Gate("x90", (q,))


def xm90(q: int) -> Gate:
    """-90 degree X rotation (Surface-17 native)."""
    return Gate("xm90", (q,))


def y90(q: int) -> Gate:
    """+90 degree Y rotation (Surface-17 native)."""
    return Gate("y90", (q,))


def ym90(q: int) -> Gate:
    """-90 degree Y rotation (Surface-17 native)."""
    return Gate("ym90", (q,))


def cnot(control: int, target: int) -> Gate:
    """Controlled-NOT with explicit control and target."""
    return Gate("cnot", (control, target))


def cz(a: int, b: int) -> Gate:
    """Controlled-Z (symmetric)."""
    return Gate("cz", (a, b))


def cp(theta: float, a: int, b: int) -> Gate:
    """Controlled phase gate (symmetric), used by the QFT workload."""
    return Gate("cp", (a, b), (float(theta),))


def crz(theta: float, control: int, target: int) -> Gate:
    """Controlled Rz rotation."""
    return Gate("crz", (control, target), (float(theta),))


def swap(a: int, b: int) -> Gate:
    """SWAP gate exchanging the states of two qubits."""
    return Gate("swap", (a, b))


def toffoli(c1: int, c2: int, target: int) -> Gate:
    """Doubly-controlled NOT (CCX)."""
    return Gate("toffoli", (c1, c2, target))


def fredkin(control: int, a: int, b: int) -> Gate:
    """Controlled SWAP."""
    return Gate("fredkin", (control, a, b))


def measure(q: int) -> Gate:
    """Computational-basis measurement of one qubit."""
    return Gate("measure", (q,))


def prep_z(q: int) -> Gate:
    """Initialisation of one qubit to |0>."""
    return Gate("prep_z", (q,))


def barrier(*qubits: int) -> Gate:
    """Scheduling barrier across ``qubits`` (all qubits when empty)."""
    return Gate("barrier", tuple(qubits))


# ---------------------------------------------------------------------------
# Free functions
# ---------------------------------------------------------------------------

def gate_matrix(name: str, params: Iterable[float] = ()) -> np.ndarray:
    """Return the unitary of gate ``name`` with ``params``.

    Accepts aliases (``cx``, ``u3``, ...).
    """
    key = canonical_name(name)
    spec = GATE_SPECS[key]
    factory = spec.matrix
    if factory is None:
        raise ValueError(f"gate {name!r} has no unitary matrix")
    return factory(tuple(float(p) for p in params))


def is_unitary_gate(name: str) -> bool:
    """True when gate ``name`` has a unitary matrix (not measure/barrier)."""
    return GATE_SPECS[canonical_name(name)].matrix is not None
