"""Property-based tests (hypothesis) for the core invariants.

The headline invariant of the whole system: *mapping never changes the
computation*.  Random circuits are pushed through every router and the
full pipeline on several devices, and checked for equivalence up to the
tracked output permutation and global phase.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Circuit
from repro.core.dag import DependencyGraph
from repro.core.pipeline import compile_circuit
from repro.devices import get_device
from repro.mapping.placement import Placement
from repro.mapping.routing import route
from repro.mapping.scheduler import asap_schedule
from repro.qasm import parse_qasm, to_openqasm
from repro.verify import equivalent_circuits, equivalent_mapped
from repro.workloads import random_circuit

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def circuits(draw, max_qubits=5, max_gates=14):
    n = draw(st.integers(min_value=2, max_value=max_qubits))
    num_gates = draw(st.integers(min_value=0, max_value=max_gates))
    circuit = Circuit(n)
    for _ in range(num_gates):
        kind = draw(st.sampled_from(["h", "t", "x", "rz", "cnot", "cz", "swap"]))
        if kind in ("cnot", "cz", "swap"):
            a = draw(st.integers(min_value=0, max_value=n - 1))
            b = draw(
                st.integers(min_value=0, max_value=n - 1).filter(lambda x: x != a)
            )
            getattr(circuit, kind if kind != "cnot" else "cnot")(a, b)
        elif kind == "rz":
            angle = draw(
                st.floats(
                    min_value=-math.pi, max_value=math.pi, allow_nan=False
                )
            )
            circuit.rz(angle, draw(st.integers(min_value=0, max_value=n - 1)))
        else:
            getattr(circuit, kind)(draw(st.integers(min_value=0, max_value=n - 1)))
    return circuit


class TestRoutingInvariant:
    @given(circuits(), st.sampled_from(["naive", "sabre", "astar", "latency"]))
    @settings(**_SETTINGS)
    def test_routing_preserves_semantics_on_qx4(self, circuit, router):
        device = get_device("ibm_qx4")
        result = route(circuit, device, router)
        assert equivalent_mapped(
            circuit, result.circuit, result.initial, result.final
        )

    @given(circuits(max_qubits=5, max_gates=10))
    @settings(max_examples=15, deadline=None)
    def test_exact_never_worse_than_heuristics(self, circuit):
        device = get_device("linear", num_qubits=5)
        exact = route(circuit, device, "exact")
        sabre = route(circuit, device, "sabre")
        astar = route(circuit, device, "astar")
        assert exact.added_swaps <= min(sabre.added_swaps, astar.added_swaps)

    @given(circuits(max_qubits=4, max_gates=12))
    @settings(**_SETTINGS)
    def test_full_pipeline_on_surface7(self, circuit):
        device = get_device("surface7")
        result = compile_circuit(circuit, device, placer="greedy", router="sabre")
        assert device.conforms(result.native)
        assert equivalent_mapped(
            circuit, result.native, result.routed.initial, result.routed.final
        )


class TestPlacementInvariants:
    @given(
        st.permutations(list(range(6))),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=5),
            ).filter(lambda p: p[0] != p[1]),
            max_size=20,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_placement_stays_bijective_under_swaps(self, perm, swaps):
        placement = Placement(list(perm), 4)
        for a, b in swaps:
            placement.apply_swap(a, b)
        assert sorted(placement.prog_to_phys()) == list(range(6))
        for prog in range(6):
            assert placement.slot(placement.phys(prog)) == prog

    @given(st.permutations(list(range(5))), st.permutations(list(range(5))))
    @settings(max_examples=50, deadline=None)
    def test_permutation_to_is_consistent(self, p0, p1):
        initial, final = Placement(list(p0)), Placement(list(p1))
        sigma = initial.permutation_to(final)
        for prog in range(5):
            assert sigma[initial.phys(prog)] == final.phys(prog)


class TestScheduleInvariants:
    @given(circuits(max_qubits=5, max_gates=20))
    @settings(**_SETTINGS)
    def test_asap_schedule_is_valid_and_complete(self, circuit):
        device = get_device("all_to_all", num_qubits=circuit.num_qubits)
        schedule = asap_schedule(circuit, device)
        assert schedule.validate() == []
        assert len(schedule) == len(circuit.gates)

    @given(circuits(max_qubits=5, max_gates=20))
    @settings(**_SETTINGS)
    def test_asap_latency_bounded_by_serial_sum(self, circuit):
        device = get_device("all_to_all", num_qubits=circuit.num_qubits)
        schedule = asap_schedule(circuit, device)
        serial = sum(device.duration(g) for g in circuit.gates if not g.is_barrier)
        assert schedule.latency <= serial


class TestQasmRoundtrip:
    @given(circuits(max_qubits=4, max_gates=12))
    @settings(**_SETTINGS)
    def test_openqasm_roundtrip_is_equivalent(self, circuit):
        back = parse_qasm(to_openqasm(circuit))
        assert back.num_qubits == circuit.num_qubits
        assert equivalent_circuits(circuit, back)


class TestDagInvariants:
    @given(circuits(max_qubits=5, max_gates=20))
    @settings(**_SETTINGS)
    def test_layers_partition_and_respect_dependencies(self, circuit):
        dag = DependencyGraph(circuit)
        layers = dag.layers()
        seen = [i for layer in layers for i in layer]
        assert sorted(seen) == list(range(len(circuit.gates)))
        level_of = {}
        for level, layer in enumerate(layers):
            for index in layer:
                level_of[index] = level
        for index in range(len(circuit.gates)):
            for pred in dag.predecessors(index):
                assert level_of[pred] < level_of[index]


class TestInverseInvariant:
    @given(circuits(max_qubits=4, max_gates=10))
    @settings(**_SETTINGS)
    def test_circuit_times_inverse_is_identity(self, circuit):
        import numpy as np

        from repro.sim import circuit_unitary

        combined = circuit.compose(circuit.inverse())
        unitary = circuit_unitary(combined)
        assert np.allclose(unitary, np.eye(unitary.shape[0]), atol=1e-7)
