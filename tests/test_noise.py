"""Tests for the reliability model (repro.sim.noise)."""

import math

import pytest

from repro.core import Circuit
from repro.core.gates import Gate
from repro.devices import linear_device
from repro.mapping.scheduler import asap_schedule
from repro.sim.noise import NoiseModel


class TestGateErrors:
    def test_one_qubit_default(self):
        model = NoiseModel(error_1q=0.01)
        assert model.gate_error(Gate("h", (0,))) == 0.01

    def test_two_qubit_default(self):
        model = NoiseModel(error_2q=0.05)
        assert model.gate_error(Gate("cnot", (0, 1))) == 0.05

    def test_measurement(self):
        model = NoiseModel(error_measure=0.03)
        assert model.gate_error(Gate("measure", (0,))) == 0.03

    def test_barrier_prep_identity_free(self):
        model = NoiseModel()
        assert model.gate_error(Gate("barrier", ())) == 0.0
        assert model.gate_error(Gate("prep_z", (0,))) == 0.0
        assert model.gate_error(Gate("i", (0,))) == 0.0

    def test_edge_override_is_orderless(self):
        model = NoiseModel(error_2q=0.01, edge_error={(0, 1): 0.2})
        assert model.gate_error(Gate("cnot", (1, 0))) == 0.2
        assert model.gate_error(Gate("cz", (0, 1))) == 0.2

    def test_gate_success(self):
        model = NoiseModel(error_1q=0.1)
        assert model.gate_success(Gate("x", (0,))) == pytest.approx(0.9)


class TestScheduleSuccess:
    def test_perfect_device(self):
        device = linear_device(2)
        model = NoiseModel(error_1q=0, error_2q=0, t2_ns=float("inf"))
        circuit = Circuit(2).h(0).cnot(0, 1)
        success = model.schedule_success(asap_schedule(circuit, device))
        assert success == pytest.approx(1.0)

    def test_gate_errors_multiply(self):
        device = linear_device(2)
        model = NoiseModel(error_1q=0.1, error_2q=0.2, t2_ns=float("inf"))
        circuit = Circuit(2).h(0).cnot(0, 1)
        success = model.schedule_success(asap_schedule(circuit, device))
        assert success == pytest.approx(0.9 * 0.8)

    def test_idle_decoherence_reduces_success(self):
        device = linear_device(2)
        model = NoiseModel(error_1q=0, error_2q=0, t2_ns=100.0)
        # Qubit 1 idles while qubit 0 works.
        busy = Circuit(2).h(0).h(0).h(0).h(1)
        success = model.schedule_success(asap_schedule(busy, device))
        assert success < 1.0

    def test_unused_qubits_do_not_decohere(self):
        device = linear_device(3)
        model = NoiseModel(error_1q=0, t2_ns=10.0)
        circuit = Circuit(3).h(0).h(0)
        success = model.schedule_success(asap_schedule(circuit, device))
        assert success == pytest.approx(1.0)  # qubits 1, 2 never touched

    def test_more_gates_lower_success(self):
        device = linear_device(3)
        model = NoiseModel()
        short = Circuit(3).cnot(0, 1)
        long = Circuit(3).cnot(0, 1).cnot(1, 2).cnot(0, 1).cnot(1, 2)
        assert model.circuit_success(long, device) < model.circuit_success(
            short, device
        )


class TestRandomEdgeErrors:
    def test_seeded_and_bounded(self):
        device = linear_device(5)
        a = NoiseModel.with_random_edge_errors(device, seed=1, base_2q=0.01, spread=3)
        b = NoiseModel.with_random_edge_errors(device, seed=1, base_2q=0.01, spread=3)
        assert a.edge_error == b.edge_error
        for error in a.edge_error.values():
            assert 0.01 / 3 <= error <= 0.01 * 3

    def test_covers_every_edge(self):
        device = linear_device(4)
        model = NoiseModel.with_random_edge_errors(device, seed=2)
        assert set(model.edge_error) == set(device.undirected_edges())


class TestWeightedDistances:
    def test_prefers_reliable_path(self):
        # Triangle 0-1-2 with a terrible direct edge 0-2: the weighted
        # distance 0->2 should route via 1.
        from repro.devices import Device

        device = Device("tri", 3, [(0, 1), (1, 2), (0, 2)], ["u", "cnot"])
        model = NoiseModel(
            error_2q=0.01, edge_error={(0, 2): 0.5, (0, 1): 0.01, (1, 2): 0.01}
        )
        matrix = model.weighted_distance_matrix(device)
        two_hops = -2 * math.log(0.99)
        assert matrix[0][2] == pytest.approx(two_hops, rel=1e-6)

    def test_zero_on_diagonal(self):
        device = linear_device(3)
        matrix = NoiseModel().weighted_distance_matrix(device)
        assert matrix[1][1] == 0.0
