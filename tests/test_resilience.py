"""Tests for the resilience layer: deadlines, fault plans, fallback."""

import json
import time

import pytest

from repro.core.pipeline import PassConfig, compile_with_config, fallback_chain
from repro.devices import get_device
from repro.mapping.routing import route_astar, route_sabre
from repro.resilience import (
    Deadline,
    DeadlineExceeded,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    corrupt_point,
    current_deadline,
    fault_point,
    reset_env_cache,
    use_deadline,
    use_faults,
)
from repro.workloads import random_circuit


class TestDeadline:
    def test_after_and_remaining(self):
        dl = Deadline.after(10.0)
        assert 9.0 < dl.remaining() <= 10.0
        assert not dl.expired()

    def test_expired_and_check(self):
        dl = Deadline.after(0.0)
        assert dl.expired()
        with pytest.raises(DeadlineExceeded, match="0.0s budget in sabre"):
            dl.check("sabre")

    def test_check_without_budget_or_where(self):
        dl = Deadline(time.monotonic() - 1.0)
        with pytest.raises(DeadlineExceeded, match="exceeded the deadline"):
            dl.check()

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Deadline.after(-1.0)

    def test_dict_roundtrip_preserves_instant(self):
        dl = Deadline.after(5.0)
        back = Deadline.from_dict(dl.to_dict())
        assert back.expires_mono == dl.expires_mono
        assert back.budget == 5.0

    def test_dict_roundtrip_survives_json(self):
        # The batch engine ships deadlines to workers as JSON-able dicts.
        dl = Deadline.after(5.0)
        back = Deadline.from_dict(json.loads(json.dumps(dl.to_dict())))
        assert back.expires_mono == dl.expires_mono

    def test_context_install_and_clear(self):
        assert current_deadline() is None
        outer = Deadline.after(10.0)
        with use_deadline(outer):
            assert current_deadline() is outer
            # None explicitly clears an outer deadline (the last
            # fallback router must run unbounded).
            with use_deadline(None):
                assert current_deadline() is None
            assert current_deadline() is outer
        assert current_deadline() is None


class TestFaultSpec:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec(stage="routing", action="explode")

    def test_stage_required(self):
        with pytest.raises(ValueError, match="stage"):
            FaultSpec(stage="", action="raise")

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(stage="routing", action="raise", probability=1.5)

    def test_dict_roundtrip(self):
        spec = FaultSpec(
            stage="routing", action="raise", job_id="j1", router="astar",
            times=3, probability=0.5, message="boom",
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_minimal_dict_form(self):
        # Defaults are omitted from the serial form, so plans stay terse.
        assert FaultSpec(stage="worker", action="crash").to_dict() == {
            "stage": "worker", "action": "crash",
        }

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown fault spec fields"):
            FaultSpec.from_dict({"stage": "worker", "action": "crash",
                                 "sage": "typo"})


class TestFaultPlan:
    def test_json_roundtrip(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(stage="worker", action="crash", job_id="j3"),
                FaultSpec(stage="routing", action="raise", router="astar"),
            ),
            seed=7,
        )
        back = FaultPlan.from_json(json.dumps(plan.to_dict()))
        assert back == plan

    def test_has_action(self):
        plan = FaultPlan(specs=(FaultSpec(stage="worker", action="hang"),))
        assert plan.has_action("crash", "hang")
        assert not plan.has_action("corrupt")

    def test_unknown_plan_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan fields"):
            FaultPlan.from_dict({"seed": 0, "fautls": []})

    def test_invalid_json_rejected(self):
        with pytest.raises(ValueError, match="invalid fault plan JSON"):
            FaultPlan.from_json("{broken")

    def test_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"faults": [{"stage": "worker", "action": "hang"}]}')
        plan = FaultPlan.from_file(path)
        assert plan.specs[0].action == "hang"


class TestFaultPoints:
    def test_noop_without_plan(self):
        fault_point("routing")  # must not raise
        artifact = {"schema": "x"}
        assert corrupt_point("artifact", artifact) is artifact

    def test_raise_fires_at_matching_stage_only(self):
        plan = FaultPlan(specs=(
            FaultSpec(stage="routing", action="raise", message="boom"),
        ))
        with use_faults(plan):
            fault_point("placement")  # different stage: no-op
            with pytest.raises(FaultInjected, match="boom") as excinfo:
                fault_point("routing")
            assert excinfo.value.stage == "routing"

    def test_times_limits_firings(self):
        plan = FaultPlan(specs=(
            FaultSpec(stage="routing", action="raise", times=1),
        ))
        with use_faults(plan):
            with pytest.raises(FaultInjected):
                fault_point("routing")
            fault_point("routing")  # budget spent: no-op

    def test_job_id_match(self):
        plan = FaultPlan(specs=(
            FaultSpec(stage="worker", action="raise", job_id="victim"),
        ))
        with use_faults(plan, "bystander"):
            fault_point("worker")
        with use_faults(plan, "victim"):
            with pytest.raises(FaultInjected):
                fault_point("worker")

    def test_router_match(self):
        plan = FaultPlan(specs=(
            FaultSpec(stage="routing", action="raise", router="astar"),
        ))
        with use_faults(plan):
            fault_point("routing", router="sabre")
            with pytest.raises(FaultInjected):
                fault_point("routing", router="astar")

    def test_probability_is_seed_deterministic(self):
        plan = FaultPlan(specs=(
            FaultSpec(stage="routing", action="raise",
                      probability=0.5, times=None),
        ))

        def decisions():
            fired = []
            with use_faults(plan, "j1"):
                for _ in range(32):
                    try:
                        fault_point("routing")
                        fired.append(False)
                    except FaultInjected:
                        fired.append(True)
            return fired

        first, second = decisions(), decisions()
        assert first == second
        assert any(first) and not all(first)
        # A different seed resolves the same rolls differently.
        other_plan = FaultPlan(specs=plan.specs, seed=99)
        with use_faults(other_plan, "j1"):
            other = []
            for _ in range(32):
                try:
                    fault_point("routing")
                    other.append(False)
                except FaultInjected:
                    other.append(True)
        assert other != first

    def test_corrupt_mangles_artifact(self):
        plan = FaultPlan(specs=(
            FaultSpec(stage="artifact", action="corrupt"),
        ))
        clean = {"schema": "repro-artifact-v1", "native_qasm": "OPENQASM"}
        with use_faults(plan):
            mangled = corrupt_point("artifact", clean)
        assert mangled["schema"] == "corrupt"
        assert mangled["__corrupted__"] is True
        assert clean["schema"] == "repro-artifact-v1"  # input untouched

    def test_env_activation(self, monkeypatch):
        plan = {"faults": [{"stage": "worker", "action": "raise"}]}
        monkeypatch.setenv("REPRO_FAULTS", json.dumps(plan))
        reset_env_cache()
        try:
            with pytest.raises(FaultInjected):
                fault_point("worker")
        finally:
            monkeypatch.delenv("REPRO_FAULTS")
            reset_env_cache()
        fault_point("worker")  # disarmed again

    def test_env_activation_from_file(self, monkeypatch, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"faults": [{"stage": "worker", "action": "raise"}]}')
        monkeypatch.setenv("REPRO_FAULTS", f"@{path}")
        reset_env_cache()
        try:
            with pytest.raises(FaultInjected):
                fault_point("worker")
        finally:
            monkeypatch.delenv("REPRO_FAULTS")
            reset_env_cache()


class TestFallbackChain:
    def test_astar_degrades_through_sabre_to_naive(self):
        assert fallback_chain("astar") == ("astar", "sabre", "naive")

    def test_sabre_degrades_to_naive(self):
        assert fallback_chain("sabre") == ("sabre", "naive")

    def test_naive_has_no_fallback(self):
        assert fallback_chain("naive") == ("naive",)

    def test_unknown_router_gets_full_tail(self):
        assert fallback_chain("lookahead") == ("lookahead", "sabre", "naive")


class TestCompileWithConfigResilience:
    def _inputs(self):
        circuit = random_circuit(5, 12, seed=3, two_qubit_fraction=0.6)
        return circuit, get_device("ibm_qx4")

    def test_clean_path_has_no_resilience_metadata(self):
        circuit, device = self._inputs()
        result = compile_with_config(circuit, device, PassConfig())
        assert "resilience" not in result.metadata

    def test_injected_routing_failure_degrades(self):
        circuit, device = self._inputs()
        plan = FaultPlan(specs=(
            FaultSpec(stage="routing", action="raise", router="astar"),
        ))
        with use_faults(plan):
            result = compile_with_config(
                circuit, device, PassConfig(router="astar")
            )
        info = result.metadata["resilience"]
        assert info["degraded"] is True
        assert info["requested_router"] == "astar"
        assert info["router_used"] == "sabre"
        assert info["fallback_path"] == ["astar", "sabre"]
        assert info["failures"][0]["kind"] == "FaultInjected"

    def test_expired_deadline_degrades_to_last_router(self):
        circuit, device = self._inputs()
        result = compile_with_config(
            circuit, device, PassConfig(router="astar"),
            deadline=Deadline.after(0.0),
        )
        info = result.metadata["resilience"]
        assert info["router_used"] == "naive"
        assert [f["kind"] for f in info["failures"]] == \
            ["deadline", "deadline"]

    def test_no_fallback_reraises(self):
        circuit, device = self._inputs()
        with pytest.raises(DeadlineExceeded):
            compile_with_config(
                circuit, device, PassConfig(router="astar"),
                deadline=Deadline.after(0.0), fallback=False,
            )

    def test_last_router_runs_unbounded(self):
        # naive has no fallback: even an expired deadline must not stop
        # it — the chain's contract is to always produce an answer.
        circuit, device = self._inputs()
        result = compile_with_config(
            circuit, device, PassConfig(router="naive"),
            deadline=Deadline.after(0.0),
        )
        assert result.routed is not None
        assert "resilience" not in result.metadata


class TestDeadlineHonoured:
    """Acceptance: routers honour a 50 ms deadline within 2x."""

    BUDGET = 0.05

    def _route_under_deadline(self, router_fn):
        # Big enough that unbounded routing takes well over the budget.
        circuit = random_circuit(16, 1200, seed=7, two_qubit_fraction=0.9)
        device = get_device("ibm_qx5")
        t0 = time.perf_counter()
        with pytest.raises(DeadlineExceeded):
            with use_deadline(Deadline.after(self.BUDGET)):
                router_fn(circuit, device)
        return time.perf_counter() - t0

    def test_sabre_aborts_within_twice_the_budget(self):
        assert self._route_under_deadline(route_sabre) < 2 * self.BUDGET

    def test_astar_aborts_within_twice_the_budget(self):
        assert self._route_under_deadline(route_astar) < 2 * self.BUDGET
