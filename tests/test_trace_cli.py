"""Tests for the --trace CLI plumbing and the trace summarize command."""

import io
import json

import pytest

from repro.cli import main
from repro.obs import load_trace

QASM = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
cx q[0],q[2];
cx q[1],q[3];
cx q[0],q[4];
h q[2];
cx q[2],q[4];
"""


@pytest.fixture
def qasm_file(tmp_path):
    path = tmp_path / "circ.qasm"
    path.write_text(QASM)
    return path


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestMapTrace:
    def test_map_writes_chrome_trace(self, qasm_file, tmp_path):
        trace_path = tmp_path / "map.trace.json"
        code, text = _run(
            ["map", str(qasm_file), "--device", "ibm_qx5",
             "--trace", str(trace_path)]
        )
        assert code == 0
        assert str(trace_path) in text
        doc = load_trace(trace_path)
        cats = {e["cat"] for e in doc["traceEvents"]}
        assert {"pipeline", "placement", "routing", "schedule"} <= cats

    def test_map_without_trace_writes_nothing(self, qasm_file, tmp_path):
        code, _ = _run(["map", str(qasm_file), "--device", "ibm_qx5"])
        assert code == 0
        assert list(tmp_path.glob("*.trace.json")) == []


class TestBenchTrace:
    def test_bench_trace_covers_measured_time(self, tmp_path):
        trace_path = tmp_path / "bench.trace.json"
        json_path = tmp_path / "bench.json"
        code, _ = _run(
            ["bench", "--json", str(json_path), "--trace", str(trace_path)]
        )
        assert code == 0
        report = json.loads(json_path.read_text())
        doc = load_trace(trace_path)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        by_case = {}
        for e in spans:
            case = e["args"].get("case")
            if case:
                by_case[case] = by_case.get(case, 0.0) + e["dur"] / 1e6
        # Acceptance criterion: per-case routing spans account for >=95%
        # of each case's measured wall time (the span sits inside the
        # timed region, so only clock resolution separates the two).
        for entry in report["cases"]:
            assert entry["case"] in by_case
            assert by_case[entry["case"]] >= 0.95 * entry["seconds"]
        counters = doc["otherData"]["counters"]
        assert counters.get("sabre.swap_candidates_scored", 0) > 0

    def test_bench_trace_carries_summary_meta(self, tmp_path):
        trace_path = tmp_path / "bench.trace.json"
        code, _ = _run(["bench", "--trace", str(trace_path)])
        assert code == 0
        doc = load_trace(trace_path)
        assert doc["otherData"]["bench_summary"]["all_match_seed"] is True


class TestBatchTrace:
    def test_batch_trace_and_report(self, tmp_path):
        trace_path = tmp_path / "batch.trace.json"
        json_path = tmp_path / "batch.json"
        code, _ = _run(
            ["batch", "--corpus", "perf", "--limit", "4",
             "--trace", str(trace_path), "--json", str(json_path)]
        )
        assert code == 0
        doc = load_trace(trace_path)
        cats = {e["cat"] for e in doc["traceEvents"]}
        assert {"service", "cache", "pipeline", "routing"} <= cats
        report = json.loads(json_path.read_text())
        trace_report = report["trace"]
        assert len(trace_report["jobs"]) == 4
        for row in trace_report["jobs"]:
            assert row["total_s"] > 0 and "routing" in row["passes"]

    def test_batch_pool_trace_merges_worker_spans(self, tmp_path):
        trace_path = tmp_path / "pool.trace.json"
        code, _ = _run(
            ["batch", "--corpus", "perf", "--limit", "4", "--jobs", "2",
             "--trace", str(trace_path)]
        )
        assert code == 0
        doc = load_trace(trace_path)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        pids = {e["pid"] for e in spans}
        assert len(pids) >= 2  # parent (cache spans) + worker (job spans)


class TestTraceSummarize:
    def test_summarize_prints_per_pass_table(self, qasm_file, tmp_path):
        trace_path = tmp_path / "t.json"
        _run(["map", str(qasm_file), "--device", "ibm_qx5",
              "--trace", str(trace_path)])
        code, text = _run(["trace", "summarize", str(trace_path)])
        assert code == 0
        lines = text.splitlines()
        assert lines[0].split()[:3] == ["pass", "spans", "total_s"]
        table_passes = {ln.split()[0] for ln in lines[1:] if ln.strip()}
        assert {"pipeline", "placement", "routing"} <= table_passes

    def test_summarize_missing_file_errors(self, tmp_path, capsys):
        code, _ = _run(["trace", "summarize", str(tmp_path / "absent.json")])
        assert code == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_summarize_rejects_non_trace_json(self, tmp_path, capsys):
        path = tmp_path / "not_trace.json"
        path.write_text('{"hello": 1}')
        code, _ = _run(["trace", "summarize", str(path)])
        assert code == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_summarize_empty_trace(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text('{"traceEvents": []}')
        code, text = _run(["trace", "summarize", str(path)])
        assert code == 0
        assert "no spans" in text
