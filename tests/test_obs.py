"""Tests for the tracing/metrics layer (repro.obs)."""

import json
import threading
import time

import pytest

from repro.core.pipeline import compile_circuit
from repro.devices import get_device
from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    add_counter,
    current_tracer,
    format_summary,
    load_trace,
    summarize_trace,
    to_chrome_trace,
    trace_span,
    use_tracer,
    write_chrome_trace,
)
from repro.workloads import random_circuit


class TestSpans:
    def test_nesting_depths_and_order(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("outer", pass_="a"):
                with trace_span("inner", pass_="b"):
                    pass
                with trace_span("inner2", pass_="b"):
                    pass
        events = tracer.finished()
        # Completion order: children finish before their parent.
        assert [e["name"] for e in events] == ["inner", "inner2", "outer"]
        by_name = {e["name"]: e for e in events}
        assert by_name["outer"]["depth"] == 0
        assert by_name["inner"]["depth"] == 1
        assert by_name["inner2"]["depth"] == 1
        # Children are contained in the parent's time window.
        outer = by_name["outer"]
        for child in ("inner", "inner2"):
            e = by_name[child]
            assert outer["ts"] <= e["ts"]
            assert e["ts"] + e["dur"] <= outer["ts"] + outer["dur"] + 1e-9

    def test_attrs_and_counters(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("work", pass_="p", label="x") as sp:
                assert sp.enabled
                sp.set(gates_in=10, gates_out=12)
                add_counter("widgets", 3)
                add_counter("widgets", 2)
        [event] = tracer.finished()
        assert event["pass"] == "p"
        assert event["args"]["label"] == "x"
        assert event["args"]["gates_in"] == 10
        assert event["args"]["widgets"] == 5
        assert tracer.counters() == {"widgets": 5}

    def test_counter_outside_any_span_is_tracer_wide(self):
        tracer = Tracer()
        with use_tracer(tracer):
            add_counter("loose", 7)
        assert tracer.finished() == []
        assert tracer.counters() == {"loose": 7}

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with pytest.raises(ValueError):
                with trace_span("boom", pass_="p"):
                    raise ValueError("nope")
        [event] = tracer.finished()
        assert event["args"]["error"] == "ValueError"
        assert event["dur"] >= 0

    def test_threads_nest_independently(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def worker(tag):
            with use_tracer(tracer):
                with trace_span(f"outer-{tag}", pass_="t"):
                    barrier.wait()
                    with trace_span(f"inner-{tag}", pass_="t"):
                        pass

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events = tracer.finished()
        assert len(events) == 4
        for e in events:
            expected = 0 if e["name"].startswith("outer") else 1
            assert e["depth"] == expected

    def test_absorb_merges_foreign_events(self):
        worker = Tracer()
        with use_tracer(worker):
            with trace_span("remote", pass_="p"):
                add_counter("k", 2)
        parent = Tracer()
        parent.absorb(worker.finished())
        for name, value in worker.counters().items():
            parent.counter(name, value)
        assert [e["name"] for e in parent.finished()] == ["remote"]
        assert parent.counters() == {"k": 2}


class TestNullPath:
    def test_default_tracer_is_null(self):
        assert current_tracer() is NULL_TRACER
        assert not current_tracer().enabled

    def test_null_span_is_inert(self):
        with trace_span("anything", pass_="p") as sp:
            assert not sp.enabled
            sp.set(x=1)
            sp.count("y")
        add_counter("z", 5)
        assert NULL_TRACER.finished() == []
        assert NullTracer().counters() == {}

    def test_disabled_overhead_smoke(self):
        # The null path is one ContextVar.get plus an empty context
        # manager; budget it generously so the smoke never flakes while
        # still catching an accidentally-enabled default tracer.
        def bare():
            total = 0
            for i in range(2000):
                total += i
            return total

        def instrumented():
            total = 0
            for i in range(2000):
                with trace_span("hot", pass_="p"):
                    total += i
            return total

        def best_of(fn, repeats=5):
            best = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - t0)
            return best

        base = best_of(bare)
        traced = best_of(instrumented)
        # Per-iteration null-span cost stays within a few microseconds.
        assert (traced - base) / 2000 < 5e-6


class TestChromeTrace:
    def _sample_tracer(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("compile", pass_="pipeline"):
                with trace_span("routing", pass_="routing") as sp:
                    sp.set(added_swaps=3, gates_in=10, gates_out=19)
        return tracer

    def test_schema_round_trip(self, tmp_path):
        tracer = self._sample_tracer()
        path = tmp_path / "trace.json"
        write_chrome_trace(
            path, tracer.finished(), counters=tracer.counters(),
            meta={"note": "test"},
        )
        doc = load_trace(path)
        assert isinstance(doc["traceEvents"], list)
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "cat", "ph", "ts", "dur", "pid",
                                  "tid", "args"}
            assert event["ts"] >= 0 and event["dur"] >= 0  # rebased µs
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["note"] == "test"
        # The file itself is plain JSON a trace viewer can open.
        json.loads(path.read_text())

    def test_load_trace_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"no": "traceEvents"}')
        with pytest.raises(ValueError):
            load_trace(path)

    def test_summarize_and_format(self):
        tracer = self._sample_tracer()
        doc = to_chrome_trace(tracer.finished())
        rows = summarize_trace(doc)
        by_pass = {r["pass"]: r for r in rows}
        assert by_pass["routing"]["swaps"] == 3
        assert by_pass["routing"]["gates_delta"] == 9
        assert rows[0]["pass"] == "pipeline"  # root spans sort first
        assert rows[0]["share"] == pytest.approx(1.0, abs=0.01)
        text = format_summary(rows, counters={"k": 2})
        assert "routing" in text and "counters:" in text


class TestPipelineIntegration:
    def _traced_compile(self, **kwargs):
        # Large enough that routing genuinely swaps and the fixed span
        # bookkeeping overhead is a negligible share of the compile.
        circuit = random_circuit(12, 60, seed=7, two_qubit_fraction=0.6)
        device = get_device("ibm_qx5")
        tracer = Tracer()
        with use_tracer(tracer):
            result = compile_circuit(circuit, device, **kwargs)
        return tracer, result

    def test_stage_spans_cover_compile_wall_time(self):
        tracer, _ = self._traced_compile()
        events = tracer.finished()
        [root] = [e for e in events if e["pass"] == "pipeline"]
        stages = [e for e in events if e["depth"] == 1]
        covered = sum(e["dur"] for e in stages)
        assert {e["pass"] for e in stages} >= {
            "placement", "routing", "decompose", "direction-fix",
            "verify", "schedule",
        }
        # Acceptance criterion: stage spans account for >=95% of the
        # measured compile span (the stages are the compile).
        assert covered >= 0.95 * root["dur"]
        assert covered <= root["dur"] * 1.01

    def test_root_span_carries_headline_metrics(self):
        tracer, result = self._traced_compile()
        [root] = [e for e in tracer.finished() if e["pass"] == "pipeline"]
        assert root["args"]["added_swaps"] == result.added_swaps
        assert root["args"]["flips"] == result.flips
        assert root["args"]["gates_out"] == result.native.size()

    def test_router_counters_present_when_traced(self):
        tracer, _ = self._traced_compile(router="sabre")
        counters = tracer.counters()
        assert counters.get("sabre.swap_decisions", 0) > 0
        assert counters.get("sabre.swap_candidates_scored", 0) > 0
        astar_tracer, _ = self._traced_compile(router="astar")
        counters = astar_tracer.counters()
        layers = counters.get("astar.native_layers", 0) + counters.get(
            "astar.python_layers", 0
        )
        assert layers > 0

    def test_untraced_compile_records_nothing(self):
        circuit = random_circuit(5, 15, seed=3, two_qubit_fraction=0.6)
        compile_circuit(circuit, get_device("ibm_qx4"))
        assert current_tracer().finished() == []
