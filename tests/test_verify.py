"""Tests for the equivalence checker itself — it must catch bad mappings."""

import numpy as np
import pytest

from repro.core import Circuit
from repro.mapping.placement import Placement
from repro.sim import simulate
from repro.verify import apply_permutation, equivalent_circuits, equivalent_mapped


class TestEquivalentCircuits:
    def test_identical(self, bell):
        assert equivalent_circuits(bell, bell)

    def test_global_phase_tolerated(self):
        a = Circuit(1).z(0)
        b = Circuit(1).x(0).y(0)  # = -iZ... actually Y X = i Z; either way
        assert equivalent_circuits(a, Circuit(1).y(0).x(0)) or equivalent_circuits(
            a, b
        )

    def test_detects_difference(self):
        assert not equivalent_circuits(Circuit(1).x(0), Circuit(1).y(0))

    def test_width_mismatch(self):
        assert not equivalent_circuits(Circuit(1), Circuit(2))


class TestApplyPermutation:
    def test_identity(self):
        state = simulate(Circuit(2).x(0))
        assert np.allclose(apply_permutation(state, [0, 1]), state)

    def test_swap_matches_swap_gate(self):
        state = simulate(Circuit(2).x(0).rz(0.3, 0))
        swapped = apply_permutation(state, [1, 0])
        direct = simulate(Circuit(2).x(0).rz(0.3, 0).swap(0, 1))
        assert np.allclose(swapped, direct)

    def test_cycle(self):
        state = simulate(Circuit(3).x(0))
        moved = apply_permutation(state, [1, 2, 0])
        assert abs(moved[0b010]) == pytest.approx(1.0)


class TestEquivalentMapped:
    def test_trivial_mapping(self, bell):
        initial = Placement.trivial(2)
        assert equivalent_mapped(bell, bell, initial, initial)

    def test_accepts_correct_swap_tracking(self):
        original = Circuit(2).x(0)
        mapped = Circuit(2).x(0).swap(0, 1)
        initial = Placement.trivial(2)
        final = initial.copy()
        final.apply_swap(0, 1)
        assert equivalent_mapped(original, mapped, initial, final)

    def test_rejects_untracked_swap(self):
        original = Circuit(2).x(0)
        mapped = Circuit(2).x(0).swap(0, 1)
        initial = Placement.trivial(2)
        assert not equivalent_mapped(original, mapped, initial, initial)

    def test_rejects_wrong_gate(self):
        original = Circuit(2).x(0)
        mapped = Circuit(2).y(0)
        initial = Placement.trivial(2)
        assert not equivalent_mapped(original, mapped, initial, initial)

    def test_rejects_dropped_gate(self, ghz3):
        mapped = Circuit(3).h(0).cnot(0, 1)  # missing last CNOT
        initial = Placement.trivial(3)
        assert not equivalent_mapped(ghz3, mapped, initial, initial)

    def test_too_many_qubits_raises_cleanly(self):
        # A mapped circuit on a 100+-qubit device cannot be checked by
        # dense statevectors; the guard must raise a clear ValueError
        # (not a numpy allocation error) so callers can skip instead.
        from repro.verify import STATEVECTOR_LIMIT

        n = STATEVECTOR_LIMIT + 1
        circuit = Circuit(n).x(0)
        initial = Placement.trivial(n)
        with pytest.raises(ValueError, match="statevector"):
            equivalent_mapped(circuit, circuit, initial, initial)

    def test_nontrivial_initial_placement(self):
        original = Circuit(2).cnot(0, 1)
        initial = Placement([1, 0])
        mapped = Circuit(2).cnot(1, 0)  # program 0 lives on physical 1
        assert equivalent_mapped(original, mapped, initial, initial)

    def test_padding_to_device_size(self, ghz3):
        initial = Placement.trivial(5, 3)
        mapped = Circuit(5).h(0).cnot(0, 1).cnot(1, 2)
        assert equivalent_mapped(ghz3, mapped, initial, initial)

    def test_size_mismatch_raises(self, bell):
        with pytest.raises(ValueError):
            equivalent_mapped(bell, bell, Placement.trivial(3), Placement.trivial(3))

    def test_large_circuit_uses_random_states(self):
        """Above the dense-unitary limit the sampling path must still
        accept correct mappings and reject wrong ones."""
        n = 10
        original = Circuit(n)
        for q in range(n - 1):
            original.cnot(q, q + 1)
        initial = Placement.trivial(n)
        assert equivalent_mapped(original, original.copy(), initial, initial)
        broken = original.copy()
        broken.x(0)
        assert not equivalent_mapped(original, broken, initial, initial)
