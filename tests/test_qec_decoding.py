"""Tests for the matching decoder and the logical memory experiment."""

import itertools

import pytest

from repro.qec import (
    MatchingDecoder,
    MemoryResult,
    RotatedSurfaceCode,
    SyndromeExtractor,
    memory_experiment,
    unprotected_failure_rate,
)


@pytest.fixture(scope="module")
def code():
    return RotatedSurfaceCode(3)


@pytest.fixture(scope="module")
def decoder(code):
    return MatchingDecoder(code)


def _quiet_after(extractor):
    extractor.syndrome()  # settle the change-based frame
    return extractor.syndrome() == {"X": frozenset(), "Z": frozenset()}


class TestMatchingDecoder:
    def test_empty_syndrome(self, decoder):
        assert decoder.decode({"X": frozenset(), "Z": frozenset()}) == {
            "X": (),
            "Z": (),
        }

    @pytest.mark.parametrize("data_qubit", range(9))
    def test_single_x_errors(self, code, decoder, data_qubit):
        extractor = SyndromeExtractor(code, seed=data_qubit)
        extractor.establish_reference()
        extractor.inject("x", data_qubit)
        correction = decoder.decode(extractor.syndrome())
        extractor.apply_correction("x", correction["X"])
        assert _quiet_after(extractor)
        assert extractor.logical_z_expectation() == pytest.approx(1.0)

    def test_single_z_error(self, code, decoder):
        extractor = SyndromeExtractor(code, seed=99)
        extractor.establish_reference()
        extractor.inject("z", 4)
        correction = decoder.decode(extractor.syndrome())
        assert correction["Z"]
        extractor.apply_correction("z", correction["Z"])
        assert _quiet_after(extractor)

    def test_double_errors_always_return_to_codespace(self, code, decoder):
        """Weight-2 may fail *logically* (d=3) but must clear the syndrome."""
        pairs = list(itertools.combinations(range(9), 2))[::3]  # sample
        for a, b in pairs:
            extractor = SyndromeExtractor(code, seed=a * 16 + b)
            extractor.establish_reference()
            extractor.inject("x", a)
            extractor.inject("x", b)
            correction = decoder.decode(extractor.syndrome())
            extractor.apply_correction("x", correction["X"])
            assert _quiet_after(extractor), (a, b)

    def test_some_double_errors_recover_logically(self, code, decoder):
        recovered = 0
        pairs = list(itertools.combinations(range(9), 2))[::2]  # sample 18
        for a, b in pairs:
            extractor = SyndromeExtractor(code, seed=300 + a * 16 + b)
            extractor.establish_reference()
            extractor.inject("x", a)
            extractor.inject("x", b)
            correction = decoder.decode(extractor.syndrome())
            extractor.apply_correction("x", correction["X"])
            extractor.syndrome()
            extractor.syndrome()
            if extractor.logical_z_expectation() > 0.99:
                recovered += 1
        # d=3 guarantees weight-1; a good matcher still recovers many
        # weight-2 cases (same-plaquette degeneracies and near pairs).
        assert recovered >= 6

    def test_handles_lookup_miss_syndromes(self, code, decoder):
        """A syndrome the lookup table rejects must still match."""
        from repro.qec import LookupDecoder

        extractor = SyndromeExtractor(code, seed=7)
        extractor.establish_reference()
        extractor.inject("x", 0)
        extractor.inject("x", 4)
        extractor.inject("x", 8)
        syndrome = extractor.syndrome()
        lookup = LookupDecoder(code)
        try:
            lookup.decode(syndrome)
            lookup_handles = True
        except KeyError:
            lookup_handles = False
        correction = decoder.decode(syndrome)
        extractor.apply_correction("x", correction["X"])
        assert _quiet_after(extractor)
        assert not lookup_handles or correction  # matcher always answers


class TestMemoryExperiment:
    def test_zero_error_rate_never_fails(self, code):
        result = memory_experiment(
            code, error_rate=0.0, rounds=2, trials=3, seed=1
        )
        assert result.failures == 0
        assert result.logical_error_rate == 0.0

    def test_result_fields(self, code):
        result = memory_experiment(
            code, error_rate=0.05, rounds=1, trials=4, seed=2
        )
        assert isinstance(result, MemoryResult)
        assert result.trials == 4
        assert 0.0 <= result.logical_error_rate <= 1.0

    def test_suppression_below_pseudothreshold(self, code):
        """At small p the corrected logical error rate beats the
        unprotected qubit's failure rate."""
        p, rounds = 0.02, 2
        result = memory_experiment(
            code, error_rate=p, rounds=rounds, trials=12, seed=3
        )
        assert result.logical_error_rate <= unprotected_failure_rate(p, rounds)


class TestUnprotectedRate:
    def test_zero(self):
        assert unprotected_failure_rate(0.0, 5) == 0.0

    def test_single_round(self):
        assert unprotected_failure_rate(0.1, 1) == pytest.approx(0.1)

    def test_saturates_at_half(self):
        assert unprotected_failure_rate(0.5, 10) == pytest.approx(0.5)

    def test_monotone_in_rounds(self):
        rates = [unprotected_failure_rate(0.05, r) for r in range(1, 6)]
        assert rates == sorted(rates)
