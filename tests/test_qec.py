"""Tests for the rotated surface code machinery (Sec. V context, ref [60])."""

import numpy as np
import pytest

from repro.qec import (
    LookupDecoder,
    RotatedSurfaceCode,
    SyndromeExtractor,
    stabilizer_cycle,
)


@pytest.fixture(scope="module")
def code():
    return RotatedSurfaceCode(3)


class TestCodeStructure:
    def test_distance3_is_seventeen_qubits(self, code):
        assert code.num_data == 9
        assert code.num_ancilla == 8
        assert code.num_qubits == 17

    def test_stabilizer_counts(self, code):
        assert len(code.x_stabilizers()) == 4
        assert len(code.z_stabilizers()) == 4

    def test_weights(self, code):
        weights = sorted(len(s.data) for s in code.stabilizers)
        assert weights == [2, 2, 2, 2, 4, 4, 4, 4]

    def test_css_commutation(self, code):
        assert code.check_css()

    @pytest.mark.parametrize("distance", [2, 3, 4, 5])
    def test_general_distance_css(self, distance):
        code = RotatedSurfaceCode(distance)
        assert code.num_data == distance**2
        assert code.num_ancilla == distance**2 - 1
        assert code.check_css()

    def test_logicals_commute_with_stabilizers(self, code):
        z_support = set(code.logical_z)
        for stabilizer in code.x_stabilizers():
            assert len(z_support & set(stabilizer.data)) % 2 == 0
        x_support = set(code.logical_x)
        for stabilizer in code.z_stabilizers():
            assert len(x_support & set(stabilizer.data)) % 2 == 0

    def test_logicals_anticommute_with_each_other(self, code):
        overlap = set(code.logical_z) & set(code.logical_x)
        assert len(overlap) % 2 == 1

    def test_logical_weight_is_distance(self, code):
        assert len(code.logical_z) == 3
        assert len(code.logical_x) == 3

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            RotatedSurfaceCode(1)

    def test_stabilizer_of_ancilla(self, code):
        stabilizer = code.stabilizers[0]
        assert code.stabilizer_of_ancilla(stabilizer.ancilla) is stabilizer
        with pytest.raises(KeyError):
            code.stabilizer_of_ancilla(0)  # a data qubit


class TestDeviceModel:
    def test_coupling_is_code_adjacency(self, code):
        device = code.device()
        for stabilizer in code.stabilizers:
            for data in stabilizer.data:
                assert device.connected(stabilizer.ancilla, data)

    def test_frequency_scheme(self, code):
        """Versluis scheme: X ancillas f1, data f2, Z ancillas f3."""
        device = code.device()
        groups = device.constraints.frequency_group
        for stabilizer in code.x_stabilizers():
            assert groups[stabilizer.ancilla] == 0
        for stabilizer in code.z_stabilizers():
            assert groups[stabilizer.ancilla] == 2
        for data in range(code.num_data):
            assert groups[data] == 1

    def test_every_edge_crosses_frequencies(self, code):
        device = code.device()
        groups = device.constraints.frequency_group
        for a, b in device.undirected_edges():
            assert groups[a] != groups[b]

    def test_cycle_compiles_natively(self, code):
        from repro.decompose import decompose_circuit

        device = code.device()
        native = decompose_circuit(stabilizer_cycle(code), device)
        assert device.conforms(native)


class TestCycle:
    def test_measures_every_ancilla_once(self, code):
        circuit = stabilizer_cycle(code)
        assert circuit.count("measure") == code.num_ancilla
        assert circuit.count("prep_z") == code.num_ancilla

    def test_cnot_count(self, code):
        circuit = stabilizer_cycle(code)
        expected = sum(len(s.data) for s in code.stabilizers)
        assert circuit.count("cnot") == expected

    def test_z_syndromes_deterministic_on_zero_state(self, code):
        extractor = SyndromeExtractor(code, seed=3)
        outcomes = extractor.establish_reference()
        for stabilizer in code.z_stabilizers():
            assert outcomes[stabilizer.ancilla] == 0

    def test_quiet_cycles_report_empty_syndrome(self, code):
        extractor = SyndromeExtractor(code, seed=4)
        extractor.establish_reference()
        for _ in range(3):
            syndrome = extractor.syndrome()
            assert syndrome == {"X": frozenset(), "Z": frozenset()}

    def test_x_outcomes_repeat_once_projected(self, code):
        extractor = SyndromeExtractor(code, seed=5)
        first = extractor.establish_reference()
        second = extractor.run_cycle()
        for stabilizer in code.x_stabilizers():
            assert first[stabilizer.ancilla] == second[stabilizer.ancilla]

    def test_syndrome_requires_reference(self, code):
        with pytest.raises(RuntimeError):
            SyndromeExtractor(code).syndrome()

    def test_inject_validates(self, code):
        extractor = SyndromeExtractor(code)
        with pytest.raises(ValueError):
            extractor.inject("w", 0)
        with pytest.raises(ValueError):
            extractor.inject("x", code.num_data)  # an ancilla


class TestSyndromesOfErrors:
    @pytest.mark.parametrize("data_qubit", range(9))
    def test_x_error_flips_exactly_its_z_stabilizers(self, code, data_qubit):
        extractor = SyndromeExtractor(code, seed=10 + data_qubit)
        extractor.establish_reference()
        extractor.inject("x", data_qubit)
        syndrome = extractor.syndrome()
        expected = frozenset(
            s.ancilla for s in code.z_stabilizers() if data_qubit in s.data
        )
        assert syndrome["Z"] == expected
        assert syndrome["X"] == frozenset()

    @pytest.mark.parametrize("data_qubit", [0, 4, 8])
    def test_z_error_flips_exactly_its_x_stabilizers(self, code, data_qubit):
        extractor = SyndromeExtractor(code, seed=30 + data_qubit)
        extractor.establish_reference()
        extractor.inject("z", data_qubit)
        syndrome = extractor.syndrome()
        expected = frozenset(
            s.ancilla for s in code.x_stabilizers() if data_qubit in s.data
        )
        assert syndrome["X"] == expected
        assert syndrome["Z"] == frozenset()

    def test_y_error_flips_both_kinds(self, code):
        extractor = SyndromeExtractor(code, seed=40)
        extractor.establish_reference()
        extractor.inject("y", 4)
        syndrome = extractor.syndrome()
        assert syndrome["X"] and syndrome["Z"]


class TestDecoder:
    @pytest.mark.parametrize("data_qubit", range(9))
    def test_corrects_every_single_x_error_logically(self, code, data_qubit):
        extractor = SyndromeExtractor(code, seed=50 + data_qubit)
        extractor.establish_reference()
        assert extractor.logical_z_expectation() == pytest.approx(1.0)

        extractor.inject("x", data_qubit)
        decoder = LookupDecoder(code)
        correction = decoder.decode(extractor.syndrome())
        extractor.apply_correction("x", correction["X"])
        extractor.apply_correction("z", correction["Z"])
        # Let the change-based syndrome settle (corrections flip the
        # ancilla outcomes back), then check quiet + logical recovery.
        extractor.syndrome()
        assert extractor.syndrome() == {"X": frozenset(), "Z": frozenset()}
        assert extractor.logical_z_expectation() == pytest.approx(1.0)

    def test_corrects_z_error_logically(self, code):
        extractor = SyndromeExtractor(code, seed=70)
        extractor.establish_reference()
        extractor.inject("z", 4)
        decoder = LookupDecoder(code)
        correction = decoder.decode(extractor.syndrome())
        assert correction["Z"]
        extractor.apply_correction("z", correction["Z"])
        extractor.syndrome()
        assert extractor.syndrome() == {"X": frozenset(), "Z": frozenset()}

    def test_empty_syndrome_no_correction(self, code):
        decoder = LookupDecoder(code)
        correction = decoder.decode({"X": frozenset(), "Z": frozenset()})
        assert correction == {"X": (), "Z": ()}

    def test_unknown_syndrome_raises(self, code):
        decoder = LookupDecoder(code)
        all_z = frozenset(s.ancilla for s in code.z_stabilizers())
        with pytest.raises(KeyError):
            decoder.decode({"X": frozenset(), "Z": all_z})

    def test_table_covers_all_single_errors(self, code):
        decoder = LookupDecoder(code)
        # 9 single-X errors collapse onto >= 6 distinct syndromes + empty.
        assert decoder.correctable_syndromes() >= 7
