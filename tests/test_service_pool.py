"""The warm worker pool: preload, reuse, and recycle semantics.

The pool's contract (see ``docs/service.md``): workers are spawned once
per service and preload the native A* kernel in their initializer — at
most one build per worker *lifetime*, never one per job; single-job
batches skip the pool entirely; batches reuse warm workers instead of
respawning; and a crash recycles exactly the broken worker while the
survivors keep their preloaded state.
"""

import pytest

from repro.core.pipeline import PassConfig
from repro.devices import get_device
from repro.qasm import to_openqasm
from repro.resilience import FaultPlan, FaultSpec
from repro.service import CompileCache, CompileJob, CompileService
from repro.workloads import random_circuit


def _job(seed=1, router="sabre", **kwargs):
    qasm = to_openqasm(
        random_circuit(5, 12, seed=seed, two_qubit_fraction=0.6)
    )
    return CompileJob.create(
        qasm, get_device("ibm_qx4"), PassConfig(router=router), **kwargs
    )


class TestWorkerPreload:
    def test_kernel_built_at_most_once_per_worker(self):
        # The ready report carries the builds the initializer ran; after
        # a batch of A* jobs the per-worker build count must not have
        # grown — the kernel is resolved once per worker lifetime, never
        # on a job's critical path.
        with CompileService(CompileCache(), max_workers=2) as service:
            reports = service.prewarm()
            assert len(reports) == 2
            for rep in reports:
                assert rep["kernel_builds"] <= 1
                assert rep["jobs_run"] == 0
            jobs = [
                _job(seed=s, router="astar", job_id=f"a{s}")
                for s in range(6)
            ]
            results = service.submit_batch(jobs)
            assert all(r.ok for r in results)
            after = service._pool.worker_stats()
            assert after, "no worker stats collected"
            for rep in after:
                assert rep["kernel_builds"] <= 1
            assert sum(rep["jobs_run"] for rep in after) == 6

    def test_no_native_workers_skip_the_build(self, monkeypatch):
        # REPRO_NO_NATIVE is inherited by the forked workers: the
        # initializer must not touch the build path at all.
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        with CompileService(CompileCache(), max_workers=2) as service:
            reports = service.prewarm()
            assert len(reports) == 2
            for rep in reports:
                assert rep["native_preloaded"] is False
                assert rep["kernel_builds"] == 0
            jobs = [
                _job(seed=s, router="astar", job_id=f"n{s}")
                for s in range(4)
            ]
            results = service.submit_batch(jobs)
            assert all(r.ok for r in results)
            for rep in service._pool.worker_stats():
                assert rep["kernel_builds"] == 0


class TestPoolLifecycle:
    def test_single_job_batch_runs_inline(self):
        # A clean 1-job batch must not pay for any worker process.
        service = CompileService(CompileCache(), max_workers=4)
        res = service.submit_batch([_job(job_id="solo")])[0]
        assert res.ok
        assert service._pool is None
        stats = service.stats()
        assert stats["service"]["pools_created"] == 0
        assert stats["service"]["worker_spawns"] == 0

    def test_workers_reused_across_batches(self):
        with CompileService(CompileCache(), max_workers=2) as service:
            first = service.submit_batch(
                [_job(seed=s, job_id=f"f{s}") for s in range(4)]
            )
            second = service.submit_batch(
                [_job(seed=s + 10, job_id=f"g{s}") for s in range(4)]
            )
            assert all(r.ok for r in first + second)
            stats = service.stats()
            assert stats["service"]["pools_created"] == 1
            assert stats["service"]["pool_reuse_batches"] == 1
            # Both batches ran on the two original workers.
            assert stats["pool"]["worker_spawns"] == 2
            assert stats["pool"]["pool_reuse_hits"] > 0
            assert stats["pool"]["worker_recycles"] == 0

    def test_close_tears_down_workers(self):
        service = CompileService(CompileCache(), max_workers=2)
        service.prewarm()
        pool = service._pool
        assert pool.size() == 2
        service.close()
        assert pool.size() == 0
        assert service._pool is None
        # Idempotent, and the service stays usable (a new pool forms).
        service.close()
        res = service.submit_batch(
            [_job(seed=s, job_id=f"r{s}") for s in range(2)]
        )
        assert all(r.ok for r in res)
        assert service.stats()["service"]["pools_created"] == 2
        service.close()


class TestCrashRecycling:
    def test_crash_recycles_exactly_one_worker(self):
        # One deterministic crash mid-batch (the crash only fires for
        # the sabre attempt; the blamed retry falls back to naive and
        # survives): the pool replaces exactly the dead worker
        # (worker_spawns goes 2 -> 3), the survivor stays warm, and
        # every job still completes.
        plan = FaultPlan(specs=(
            FaultSpec(stage="routing", action="crash",
                      router="sabre", job_id="boom", times=None),
        ))
        with CompileService(
            CompileCache(), max_workers=2, retries=2
        ) as service:
            jobs = [_job(seed=99, job_id="boom")]
            jobs += [_job(seed=s, job_id=f"ok{s}") for s in range(8)]
            results = service.submit_batch(jobs, fault_plan=plan)
            by_id = {r.job_id: r for r in results}
            assert by_id["boom"].completed
            assert all(
                by_id[f"ok{s}"].ok for s in range(8)
            ), [(r.job_id, r.status) for r in results]
            pool = service.stats()["pool"]
            assert pool["worker_crashes"] == 1
            assert pool["worker_recycles"] == 0
            assert pool["worker_spawns"] == 3
            assert pool["workers_alive"] == 2
            # The survivor kept its preloaded state: it reports jobs
            # across the whole batch without ever rebuilding the kernel.
            stats = service._pool.worker_stats()
            assert any(rep["jobs_run"] >= 2 for rep in stats)
            for rep in stats:
                assert rep["kernel_builds"] <= 1

    def test_crash_exhaustion_leaves_pool_healthy(self):
        # A job that crashes on every attempt burns its retries but the
        # pool ends the batch with live warm workers for the next one.
        plan = FaultPlan(specs=(
            FaultSpec(stage="worker", action="crash",
                      job_id="doom", times=None),
        ))
        with CompileService(
            CompileCache(), max_workers=2, retries=1
        ) as service:
            jobs = [_job(seed=98, job_id="doom")]
            jobs += [_job(seed=s, job_id=f"ok{s}") for s in range(5)]
            results = service.submit_batch(jobs, fault_plan=plan)
            by_id = {r.job_id: r for r in results}
            assert by_id["doom"].status == "crashed"
            assert by_id["doom"].attempts == 2
            assert all(by_id[f"ok{s}"].ok for s in range(5))
            pool = service.stats()["pool"]
            assert pool["worker_crashes"] == 2
            # Clean follow-up batch runs on the surviving pool.
            again = service.submit_batch(
                [_job(seed=s + 20, job_id=f"b{s}") for s in range(3)]
            )
            assert all(r.ok for r in again)
            assert service.stats()["service"]["pool_reuse_batches"] == 1
