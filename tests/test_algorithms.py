"""Tests for the extended algorithm workloads."""

import numpy as np
import pytest

from repro.core import Circuit
from repro.sim import StateVector, simulate
from repro.workloads import (
    deutsch_jozsa,
    hidden_shift,
    phase_estimation,
    w_state,
)


class TestPhaseEstimation:
    @pytest.mark.parametrize(
        "counting,phase",
        [(2, 0.25), (3, 0.25), (3, 0.625), (4, 0.3125)],
    )
    def test_exact_phase_recovered_with_certainty(self, counting, phase):
        state = simulate(phase_estimation(counting, phase))
        probs = np.abs(state) ** 2
        index = int(np.argmax(probs))
        bits = format(index, f"0{counting + 1}b")[:counting]
        assert int(bits, 2) / 2**counting == pytest.approx(phase)
        assert probs[index] == pytest.approx(1.0)

    def test_inexact_phase_peaks_near_truth(self):
        phase = 0.3  # not a 3-bit fraction
        state = simulate(phase_estimation(3, phase))
        probs = np.abs(state) ** 2
        index = int(np.argmax(probs))
        bits = format(index, "04b")[:3]
        estimate = int(bits, 2) / 8
        assert abs(estimate - phase) <= 1 / 8

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            phase_estimation(0, 0.5)


class TestDeutschJozsa:
    @pytest.mark.parametrize("oracle", ["constant0", "constant1"])
    def test_constant_measures_all_zero(self, oracle):
        sv = StateVector(4, rng=np.random.default_rng(0))
        sv.run(deutsch_jozsa(3, oracle))
        assert all(sv.results[q] == 0 for q in range(3))

    def test_balanced_measures_nonzero(self):
        sv = StateVector(4, rng=np.random.default_rng(0))
        sv.run(deutsch_jozsa(3, "balanced"))
        assert any(sv.results[q] == 1 for q in range(3))

    def test_unknown_oracle(self):
        with pytest.raises(ValueError):
            deutsch_jozsa(2, "chaotic")


class TestWState:
    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_uniform_one_hot_superposition(self, n):
        state = simulate(w_state(n))
        probs = np.abs(state) ** 2
        for index, p in enumerate(probs):
            weight = bin(index).count("1")
            if weight == 1:
                assert p == pytest.approx(1.0 / n, abs=1e-9)
            else:
                assert p == pytest.approx(0.0, abs=1e-9)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            w_state(0)


class TestHiddenShift:
    @pytest.mark.parametrize("shift", ["00", "11", "1010", "0110", "111111"])
    def test_recovers_shift(self, shift):
        sv = StateVector(len(shift), rng=np.random.default_rng(3))
        sv.run(hidden_shift(shift))
        measured = "".join(str(sv.results[q]) for q in range(len(shift)))
        assert measured == shift

    def test_invalid_shift(self):
        with pytest.raises(ValueError):
            hidden_shift("")
        with pytest.raises(ValueError):
            hidden_shift("012")
        with pytest.raises(ValueError):
            hidden_shift("101")  # odd width has no full pairing


class TestMappedAlgorithms:
    """The algorithms must survive the full pipeline."""

    def test_qpe_on_qx5(self):
        from repro.core.pipeline import compile_circuit
        from repro.devices import ibm_qx5
        from repro.verify import equivalent_mapped

        circuit = phase_estimation(3, 0.625)
        device = ibm_qx5()
        result = compile_circuit(circuit, device, placer="greedy")
        assert device.conforms(result.native)
        assert equivalent_mapped(
            circuit, result.native, result.routed.initial, result.routed.final
        )

    def test_w_state_on_surface17(self):
        from repro.core.pipeline import compile_circuit
        from repro.devices import surface17
        from repro.verify import equivalent_mapped

        circuit = w_state(5)
        device = surface17()
        result = compile_circuit(circuit, device, placer="greedy", optimize=True)
        assert device.conforms(result.native)
        assert equivalent_mapped(
            circuit, result.native, result.routed.initial, result.routed.final
        )
