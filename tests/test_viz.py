"""Smoke tests for the ASCII renderers."""

from repro.core import Circuit
from repro.mapping.scheduler import asap_schedule
from repro.viz import draw_circuit, draw_device, draw_schedule


class TestDrawCircuit:
    def test_rows_per_qubit(self, ghz3):
        text = draw_circuit(ghz3)
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("q0:")

    def test_cnot_symbols(self, bell):
        text = draw_circuit(bell)
        assert "*" in text and "+" in text

    def test_vertical_connector_spans_gap(self):
        text = draw_circuit(Circuit(3).cnot(0, 2))
        assert "|" in text.splitlines()[1]

    def test_swap_symbol(self):
        assert "x" in draw_circuit(Circuit(2).swap(0, 1))

    def test_parameterised_label(self):
        assert "RX(0.50)" in draw_circuit(Circuit(1).rx(0.5, 0))

    def test_measure_label(self):
        assert "M" in draw_circuit(Circuit(1).measure(0))

    def test_toffoli(self):
        text = draw_circuit(Circuit(3).toffoli(0, 1, 2))
        assert text.count("*") == 2 and "+" in text

    def test_custom_prefix(self, bell):
        assert "Q0:" in draw_circuit(bell, qubit_prefix="Q")


class TestDrawSchedule:
    def test_columns_are_cycles(self, s17):
        schedule = asap_schedule(Circuit(2).x(0).y(0), s17)
        text = draw_schedule(schedule)
        assert text.splitlines()[0].startswith("cyc")
        assert "X" in text and "Y" in text

    def test_parallel_gates_same_column(self, s17):
        schedule = asap_schedule(Circuit(2).x(0).x(1), s17)
        lines = draw_schedule(schedule).splitlines()
        assert "X" in lines[1] and "X" in lines[2]


class TestDrawDevice:
    def test_qx4_shows_directions(self, qx4):
        text = draw_device(qx4)
        assert "control->target" in text
        assert "4->3" in text

    def test_surface17_shows_constraints(self, s17):
        text = draw_device(s17)
        assert "frequency f1" in text
        assert "feedline 0" in text
        assert "(16)" in text

    def test_symmetric_edges(self, line5):
        assert "symmetric" in draw_device(line5)
