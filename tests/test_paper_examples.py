"""Pin every quantitative statement of the paper's worked examples.

These are the test-suite versions of the figure benchmarks (see
``benchmarks/`` for the report-generating harnesses).
"""

import pytest

from repro.core.pipeline import compile_circuit
from repro.decompose import decompose_circuit
from repro.mapping import qmap
from repro.mapping.routing import route, route_exact
from repro.mapping.scheduler import asap_schedule
from repro.verify import equivalent_mapped
from repro.workloads import (
    fig1_circuit,
    fig1_cnot_skeleton,
    fig1_qx4_placement,
    fig2_circuit,
)


class TestFig1:
    def test_four_qubits_five_cnots(self):
        circuit = fig1_circuit()
        assert circuit.num_qubits == 4
        assert circuit.count("cnot") == 5

    def test_has_single_qubit_gates(self):
        assert fig1_circuit().size() > 5

    def test_first_cnot_is_q3_to_q4(self):
        """Section IV: 'the first CNOT gate works with qubit q3 as control
        and qubit q4 as target' (paper labels = our indices + 1)."""
        first = next(g for g in fig1_circuit() if g.name == "cnot")
        assert first.qubits == (2, 3)

    def test_skeleton_removes_single_qubit_gates(self):
        skeleton = fig1_cnot_skeleton()
        assert skeleton.size() == 5
        assert all(g.is_two_qubit for g in skeleton)

    def test_interaction_graph_has_triangle(self):
        """Needed for the Fig. 5 one-SWAP claim: the (bipartite)
        Surface-17 lattice cannot embed a triangle."""
        pairs = set(fig1_circuit().interaction_pairs())
        assert {(1, 2), (1, 3), (2, 3)} <= pairs


class TestFig3OnQX4:
    """Fig. 3: naive vs heuristic [54] vs exact [57] on IBM QX4."""

    def test_first_cnot_violates_constraints(self, qx4):
        placement = fig1_qx4_placement()
        first = next(g for g in fig1_circuit() if g.name == "cnot")
        pa, pb = placement.phys(first.qubits[0]), placement.phys(first.qubits[1])
        assert qx4.connected(pa, pb)
        assert not qx4.has_edge(pa, pb)  # wrong direction => not allowed

    def _native_size(self, qx4, router, **options):
        result = compile_circuit(
            fig1_circuit(),
            qx4,
            placer=lambda c, d: fig1_qx4_placement(),
            router=router,
            router_options=options,
            schedule=None,
        )
        assert qx4.conforms(result.native)
        assert equivalent_mapped(
            fig1_circuit(), result.native, result.routed.initial, result.routed.final
        )
        return result

    def test_overhead_ordering_naive_heuristic_exact(self, qx4):
        naive = self._native_size(qx4, "naive")
        heuristic = self._native_size(qx4, "astar")
        exact = self._native_size(qx4, "exact")
        assert naive.native.size() > heuristic.native.size()
        assert exact.native.size() <= heuristic.native.size()

    def test_exact_with_free_placement_improves_further(self, qx4):
        fixed = route_exact(fig1_circuit(), qx4, fig1_qx4_placement())
        free = route_exact(fig1_circuit(), qx4, optimize_placement=True)
        assert free.metadata["cost"] < fixed.metadata["cost"]

    def test_heuristic_uses_h_flips(self, qx4):
        """Fig. 3(c): 'also H gates are employed to flip the direction'."""
        result = self._native_size(qx4, "astar")
        assert result.flips > 0


class TestFig5AndFig6OnSurface17:
    def test_qmap_adds_exactly_one_swap(self, s17):
        assert qmap(fig1_circuit(), s17).added_swaps == 1

    def test_native_gates_are_surface_set(self, s17):
        result = qmap(fig1_circuit(), s17)
        names = {g.name for g in result.native if g.is_unitary}
        assert names <= {"rx", "ry", "x", "y", "x90", "xm90", "y90", "ym90", "cz"}

    def test_latency_about_2x_unmapped(self, s17):
        """Fig. 6 discussion: 26 cycles at 20 ns/cycle, ~2x the unmapped
        decomposed latency.  Our reconstruction gives the same shape."""
        result = qmap(fig1_circuit(), s17)
        baseline = asap_schedule(
            decompose_circuit(fig1_circuit(), s17), s17
        ).latency
        assert result.schedule.cycle_time_ns == 20.0
        assert 1.2 <= result.latency / baseline <= 2.5
        assert 20 <= result.latency <= 40  # paper: 26


class TestFig2Flow:
    def test_three_program_qubits(self):
        assert fig2_circuit().num_qubits == 3

    def test_compiles_onto_surface7(self, s7):
        circuit = fig2_circuit()
        result = compile_circuit(
            circuit, s7, placer="assignment", router="latency",
            schedule="constraints",
        )
        assert s7.conforms(result.native)
        assert equivalent_mapped(
            circuit, result.native, result.routed.initial, result.routed.final
        )

    def test_placement_may_change_during_execution(self, s7):
        """Fig. 2 caption: 'The initial placement of the program qubits
        may differ from the final placement.'  Verified on a workload
        that needs at least one SWAP on Surface-7."""
        from repro.workloads import random_circuit

        moved = False
        for seed in range(8):
            circuit = random_circuit(5, 12, seed=seed, two_qubit_fraction=0.8)
            result = route(circuit, s7, "sabre")
            if result.added_swaps:
                moved = moved or (result.initial != result.final)
        assert moved

    def test_qasm_in_cqasm_out(self, s7):
        """The full Fig. 2 story: QASM text in, scheduled cQASM out."""
        from repro.qasm import parse_qasm, schedule_to_cqasm, to_openqasm

        circuit = parse_qasm(to_openqasm(fig2_circuit()))
        result = compile_circuit(circuit, s7, schedule="constraints")
        text = schedule_to_cqasm(result.schedule)
        assert text.startswith("version 1.0")
        assert "cz" in text
