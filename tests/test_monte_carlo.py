"""Tests for the Monte-Carlo noisy simulator."""

import math

import pytest

from repro.core import Circuit
from repro.sim.monte_carlo import average_fidelity, sample_noisy_counts
from repro.sim.noise import NoiseModel


class TestAverageFidelity:
    def test_noiseless_is_one(self, ghz3):
        noise = NoiseModel(error_1q=0, error_2q=0)
        assert average_fidelity(ghz3, noise, trials=20) == pytest.approx(1.0)

    def test_analytic_product_is_a_lower_bound(self):
        # 10 single-qubit gates at 2% error: analytic success 0.98^10.
        # Some injected Paulis leave the state invariant (e.g. X on |+>),
        # so the sampled fidelity lies above the analytic product but
        # within the one-error budget (~sum of error rates).
        circuit = Circuit(1)
        for _ in range(10):
            circuit.h(0)
        noise = NoiseModel(error_1q=0.02, error_2q=0.0)
        sampled = average_fidelity(circuit, noise, trials=1500, seed=3)
        analytic = 0.98**10
        assert analytic - 0.02 <= sampled <= analytic + 10 * 0.02

    def test_more_noise_less_fidelity(self, ghz3):
        low = average_fidelity(ghz3, NoiseModel(error_1q=0.01, error_2q=0.01), trials=400, seed=1)
        high = average_fidelity(ghz3, NoiseModel(error_1q=0.2, error_2q=0.2), trials=400, seed=1)
        assert high < low

    def test_rejects_measurement(self):
        with pytest.raises(ValueError):
            average_fidelity(Circuit(1).measure(0), NoiseModel())

    def test_seeded(self, ghz3):
        noise = NoiseModel(error_1q=0.05)
        a = average_fidelity(ghz3, noise, trials=50, seed=9)
        b = average_fidelity(ghz3, noise, trials=50, seed=9)
        assert a == b


class TestSampleNoisyCounts:
    def test_noiseless_deterministic_circuit(self):
        circuit = Circuit(2).x(0)
        noise = NoiseModel(error_1q=0, error_2q=0, error_measure=0)
        counts = sample_noisy_counts(circuit, noise, shots=50)
        assert counts == {"10": 50}

    def test_shots_conserved(self, ghz3):
        counts = sample_noisy_counts(ghz3, NoiseModel(), shots=64)
        assert sum(counts.values()) == 64

    def test_readout_errors_flip_outcomes(self):
        circuit = Circuit(1).measure(0)
        noise = NoiseModel(error_1q=0, error_2q=0, error_measure=0.5)
        counts = sample_noisy_counts(circuit, noise, shots=600, seed=4)
        assert set(counts) == {"0", "1"}
        assert abs(counts["1"] - 300) < 90

    def test_explicit_measure_qubits(self):
        circuit = Circuit(3).x(2)
        noise = NoiseModel(error_1q=0, error_measure=0)
        counts = sample_noisy_counts(circuit, noise, shots=10, measure_qubits=[2])
        assert counts == {"1": 10}

    def test_gate_errors_spread_distribution(self):
        circuit = Circuit(1).x(0)
        noise = NoiseModel(error_1q=0.4, error_measure=0)
        counts = sample_noisy_counts(circuit, noise, shots=400, seed=5)
        assert counts.get("0", 0) > 0  # errors visible

    def test_ghz_ideal_correlations(self, ghz3):
        noise = NoiseModel(error_1q=0, error_2q=0, error_measure=0)
        counts = sample_noisy_counts(ghz3, noise, shots=200, seed=6)
        assert set(counts) <= {"000", "111"}
