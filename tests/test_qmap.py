"""Tests for the Qmap mapper (Section V) and its retargetability (Sec. VI)."""

import pytest

from repro.core import Circuit
from repro.devices import get_device
from repro.mapping import qmap
from repro.verify import equivalent_mapped
from repro.workloads import fig1_circuit, ghz


class TestOnSurface17:
    def test_fig5_exactly_one_swap(self, s17):
        """Paper Fig. 5: Qmap maps the Fig. 1 circuit with ONE added SWAP."""
        result = qmap(fig1_circuit(), s17)
        assert result.added_swaps == 1

    def test_output_native_and_conforming(self, s17):
        result = qmap(fig1_circuit(), s17)
        assert s17.conforms(result.native)

    def test_semantics_preserved(self, s17):
        circuit = fig1_circuit()
        result = qmap(circuit, s17)
        assert equivalent_mapped(
            circuit, result.native, result.routed.initial, result.routed.final
        )

    def test_scheduled_with_constraints(self, s17):
        result = qmap(fig1_circuit(), s17)
        assert result.schedule is not None
        assert result.schedule.metadata["awg"] is True
        assert result.schedule.validate() == []

    def test_latency_increase_factor_matches_paper_shape(self, s17):
        """Section V: mapping gives ~2x latency vs the dependency-only
        schedule of the decomposed, unmapped circuit (26 cycles there)."""
        from repro.decompose import decompose_circuit
        from repro.mapping.scheduler import asap_schedule

        circuit = fig1_circuit()
        result = qmap(circuit, s17)
        baseline = asap_schedule(decompose_circuit(circuit, s17), s17).latency
        factor = result.latency / baseline
        assert 1.2 <= factor <= 2.5

    def test_constraints_can_be_disabled(self, s17):
        on = qmap(fig1_circuit(), s17)
        off = qmap(fig1_circuit(), s17, control_constraints=False)
        assert off.latency <= on.latency


class TestRetargetability:
    """Section VI: 'every device is (almost) equal before the compiler' —
    the same mapper drives any device description."""

    @pytest.mark.parametrize(
        "device_name,params",
        [
            ("surface7", {}),
            ("ibm_qx4", {}),
            ("linear", {"num_qubits": 6}),
            ("grid", {"rows": 2, "cols": 3}),
            ("all_to_all", {"num_qubits": 5}),
        ],
    )
    def test_qmap_targets_any_device(self, device_name, params):
        device = get_device(device_name, **params)
        circuit = ghz(min(device.num_qubits, 5))
        result = qmap(circuit, device, placer="assignment")
        assert device.conforms(result.native)
        assert equivalent_mapped(
            circuit, result.native, result.routed.initial, result.routed.final
        )

    def test_json_config_roundtrip_targets_same(self, s7, tmp_path):
        """Qmap 'can easily target other quantum devices by just changing
        the parameters in this [configuration] file'."""
        from repro.devices import Device

        path = tmp_path / "device.json"
        s7.to_json(path)
        loaded = Device.from_json(path)
        circuit = ghz(4)
        a = qmap(circuit, s7, placer="assignment")
        b = qmap(circuit, loaded, placer="assignment")
        assert a.added_swaps == b.added_swaps
        assert a.latency == b.latency

    def test_all_to_all_needs_no_swaps(self):
        """Trapped-ion style connectivity (Section VI-C): routing-free."""
        device = get_device("all_to_all", num_qubits=5)
        result = qmap(ghz(5), device, placer="trivial")
        assert result.added_swaps == 0
